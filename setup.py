from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=("EVAX reproduction: GAN-vaccinated hardware attack detection "
                 "gating adaptive microarchitectural defenses (MICRO 2022)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
)
