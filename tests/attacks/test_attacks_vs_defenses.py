"""Always-on mitigations must block the attack classes they cover
(paper Section VIII-A threat models)."""

import pytest

from repro.attacks import (
    Fallout, LVI, Meltdown, MedusaCacheIndexing, MedusaShadowRepMov,
    MedusaUnaligned, SpectreBTB, SpectrePHT, SpectreRSB, SpectreSTL,
)
from repro.sim import SimConfig
from repro.sim.config import DefenseMode

SPECTRE_FAMILY = (SpectrePHT, SpectreBTB, SpectreRSB)
FAULT_FAMILY = (Meltdown, LVI, Fallout, MedusaCacheIndexing,
                MedusaUnaligned, MedusaShadowRepMov, SpectreSTL)


@pytest.mark.parametrize("cls", SPECTRE_FAMILY, ids=lambda c: c.name)
@pytest.mark.parametrize("mode", [DefenseMode.FENCE_SPECTRE,
                                  DefenseMode.INVISISPEC_SPECTRE])
def test_spectre_model_defenses_block_spectre(cls, mode):
    out = cls(seed=4).run(config=SimConfig(defense=mode))
    assert not out.leaked


@pytest.mark.parametrize("cls", FAULT_FAMILY, ids=lambda c: c.name)
@pytest.mark.parametrize("mode", [DefenseMode.FENCE_FUTURISTIC,
                                  DefenseMode.INVISISPEC_FUTURISTIC])
def test_futuristic_defenses_block_fault_attacks(cls, mode):
    out = cls(seed=4).run(config=SimConfig(defense=mode))
    assert not out.leaked


@pytest.mark.parametrize("cls", (Meltdown, LVI), ids=lambda c: c.name)
def test_spectre_model_fence_does_not_cover_fault_attacks(cls):
    """The paper's motivation for the Futuristic model: Spectre-only
    mitigations leave LVI/Meltdown-class attacks working."""
    out = cls(seed=4).run(config=SimConfig(defense=DefenseMode.FENCE_SPECTRE))
    assert out.leaked


def test_meltdown_blocked_on_invulnerable_hardware():
    out = Meltdown(seed=4).run(config=SimConfig(meltdown_vulnerable=False))
    assert not out.leaked


def test_stl_blocked_without_memory_speculation():
    out = SpectreSTL(seed=4).run(config=SimConfig(stl_speculation=False))
    assert not out.leaked
