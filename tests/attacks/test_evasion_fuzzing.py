"""Evasion transformations and automatic attack generation."""

import pytest

from repro.attacks import (
    EvasiveAttack, FlushReload, Meltdown, Osiris, SpectrePHT, Transynther,
    TRRespassFuzzer,
)


class TestEvasion:
    def test_evasive_attack_still_leaks(self):
        out = EvasiveAttack(Meltdown(seed=3), nop_rate=0.4,
                            prefetch_rate=0.15, seed=3).run()
        assert out.leaked

    def test_dilution_makes_programs_longer(self):
        base_prog, _ = Meltdown(seed=3).build()
        ev_prog, _ = EvasiveAttack(Meltdown(seed=3), nop_rate=0.5,
                                   seed=3).build()
        assert len(ev_prog) > len(base_prog) * 1.2

    def test_zero_rates_reproduce_base_length(self):
        base_prog, _ = SpectrePHT(seed=3).build()
        ev_prog, _ = EvasiveAttack(SpectrePHT(seed=3), nop_rate=0.0,
                                   prefetch_rate=0.0, seed=3).build()
        assert len(ev_prog) == len(base_prog)

    def test_category_preserved(self):
        ev = EvasiveAttack(Meltdown(seed=3), seed=3)
        assert ev.category == "meltdown"
        assert ev.name.startswith("meltdown")

    def test_camouflage_adds_actors(self):
        _, actors = EvasiveAttack(FlushReload(seed=3), camouflage_actors=2,
                                  seed=3).build()
        assert len(actors) >= 3      # victim + 2 camouflage

    def test_builder_emit_restored_after_build(self):
        from repro.sim.program import ProgramBuilder
        original = ProgramBuilder.emit
        EvasiveAttack(Meltdown(seed=3), seed=3).build()
        assert ProgramBuilder.emit is original

    def test_deterministic_for_seed(self):
        a, _ = EvasiveAttack(Meltdown(seed=3), nop_rate=0.4, seed=9).build()
        b, _ = EvasiveAttack(Meltdown(seed=3), nop_rate=0.4, seed=9).build()
        assert len(a) == len(b)
        assert [i.op for i in a.instructions] == [i.op for i in b.instructions]


class TestFuzzers:
    @pytest.mark.parametrize("fuzzer_cls", [Transynther, TRRespassFuzzer,
                                            Osiris])
    def test_generates_requested_count(self, fuzzer_cls):
        attacks = fuzzer_cls(seed=1).generate(5)
        assert len(attacks) == 5
        for a in attacks:
            program, _ = a.build()
            assert len(program) > 10

    def test_deterministic_generation(self):
        names_a = [a.name for a in Transynther(seed=2).generate(4)]
        names_b = [a.name for a in Transynther(seed=2).generate(4)]
        assert names_a == names_b

    def test_different_seeds_differ(self):
        names_a = [a.name for a in Transynther(seed=1).generate(6)]
        names_b = [a.name for a in Transynther(seed=2).generate(6)]
        assert names_a != names_b

    def test_majority_of_fuzzed_attacks_leak(self):
        attacks = Transynther(seed=3).generate(6)
        leaked = sum(int(a.run().leaked) for a in attacks)
        assert leaked >= 4

    def test_trrespass_variants_vary_sides(self):
        attacks = TRRespassFuzzer(seed=1).generate(8)
        sides = {len(a.base.aggressor_rows) for a in attacks}
        assert len(sides) >= 2
