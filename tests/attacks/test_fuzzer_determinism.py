"""Fuzzer determinism: same seed => bit-identical attack programs and
bit-identical HPC traces, across every fuzzer family.

The arena made fuzzed programs a *training input* — a fuzzer that
silently drew from module-level ``random`` state would make every
detector, checkpoint and gate verdict depend on import order.  These
tests pin the contract: all randomness flows from the explicitly seeded
``random.Random`` each fuzzer (and :class:`EvasiveAttack`) owns.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks import EvasiveAttack, Meltdown
from repro.attacks.fuzzing import ALL_FUZZERS, Osiris, Transynther, \
    TRRespassFuzzer
from repro.data.dataset import collect_source


def program_signature(attack):
    """The full instruction stream, field by field."""
    program, actors = attack.build()
    return ([(i.op, i.rd, i.rs1, i.rs2, i.imm, i.target)
             for i in program.instructions], len(actors))


def generation_signature(fuzzer, count=3):
    return [(a.name, program_signature(a)) for a in fuzzer.generate(count)]


@pytest.mark.parametrize("fuzzer_cls", ALL_FUZZERS)
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2 ** 16))
def test_same_seed_bit_identical_programs(fuzzer_cls, seed):
    assert generation_signature(fuzzer_cls(seed=seed)) \
        == generation_signature(fuzzer_cls(seed=seed))


@pytest.mark.parametrize("fuzzer_cls", ALL_FUZZERS)
def test_explicit_rng_injection_is_equivalent(fuzzer_cls):
    """An injected ``random.Random`` drives the exact same draws as a
    private generator in the same state."""
    a = generation_signature(fuzzer_cls(rng=random.Random(99)))
    b = generation_signature(fuzzer_cls(rng=random.Random(99)))
    assert a == b


@pytest.mark.parametrize("fuzzer_cls", ALL_FUZZERS)
def test_module_random_state_is_irrelevant(fuzzer_cls):
    """Reseeding the *module* RNG between generations must not change
    anything — the fuzzers never touch shared global state."""
    random.seed(123)
    a = generation_signature(fuzzer_cls(seed=7))
    random.seed(999)
    random.random()
    b = generation_signature(fuzzer_cls(seed=7))
    assert a == b


def test_evasive_attack_accepts_an_explicit_rng():
    base = Meltdown(seed=3)
    a = program_signature(EvasiveAttack(base, nop_rate=0.4,
                                        rng=random.Random(5)))
    b = program_signature(EvasiveAttack(Meltdown(seed=3), nop_rate=0.4,
                                        rng=random.Random(5)))
    assert a == b


@pytest.mark.parametrize("fuzzer_cls", ALL_FUZZERS)
def test_same_seed_bit_identical_hpc_traces(fuzzer_cls):
    """The whole pipeline round-trips: fuzz -> build -> simulate twice,
    and every sampled counter-delta window matches exactly."""
    def trace(seed):
        attack = fuzzer_cls(seed=seed).generate(1)[0]
        records, _, _ = collect_source(attack, label=1,
                                       sample_period=200)
        return [r.deltas for r in records]

    deltas_a = trace(11)
    deltas_b = trace(11)
    assert deltas_a == deltas_b
    assert len(deltas_a) > 0


def test_fuzzer_families_cover_the_three_tools():
    assert {f.name for f in (Transynther(), TRRespassFuzzer(), Osiris())} \
        == {"transynther", "trrespass-fuzzer", "osiris"}
