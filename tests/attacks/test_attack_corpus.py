"""Every attack category must genuinely leak on the undefended core."""

import pytest

from repro.attacks import ALL_ATTACKS, ATTACKS_BY_NAME, CATEGORIES


def test_corpus_covers_paper_categories():
    expected = {
        "spectre-pht", "spectre-btb", "spectre-rsb", "spectre-stl",
        "meltdown", "medusa-cache", "medusa-unaligned", "medusa-shadow",
        "lvi", "fallout", "rowhammer", "trrespass", "drama",
        "flush-reload", "flush-flush", "prime-probe",
        "smotherspectre", "branchscope", "microscope", "leaky-buddies",
        "rdrnd", "flushconflict",
    }
    assert set(CATEGORIES) == expected
    assert len(CATEGORIES) >= 19


def test_attack_names_unique():
    from repro.attacks import EXTENDED_ATTACKS
    assert len(ATTACKS_BY_NAME) == len(ALL_ATTACKS) + len(EXTENDED_ATTACKS)


@pytest.mark.parametrize("cls", ALL_ATTACKS, ids=lambda c: c.name)
def test_attack_leaks_on_undefended_core(cls):
    outcome = cls(seed=4).run()
    assert outcome.leaked, (outcome.expected_bits, outcome.recovered_bits)
    assert outcome.run.halt_reason in ("halt", "fault:priv", "fault:assist")


@pytest.mark.parametrize("cls", ALL_ATTACKS, ids=lambda c: c.name)
def test_attack_is_deterministic(cls):
    a = cls(seed=5).run()
    b = cls(seed=5).run()
    assert a.recovered_bits == b.recovered_bits
    assert a.run.cycles == b.run.cycles


def test_different_seeds_give_different_secrets():
    secrets = {tuple(cls(seed=s).secret_bits)
               for cls in ALL_ATTACKS[:1] for s in range(1, 9)}
    assert len(secrets) > 3


def test_outcome_metrics():
    out = ALL_ATTACKS[0](seed=3).run()
    assert out.success_rate == 1.0
    assert out.balanced_accuracy == 1.0
    assert out.name == ALL_ATTACKS[0].name
    assert len(out.run.samples) >= 1
