"""DRAM-attack specifics and channel mechanics."""

from repro.attacks import DRAMA, Rowhammer, TRRespass
from repro.sim import SimConfig


def test_rowhammer_causes_bitflips():
    out = Rowhammer(seed=1).run()
    assert out.leaked
    assert out.run.counters["dram.bitflips"] >= 1
    assert out.run.counters["dram.activations"] > 400


def test_rowhammer_fails_with_high_threshold():
    """A resistant DRAM (very high flip threshold) defeats the hammer."""
    out = Rowhammer(seed=1).run(config=SimConfig(rowhammer_threshold=100_000))
    assert not out.leaked
    assert out.run.counters["dram.bitflips"] == 0


def test_rowhammer_fails_when_corruption_disabled():
    out = Rowhammer(seed=1).run(config=SimConfig(rowhammer_enabled=False))
    assert not out.leaked


def test_trrespass_uses_more_aggressors():
    rh = Rowhammer(seed=1)
    trr = TRRespass(seed=1)
    assert len(trr.aggressor_rows) > len(rh.aggressor_rows)
    out = trr.run()
    assert out.leaked


def test_drama_needs_its_transmitter():
    """Without the co-resident row-opening victim the channel reads
    nothing meaningful."""
    attack = DRAMA(seed=3)
    program, actors = attack.build()
    assert actors, "DRAMA requires a transmitter actor"
    from repro.sim import Machine
    machine = Machine(program, SimConfig(), actors=[])     # no victim
    result = machine.run(max_cycles=attack.max_cycles())
    recovered = attack.recover(machine, result)
    from repro.attacks.base import bits_balanced_accuracy
    assert bits_balanced_accuracy(attack.secret_bits, recovered) < 0.75
