"""Extension attacks (Evict+Time, ZombieLoad) beyond the paper corpus."""

import pytest

from repro.attacks import (
    ALL_ATTACKS, ATTACKS_BY_NAME, EXTENDED_ATTACKS, EvictTime, ZombieLoad,
)
from repro.sim import SimConfig
from repro.sim.config import DefenseMode


def test_extended_attacks_not_in_paper_corpus():
    assert set(EXTENDED_ATTACKS) & set(ALL_ATTACKS) == set()
    assert "evict-time" in ATTACKS_BY_NAME
    assert "zombieload" in ATTACKS_BY_NAME


@pytest.mark.parametrize("cls", EXTENDED_ATTACKS, ids=lambda c: c.name)
def test_extension_attacks_leak(cls):
    for seed in (2, 5):
        outcome = cls(seed=seed).run()
        assert outcome.leaked, (seed, outcome.recovered_bits)


def test_zombieload_blocked_by_futuristic_defenses():
    for mode in (DefenseMode.FENCE_FUTURISTIC,
                 DefenseMode.INVISISPEC_FUTURISTIC):
        out = ZombieLoad(seed=2).run(config=SimConfig(defense=mode))
        assert not out.leaked


def test_zombieload_has_fill_pressure_footprint():
    out = ZombieLoad(seed=2).run()
    base_counters = ATTACKS_BY_NAME["fallout"](seed=2).run().run.counters
    assert out.run.counters["dcache.mshrMisses"] > \
        base_counters["dcache.mshrMisses"]


def test_evict_time_needs_the_eviction():
    """Without pressure on the victim's set the timing gap disappears —
    verified by measuring the victim call with a hot table."""
    attack = EvictTime(seed=2)
    outcome = attack.run()
    assert outcome.leaked
    # conflict-based footprint: eviction pressure in the leak loop; the
    # only flushes are the shared calibration preamble's
    assert outcome.run.counters["dcache.replacements"] >= 20
    assert outcome.run.counters["dcache.flushes"] <= 26


def test_detector_flags_extension_attacks(vaccinated):
    """Zero-day check: a detector trained only on the paper corpus flags
    the extension attacks it never saw."""
    from repro.data import collect_source
    for cls in EXTENDED_ATTACKS:
        records, _, _ = collect_source(cls(seed=6), label=1,
                                       sample_period=100)
        flagged = sum(vaccinated.detector.classify_window(r.deltas)
                      for r in records)
        assert flagged >= max(1, len(records) // 3), cls.name


def test_foreshadow_needs_kernel_activity():
    """Foreshadow's transmitter is the kernel's own caching of the secret
    line; the attack program itself never prefetches kernel memory."""
    from repro.attacks import Foreshadow
    attack = Foreshadow(seed=3)
    program, actors = attack.build()
    assert actors, "Foreshadow relies on a kernel-side actor"
    outcome = attack.run()
    assert outcome.leaked
    assert outcome.run.counters["dcache.prefetches"] == 0
    assert outcome.run.counters["commit.traps"] >= len(attack.secret_bits)


def test_spoiler_uses_memory_order_violations():
    from repro.attacks import Spoiler
    outcome = Spoiler(seed=3).run()
    assert outcome.leaked
    ones = sum(outcome.expected_bits)
    assert outcome.run.counters["iew.memOrderViolationEvents"] >= ones
