"""SIGKILL-mid-write crash consistency for CheckpointStore and CellCache.

The durable-write contract (``docs/runtime.md``): a kill at *any*
instant leaves either the old state or the new state under every final
name — never a torn file — and a resumed run self-heals around any
debris (stray temp files, orphan shards, entries missing their manifest
record).

Two attack styles:

* **surgical** — a child process dies (``os._exit``, the unwindless
  analogue of SIGKILL) at the exact worst instants: between temp-write
  and rename, and between the shard rename and the manifest update;
* **real** — a child is SIGKILLed from outside at an arbitrary point in
  a write loop, and the survivor must find only verifiable state.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, CellCache
from repro.runtime import CheckpointStore

REPO = Path(__file__).resolve().parents[1]


def _run_child(code, **env_extra):
    """Run ``code`` in a child interpreter with repro importable."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    env.update(env_extra)
    return subprocess.run([sys.executable, "-c", textwrap.dedent(code)],
                          env=env, capture_output=True, text=True,
                          timeout=60)


def _a_cell():
    spec = CampaignSpec(workloads=("stream",), defenses=("none",),
                        periods=(100,), seeds=(0,), scale=1,
                        max_cycles=2000)
    return spec.expand()[0]


# ---------------------------------------------------------------------------
# surgical kills: die at the exact worst instant


KILL_BETWEEN_TMP_AND_RENAME = """
    import os
    import repro.runtime.atomic as atomic

    real_replace = os.replace
    def killed_replace(src, dst):
        os._exit(9)          # SIGKILL analogue: no unwinding, no cleanup
    atomic.os.replace = killed_replace

    from repro.runtime import CheckpointStore
    store = CheckpointStore({ckdir!r})
    atomic.os.replace = real_replace
    store.open(context={{"build": 1}})          # manifest must still work
    atomic.os.replace = killed_replace
    store.put("src-a", {{"records": [1, 2, 3]}})
"""


def test_checkpoint_kill_between_tmp_write_and_rename(tmp_path):
    ckdir = str(tmp_path / "shards")
    proc = _run_child(KILL_BETWEEN_TMP_AND_RENAME.format(ckdir=ckdir))
    assert proc.returncode == 9, proc.stderr

    # the kill hit after the temp file was written but before the
    # rename: debris may exist, but nothing may sit under a final name
    names = os.listdir(ckdir)
    assert not [n for n in names if n.endswith(".shard.json")], names
    assert [n for n in names if ".tmp." in n], \
        "expected the orphan temp file the kill left behind"

    # resume sees a consistent (empty) build and completes it cleanly
    store = CheckpointStore(ckdir)
    store.open(context={"build": 1}, resume=True)
    assert store.valid_keys() == []
    store.put("src-a", {"records": [1, 2, 3]})
    assert store.get("src-a") == {"records": [1, 2, 3]}


KILL_BETWEEN_SHARD_AND_MANIFEST = """
    import os
    import repro.runtime.atomic as atomic

    from repro.runtime import CheckpointStore
    store = CheckpointStore({ckdir!r})
    store.open(context={{"build": 1}})
    store.put("src-a", {{"records": [1]}})

    real_replace = os.replace
    def kill_on_manifest(src, dst):
        real_replace(src, dst)
        if dst.endswith("manifest.json"):
            os._exit(9)
    atomic.os.replace = kill_on_manifest
    store.put("src-b", {{"records": [2]}})      # dies updating manifest
"""


def test_checkpoint_kill_between_shard_rename_and_manifest(tmp_path):
    ckdir = str(tmp_path / "shards")
    proc = _run_child(KILL_BETWEEN_SHARD_AND_MANIFEST.format(ckdir=ckdir))
    assert proc.returncode == 9, proc.stderr

    # src-b's shard landed but its manifest record did not: wait — the
    # kill fired *after* the manifest rename, so the record is durable;
    # either way the invariant is the same: every manifest entry must
    # verify, and resume must not lose src-a
    store = CheckpointStore(ckdir)
    store.open(context={"build": 1}, resume=True)
    valid = store.valid_keys()
    assert "src-a" in valid
    for key in valid:
        store.get(key)                          # checksum-verified
    # the interrupted source can always be re-put on resume
    store.put("src-b", {"records": [2]})
    assert store.get("src-b") == {"records": [2]}


CELL_KILL = """
    import os
    import repro.runtime.atomic as atomic

    def killed_replace(src, dst):
        os._exit(9)
    atomic.os.replace = killed_replace

    from repro.campaign import CampaignSpec, CellCache
    spec = CampaignSpec(workloads=("stream",), defenses=("none",),
                        periods=(100,), seeds=(0,), scale=1,
                        max_cycles=2000)
    cell = spec.expand()[0]
    CellCache({cachedir!r}).put(cell, {{"cycles": 1, "committed": 1,
                                        "ipc": 1.0, "windows": 1,
                                        "counters_sha256": "ab" * 32}})
"""


def test_cell_cache_kill_between_tmp_write_and_rename(tmp_path):
    cachedir = str(tmp_path / "cache")
    proc = _run_child(CELL_KILL.format(cachedir=cachedir))
    assert proc.returncode == 9, proc.stderr

    cell = _a_cell()
    names = os.listdir(cachedir)
    assert not [n for n in names if n.endswith(".cell.json")], names
    assert [n for n in names if ".tmp." in n], \
        "expected the orphan temp file the kill left behind"

    # the half-written cell is simply absent — a resumed campaign
    # re-executes it; debris never masquerades as a cache entry
    cache = CellCache(cachedir)
    assert cache.get(cell.fingerprint) is None
    result = {"cycles": 7, "committed": 5, "ipc": 0.71, "windows": 2,
              "counters_sha256": "cd" * 32}
    cache.put(cell, result)
    assert cache.get(cell.fingerprint) == result


# ---------------------------------------------------------------------------
# real SIGKILL at an arbitrary instant


WRITE_LOOP = """
    import sys
    from repro.runtime import CheckpointStore
    store = CheckpointStore({ckdir!r})
    store.open(context={{"build": 1}})
    print("ready", flush=True)
    for i in range(10_000):
        store.put(f"src-{{i:05d}}", {{"records": list(range(i % 7))}})
"""


@pytest.mark.slow
def test_checkpoint_survives_external_sigkill(tmp_path):
    ckdir = str(tmp_path / "shards")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-c", textwrap.dedent(WRITE_LOOP.format(
            ckdir=ckdir))],
        env=env, stdout=subprocess.PIPE, text=True)
    try:
        assert proc.stdout.readline().strip() == "ready"
        time.sleep(0.35)                 # let an arbitrary prefix land
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:          # pragma: no cover
            proc.kill()
            proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL

    store = CheckpointStore(ckdir)
    store.open(context={"build": 1}, resume=True)
    valid = store.valid_keys()
    assert valid, "kill landed before any shard became durable"
    for key in valid:
        payload = store.get(key)         # every surviving entry verifies
        assert payload["records"] == list(range(int(key[4:]) % 7))
    # and the build completes from where it stopped
    store.put("src-resumed", {"records": [1, 2]})
    assert store.get("src-resumed") == {"records": [1, 2]}


def test_manifest_is_never_torn_by_debris(tmp_path):
    """Stray temp files and orphan shards (rename landed, manifest
    didn't) are invisible to a resumed store."""
    ckdir = tmp_path / "shards"
    store = CheckpointStore(str(ckdir))
    store.open(context={"build": 1})
    store.put("src-a", {"records": [1]})

    (ckdir / "manifest.json.tmp.debris").write_bytes(b'{"version":')
    (ckdir / "orphan.shard.json").write_bytes(
        json.dumps({"records": [9]}).encode())

    resumed = CheckpointStore(str(ckdir))
    resumed.open(context={"build": 1}, resume=True)
    assert resumed.valid_keys() == ["src-a"]
    assert resumed.get("src-a") == {"records": [1]}
