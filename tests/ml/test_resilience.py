"""TrainingGuard, bit-exact state snapshots and TrainingCheckpointer."""

import json

import numpy as np
import pytest

from repro.ml import MLP
from repro.ml.optim import SGD
from repro.ml.resilience import (
    GRAD_SPIKE, LOSS_DIVERGENCE, NAN, TrainingCheckpointer,
    TrainingDivergedError, TrainingGuard, mlp_state, rng_state,
    set_mlp_state, set_rng_state,
)
from repro.runtime import CheckpointError


def _net(seed=0, optimizer=None):
    kwargs = {"optimizer": optimizer} if optimizer is not None else {}
    return MLP([4, 6, 1], ["relu", "sigmoid"], seed=seed, **kwargs)


def _batches(seed=3, n=8):
    rng = np.random.default_rng(seed)
    return [(rng.random((16, 4)), rng.integers(0, 2, (16, 1)).astype(float))
            for _ in range(n)]


def _train(net, batches):
    for x, y in batches:
        net.train_batch(x, y)


def _assert_params_equal(a, b):
    for pa, pb in zip(a.parameters, b.parameters):
        assert np.array_equal(pa, pb)


# -- state round-trips -------------------------------------------------------

@pytest.mark.parametrize("optimizer", [None, SGD(lr=0.05, momentum=0.9)],
                         ids=["adam", "sgd-momentum"])
def test_mlp_state_roundtrip_is_bit_exact(optimizer):
    """Snapshot -> JSON -> restore, then further identical training must
    track a never-snapshotted twin exactly (params AND optimizer state)."""
    batches = _batches()
    net = _net(optimizer=optimizer)
    twin = _net(optimizer=None if optimizer is None
                else SGD(lr=0.05, momentum=0.9))
    _train(net, batches[:4])
    _train(twin, batches[:4])
    saved = json.loads(json.dumps(mlp_state(net)))
    _train(net, batches[4:])             # walk the state away...
    set_mlp_state(net, saved)            # ...and back
    _assert_params_equal(net, twin)
    _train(net, batches[4:])
    _train(twin, batches[4:])
    _assert_params_equal(net, twin)


def test_mlp_state_restore_rejects_shape_mismatch():
    saved = mlp_state(_net())
    other = MLP([5, 6, 1], ["relu", "sigmoid"], seed=0)
    with pytest.raises(ValueError):
        set_mlp_state(other, saved)
    with pytest.raises(ValueError):
        set_mlp_state(MLP([4, 1], ["sigmoid"], seed=0), saved)


def test_rng_state_roundtrip_is_bit_exact():
    rng = np.random.default_rng(11)
    rng.normal(size=100)
    saved = json.loads(json.dumps(rng_state(rng)))
    first = rng.normal(size=16)
    set_rng_state(rng, saved)
    assert np.array_equal(rng.normal(size=16), first)


# -- the guard ---------------------------------------------------------------

def test_guard_healthy_steps_are_untouched():
    net = _net()
    guard = TrainingGuard().watch(stage="t", net=net)
    guard.snapshot_if_due(0)
    _train(net, _batches(n=2))
    assert guard.inspect(0, loss=0.5) is None
    assert guard.inspect(1, loss=0.6) is None
    assert guard.trips == []
    assert guard.failure_counts() == {NAN: 0, GRAD_SPIKE: 0,
                                      LOSS_DIVERGENCE: 0}


def test_guard_raise_policy_classifies_nan():
    net = _net()
    guard = TrainingGuard(policy="raise").watch(stage="fit", net=net)
    net.parameters[0].flat[0] = float("nan")
    with pytest.raises(TrainingDivergedError) as err:
        guard.inspect(7, loss=0.5)
    assert err.value.kind == NAN
    assert err.value.step == 7
    assert err.value.stage == "fit"


def test_guard_nonfinite_loss_trips_nan():
    net = _net()
    guard = TrainingGuard(policy="raise").watch(net=net)
    with pytest.raises(TrainingDivergedError) as err:
        guard.inspect(0, loss=float("inf"))
    assert err.value.kind == NAN


def test_guard_clip_policy_repairs_in_place():
    net = _net()
    guard = TrainingGuard(policy="clip", clip_limit=10.0).watch(net=net)
    net.parameters[0].flat[0] = float("nan")
    net.parameters[0].flat[1] = 1e9
    assert guard.inspect(3, loss=0.5) is None     # repaired, no rewind
    for p in net.parameters:
        assert np.isfinite(p).all()
        assert np.abs(p).max() <= 10.0
    assert guard.failure_counts()[NAN] == 1


def test_guard_grad_spike_detection():
    net = _net()
    guard = TrainingGuard(policy="raise", grad_limit=1e-12).watch(net=net)
    _train(net, _batches(n=1))           # any real gradient exceeds 1e-12
    with pytest.raises(TrainingDivergedError) as err:
        guard.inspect(0, loss=0.5)
    assert err.value.kind == GRAD_SPIKE


def test_guard_loss_divergence_needs_established_ema():
    net = _net()
    guard = TrainingGuard(policy="raise", loss_window=4,
                          loss_factor=3.0).watch(net=net)
    assert guard.inspect(0, loss=90.0) is None    # no EMA yet: tolerated
    for step in range(1, 7):
        assert guard.inspect(step, loss=1.0) is None
    with pytest.raises(TrainingDivergedError) as err:
        guard.inspect(7, loss=50.0)
    assert err.value.kind == LOSS_DIVERGENCE


def test_guard_rollback_restores_snapshot_and_rewinds():
    net = _net()
    rng = np.random.default_rng(1)
    guard = TrainingGuard(snapshot_every=10).watch(net=net)
    guard.attach_rng(rng)
    guard.snapshot_if_due(0)
    at_snapshot = [p.copy() for p in net.parameters]
    rng_before = json.dumps(rng_state(rng))
    _train(net, _batches(n=3))
    net.parameters[0].flat[0] = float("nan")
    assert guard.inspect(5, loss=0.5) == 0        # rewound to the snapshot
    for live, saved in zip(net.parameters, at_snapshot):
        assert np.array_equal(live, saved)
    # the RNG was restored then perturbed by one draw (the reseeded step)
    assert json.dumps(rng_state(rng)) != rng_before
    assert guard.failure_counts()[NAN] == 1


def test_guard_rollback_budget_exhausts_into_typed_error():
    net = _net()
    guard = TrainingGuard(max_rollbacks=2, snapshot_every=100).watch(net=net)
    guard.snapshot_if_due(0)
    for _ in range(2):
        net.parameters[0].flat[0] = float("nan")
        assert guard.inspect(1, loss=0.5) == 0
    net.parameters[0].flat[0] = float("nan")
    with pytest.raises(TrainingDivergedError) as err:
        guard.inspect(1, loss=0.5)
    assert "exhausted" in str(err.value)
    assert err.value.kind == NAN


def test_guard_rollback_without_snapshot_falls_back_to_raise():
    net = _net()
    guard = TrainingGuard(policy="rollback").watch(net=net)
    net.parameters[0].flat[0] = float("nan")
    with pytest.raises(TrainingDivergedError):
        guard.inspect(0, loss=0.5)


def test_guard_progress_resets_rollback_budget():
    net = _net()
    guard = TrainingGuard(max_rollbacks=1, snapshot_every=1).watch(net=net)
    for step in range(4):                 # a fresh snapshot every step...
        guard.snapshot_if_due(step)
        net.parameters[0].flat[0] = float("nan")
        assert guard.inspect(step, loss=0.5) == step   # ...resets the budget
    assert guard.failure_counts()[NAN] == 4


def test_guard_rejects_unknown_policy():
    with pytest.raises(ValueError):
        TrainingGuard(policy="ignore")


# -- durable checkpoints -----------------------------------------------------

def test_checkpointer_roundtrip_is_bit_exact(tmp_path):
    net = _net(seed=4)
    rng = np.random.default_rng(9)
    _train(net, _batches(n=3))
    rng.normal(size=7)
    ck = TrainingCheckpointer(str(tmp_path / "ck"), {"cfg": 1}, interval=5)
    assert not ck.due(0) and not ck.due(3) and ck.due(5) and ck.due(10)
    ck.save("gan", 5, {"net": net}, rngs={"r": rng},
            extra={"style_history": [[0, 0.5]]})

    twin, twin_rng = _net(seed=999), np.random.default_rng(0)
    resumed = TrainingCheckpointer(str(tmp_path / "ck"), {"cfg": 1},
                                   interval=5, resume=True)
    payload = resumed.restore("gan", {"net": twin}, rngs={"r": twin_rng})
    assert payload["iteration"] == 5
    assert payload["extra"]["style_history"] == [[0, 0.5]]
    _assert_params_equal(net, twin)
    assert np.array_equal(rng.normal(size=8), twin_rng.normal(size=8))


def test_checkpointer_without_resume_ignores_stored_state(tmp_path):
    ck = TrainingCheckpointer(str(tmp_path / "ck"), {"cfg": 1}, interval=5)
    ck.save("gan", 5, {"net": _net()})
    fresh = TrainingCheckpointer(str(tmp_path / "ck"), {"cfg": 1},
                                 interval=5, resume=False)
    assert fresh.load("gan") is None
    assert fresh.restore("gan", {"net": _net()}) is None


def test_checkpointer_context_mismatch_refuses_resume(tmp_path):
    ck = TrainingCheckpointer(str(tmp_path / "ck"), {"seed": 0}, interval=5)
    ck.save("gan", 5, {"net": _net()})
    with pytest.raises(CheckpointError):
        TrainingCheckpointer(str(tmp_path / "ck"), {"seed": 1},
                             interval=5, resume=True)


def test_checkpointer_missing_stage_returns_none(tmp_path):
    ck = TrainingCheckpointer(str(tmp_path / "ck"), {"cfg": 1}, interval=5)
    ck.save("gan", 5, {"net": _net()})
    resumed = TrainingCheckpointer(str(tmp_path / "ck"), {"cfg": 1},
                                   interval=5, resume=True)
    assert resumed.load("other-stage") is None
