"""Dense layers: forward values, analytic-vs-numeric gradients."""

import numpy as np
import pytest

from repro.ml.layers import ACTIVATIONS, Dense


def test_unknown_activation_rejected():
    with pytest.raises(ValueError):
        Dense(2, 3, "gelu", np.random.default_rng(0))


def test_forward_shape():
    layer = Dense(4, 3, "relu", np.random.default_rng(0))
    out = layer.forward(np.zeros((5, 4)))
    assert out.shape == (5, 3)


def test_linear_layer_is_affine():
    layer = Dense(2, 1, "linear", np.random.default_rng(0))
    layer.weights[:] = [[2.0], [3.0]]
    layer.bias[:] = [1.0]
    out = layer.forward(np.array([[1.0, 1.0], [0.0, 2.0]]))
    assert np.allclose(out[:, 0], [6.0, 7.0])


def test_relu_clamps_negative():
    layer = Dense(1, 1, "relu", np.random.default_rng(0))
    layer.weights[:] = [[1.0]]
    layer.bias[:] = [0.0]
    out = layer.forward(np.array([[-5.0], [3.0]]))
    assert np.allclose(out[:, 0], [0.0, 3.0])


def test_sigmoid_bounded_and_stable():
    f, _ = ACTIVATIONS["sigmoid"]
    x = np.array([-1000.0, -1.0, 0.0, 1.0, 1000.0])
    y = f(x)
    assert np.all((y >= 0) & (y <= 1))
    assert y[2] == pytest.approx(0.5)
    assert np.isfinite(y).all()


# softmax is excluded: its layer gradient is a pass-through placeholder
# for the joint softmax+cross-entropy gradient (see CategoricalCrossEntropy)
@pytest.mark.parametrize("activation",
                         [a for a in ACTIVATIONS if a != "softmax"])
def test_gradients_match_numeric(activation):
    rng = np.random.default_rng(1)
    layer = Dense(3, 2, activation, rng)
    x = rng.normal(size=(4, 3))
    grad_out = rng.normal(size=(4, 2))

    layer.forward(x, train=True)
    grad_in = layer.backward(grad_out)

    eps = 1e-6

    def loss(weights, bias, inputs):
        z = inputs @ weights + bias
        y = ACTIVATIONS[activation][0](z)
        return float(np.sum(y * grad_out))

    # weight gradient check (a few entries)
    for i, j in [(0, 0), (2, 1), (1, 0)]:
        w_plus = layer.weights.copy()
        w_plus[i, j] += eps
        w_minus = layer.weights.copy()
        w_minus[i, j] -= eps
        numeric = (loss(w_plus, layer.bias, x) -
                   loss(w_minus, layer.bias, x)) / (2 * eps)
        assert layer.grad_weights[i, j] == pytest.approx(numeric, rel=1e-4,
                                                         abs=1e-6)
    # input gradient check
    for i, j in [(0, 0), (3, 2)]:
        x_plus = x.copy()
        x_plus[i, j] += eps
        x_minus = x.copy()
        x_minus[i, j] -= eps
        numeric = (loss(layer.weights, layer.bias, x_plus) -
                   loss(layer.weights, layer.bias, x_minus)) / (2 * eps)
        assert grad_in[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)


def test_backward_before_forward_rejected():
    layer = Dense(2, 2, "relu", np.random.default_rng(0))
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 2)))


def test_inference_forward_does_not_cache():
    layer = Dense(2, 2, "relu", np.random.default_rng(0))
    layer.forward(np.zeros((1, 2)), train=False)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 2)))


def test_softmax_ce_joint_gradient_numeric():
    """The joint softmax+cross-entropy gradient (pred - target)/n matches
    a numeric derivative of CE(softmax(z)) w.r.t. z."""
    import numpy as np
    from repro.ml import MLP, CategoricalCrossEntropy
    rng = np.random.default_rng(0)
    net = MLP([3, 4], ["softmax"], loss=CategoricalCrossEntropy(), seed=0)
    x = rng.normal(size=(2, 3))
    target = np.eye(4)[[1, 3]]
    layer = net.layers[0]
    pred = net.forward(x, train=True)
    grad_out = net.loss.gradient(pred, target)
    net.backward(grad_out)
    analytic = layer.grad_weights.copy()

    eps = 1e-6

    def loss_at(weights):
        z = x @ weights + layer.bias
        s = np.exp(z - z.max(axis=1, keepdims=True))
        p = s / s.sum(axis=1, keepdims=True)
        return float(-np.mean(np.sum(target * np.log(p + 1e-12), axis=1)))

    for i, j in ((0, 0), (2, 3), (1, 2)):
        wp = layer.weights.copy(); wp[i, j] += eps
        wm = layer.weights.copy(); wm[i, j] -= eps
        numeric = (loss_at(wp) - loss_at(wm)) / (2 * eps)
        assert abs(analytic[i, j] - numeric) < 1e-5
