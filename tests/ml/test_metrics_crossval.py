"""Classification metrics and cross-validation splitters."""

import numpy as np
import pytest

from repro.ml import (
    accuracy, auc, confusion_counts, f1_score, false_positive_rate,
    kfold_indices, leave_one_group_out, precision, recall, roc_curve,
    true_positive_rate,
)


class TestConfusion:
    def test_counts(self):
        labels = [1, 1, 0, 0, 1]
        preds = [1, 0, 0, 1, 1]
        assert confusion_counts(labels, preds) == (2, 1, 1, 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion_counts([1, 0], [1])

    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [1, 0, 0, 0]) == 0.75

    def test_precision_recall_f1(self):
        labels = [1, 1, 0, 0]
        preds = [1, 0, 1, 0]
        assert precision(labels, preds) == 0.5
        assert recall(labels, preds) == 0.5
        assert f1_score(labels, preds) == 0.5

    def test_rates(self):
        labels = [1, 1, 0, 0]
        preds = [1, 1, 1, 0]
        assert true_positive_rate(labels, preds) == 1.0
        assert false_positive_rate(labels, preds) == 0.5

    def test_degenerate_empty_classes(self):
        assert precision([0, 0], [0, 0]) == 0.0
        assert recall([0, 0], [0, 0]) == 0.0
        assert f1_score([0], [0]) == 0.0


class TestROC:
    def test_perfect_scores_auc_one(self):
        labels = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert auc(labels, scores) == pytest.approx(1.0)

    def test_inverted_scores_auc_zero(self):
        labels = [1, 1, 0, 0]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert auc(labels, scores) == pytest.approx(0.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_curve_anchored(self):
        fpr, tpr = roc_curve([0, 1], [0.3, 0.7])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 500)
        scores = rng.random(500)
        fpr, tpr = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_tied_scores_collapsed(self):
        labels = [0, 1, 0, 1]
        scores = [0.5, 0.5, 0.5, 0.5]
        fpr, tpr = roc_curve(labels, scores)
        assert len(fpr) == 2          # anchor + one point


class TestKFold:
    def test_partitions_cover_everything_once(self):
        seen = []
        for train, test in kfold_indices(20, 4, seed=0):
            assert set(train) & set(test) == set()
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(20))

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            list(kfold_indices(5, 1))
        with pytest.raises(ValueError):
            list(kfold_indices(5, 6))

    def test_deterministic_for_seed(self):
        a = [t.tolist() for _, t in kfold_indices(10, 2, seed=7)]
        b = [t.tolist() for _, t in kfold_indices(10, 2, seed=7)]
        assert a == b


class TestLeaveOneGroupOut:
    def test_each_group_held_out_exactly_once(self):
        groups = ["a", "b", "a", "c", "b"]
        folds = list(leave_one_group_out(groups))
        held = [g for g, _, _ in folds]
        assert held == ["a", "b", "c"]
        for g, train, test in folds:
            assert all(groups[i] == g for i in test)
            assert all(groups[i] != g for i in train)
            assert len(train) + len(test) == len(groups)
