"""The external-gradient training path the GAN generator uses."""

import numpy as np
import pytest

from repro.ml import MLP


def test_train_batch_with_grad_moves_output_against_gradient():
    net = MLP([3, 8, 2], ["tanh", "linear"], seed=0)
    x = np.ones((4, 3))
    before = net.predict(x).copy()
    # gradient of a loss that wants output[:, 0] smaller
    grad = np.zeros((4, 2))
    grad[:, 0] = 1.0
    for _ in range(50):
        net.train_batch_with_grad(x, grad)
    after = net.predict(x)
    assert after[:, 0].mean() < before[:, 0].mean()
    # the untouched output dimension moved much less
    assert abs(after[:, 1].mean() - before[:, 1].mean()) < \
        abs(after[:, 0].mean() - before[:, 0].mean())


def test_train_batch_with_grad_returns_input_gradient():
    net = MLP([3, 2], ["linear"], seed=0)
    grad_in = net.train_batch_with_grad(np.ones((1, 3)), np.ones((1, 2)))
    assert grad_in.shape == (1, 3)
    assert np.isfinite(grad_in).all()


def test_backward_chains_through_multiple_layers():
    net = MLP([4, 5, 3, 1], ["relu", "tanh", "sigmoid"], seed=1)
    x = np.random.default_rng(0).normal(size=(6, 4))
    pred = net.forward(x, train=True)
    grad_in = net.backward(np.ones_like(pred))
    assert grad_in.shape == x.shape
