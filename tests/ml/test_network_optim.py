"""MLP training, losses and optimizers."""

import numpy as np
import pytest

from repro.ml import MLP, Adam, BinaryCrossEntropy, MeanSquaredError, SGD


def test_mlp_shape_validation():
    with pytest.raises(ValueError):
        MLP([2, 3, 1], ["relu"])


def test_mlp_learns_linearly_separable():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 2))
    y = (X[:, 0] + X[:, 1] > 0).astype(float)
    net = MLP([2, 1], ["sigmoid"], seed=0, optimizer=Adam(lr=0.02))
    for _ in range(60):
        for i in range(0, 200, 32):
            net.train_batch(X[i:i + 32], y[i:i + 32])
    acc = (net.predict_label(X) == y).mean()
    assert acc > 0.93


def test_mlp_learns_xor_with_hidden_layer():
    X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
    y = np.array([0, 1, 1, 0], dtype=float)
    net = MLP([2, 8, 1], ["tanh", "sigmoid"], seed=3)
    for _ in range(1500):
        net.train_batch(X, y)
    assert (net.predict_label(X) == y).all()


def test_loss_decreases_during_training():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(100, 4))
    y = (X.sum(axis=1) > 0).astype(float)
    net = MLP([4, 1], ["sigmoid"], seed=0)
    first = net.train_batch(X, y)
    for _ in range(60):
        last = net.train_batch(X, y)
    assert last < first


def test_forward_accepts_single_vector():
    net = MLP([3, 1], ["sigmoid"], seed=0)
    out = net.predict(np.zeros(3))
    assert out.shape == (1, 1)


def test_clone_architecture_matches_but_differs_in_weights():
    net = MLP([4, 6, 1], ["relu", "sigmoid"], seed=0)
    clone = net.clone_architecture(seed=99)
    assert [l.out_dim for l in clone.layers] == [6, 1]
    assert clone.num_parameters == net.num_parameters
    assert not np.allclose(clone.layers[0].weights, net.layers[0].weights)


def test_num_parameters():
    net = MLP([3, 2, 1], ["relu", "sigmoid"])
    assert net.num_parameters == (3 * 2 + 2) + (2 * 1 + 1)


class TestLosses:
    def test_bce_perfect_prediction_near_zero(self):
        loss = BinaryCrossEntropy()
        pred = np.array([[0.999], [0.001]])
        target = np.array([[1.0], [0.0]])
        assert loss.value(pred, target) < 0.01

    def test_bce_wrong_prediction_large(self):
        loss = BinaryCrossEntropy()
        pred = np.array([[0.01]])
        target = np.array([[1.0]])
        assert loss.value(pred, target) > 2.0

    def test_bce_gradient_sign(self):
        loss = BinaryCrossEntropy()
        pred = np.array([[0.3]])
        assert loss.gradient(pred, np.array([[1.0]]))[0, 0] < 0
        assert loss.gradient(pred, np.array([[0.0]]))[0, 0] > 0

    def test_mse_value_and_gradient(self):
        loss = MeanSquaredError()
        pred = np.array([[2.0], [0.0]])
        target = np.array([[1.0], [0.0]])
        assert loss.value(pred, target) == pytest.approx(0.5)
        grad = loss.gradient(pred, target)
        assert grad[0, 0] == pytest.approx(1.0)
        assert grad[1, 0] == pytest.approx(0.0)


class TestOptimizers:
    def _minimize(self, optimizer, steps=300):
        # minimize (w - 3)^2 via its gradient 2(w - 3)
        w = np.array([0.0])
        for _ in range(steps):
            grad = 2 * (w - 3.0)
            optimizer.step([w], [grad])
        return w[0]

    def test_sgd_converges(self):
        assert self._minimize(SGD(lr=0.05)) == pytest.approx(3.0, abs=1e-3)

    def test_sgd_momentum_converges(self):
        assert self._minimize(SGD(lr=0.02, momentum=0.9)) == \
            pytest.approx(3.0, abs=1e-2)

    def test_adam_converges(self):
        assert self._minimize(Adam(lr=0.1), steps=500) == \
            pytest.approx(3.0, abs=1e-2)

    def test_adam_handles_multiple_params_independently(self):
        opt = Adam(lr=0.1)
        a = np.array([0.0])
        c = np.array([10.0])
        for _ in range(500):
            opt.step([a, c], [2 * (a - 1.0), 2 * (c - 5.0)])
        assert a[0] == pytest.approx(1.0, abs=1e-2)
        assert c[0] == pytest.approx(5.0, abs=1e-2)
