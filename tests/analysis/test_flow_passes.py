"""Whole-program flow-verifier tests: project-index resolution, the
four passes over fixture trees, baseline semantics, reporter schema,
CLI exit codes, the shared parse cache, and the self-check gate.

Fixture trees are written under ``tmp_path`` with repo-shaped relative
paths and analyzed with a fixture :class:`FlowConfig` whose surfaces /
sinks / boundaries / catalogs point at the fixture modules — so every
pass is exercised hermetically.  Two drift tests additionally mutate
copies of the *real* ``SimConfig`` / ``CampaignSpec`` sources to prove
the production contract: adding a field without updating the
fingerprint function is caught.
"""

import dataclasses
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.flow import FlowUsageError, ProjectIndex, run_flow
from repro.analysis.flow.baseline import Baseline
from repro.analysis.flow.baseline import SCHEMA as BASELINE_SCHEMA
from repro.analysis.flow.baseline import baseline_key
from repro.analysis.flow.cli import main as flow_main
from repro.analysis.flow.config import FingerprintSurface, FlowConfig
from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.reporters import JSON_SCHEMA, render_json
from repro.analysis.lint.engine import LintEngine
from repro.analysis.source import SourceCache

REPO = Path(__file__).resolve().parents[2]


def write_tree(tmp_path, files):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))


def flow_tree(tmp_path, files, config, select=None, baseline=None,
              cache=None):
    write_tree(tmp_path, files)
    return run_flow([tmp_path], root=tmp_path, config=config,
                    select=select, baseline=baseline, cache=cache)


def rules_of(result):
    return [finding.rule for finding in result.findings]


# ---------------------------------------------------------------------------
# project index


def build_index(tmp_path, files):
    write_tree(tmp_path, files)
    return ProjectIndex.build([tmp_path], root=tmp_path)


def test_index_import_alias_expansion(tmp_path):
    index = build_index(tmp_path, {"pkg/a.py": """\
        import numpy as np
        from pkg.b import helper as h
    """, "pkg/b.py": """\
        def helper():
            return 1
    """})
    mod = index.modules["pkg.a"]
    assert mod.expand("np.random.rand") == "numpy.random.rand"
    assert mod.expand("h") == "pkg.b.helper"


def test_index_dataclass_field_registry(tmp_path):
    index = build_index(tmp_path, {"pkg/spec.py": """\
        from dataclasses import dataclass
        from typing import ClassVar

        @dataclass
        class Spec:
            alpha: int
            beta: str = "x"
            KIND: ClassVar[str] = "spec"

        class NotADataclass:
            gamma: int
    """})
    spec = index.classes["pkg.spec.Spec"]
    assert spec.is_dataclass
    assert [f.name for f in spec.fields] == ["alpha", "beta"]
    assert not index.classes["pkg.spec.NotADataclass"].fields


def test_index_call_graph_resolution(tmp_path):
    index = build_index(tmp_path, {"pkg/a.py": """\
        from pkg.b import Store, helper

        class Runner:
            def __init__(self):
                self.store = Store()

            def go(self):
                self.step()          # self-method
                self.store.save()    # attr-typed
                local = Store()
                local.save()         # ctor-typed local
                helper()             # imported function

            def step(self):
                pass
    """, "pkg/b.py": """\
        class Store:
            def save(self):
                pass

        def helper():
            pass
    """})
    callees = index.functions["pkg.a.Runner.go"].callees
    assert "pkg.a.Runner.step" in callees
    assert "pkg.b.Store.save" in callees
    assert "pkg.b.helper" in callees


def test_index_unique_name_fallback_respects_ambiguity_cap(tmp_path):
    files = {"pkg/use.py": """\
        def go(obj):
            obj.rare_method()
            obj.common_method()
    """, "pkg/impls.py": """\
        class A:
            def rare_method(self):
                pass
            def common_method(self):
                pass
        class B:
            def common_method(self):
                pass
        class C:
            def common_method(self):
                pass
    """}
    index = build_index(tmp_path, files)
    callees = index.functions["pkg.use.go"].callees
    assert "pkg.impls.A.rare_method" in callees
    # three candidates exceed AMBIGUITY_CAP: no edges for common_method
    assert not any(q.endswith("common_method") for q in callees)


def test_index_reachable_stops_at_barrier(tmp_path):
    index = build_index(tmp_path, {"pkg/a.py": """\
        from pkg import obs

        def top():
            obs.emit()
    """, "pkg/obs/__init__.py": """\
        def emit():
            deep()

        def deep():
            pass
    """})
    unrestricted = index.reachable("pkg.a.top")
    assert "pkg.obs.emit" in unrestricted
    blocked = index.reachable(
        "pkg.a.top",
        barrier=lambda f: f.relpath.startswith("pkg/obs/"))
    assert "pkg.obs.emit" not in blocked
    assert index.call_path("pkg.a.top", "pkg.obs.deep") == \
        ["pkg.a.top", "pkg.obs.emit", "pkg.obs.deep"]


# ---------------------------------------------------------------------------
# fingerprint-drift pass


DRIFT_CONFIG = FlowConfig(surfaces=(
    FingerprintSurface("pkg.spec.Spec", "pkg.spec.Spec.fingerprint"),))

SPEC_WITH_DRIFT = """\
    from dataclasses import dataclass

    @dataclass
    class Spec:
        alpha: int
        beta: int
        gamma: int

        def fingerprint(self):
            return f"{self.alpha}|{self.beta}"
"""


def test_drift_flags_unconsumed_field(tmp_path):
    result = flow_tree(tmp_path, {"pkg/spec.py": SPEC_WITH_DRIFT},
                       DRIFT_CONFIG)
    assert rules_of(result) == ["fingerprint-drift"]
    finding = result.findings[0]
    assert finding.data["field"] == "gamma"
    assert finding.line == 7
    assert "fingerprint-exempt" in finding.message


def test_drift_gains_field_is_flagged(tmp_path):
    """The headline contract: a dataclass gaining a field the
    fingerprint does not hash is detected."""
    clean = SPEC_WITH_DRIFT.replace("        gamma: int\n", "")
    assert not flow_tree(tmp_path / "a", {"pkg/spec.py": clean},
                         DRIFT_CONFIG).findings
    grown = flow_tree(tmp_path / "b", {"pkg/spec.py": SPEC_WITH_DRIFT},
                      DRIFT_CONFIG)
    assert [f.data["field"] for f in grown.findings] == ["gamma"]


def test_drift_covers_all_idiom_is_future_proof(tmp_path):
    result = flow_tree(tmp_path, {"pkg/spec.py": """\
        from dataclasses import dataclass, fields

        @dataclass
        class Spec:
            alpha: int
            brand_new_field: int

            def fingerprint(self):
                return "|".join(str(getattr(self, f.name))
                                for f in fields(self))
    """}, DRIFT_CONFIG)
    assert result.findings == []


def test_drift_follows_to_dict_and_helpers(tmp_path):
    result = flow_tree(tmp_path, {"pkg/spec.py": """\
        from dataclasses import dataclass

        def _canon(spec):
            return {"beta": spec.beta}

        @dataclass
        class Spec:
            alpha: int
            beta: int

            def to_dict(self):
                return {"alpha": self.alpha, **_canon(self)}

            def fingerprint(self):
                return str(self.to_dict())
    """}, DRIFT_CONFIG)
    assert result.findings == []


def test_drift_exemption_annotation(tmp_path):
    result = flow_tree(tmp_path, {"pkg/spec.py": """\
        from dataclasses import dataclass

        @dataclass
        class Spec:
            alpha: int
            # flow: fingerprint-exempt(derived at load time)
            cache_dir: str
            position: int  # flow: fingerprint-exempt(ordering only)

            def fingerprint(self):
                return str(self.alpha)
    """}, DRIFT_CONFIG)
    assert result.findings == []


def test_drift_broken_surface_fails_loudly(tmp_path):
    config = FlowConfig(surfaces=(
        FingerprintSurface("pkg.spec.Renamed",
                           "pkg.spec.Spec.fingerprint"),))
    result = flow_tree(tmp_path, {"pkg/spec.py": SPEC_WITH_DRIFT}, config)
    assert rules_of(result) == ["fingerprint-drift"]
    assert "broken" in result.findings[0].message


def test_drift_detected_on_real_simconfig_source(tmp_path):
    """Mutating a copy of the real SimConfig to gain a field while the
    signature explicitly enumerates today's fields is caught."""
    from repro.sim.config import SimConfig
    source = (REPO / "src/repro/sim/config.py").read_text()
    anchor = "    memoize: bool = False"
    assert anchor in source
    mutated = source.replace(
        anchor, anchor + "\n    unhashed_knob: int = 0")
    names = [f.name for f in dataclasses.fields(SimConfig)]
    signature = ("def _config_signature(config):\n    parts = []\n"
                 + "".join(f"    parts.append(str(config.{n}))\n"
                           for n in names)
                 + "    return '|'.join(parts)\n")
    result = flow_tree(
        tmp_path,
        {"src/repro/sim/config.py": mutated,
         "src/repro/sim/memo.py": signature},
        FlowConfig(surfaces=(
            FingerprintSurface("repro.sim.config.SimConfig",
                               "repro.sim.memo._config_signature"),)),
        select=["fingerprint-drift"])
    assert [f.data["field"] for f in result.findings] == ["unhashed_knob"]


def test_real_simconfig_signature_is_covers_all(tmp_path):
    """The production ``_config_signature`` iterates
    ``dataclasses.fields`` — adding a SimConfig field is hashed
    automatically, so the same mutation stays clean with the real
    memo source."""
    source = (REPO / "src/repro/sim/config.py").read_text()
    mutated = source.replace(
        "    memoize: bool = False",
        "    memoize: bool = False\n    unhashed_knob: int = 0")
    result = flow_tree(
        tmp_path,
        {"src/repro/sim/config.py": mutated,
         "src/repro/sim/memo.py":
             (REPO / "src/repro/sim/memo.py").read_text()},
        FlowConfig(surfaces=(
            FingerprintSurface("repro.sim.config.SimConfig",
                               "repro.sim.memo._config_signature"),)),
        select=["fingerprint-drift"])
    assert result.findings == []


def test_drift_detected_on_real_campaignspec_axis(tmp_path):
    """Adding a matrix axis to a copy of the real CampaignSpec without
    threading it into ``to_dict`` (the fingerprint source) is caught —
    exactly the --resume poisoning ISSUE 10 guards against."""
    source = (REPO / "src/repro/campaign/spec.py").read_text()
    anchor = '    tenancies: Tuple[str, ...] = ("single",)'
    assert anchor in source
    mutated = source.replace(anchor,
                             anchor + "\n    new_axis: int = 0")
    result = flow_tree(
        tmp_path, {"src/repro/campaign/spec.py": mutated},
        FlowConfig(surfaces=(
            FingerprintSurface(
                "repro.campaign.spec.CampaignSpec",
                "repro.campaign.spec.CampaignSpec.fingerprint"),)),
        select=["fingerprint-drift"])
    assert [f.data["field"] for f in result.findings] == ["new_axis"]


# ---------------------------------------------------------------------------
# determinism-taint pass


TAINT_CONFIG = FlowConfig(
    taint_sink_names=frozenset({"atomic_write_bytes"}),
    taint_sink_methods=frozenset({"pkg.store.CheckpointStore.put"}),
    taint_barriers=("pkg/obs/",))


def test_taint_direct_source_to_sink(tmp_path):
    result = flow_tree(tmp_path, {"pkg/writer.py": """\
        import time
        from pkg.io import atomic_write_bytes

        def persist(path):
            stamp = time.time()
            atomic_write_bytes(path, str(stamp).encode())
    """, "pkg/io.py": """\
        def atomic_write_bytes(path, payload):
            pass
    """}, TAINT_CONFIG, select=["determinism-taint"])
    assert rules_of(result) == ["determinism-taint"]
    finding = result.findings[0]
    assert "time.time" in finding.data["source"]
    assert finding.data["sink"] == "atomic_write_bytes"


def test_taint_interprocedural_chain(tmp_path):
    result = flow_tree(tmp_path, {"pkg/top.py": """\
        import random
        from pkg import mid

        def jitter():
            mid.hand_off(random.random())
    """, "pkg/mid.py": """\
        from pkg.io import atomic_write_bytes

        def hand_off(value):
            atomic_write_bytes("f", str(value).encode())
    """, "pkg/io.py": """\
        def atomic_write_bytes(path, payload):
            pass
    """}, TAINT_CONFIG, select=["determinism-taint"])
    assert rules_of(result) == ["determinism-taint"]
    assert result.findings[0].data["chain"] == \
        ["pkg.top.jitter", "pkg.mid.hand_off"]


def test_taint_seeded_rng_is_clean(tmp_path):
    result = flow_tree(tmp_path, {"pkg/writer.py": """\
        import numpy as np
        import random

        def persist(path):
            rng = np.random.default_rng(7)
            r2 = random.Random(13)
            atomic_write_bytes(path, bytes([rng.integers(0, 255)]))

        def atomic_write_bytes(path, payload):
            pass
    """}, TAINT_CONFIG, select=["determinism-taint"])
    assert result.findings == []


def test_taint_barrier_stops_propagation(tmp_path):
    result = flow_tree(tmp_path, {"pkg/top.py": """\
        import time
        from pkg.obs import context

        def annotate():
            context.emit(time.time())
    """, "pkg/obs/__init__.py": "", "pkg/obs/context.py": """\
        from pkg.io import atomic_write_bytes

        def emit(stamp):
            atomic_write_bytes("m", str(stamp).encode())
    """, "pkg/io.py": """\
        def atomic_write_bytes(path, payload):
            pass
    """}, TAINT_CONFIG, select=["determinism-taint"])
    assert result.findings == []


def test_taint_method_sink_via_typed_local(tmp_path):
    result = flow_tree(tmp_path, {"pkg/store.py": """\
        class CheckpointStore:
            def put(self, key, payload):
                pass
    """, "pkg/writer.py": """\
        import os
        from pkg.store import CheckpointStore

        def persist():
            store = CheckpointStore()
            store.put("k", os.environ.get("HOME"))
    """}, TAINT_CONFIG, select=["determinism-taint"])
    assert rules_of(result) == ["determinism-taint"]
    assert result.findings[0].data["sink"] == \
        "pkg.store.CheckpointStore.put"
    assert "os.environ" in result.findings[0].data["source"]


def test_taint_set_iteration_and_suppression(tmp_path):
    files = {"pkg/writer.py": """\
        def persist(items):
            for item in set(items):{suffix}
                atomic_write_bytes("f", str(item).encode())

        def atomic_write_bytes(path, payload):
            pass
    """}
    flagged = flow_tree(
        tmp_path / "a",
        {k: v.format(suffix="") for k, v in files.items()},
        TAINT_CONFIG, select=["determinism-taint"])
    assert rules_of(flagged) == ["determinism-taint"]
    suppressed = flow_tree(
        tmp_path / "b",
        {k: v.replace(
            "for item in set(items):{suffix}",
            "for item in set(items):  "
            "# repro-lint: disable=determinism-taint -- vetted")
         for k, v in files.items()},
        TAINT_CONFIG, select=["determinism-taint"])
    assert suppressed.findings == []
    assert suppressed.suppressed == 1


# ---------------------------------------------------------------------------
# fail-secure-flow pass


SECURE_CONFIG = FlowConfig(failsecure_boundaries=("pkg/serve.py",))


def secure_tree(tmp_path, body):
    return flow_tree(tmp_path, {"pkg/serve.py": body},
                     SECURE_CONFIG, select=["fail-secure-flow"])


def test_failsecure_flags_swallowing_handler(tmp_path):
    result = secure_tree(tmp_path, """\
        def score(detector, window):
            try:
                return detector(window)
            except Exception:
                return None
    """)
    assert rules_of(result) == ["fail-secure-flow"]
    assert result.findings[0].line == 4


def test_failsecure_latch_reraise_and_escape_are_clean(tmp_path):
    result = secure_tree(tmp_path, """\
        def latching(slot, detector, window):
            try:
                return detector(window)
            except Exception as exc:
                slot._latch(str(exc))
                return None

        def reraising(detector, window):
            try:
                return detector(window)
            except ValueError:
                raise

        def attributing(detector, window, faults, i):
            try:
                return detector(window)
            except Exception as exc:
                faults[i] = exc
                return float("nan")
    """)
    assert result.findings == []


def test_failsecure_requires_all_branches(tmp_path):
    result = secure_tree(tmp_path, """\
        def both(slot, flag, detector, window):
            try:
                return detector(window)
            except Exception:
                if flag:
                    slot._latch("a")
                else:
                    slot.shed_window("b")

        def one_sided(slot, flag, detector, window):
            try:
                return detector(window)
            except Exception:
                if flag:
                    slot._latch("a")
                else:
                    return None
    """)
    assert len(result.findings) == 1
    assert result.findings[0].line == 13


def test_failsecure_only_applies_inside_boundary(tmp_path):
    result = flow_tree(tmp_path, {"pkg/other.py": """\
        def score(detector, window):
            try:
                return detector(window)
            except Exception:
                return None
    """}, SECURE_CONFIG, select=["fail-secure-flow"])
    assert result.findings == []


# ---------------------------------------------------------------------------
# catalog-provenance pass


CATALOG_CONFIG = FlowConfig(
    catalogs={"counter": frozenset({"l1d.hits", "l1d.misses"}),
              "metric": frozenset({"serve.windows", "runner.failures.crash",
                                   "runner.failures.timeout"}),
              "event": frozenset({"run.finished"})},
    counter_scope=("pkg/",), obs_scope=("pkg/",))


def test_catalog_variable_resolution(tmp_path):
    result = flow_tree(tmp_path, {"pkg/emit.py": """\
        GOOD = "l1d.hits"

        def tick(bank):
            bank.bump(GOOD)
            name = "l1d.misess"
            bank.bump(name)
    """}, CATALOG_CONFIG, select=["catalog-provenance"])
    assert rules_of(result) == ["catalog-provenance"]
    assert result.findings[0].data["name"] == "l1d.misess"
    assert "l1d.misses" in result.findings[0].message   # suggestion


def test_catalog_fstring_patterns(tmp_path):
    result = flow_tree(tmp_path, {"pkg/emit.py": """\
        def report(metrics, kind, prefix):
            metrics.inc(f"runner.failures.{kind}")
            metrics.inc(f"runner.successes.{kind}")
            metrics.inc(f"{prefix}.{kind}")
    """}, CATALOG_CONFIG, select=["catalog-provenance"])
    # failures.* matches two entries; successes.* matches none;
    # the fully-dynamic pattern is vacuous and skipped
    assert len(result.findings) == 1
    assert result.findings[0].data["pattern"] == "runner.successes.*"


def test_catalog_resolved_interpolation_and_events(tmp_path):
    result = flow_tree(tmp_path, {"pkg/emit.py": """\
        STAGE = "run"

        def done():
            obs_event(f"{STAGE}.finished")
            obs_event(f"{STAGE}.exploded")
    """}, CATALOG_CONFIG, select=["catalog-provenance"])
    assert len(result.findings) == 1
    assert result.findings[0].data["name"] == "run.exploded"


def test_catalog_dotted_only_and_exclusions(tmp_path):
    config = dataclasses.replace(CATALOG_CONFIG,
                                 catalog_exclude=("pkg/raw.py",))
    result = flow_tree(tmp_path, {"pkg/emit.py": """\
        def read(mapping):
            key = "plain"
            return mapping.get(key)      # undotted: not a counter name
    """, "pkg/raw.py": """\
        def tick(bank):
            name = "not.a.counter"
            bank.bump(name)              # excluded path
    """}, config, select=["catalog-provenance"])
    assert result.findings == []


# ---------------------------------------------------------------------------
# engine, baseline, reporters, CLI


def test_engine_reports_parse_errors(tmp_path):
    result = flow_tree(tmp_path, {"pkg/broken.py": """\
        def f(:
    """}, FlowConfig())
    assert rules_of(result) == ["parse-error"]


def test_engine_unknown_pass_raises(tmp_path):
    with pytest.raises(FlowUsageError):
        flow_tree(tmp_path, {"pkg/a.py": "x = 1\n"}, FlowConfig(),
                  select=["no-such-pass"])


def test_baseline_roundtrip_and_split(tmp_path):
    first = flow_tree(tmp_path, {"pkg/spec.py": SPEC_WITH_DRIFT},
                      DRIFT_CONFIG)
    assert len(first.findings) == 1
    accepted = Baseline.from_findings(first.findings, reason="known debt")
    target = tmp_path / ".flow-baseline.json"
    accepted.save(target)
    loaded = Baseline.load(target)
    assert loaded.accepted == \
        {("fingerprint-drift", baseline_key(first.findings[0]))}
    second = run_flow([tmp_path], root=tmp_path, config=DRIFT_CONFIG,
                      baseline=loaded)
    assert second.findings == []
    assert len(second.baselined) == 1
    payload = json.loads(target.read_text())
    assert payload["schema"] == BASELINE_SCHEMA


def test_baseline_key_survives_line_churn(tmp_path):
    shifted = "# a leading comment\n" + textwrap.dedent(SPEC_WITH_DRIFT)
    a = flow_tree(tmp_path / "a", {"pkg/spec.py": SPEC_WITH_DRIFT},
                  DRIFT_CONFIG)
    b = flow_tree(tmp_path / "b", {"pkg/spec.py": shifted}, DRIFT_CONFIG)
    assert baseline_key(a.findings[0]) == baseline_key(b.findings[0])
    assert a.findings[0].line != b.findings[0].line


def test_render_json_schema(tmp_path):
    result = flow_tree(tmp_path, {"pkg/spec.py": SPEC_WITH_DRIFT},
                       DRIFT_CONFIG)
    payload = render_json(result, root=tmp_path)
    assert payload["schema"] == JSON_SCHEMA == "repro-flow/1"
    assert payload["summary"]["new"] == 1
    assert payload["passes"] == ["fingerprint-drift", "determinism-taint",
                                 "fail-secure-flow", "catalog-provenance"]
    assert payload["findings"][0]["rule"] == "fingerprint-drift"


def test_cli_exit_codes(tmp_path, capsys):
    # 0: the real tree against its committed baseline
    assert flow_main([str(REPO / "src" / "repro"),
                      "--root", str(REPO)]) == 0
    # 1: a fixture tree has none of the DEFAULT_CONFIG surfaces, which
    # must fail loudly as broken-surface findings
    (tmp_path / "empty.py").write_text("x = 1\n")
    assert flow_main([str(tmp_path), "--root", str(tmp_path),
                      "--no-baseline"]) == 1
    # 2: unknown pass selection
    assert flow_main([str(tmp_path), "--root", str(tmp_path),
                      "--select", "no-such-pass"]) == 2
    capsys.readouterr()


def test_cli_json_out_and_write_baseline(tmp_path, capsys):
    (tmp_path / "empty.py").write_text("x = 1\n")
    out = tmp_path / "findings.json"
    flow_main([str(tmp_path), "--root", str(tmp_path), "--no-baseline",
               "--json-out", str(out)])
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro-flow/1"
    assert payload["summary"]["new"] > 0
    # accepting the debt into a baseline turns the same run clean
    assert flow_main([str(tmp_path), "--root", str(tmp_path),
                      "--write-baseline"]) == 0
    assert flow_main([str(tmp_path), "--root", str(tmp_path)]) == 0
    capsys.readouterr()


def test_shared_cache_parses_each_file_once(tmp_path):
    files = {"src/repro/sim/a.py": "def f():\n    return 1\n",
             "src/repro/sim/b.py": "def g():\n    return 2\n"}
    write_tree(tmp_path, files)
    cache = SourceCache()
    LintEngine(root=tmp_path, cache=cache).run([tmp_path])
    after_lint = cache.parses
    assert after_lint == len(files)
    FlowEngine(config=FlowConfig(), root=tmp_path, cache=cache).run(
        [tmp_path])
    assert cache.parses == after_lint   # flow re-used every parse


def test_flow_self():
    """The repo passes its own whole-program verifier against the
    committed baseline — the same invariant scripts/ci.sh enforces."""
    baseline_file = REPO / ".flow-baseline.json"
    baseline = Baseline.load(baseline_file) if baseline_file.exists() \
        else None
    result = run_flow([REPO / "src" / "repro"], root=REPO,
                      baseline=baseline)
    assert result.findings == [], \
        "\n".join(f.location() + " " + f.message for f in result.findings)
