"""Contract-linter tests: per-rule good/bad fixtures, suppressions,
reporter schema, CLI exit codes, and the self-lint gate.

Fixture trees are written under ``tmp_path`` using repo-shaped relative
paths (``src/repro/sim/...``) because scoped rules key off
engine-root-relative prefixes — which also exercises the scoping
itself.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    ERROR, JSON_SCHEMA, LintUsageError, render_json, render_text, run_lint,
)
from repro.analysis.lint.cli import main as lint_main
from repro.obs.names import EVENTS
from repro.sim.hpc import COUNTER_NAMES

REPO = Path(__file__).resolve().parents[2]

A_COUNTER = COUNTER_NAMES[0]
AN_EVENT = next(iter(sorted(EVENTS)))


def lint_tree(tmp_path, files, select=None, ignore=None):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return run_lint([tmp_path], root=tmp_path, select=select, ignore=ignore)


def rules_of(result):
    return [finding.rule for finding in result.findings]


# ---------------------------------------------------------------------------
# determinism rules


def test_forbidden_clock_flags_wall_clock(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": """\
        import time
        stamp = time.time()
    """})
    assert rules_of(result) == ["forbidden-clock"]
    finding = result.findings[0]
    assert finding.line == 2
    assert finding.severity == ERROR
    assert finding.data == {"call": "time.time"}


def test_forbidden_clock_flags_datetime_now(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/ml/x.py": """\
        from datetime import datetime
        import datetime as dt
        a = datetime.now()
        b = dt.datetime.utcnow()
    """})
    assert rules_of(result) == ["forbidden-clock", "forbidden-clock"]


def test_forbidden_clock_allows_perf_counter(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": """\
        import time
        start = time.perf_counter()
        elapsed = time.monotonic() - start
    """})
    assert result.findings == []


def test_forbidden_clock_out_of_scope_dirs_are_free(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/obs/x.py": """\
        import time
        stamp = time.time()
    """})
    assert result.findings == []


def test_determinism_scope_covers_attacks_and_arena(tmp_path):
    """Fuzzed programs are training inputs (the arms race feeds them to
    re-vaccination), so ``attacks/`` and ``arena/`` sit inside the
    deterministic scope: module-level RNG draws are flagged there."""
    result = lint_tree(tmp_path, {
        "src/repro/attacks/x.py": """\
            import random
            pick = random.choice([1, 2])
        """,
        "src/repro/arena/x.py": """\
            import numpy as np
            draw = np.random.rand(3)
        """,
    })
    assert sorted(rules_of(result)) == ["unseeded-rng", "unseeded-rng"]


def test_attacks_tree_passes_its_own_determinism_rules():
    """The satellite contract itself: the real ``attacks/`` + ``arena/``
    sources carry no module-level RNG or wall-clock reads."""
    result = run_lint([REPO / "src" / "repro" / "attacks",
                       REPO / "src" / "repro" / "arena"], root=REPO,
                      select=["unseeded-rng", "forbidden-clock"])
    assert result.findings == []


def test_unseeded_rng_flags_global_numpy(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/core/x.py": """\
        import numpy as np
        a = np.random.rand(3)
        b = np.random.default_rng()
    """})
    assert rules_of(result) == ["unseeded-rng", "unseeded-rng"]


def test_unseeded_rng_allows_seeded_default_rng(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/core/x.py": """\
        import numpy as np
        rng = np.random.default_rng(7)
        draws = rng.random(8)
    """})
    assert result.findings == []


def test_unseeded_rng_flags_stdlib_module_rng(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/data/x.py": """\
        import random
        pick = random.choice([1, 2])
        gen = random.Random()
        ok = random.Random(3)
    """})
    assert rules_of(result) == ["unseeded-rng", "unseeded-rng"]


def test_set_iteration_flags_bare_sets(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": """\
        names = ["b", "a"]
        for n in set(names):
            print(n)
        pairs = [x for x in {"u", "v"}]
    """})
    assert rules_of(result) == ["set-iteration", "set-iteration"]


def test_set_iteration_allows_sorted(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": """\
        names = ["b", "a"]
        for n in sorted(set(names)):
            print(n)
    """})
    assert result.findings == []


# ---------------------------------------------------------------------------
# atomic IO


def test_atomic_io_flags_raw_write_open(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/data/x.py": """\
        def save(path, text):
            with open(path, "w") as f:
                f.write(text)
            with open(path, mode="wb") as f:
                f.write(b"")
            Path(path).write_text(text)
    """})
    assert rules_of(result) == ["atomic-io"] * 3


def test_atomic_io_allows_reads_and_excluded_paths(tmp_path):
    read_only = """\
        def load(path):
            with open(path) as f:
                return f.read() + open(path, "rb").read().decode()
    """
    writer = """\
        def save(path, text):
            with open(path, "w") as f:
                f.write(text)
    """
    result = lint_tree(tmp_path, {
        "src/repro/data/reader.py": read_only,
        "src/repro/runtime/atomic.py": writer,
        "src/repro/obs/sink.py": writer,
    })
    assert result.findings == []


# ---------------------------------------------------------------------------
# error contract


def test_broad_except_flags_swallowing_handlers(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/runtime/x.py": """\
        def f():
            try:
                work()
            except Exception:
                pass
            try:
                work()
            except BaseException as exc:
                log(exc)
            try:
                work()
            except:
                pass
    """})
    assert rules_of(result) == ["broad-except"] * 3


def test_broad_except_allows_reraise_and_typed(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/runtime/x.py": """\
        def f():
            try:
                work()
            except Exception:
                cleanup()
                raise
            try:
                work()
            except (OSError, ValueError):
                pass
            try:
                work()
            except Exception as exc:
                raise RuntimeError("wrapped") from exc
    """})
    assert result.findings == []


# ---------------------------------------------------------------------------
# catalog rules


def test_catalog_counters_flags_unknown_literal(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": f"""\
        def run(bank):
            bank.bump({A_COUNTER!r})
            bank.bump("no.such.counter")
            bank.bump(f"dyn.{{kind}}")
    """})
    assert rules_of(result) == ["catalog-counters"]
    assert result.findings[0].data == {"name": "no.such.counter"}


def test_catalog_counters_dict_get_is_not_a_counter(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": """\
        def f(options):
            return options.get("retries"), options.get("a.b.c")
    """})
    # un-dotted .get literals are dict keys; dotted ones are checked
    assert rules_of(result) == ["catalog-counters"]
    assert result.findings[0].data == {"name": "a.b.c"}


def test_catalog_metrics_flags_unknown_literal(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/defenses/x.py": """\
        def f(reg, kind):
            reg.inc("sim.runs")
            reg.inc("not.a.metric")
            reg.inc(f"runner.failures.{kind}")
    """})
    assert rules_of(result) == ["catalog-metrics"]
    assert result.findings[0].data == {"name": "not.a.metric"}


def test_catalog_events_flags_unknown_literal(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/defenses/x.py": f"""\
        def f():
            obs_event({AN_EVENT!r})
            obs_event("no.such.event", level="warn")
    """})
    assert rules_of(result) == ["catalog-events"]
    assert result.findings[0].data == {"name": "no.such.event"}


# ---------------------------------------------------------------------------
# runner-fanout


def test_runner_fanout_flags_pool_and_executor(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/data/x.py": """\
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        def f(tasks):
            with multiprocessing.Pool(4) as pool:
                pool.map(len, tasks)
            with ProcessPoolExecutor() as ex:
                ex.map(len, tasks)
    """})
    assert rules_of(result) == ["runner-fanout", "runner-fanout"]
    assert result.findings[0].data == {"call": "multiprocessing.Pool"}
    assert result.findings[1].data == {"call": "ProcessPoolExecutor"}


def test_runner_fanout_flags_context_process(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/campaign/x.py": """\
        import multiprocessing

        def f():
            ctx = multiprocessing.get_context("fork")
            proc = ctx.Process(target=len)
            proc.start()
    """})
    assert rules_of(result) == ["runner-fanout"]
    assert result.findings[0].data == {"call": "ctx.Process"}


def test_runner_fanout_runtime_layer_is_exempt(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/runtime/x.py": """\
        import multiprocessing

        def f(tasks):
            with multiprocessing.Pool(4) as pool:
                pool.map(len, tasks)
    """})
    assert result.findings == []


def test_runner_fanout_needs_the_import(tmp_path):
    # a local class named Pool/Process is not fan-out: the rule only
    # fires in files that import multiprocessing / concurrent.futures
    result = lint_tree(tmp_path, {"src/repro/data/x.py": """\
        class Pool:
            pass

        def f():
            return Pool()
    """})
    assert result.findings == []


# ---------------------------------------------------------------------------
# docs links


def test_docs_links_flags_broken_relative_link(tmp_path):
    (tmp_path / "exists.md").write_text("# here\n")
    result = lint_tree(tmp_path, {"docs/index.md": """\
        [ok](../exists.md) [also ok](https://example.com) [anchor](#x)
        [broken](missing.md#section)
    """})
    assert rules_of(result) == ["docs-links"]
    finding = result.findings[0]
    assert finding.line == 2
    assert finding.data == {"target": "missing.md#section"}


# ---------------------------------------------------------------------------
# suppressions


BAD_CLOCK = 'import time\nstamp = time.time()'


def test_suppression_same_line(tmp_path):
    source = BAD_CLOCK + "  # repro-lint: disable=forbidden-clock\n"
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": source})
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_standalone_comment_shields_next_line(tmp_path):
    source = ("import time\n"
              "# repro-lint: disable=forbidden-clock -- fixture clock\n"
              "stamp = time.time()\n")
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": source})
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_disable_all(tmp_path):
    source = BAD_CLOCK + "  # repro-lint: disable=all\n"
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": source})
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_wrong_rule_does_not_shield(tmp_path):
    source = BAD_CLOCK + "  # repro-lint: disable=atomic-io\n"
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": source})
    assert rules_of(result) == ["forbidden-clock"]
    assert result.suppressed == 0


# ---------------------------------------------------------------------------
# engine behaviour


def test_parse_error_is_a_finding(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": "def broken(:\n"})
    assert rules_of(result) == ["parse-error"]
    assert result.findings[0].severity == ERROR


def test_select_and_ignore_filter_rules(tmp_path):
    files = {"src/repro/sim/x.py": """\
        import time
        stamp = time.time()
        with open("out.txt", "w") as f:
            f.write("x")
    """}
    both = lint_tree(tmp_path, files)
    assert sorted(rules_of(both)) == ["atomic-io", "forbidden-clock"]
    only = lint_tree(tmp_path, files, select=["forbidden-clock"])
    assert rules_of(only) == ["forbidden-clock"]
    without = lint_tree(tmp_path, files, ignore=["forbidden-clock"])
    assert rules_of(without) == ["atomic-io"]


def test_unknown_rule_name_raises(tmp_path):
    with pytest.raises(LintUsageError):
        lint_tree(tmp_path, {"src/repro/sim/x.py": "x = 1\n"},
                  select=["no-such-rule"])


def test_nonexistent_path_raises(tmp_path):
    with pytest.raises(LintUsageError):
        run_lint([tmp_path / "missing"], root=tmp_path)


def test_findings_are_sorted_and_deterministic(tmp_path):
    files = {
        "src/repro/sim/b.py": BAD_CLOCK + "\n",
        "src/repro/sim/a.py": BAD_CLOCK + "\n",
    }
    result = lint_tree(tmp_path, files)
    assert [f.path for f in result.findings] == \
        ["src/repro/sim/a.py", "src/repro/sim/b.py"]


# ---------------------------------------------------------------------------
# reporters


def test_json_reporter_schema(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": BAD_CLOCK + "\n"})
    payload = render_json(result, root=tmp_path)
    assert payload["schema"] == JSON_SCHEMA
    assert set(payload) == {"schema", "root", "files", "rules",
                            "summary", "findings"}
    assert payload["summary"] == {"findings": 1, "error": 1,
                                  "warning": 0, "suppressed": 0}
    [finding] = payload["findings"]
    assert set(finding) == {"rule", "severity", "path", "line", "col",
                            "message", "data"}
    assert finding["rule"] == "forbidden-clock"
    assert {"name", "severity", "description"} <= set(payload["rules"][0])
    json.dumps(payload)  # must be serializable as-is


def test_text_reporter_locations_and_summary(tmp_path):
    result = lint_tree(tmp_path, {"src/repro/sim/x.py": BAD_CLOCK + "\n"})
    text = render_text(result)
    assert "src/repro/sim/x.py:2:" in text
    assert "forbidden-clock" in text
    assert "1 finding(s) (1 error, 0 warning)" in text
    clean = lint_tree(tmp_path / "clean", {"src/repro/ml/ok.py": "x = 1\n"})
    assert "repro-lint: clean" in render_text(clean)


# ---------------------------------------------------------------------------
# CLI exit-code contract


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "sim"
    bad.mkdir(parents=True)
    (bad / "x.py").write_text(BAD_CLOCK + "\n")
    json_out = tmp_path / "findings.json"
    code = lint_main([str(tmp_path), "--root", str(tmp_path),
                      "--json-out", str(json_out)])
    assert code == 1
    assert "forbidden-clock" in capsys.readouterr().out
    payload = json.loads(json_out.read_text())
    assert payload["schema"] == JSON_SCHEMA
    assert payload["summary"]["error"] == 1

    (bad / "x.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path), "--root", str(tmp_path)]) == 0
    assert lint_main([str(tmp_path), "--select", "bogus"]) == 2


def test_cli_json_format(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert lint_main([str(tmp_path), "--root", str(tmp_path),
                      "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == JSON_SCHEMA


# ---------------------------------------------------------------------------
# the repo's own tree, and the wrapper scripts


def test_lint_self():
    """The repo lints clean under the default severity gate — the same
    invariant scripts/ci.sh enforces."""
    result = run_lint([REPO / "src", REPO / "tests", REPO / "scripts"],
                      root=REPO)
    assert result.failing() == [], \
        "\n".join(f.location() + " " + f.message for f in result.failing())


def test_check_counters_wrapper_cli():
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_counters.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.startswith("check_counters: ")
    assert "resolve against COUNTER_NAMES" in proc.stdout


def test_check_docs_wrapper_cli():
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_docs.py")],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "all relative links ok" in proc.stdout
