"""Final coverage round: thin spots across the public surface."""

import numpy as np

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.multiprog import TimeSharedMachine


class TestTimeSharedSampling:
    def test_detector_hook_sees_merged_window_stream(self):
        """In time-shared mode the sampler (and any detector hook) sees
        the merged commit stream of both contexts — as hardware would."""
        def prog(n):
            b = ProgramBuilder()
            b.movi(1, 0)
            b.movi(2, n)
            b.label("top")
            b.addi(1, 1, 1)
            b.blt(1, 2, "top")
            b.halt()
            return b.build()

        seen = []

        def hook(machine, sample):
            seen.append(sample.commit_index)
            return False

        tsm = TimeSharedMachine(prog(1500), prog(1500), slice_cycles=300,
                                sample_period=200, detector_hook=hook)
        tsm.run(max_cycles=100_000)
        assert len(seen) >= 5
        assert seen == sorted(seen)

    def test_quarantine_flag_respected_in_time_shared_run(self):
        from repro.sim.background import CacheToucherActor
        def spin(n):
            b = ProgramBuilder()
            b.movi(1, 0)
            b.movi(2, n)
            b.label("top")
            b.addi(1, 1, 1)
            b.blt(1, 2, "top")
            b.halt()
            return b.build()

        addr = 0x300000
        tsm = TimeSharedMachine(spin(800), spin(800), slice_cycles=200,
                                actors=[CacheToucherActor([addr], period=20)])
        tsm.machine.actors_suspended = True
        tsm.run(max_cycles=50_000)
        assert not tsm.hierarchy.data_line_present(addr)


class TestEvasionOnActorAttacks:
    def test_evasive_actor_attack_still_leaks(self):
        from repro.attacks import EvasiveAttack, FlushReload
        out = EvasiveAttack(FlushReload(seed=4), nop_rate=0.25,
                            prefetch_rate=0.1, seed=4).run()
        assert out.leaked

    def test_camouflage_noise_does_not_break_victim_channel(self):
        from repro.attacks import EvasiveAttack, RDRNDCovert
        out = EvasiveAttack(RDRNDCovert(seed=4), nop_rate=0.2,
                            camouflage_actors=2, seed=4).run()
        assert out.leaked


class TestAnalysisInventory:
    def test_inventory_with_extensions(self):
        from repro.analysis import attack_inventory
        rows = attack_inventory(seeds=(4,), include_extensions=True)
        names = {r["attack"] for r in rows}
        assert "zombieload" in names
        assert "cross-context-flush-reload" in names
        assert all(r["leaked"] for r in rows)


class TestDefensePolicyCatalogue:
    def test_adaptive_policies_reference_real_modes(self):
        from repro.defenses import DEFENSE_CONFIGS
        from repro.sim.config import DefenseMode
        adaptive = [p for p in DEFENSE_CONFIGS if p.adaptive]
        assert len(adaptive) >= 4
        assert all(isinstance(p.mode, DefenseMode) for p in adaptive)
        assert {p.threat_model for p in DEFENSE_CONFIGS} == \
            {"none", "spectre", "futuristic"}


class TestDetectorCalibration:
    def test_calibration_moves_threshold_above_benign_scores(self):
        from repro.core import HardwareDetector, evax_schema
        rng = np.random.default_rng(0)
        schema = evax_schema()
        X = rng.random((120, schema.dim))
        y = np.r_[np.ones(60), np.zeros(60)]
        X[:60, :4] += 8.0
        det = HardwareDetector(schema).fit(X, y, epochs=20)
        threshold = det.calibrate_threshold(X[60:])
        assert 0.5 <= threshold <= 0.9
        scores = det.scores_raw(X[60:])
        assert (scores >= threshold).mean() < 0.02

    def test_calibration_capped(self):
        from repro.core import HardwareDetector, evax_schema
        det = HardwareDetector(evax_schema())
        det.normalizer.fit(np.ones((4, det.schema.dim)))
        # pathological benign scores all ~1.0: cap keeps sensitivity
        det.net.layers[0].bias[:] = 50.0
        threshold = det.calibrate_threshold(np.ones((8, det.schema.dim)))
        assert threshold == 0.9
