"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_attack_command_reports_leak(capsys):
    code = main(["attack", "meltdown", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "leaked      : True" in out


def test_attack_command_under_defense(capsys):
    code = main(["attack", "meltdown", "--seed", "2",
                 "--defense", "fence-futuristic"])
    out = capsys.readouterr().out
    assert code == 0
    assert "leaked      : False" in out


def test_attack_command_unknown_name():
    with pytest.raises(SystemExit):
        main(["attack", "not-an-attack"])


def test_workloads_command(capsys):
    code = main(["workloads", "--scale", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "stream" in out and "IPC=" in out


def test_collect_train_explain_pipeline(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    detector = str(tmp_path / "detector.json")
    assert main(["collect", corpus, "--seeds", "1", "--scale", "2",
                 "--period", "250"]) == 0
    assert main(["train", corpus, "--out", detector,
                 "--iterations", "120"]) == 0
    out = capsys.readouterr().out
    assert "accuracy=" in out
    assert "engineered HPCs" in out
    assert main(["explain", detector, "--corpus", corpus]) == 0
    out = capsys.readouterr().out
    assert "malicious-leaning" in out


def test_report_command(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    detector = str(tmp_path / "detector.json")
    report = str(tmp_path / "report.md")
    assert main(["collect", corpus, "--seeds", "1", "--scale", "2",
                 "--period", "250", "--jobs", "2"]) == 0
    assert main(["train", corpus, "--out", detector,
                 "--iterations", "120"]) == 0
    assert main(["report", corpus, detector, "--out", report]) == 0
    text = open(report).read()
    assert "# EVAX system report" in text
    assert "## Detector" in text

    # the parallel collect checkpointed per-source shards next to the
    # corpus; a --resume re-run skips every completed source
    capsys.readouterr()
    assert main(["collect", corpus, "--seeds", "1", "--scale", "2",
                 "--period", "250", "--jobs", "2", "--resume"]) == 0
    out = capsys.readouterr().out
    assert "from checkpoint" in out
    assert "saved" in out


def _expect_exit2(argv, capsys, needle):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert err.count("\n") == 1          # exactly one line
    assert needle in err


def test_train_missing_corpus_exits_2(tmp_path, capsys):
    missing = str(tmp_path / "no-such-corpus")
    _expect_exit2(["train", missing], capsys, missing)


def test_train_corrupt_corpus_exits_2(tmp_path, capsys):
    corpus = tmp_path / "corpus"
    (tmp_path / "corpus.npz").write_bytes(b"definitely not a zip")
    (tmp_path / "corpus.meta.json").write_text("{broken")
    _expect_exit2(["train", str(corpus)], capsys, str(corpus))


def test_report_missing_corpus_exits_2(tmp_path, capsys):
    missing = str(tmp_path / "nope")
    _expect_exit2(["report", missing, str(tmp_path / "det.json")],
                  capsys, missing)


def test_explain_missing_detector_exits_2(tmp_path, capsys):
    missing = str(tmp_path / "det.json")
    _expect_exit2(["explain", missing], capsys, missing)


def test_explain_corrupt_corpus_exits_2(tmp_path, capsys, small_dataset):
    from repro.core import evax_schema, train_detector
    from repro.core.patching import save_detector
    detector = str(tmp_path / "det.json")
    save_detector(train_detector(small_dataset, evax_schema(), epochs=5),
                  detector)
    corpus = tmp_path / "corpus"
    (tmp_path / "corpus.npz").write_bytes(b"junk")
    (tmp_path / "corpus.meta.json").write_text("[]")
    _expect_exit2(["explain", detector, "--corpus", str(corpus)],
                  capsys, str(corpus))


def test_train_resume_context_mismatch_exits_2(tmp_path, capsys,
                                               small_dataset):
    """Resuming someone else's checkpoints must refuse, not corrupt."""
    from repro.data import save_dataset
    corpus = str(tmp_path / "corpus")
    save_dataset(small_dataset, corpus)
    ck = str(tmp_path / "ck")
    assert main(["train", corpus, "--iterations", "10",
                 "--checkpoint-dir", ck, "--checkpoint-every", "5",
                 "--seed", "0", "--no-manifest"]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit) as err:
        main(["train", corpus, "--iterations", "10",
              "--checkpoint-dir", ck, "--checkpoint-every", "5",
              "--seed", "1", "--resume", "--no-manifest"])
    assert err.value.code == 2
    assert "checkpoint" in capsys.readouterr().err


@pytest.mark.slow
def test_train_resume_is_bit_exact_end_to_end(tmp_path, capsys,
                                              small_dataset):
    """`repro train --resume` continues from the durable checkpoint and
    produces a byte-identical detector artifact to an uninterrupted run
    with the same corpus, seed and final iteration count."""
    from repro.data import save_dataset
    from repro.obs import read_manifest

    corpus = str(tmp_path / "corpus")
    save_dataset(small_dataset, corpus)
    ck = str(tmp_path / "ck")
    uninterrupted = str(tmp_path / "a.json")
    halfway = str(tmp_path / "b.json")
    resumed = str(tmp_path / "c.json")

    assert main(["train", corpus, "--out", uninterrupted,
                 "--iterations", "50", "--checkpoint-every", "0",
                 "--no-manifest"]) == 0
    first_manifest = str(tmp_path / "m1.json")
    assert main(["train", corpus, "--out", halfway,
                 "--iterations", "25", "--checkpoint-dir", ck,
                 "--checkpoint-every", "25",
                 "--manifest-out", first_manifest]) == 0
    resumed_manifest = str(tmp_path / "m2.json")
    assert main(["train", corpus, "--out", resumed,
                 "--iterations", "50", "--checkpoint-dir", ck,
                 "--checkpoint-every", "25", "--resume",
                 "--manifest-out", resumed_manifest]) == 0
    capsys.readouterr()

    assert open(resumed, "rb").read() == open(uninterrupted, "rb").read()
    first = read_manifest(first_manifest)
    second = read_manifest(resumed_manifest)
    assert first["lineage"] is None
    assert second["lineage"] == {
        "parent_run": first["run"]["id"],
        "resumed_from_iteration": 25,
    }
    assert second["metrics"]["counters"]["guard.checkpoints.restored"] == 1
