"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_attack_command_reports_leak(capsys):
    code = main(["attack", "meltdown", "--seed", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "leaked      : True" in out


def test_attack_command_under_defense(capsys):
    code = main(["attack", "meltdown", "--seed", "2",
                 "--defense", "fence-futuristic"])
    out = capsys.readouterr().out
    assert code == 0
    assert "leaked      : False" in out


def test_attack_command_unknown_name():
    with pytest.raises(SystemExit):
        main(["attack", "not-an-attack"])


def test_workloads_command(capsys):
    code = main(["workloads", "--scale", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "stream" in out and "IPC=" in out


def test_collect_train_explain_pipeline(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    detector = str(tmp_path / "detector.json")
    assert main(["collect", corpus, "--seeds", "1", "--scale", "2",
                 "--period", "250"]) == 0
    assert main(["train", corpus, "--out", detector,
                 "--iterations", "120"]) == 0
    out = capsys.readouterr().out
    assert "accuracy=" in out
    assert "engineered HPCs" in out
    assert main(["explain", detector, "--corpus", corpus]) == 0
    out = capsys.readouterr().out
    assert "malicious-leaning" in out


def test_report_command(tmp_path, capsys):
    corpus = str(tmp_path / "corpus")
    detector = str(tmp_path / "detector.json")
    report = str(tmp_path / "report.md")
    assert main(["collect", corpus, "--seeds", "1", "--scale", "2",
                 "--period", "250", "--jobs", "2"]) == 0
    assert main(["train", corpus, "--out", detector,
                 "--iterations", "120"]) == 0
    assert main(["report", corpus, detector, "--out", report]) == 0
    text = open(report).read()
    assert "# EVAX system report" in text
    assert "## Detector" in text
