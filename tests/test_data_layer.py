"""Feature schema, normalization, dataset assembly."""

import numpy as np
import pytest

from repro.attacks import Meltdown, SpectrePHT
from repro.data import (
    BASE_FEATURES, Dataset, ENGINEERED_FEATURES, FeatureSchema,
    MaxNormalizer, SampleRecord, build_dataset, collect_source,
)
from repro.sim.hpc import COUNTER_NAMES, CounterBank
from repro.workloads import all_workloads


class TestSchema:
    def test_paper_dimensions(self):
        schema = FeatureSchema()
        assert len(BASE_FEATURES) == 133
        assert len(ENGINEERED_FEATURES) == 12
        assert schema.dim == 145

    def test_names_unique_and_complete(self):
        schema = FeatureSchema()
        assert len(schema.names) == len(set(schema.names)) == schema.dim

    def test_engineered_members_are_real_counters(self):
        for _, counters in ENGINEERED_FEATURES:
            for c in counters:
                assert CounterBank.has(c), c

    def test_raw_vector_base_passthrough(self):
        schema = FeatureSchema()
        deltas = [0] * len(COUNTER_NAMES)
        deltas[CounterBank.index_of("dcache.hits")] = 7
        vec = schema.raw_vector(deltas)
        idx = schema.names.index("dcache.hits")
        assert vec[idx] == 7

    def test_engineered_is_and_semantics(self):
        """AND feature is zero unless every member fired; otherwise the
        min of the members."""
        schema = FeatureSchema(engineered=(
            ("sec.test", ("dcache.hits", "dcache.misses")),), )
        deltas = [0] * len(COUNTER_NAMES)
        deltas[CounterBank.index_of("dcache.hits")] = 5
        assert schema.raw_vector(deltas)[-1] == 0
        deltas[CounterBank.index_of("dcache.misses")] = 3
        assert schema.raw_vector(deltas)[-1] == 3

    def test_custom_base_subset(self):
        schema = FeatureSchema(engineered=(), base=BASE_FEATURES[:50])
        assert schema.dim == 50

    def test_matrix_stacks_windows(self):
        schema = FeatureSchema()
        deltas = [0] * len(COUNTER_NAMES)
        m = schema.matrix([deltas, deltas])
        assert m.shape == (2, 145)

    def test_empty_matrix(self):
        schema = FeatureSchema()
        assert schema.matrix([]).shape == (0, 145)


class TestNormalizer:
    def test_scales_to_unit_max(self):
        X = np.array([[1.0, 10.0], [4.0, 5.0]])
        n = MaxNormalizer().fit(X)
        out = n.transform(X)
        assert out.max(axis=0) == pytest.approx([1.0, 1.0])

    def test_zero_column_safe(self):
        X = np.zeros((3, 2))
        out = MaxNormalizer().fit_transform(X)
        assert np.isfinite(out).all()

    def test_clips_unseen_larger_values(self):
        n = MaxNormalizer().fit(np.array([[2.0]]))
        assert n.transform(np.array([[10.0]]))[0, 0] == 1.0

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            MaxNormalizer().transform(np.zeros((1, 2)))


class TestDataset:
    def test_collect_attack_labels_malicious(self):
        records, result, machine = collect_source(SpectrePHT(seed=1),
                                                  label=1, sample_period=250)
        assert records
        assert all(r.label == 1 for r in records)
        assert all(r.category == "spectre-pht" for r in records)
        assert any(r.phase != 0 for r in records)

    def test_collect_workload_labels_benign(self):
        w = all_workloads(scale=2)[0]
        records, _, _ = collect_source(w, label=0, sample_period=250)
        assert records
        assert all(r.label == 0 for r in records)
        assert all(r.category == "benign" for r in records)

    def test_build_dataset_mixed(self):
        ds = build_dataset([Meltdown(seed=1)], all_workloads(scale=2)[:3],
                           sample_period=250)
        attack, benign = ds.balance_counts()
        assert attack > 0 and benign > 0
        assert "meltdown" in ds.categories
        assert "benign" in ds.categories

    def test_features_normalized(self):
        ds = build_dataset([Meltdown(seed=1)], all_workloads(scale=2)[:2],
                           sample_period=250)
        X, y, schema, norm = ds.features()
        assert X.shape == (len(ds), schema.dim)
        assert X.min() >= 0 and X.max() <= 1.0
        assert set(np.unique(y)) <= {0, 1}

    def test_subset_filters(self):
        ds = build_dataset([Meltdown(seed=1)], all_workloads(scale=2)[:2],
                           sample_period=250)
        attacks_only = ds.subset(lambda r: r.label == 1)
        assert len(attacks_only) > 0
        assert all(r.label == 1 for r in attacks_only.records)

    def test_require_leak_drops_broken_attacks(self):
        class BrokenAttack(Meltdown):
            def recover(self, machine, result):
                return [1 - b for b in self.secret_bits]   # always wrong
        ds = build_dataset([BrokenAttack(seed=1)], [], sample_period=250,
                           require_leak=True)
        assert len(ds) == 0

    def test_groups_and_phases_align(self):
        ds = build_dataset([Meltdown(seed=1)], [], sample_period=250)
        assert len(ds.groups()) == len(ds) == len(ds.phases())
