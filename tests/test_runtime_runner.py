"""The resilient task runner: isolation, retries, timeouts, ordering."""

import os
import time

import pytest

from repro.runtime import (
    CRASH, DIVERGENT, TIMEOUT, Task, TaskFailure, TaskResult, TaskRunner,
    backoff_delay,
)


def _echo(payload, attempt):
    return payload


def _sleepy_echo(payload, attempt):
    delay, value = payload
    time.sleep(delay)
    return value


def _fail_until(payload, attempt):
    """Succeed only after ``payload['fail_attempts']`` failures."""
    if attempt <= payload["fail_attempts"]:
        raise RuntimeError(f"boom on attempt {attempt}")
    return payload["value"]


def _always_raise(payload, attempt):
    raise ValueError("permanently broken")


def _hang(payload, attempt):
    time.sleep(3600)


def _hard_exit(payload, attempt):
    os._exit(7)


def _runner(fn, **kwargs):
    kwargs.setdefault("backoff_base", 0.0)    # keep tests fast
    return TaskRunner(fn, **kwargs)


class TestOrderingAndStreaming:
    def test_results_stream_in_submission_order(self):
        # later tasks finish first (reverse sleeps), order must hold
        tasks = [Task(key=f"t{i}", payload=((4 - i) * 0.05, i))
                 for i in range(5)]
        out = list(_runner(_sleepy_echo, processes=5).run(tasks))
        assert [r.value for r in out] == [0, 1, 2, 3, 4]
        assert [r.key for r in out] == [f"t{i}" for i in range(5)]
        assert all(isinstance(r, TaskResult) and r.ok for r in out)

    def test_empty_task_list(self):
        assert list(_runner(_echo).run([])) == []

    def test_concurrency_bounded(self):
        tasks = [Task(key=f"t{i}", payload=(0.05, i)) for i in range(6)]
        out = list(_runner(_sleepy_echo, processes=2).run(tasks))
        assert len(out) == 6


class TestRetries:
    def test_flaky_task_recovers(self):
        tasks = [Task(key="flaky",
                      payload={"fail_attempts": 2, "value": 42})]
        [res] = list(_runner(_fail_until, retries=2).run(tasks))
        assert res.ok and res.value == 42
        assert res.attempts == 3

    def test_exhausted_retries_quarantine_as_crash(self):
        [res] = list(_runner(_always_raise, retries=1).run(
            [Task(key="broken", payload=None)]))
        assert isinstance(res, TaskFailure) and not res.ok
        assert res.kind == CRASH
        assert res.attempts == 2
        assert "permanently broken" in res.message

    def test_one_bad_task_does_not_poison_the_batch(self):
        tasks = [Task(key="a", payload="a"),
                 Task(key="b", payload=None),
                 Task(key="c", payload="c")]

        def dispatch(payload, attempt):
            if payload is None:
                raise RuntimeError("bad")
            return payload

        out = list(_runner(dispatch, retries=0, processes=3).run(tasks))
        assert out[0].ok and out[0].value == "a"
        assert not out[1].ok and out[1].kind == CRASH
        assert out[2].ok and out[2].value == "c"


class TestTimeouts:
    def test_hung_worker_is_terminated_and_classified(self):
        [res] = list(_runner(_hang, retries=0, timeout=0.4).run(
            [Task(key="wedged", payload=None)]))
        assert res.kind == TIMEOUT
        assert "timeout" in res.message

    def test_hang_blocks_only_its_own_task(self):
        def mixed(payload, attempt):
            if payload == "hang":
                time.sleep(3600)
            return payload

        tasks = [Task(key="wedged", payload="hang"),
                 Task(key="fine", payload="ok")]
        out = list(_runner(mixed, retries=0, timeout=0.5,
                           processes=2).run(tasks))
        assert out[0].kind == TIMEOUT
        assert out[1].ok and out[1].value == "ok"


class TestCrashIsolation:
    def test_hard_process_death_is_a_crash(self):
        [res] = list(_runner(_hard_exit, retries=0).run(
            [Task(key="dead", payload=None)]))
        assert res.kind == CRASH
        assert "exit" in res.message


class TestValidation:
    def test_validator_rejection_is_divergent(self):
        def validator(value):
            if value != "good":
                raise ValueError("garbage output")

        tasks = [Task(key="ok", payload="good"),
                 Task(key="junk", payload="garbage")]
        out = list(_runner(_echo, retries=0,
                           validator=validator).run(tasks))
        assert out[0].ok
        assert out[1].kind == DIVERGENT
        assert "garbage" in out[1].message


class TestBackoff:
    def test_deterministic_jitter(self):
        a = backoff_delay("key", 2, base=0.1, maximum=5.0)
        b = backoff_delay("key", 2, base=0.1, maximum=5.0)
        assert a == b

    def test_grows_exponentially_and_caps(self):
        delays = [backoff_delay("k", n, base=0.1, maximum=1.0)
                  for n in range(1, 8)]
        assert delays[1] > delays[0]
        assert max(delays) <= 1.0

    def test_distinct_keys_get_distinct_jitter(self):
        assert backoff_delay("k1", 1, base=0.1) != \
            backoff_delay("k2", 1, base=0.1)

    def test_zero_base_means_no_wait(self):
        assert backoff_delay("k", 3, base=0.0) == 0.0
