"""The arms-race loop: clean runs, bit-identical crash-resume, hole
classification (worker kills, diverged retrains, corrupt checkpoints,
gate rollbacks), and the fatal-error contract."""

import json
import os

import pytest

from repro.arena.loop import (
    ArenaSpec, build_corpus, render_arena_report, run_arena,
)
from repro.core.patching import ModelSchemaError, detector_to_dict, \
    load_detector
from repro.data.dataset import Dataset
from repro.runtime import (
    ARENA_CHECKPOINT_CORRUPT_FAULT, CHECKPOINT_CORRUPT, CRASH,
    GATE_REGRESS_FAULT, GATE_REGRESSION, GEN_KILL_FAULT, GENOME_KILL_FAULT,
    REVACCINATE_NAN_FAULT, TRAINING_DIVERGED, ArenaChaos, ArenaError,
    ArenaFault, ChaosKill, CheckpointError, CheckpointStore,
)

#: small enough to keep the module fast, big enough for real evolution
SPEC = {
    "generations": 2,
    "population": 4,
    "survivors": 2,
    "attacks": ("meltdown",),
    "workloads": ("stream",),
    "sample_period": 150,
    "samples_per_class": 6,
    "gan_iterations": 16,
    "gan_hidden": (16, 16),
    "epochs": 6,
    # tiny held-out folds: a few flipped windows move a rate by ~0.3,
    # so honest retrain jitter must not read as a regression here (the
    # sabotage drill forces fp_rate to 1.0, which still trips)
    "fp_budget": 0.4,
    "fn_budget": 0.4,
    "seed": 5,
}


def one_gen_spec(**overrides):
    return ArenaSpec(**{**SPEC, "generations": 1, **overrides})


def read(path):
    with open(path, "rb") as f:
        return f.read()


@pytest.fixture(scope="module")
def clean(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("arena-clean"))
    spec = ArenaSpec(**SPEC)
    result = run_arena(spec, directory, processes=2, retries=1)
    return spec, directory, result


class TestCleanRun:
    def test_exit_0_and_full_trajectory(self, clean):
        spec, _, result = clean
        assert result.exit_code == 0
        assert result.holes == []
        assert len(result.trajectory) == spec.generations + 1
        assert result.trajectory[0]["generation"] == 0
        assert result.trajectory[0]["promoted"] is True
        assert result.promotions + result.rollbacks == spec.generations

    def test_generations_evaluate_the_whole_population(self, clean):
        spec, _, result = clean
        for entry in result.trajectory[1:]:
            assert entry["evaluated"] == spec.population
            assert 0 <= entry["leaked"] <= entry["evaluated"]
            assert 0.0 <= entry["evasion_mean"] <= 1.0
            assert len(entry["survivors"]) <= spec.survivors
            assert entry["incumbent"]["finite"] is True

    def test_artifacts_on_disk(self, clean):
        spec, directory, _ = clean
        for name in ("arena.md", "arena.json", "detector.json"):
            assert os.path.exists(os.path.join(directory, name))
        store_dir = os.path.join(directory, "checkpoints")
        assert os.path.exists(os.path.join(store_dir, "manifest.json"))
        for g in range(spec.generations + 1):
            assert os.path.exists(os.path.join(store_dir,
                                               f"gen-{g}.shard.json"))

    def test_ledger_counts_match_trajectory(self, clean):
        spec, directory, result = clean
        ledger = json.loads(read(os.path.join(directory, "arena.json")))
        assert ledger["schema"] == "repro.arena/1"
        assert ledger["spec_fingerprint"] == spec.fingerprint
        assert ledger["exit_code"] == 0
        counts = ledger["counts"]
        assert counts["generations"] == spec.generations
        assert counts["evaluated"] == sum(
            e.get("evaluated", 0) for e in result.trajectory)
        assert counts["promotions"] == result.promotions
        assert counts["holes"] == 0

    def test_report_is_a_pure_function_of_the_trajectory(self, clean):
        spec, directory, result = clean
        rendered = render_arena_report(spec, result.trajectory,
                                       result.holes)
        assert rendered.encode() == read(os.path.join(directory,
                                                      "arena.md"))

    def test_final_detector_round_trips(self, clean):
        _, directory, result = clean
        loaded = load_detector(os.path.join(directory, "detector.json"))
        assert detector_to_dict(loaded) == detector_to_dict(result.detector)


class TestResume:
    def test_sigkill_then_resume_is_bit_identical(self, clean, tmp_path):
        """The acceptance drill: kill at the top of the last generation,
        resume, and the report must match an uninterrupted run of the
        same spec in a different directory byte for byte."""
        spec, clean_dir, _ = clean
        directory = str(tmp_path / "race")
        chaos = ArenaChaos([ArenaFault(GEN_KILL_FAULT,
                                       generation=spec.generations)])
        with pytest.raises(ChaosKill):
            run_arena(spec, directory, processes=2, retries=1, chaos=chaos)
        # the interrupted prefix is already a consistent ledger
        partial = json.loads(read(os.path.join(directory, "arena.json")))
        assert partial["counts"]["generations"] == spec.generations - 1

        resumed = run_arena(spec, directory, processes=2, retries=1,
                            resume=True)
        assert resumed.exit_code == 0
        assert read(os.path.join(directory, "arena.md")) \
            == read(os.path.join(clean_dir, "arena.md"))

    def test_resume_of_a_finished_run_replays_nothing(self, clean):
        spec, directory, _ = clean
        before = read(os.path.join(directory, "arena.md"))
        resumed = run_arena(spec, directory, resume=True)
        assert resumed.exit_code == 0
        assert len(resumed.trajectory) == spec.generations + 1
        assert read(os.path.join(directory, "arena.md")) == before

    def test_resume_with_a_different_spec_is_fatal(self, clean):
        spec, directory, _ = clean
        other = ArenaSpec(**{**SPEC, "seed": SPEC["seed"] + 1})
        with pytest.raises(CheckpointError):
            run_arena(other, directory, resume=True)

    def test_corrupt_checkpoint_degrades_to_a_hole(self, clean, tmp_path):
        """A mangled generation shard is classified and its generation
        re-run — the race still finishes, bit-identical but for the
        hole."""
        spec, clean_dir, reference = clean
        directory = str(tmp_path / "race")
        chaos = ArenaChaos([ArenaFault(ARENA_CHECKPOINT_CORRUPT_FAULT,
                                       generation=spec.generations)])
        first = run_arena(spec, directory, processes=2, retries=1,
                          chaos=chaos)
        assert first.exit_code == 0      # corruption is on-disk only

        resumed = run_arena(spec, directory, processes=2, retries=1,
                            resume=True)
        assert resumed.exit_code == 1
        assert resumed.holes_by_kind() == {CHECKPOINT_CORRUPT: 1}
        # the re-run generation reproduces the clean run's trajectory
        for key in ("evaluated", "leaked", "evasion_mean", "evasion_max",
                    "promoted", "survivors", "incumbent"):
            assert resumed.trajectory[-1][key] \
                == reference.trajectory[-1][key]


class TestHoles:
    def test_worker_sigkill_is_a_crash_hole(self, tmp_path):
        spec = one_gen_spec()
        chaos = ArenaChaos([ArenaFault(GENOME_KILL_FAULT, generation=1,
                                       genome=0)])
        result = run_arena(spec, str(tmp_path / "race"), processes=2,
                           retries=0, chaos=chaos)
        assert result.exit_code == 1
        assert result.holes_by_kind() == {CRASH: 1}
        assert result.trajectory[-1]["evaluated"] == spec.population - 1

    def test_sabotaged_candidate_is_rolled_back(self, tmp_path):
        """The rollback contract: the gate refuses the wounded candidate
        and the shipped detector is the generation-0 incumbent."""
        spec = one_gen_spec()
        directory = str(tmp_path / "race")
        chaos = ArenaChaos([ArenaFault(GATE_REGRESS_FAULT, generation=1)])
        result = run_arena(spec, directory, processes=2, retries=1,
                           chaos=chaos)
        assert result.exit_code == 1
        assert result.rollbacks == 1
        assert result.promotions == 0
        assert result.holes_by_kind() == {GATE_REGRESSION: 1}
        entry = result.trajectory[-1]
        assert entry["promoted"] is False
        assert entry["gate"]["promoted"] is False
        assert any("fp_rate regression" in r
                   for r in entry["gate"]["reasons"])

        store = CheckpointStore(os.path.join(directory, "checkpoints"))
        store.open({"spec_fingerprint": spec.fingerprint,
                    "guard_policy": "rollback",
                    "initial_detector": ""}, resume=True)
        assert detector_to_dict(result.detector) \
            == store.get("gen-0")["detector"]

    def test_diverged_retrain_keeps_the_incumbent(self, tmp_path):
        spec = one_gen_spec()
        chaos = ArenaChaos([ArenaFault(REVACCINATE_NAN_FAULT,
                                       generation=1)])
        result = run_arena(spec, str(tmp_path / "race"), processes=2,
                           retries=1, chaos=chaos, guard_policy="raise")
        assert result.exit_code == 1
        assert result.holes_by_kind() == {TRAINING_DIVERGED: 1}
        entry = result.trajectory[-1]
        assert entry["promoted"] is False
        assert entry["gate"] is None     # never reached the gate
        # the incumbent survived untouched
        assert entry["incumbent"] == result.trajectory[0]["incumbent"]


class TestFatal:
    @pytest.mark.parametrize("overrides, message", [
        ({"generations": 0}, "at least one generation"),
        ({"survivors": 9}, "survivors"),
        ({"sample_period": 0}, "sample_period"),
        ({"attacks": ("nope",)}, "unknown attack"),
        ({"workloads": ("nope",)}, "unknown workload"),
        ({"eval_seeds": (0,)}, "held-out"),
    ])
    def test_bad_specs_raise_arena_error(self, tmp_path, overrides,
                                         message):
        spec = ArenaSpec(**{**SPEC, **overrides})
        with pytest.raises(ArenaError, match=message):
            run_arena(spec, str(tmp_path / "race"))

    def test_mismatched_eval_corpus_is_fatal(self, clean, tmp_path):
        """A held-out corpus collected under a different counter layout
        must be refused before any scoring happens."""
        _, _, result = clean
        spec = one_gen_spec()
        stale = Dataset(records=[], sample_period=spec.sample_period,
                        counters_sha256="0" * 64)
        with pytest.raises(ModelSchemaError, match="counter"):
            run_arena(spec, str(tmp_path / "race"),
                      initial_detector=result.detector, eval_corpus=stale)


def test_build_corpus_is_deterministic():
    spec = one_gen_spec()
    a = build_corpus(spec, spec.eval_seeds)
    b = build_corpus(spec, spec.eval_seeds)
    assert len(a.records) == len(b.records) > 0
    assert [r.deltas for r in a.records] == [r.deltas for r in b.records]
    assert {r.label for r in a.records} == {0, 1}
