"""`repro arena` CLI: flag plumbing, exit codes, resume, and the typed
schema-mismatch failure."""

import json
import os

import pytest

from repro.cli import main

ARGS = ["--generations", "1", "--population", "3", "--survivors", "1",
        "--attacks", "meltdown", "--workloads", "stream",
        "--period", "150", "--iterations", "16",
        "--fp-budget", "0.5", "--fn-budget", "0.5", "--seed", "5",
        "--jobs", "2", "--no-manifest"]


@pytest.fixture(scope="module")
def finished(tmp_path_factory):
    """One CLI race, shared by the happy-path and resume tests."""
    directory = str(tmp_path_factory.mktemp("arena-cli") / "race")
    code = main(["arena", directory] + ARGS)
    return directory, code


def test_arena_flags_run_a_race(finished, capsys):
    directory, code = finished
    assert code == 0
    for name in ("arena.md", "arena.json", "detector.json"):
        assert os.path.exists(os.path.join(directory, name))
    ledger = json.loads(open(os.path.join(directory, "arena.json")).read())
    assert ledger["spec"]["generations"] == 1
    assert ledger["spec"]["population"] == 3
    assert ledger["spec"]["attacks"] == ["meltdown"]
    assert ledger["exit_code"] == 0


def test_arena_resume_replays_the_checkpoint(finished, capsys):
    directory, _ = finished
    reference = open(os.path.join(directory, "arena.md"), "rb").read()
    capsys.readouterr()
    assert main(["arena", directory, "--resume"] + ARGS) == 0
    out = capsys.readouterr().out
    assert "arena:" in out and "report" in out
    assert open(os.path.join(directory, "arena.md"), "rb").read() \
        == reference


def test_arena_requires_a_directory(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["arena", "--no-manifest"])
    assert exc.value.code == 2
    assert "directory required" in capsys.readouterr().err


def test_arena_bad_spec_exits_fatal(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["arena", str(tmp_path / "race"), "--attacks", "nope",
              "--no-manifest"])
    assert exc.value.code == 2
    assert "unknown attack" in capsys.readouterr().err


def test_arena_resume_spec_mismatch_exits_fatal(finished, capsys):
    directory, _ = finished
    capsys.readouterr()
    mismatched = list(ARGS)
    mismatched[mismatched.index("--seed") + 1] = "6"
    with pytest.raises(SystemExit) as exc:
        main(["arena", directory, "--resume"] + mismatched)
    assert exc.value.code == 2
    assert "different settings" in capsys.readouterr().err


def test_arena_mismatched_eval_corpus_exits_fatal(finished, tmp_path,
                                                  capsys):
    """A corpus sidecar carrying a foreign counter-layout fingerprint is
    refused with the typed one-line exit-2 error."""
    from repro.data.dataset import Dataset, SampleRecord
    from repro.data.io import save_dataset
    from repro.sim.hpc import COUNTER_NAMES

    directory, _ = finished
    record = SampleRecord(deltas=[1] * len(COUNTER_NAMES), label=0,
                          category="benign", phase=0, source="b",
                          commit_index=0)
    corpus_path = str(tmp_path / "eval")
    save_dataset(Dataset(records=[record], sample_period=150), corpus_path)
    meta_path = corpus_path + ".meta.json"
    meta = json.loads(open(meta_path).read())
    meta["counters_sha256"] = "0" * 64
    open(meta_path, "w").write(json.dumps(meta))

    capsys.readouterr()
    with pytest.raises(SystemExit) as exc:
        main(["arena", str(tmp_path / "race"),
              "--detector", os.path.join(directory, "detector.json"),
              "--eval-corpus", corpus_path] + ARGS)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "schema mismatch" in err
    assert "counter layout" in err
