"""The regression gate: budget semantics, fail-secure non-finite
handling, and per-detector-schema scoring — all on a synthetic corpus so
no simulation runs."""

import numpy as np
import pytest

from repro.arena.gate import _holdout_stats, regression_gate
from repro.core.perceptron import HardwareDetector, evax_schema
from repro.data.dataset import Dataset, SampleRecord
from repro.sim.hpc import COUNTER_NAMES

WIDTH = len(COUNTER_NAMES)


def synthetic_corpus(n_benign=10, n_attack=10, seed=3):
    """Benign windows cluster low, attack windows high — separable, so a
    sane detector lands near-perfect and a sabotaged one stands out."""
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n_benign):
        deltas = rng.integers(0, 40, size=WIDTH).tolist()
        records.append(SampleRecord(deltas=deltas, label=0,
                                    category="benign", phase=0,
                                    source=f"benign-{i}", commit_index=i))
    for i in range(n_attack):
        deltas = rng.integers(400, 800, size=WIDTH).tolist()
        records.append(SampleRecord(deltas=deltas, label=1,
                                    category="attack", phase=1,
                                    source=f"attack-{i}", commit_index=i))
    return Dataset(records=records, sample_period=100)


def trained_detector(corpus, seed=1, epochs=60):
    detector = HardwareDetector(evax_schema(), seed=seed, threshold=0.5)
    X = corpus.raw_matrix(detector.schema)
    detector.fit(X, corpus.labels(), epochs=epochs, seed=seed)
    return detector


@pytest.fixture(scope="module")
def corpus():
    return synthetic_corpus()


@pytest.fixture(scope="module")
def incumbent(corpus):
    return trained_detector(corpus, seed=1)


def test_holdout_stats_shape(incumbent, corpus):
    stats = _holdout_stats(incumbent, corpus)
    assert set(stats) == {"fp_rate", "fn_rate", "accuracy", "auc",
                          "threshold", "finite"}
    assert stats["finite"] is True
    assert 0.0 <= stats["fp_rate"] <= 1.0
    assert 0.0 <= stats["fn_rate"] <= 1.0


def test_equivalent_candidate_is_promoted(incumbent, corpus):
    candidate = trained_detector(corpus, seed=2)
    verdict = regression_gate(candidate, incumbent, corpus,
                              fp_budget=0.1, fn_budget=0.1)
    assert verdict.promoted
    assert verdict.reasons == []
    assert verdict.to_dict()["candidate"]["finite"] is True


def test_sabotaged_threshold_trips_the_fp_budget(incumbent, corpus):
    candidate = trained_detector(corpus, seed=2)
    candidate.threshold = 0.0            # flags everything, fp_rate -> 1
    verdict = regression_gate(candidate, incumbent, corpus,
                              fp_budget=0.1, fn_budget=0.1)
    assert not verdict.promoted
    assert any("fp_rate regression" in r for r in verdict.reasons)
    assert verdict.candidate["fp_rate"] == 1.0


def test_blinded_candidate_trips_the_fn_budget(incumbent, corpus):
    candidate = trained_detector(corpus, seed=2)
    candidate.threshold = 1.0            # misses everything, fn_rate -> 1
    verdict = regression_gate(candidate, incumbent, corpus,
                              fp_budget=0.5, fn_budget=0.1)
    assert not verdict.promoted
    assert any("fn_rate regression" in r for r in verdict.reasons)


def test_nan_poisoned_candidate_fails_closed(incumbent, corpus):
    """Non-finite scores fail the gate outright, whatever the budgets."""
    candidate = trained_detector(corpus, seed=2)
    candidate.net.layers[0].weights[0, 0] = float("nan")
    verdict = regression_gate(candidate, incumbent, corpus,
                              fp_budget=1.0, fn_budget=1.0)
    assert not verdict.promoted
    assert any("non-finite" in r for r in verdict.reasons)
    assert verdict.candidate["finite"] is False


def test_incumbent_vs_itself_always_passes(incumbent, corpus):
    """Zero budgets still promote an identical candidate: the comparison
    is <=, so a no-op retrain can never be rejected."""
    verdict = regression_gate(incumbent, incumbent, corpus,
                              fp_budget=0.0, fn_budget=0.0)
    assert verdict.promoted
    assert verdict.candidate == verdict.incumbent
