"""Genome representation: canonical JSON dicts, deterministic sampling/
mutation under an explicit RNG, and faithful attack reconstruction."""

import json

import numpy as np
import pytest

from repro.arena.genome import (
    FAMILIES, TOOLS, build_attack, canonical_json, genome_key, mutate_genome,
    sample_genome, seed_population,
)
from repro.attacks import EvasiveAttack
from repro.attacks.rowhammer import Rowhammer, TRRespass


def rng(seed=11):
    return np.random.default_rng(seed)


class TestSampling:
    def test_round_robin_tools(self):
        population = seed_population(6, rng())
        assert [g["tool"] for g in population] == list(TOOLS) * 2

    def test_same_seed_same_population(self):
        a = seed_population(9, rng(4))
        b = seed_population(9, rng(4))
        assert a == b

    def test_keys_unique_within_population(self):
        keys = [genome_key(g) for g in seed_population(12, rng())]
        assert len(set(keys)) == len(keys)

    @pytest.mark.parametrize("tool", TOOLS)
    def test_fields_within_mutation_space(self, tool):
        for _ in range(8):
            g = sample_genome(rng(), tool=tool)
            assert g["tool"] == tool
            assert 1 <= g["seed"] < 1 << 16
            assert 0.0 <= g["nop_rate"] <= 0.5
            assert 0.0 <= g["prefetch_rate"] <= 0.25
            assert g["camouflage_actors"] in (0, 1, 2)
            if tool == "trrespass":
                assert g["sides"] in (2, 3, 4, 6)
                assert len(g["offsets"]) == g["sides"]
                assert g["offsets"] == sorted(g["offsets"])
                assert 340 <= g["iterations"] < 520
            else:
                assert g["family"] in FAMILIES[tool]

    def test_genomes_are_json_stable(self):
        """The canonical form must survive a JSON round trip unchanged —
        genomes live in checkpoint shards and worker payloads."""
        for g in seed_population(6, rng()):
            assert json.loads(canonical_json(g)) == g
            assert genome_key(json.loads(canonical_json(g))) == genome_key(g)


class TestMutation:
    def test_deterministic_for_same_rng_state(self):
        parent = sample_genome(rng(2))
        assert mutate_genome(parent, rng(7)) == mutate_genome(parent, rng(7))

    def test_mutant_stays_in_mutation_space(self):
        parent = sample_genome(rng(3), tool="trrespass")
        for i in range(12):
            child = mutate_genome(parent, rng(i))
            assert child["tool"] == "trrespass"
            assert 0.0 <= child["nop_rate"] <= 0.5
            assert 0.0 <= child["prefetch_rate"] <= 0.25
            build_attack(child)          # must always reconstruct

    def test_mutation_changes_the_key(self):
        parent = sample_genome(rng(5))
        children = [mutate_genome(parent, rng(i)) for i in range(6)]
        assert any(genome_key(c) != genome_key(parent) for c in children)


class TestBuildAttack:
    def test_wraps_in_evasion_with_arena_name(self):
        g = sample_genome(rng(1), tool="transynther")
        attack = build_attack(g)
        assert isinstance(attack, EvasiveAttack)
        assert attack.name == f"arena:transynther:{genome_key(g)}"

    def test_trrespass_sides_pick_the_class(self):
        many = dict(sample_genome(rng(1), tool="trrespass"),
                    sides=4, offsets=[-2, -1, 1, 2])
        two = dict(sample_genome(rng(1), tool="trrespass"),
                   sides=2, offsets=[-1, 1])
        assert isinstance(build_attack(many).base, TRRespass)
        assert isinstance(build_attack(two).base, Rowhammer)
        assert len(build_attack(many).base.aggressor_rows) == 4

    @pytest.mark.parametrize("tool", TOOLS)
    def test_rebuild_is_bit_identical(self, tool):
        """Workers rebuild genomes from their canonical dicts; the program
        must not depend on builder identity or call order."""
        g = sample_genome(rng(9), tool=tool)
        prog_a, _ = build_attack(g).build()
        prog_b, _ = build_attack(json.loads(canonical_json(g))).build()
        ops_a = [(i.op, i.rd, i.rs1, i.rs2, i.imm, i.target)
                 for i in prog_a.instructions]
        ops_b = [(i.op, i.rd, i.rs1, i.rs2, i.imm, i.target)
                 for i in prog_b.instructions]
        assert ops_a == ops_b
