"""Pipeline behaviour: commits, loops, memory, control flow, limits."""

from repro.sim import Machine, ProgramBuilder, SimConfig


def _loop_program(iterations=50):
    b = ProgramBuilder("loop")
    b.movi(1, 0)
    b.movi(2, iterations)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    return b.build()


def test_loop_commits_expected_instruction_count():
    m = Machine(_loop_program(50), SimConfig())
    r = m.run()
    # movi x2 + 2 insts * 50 iterations + halt
    assert r.committed == 2 + 100 + 1
    assert r.regs[1] == 50
    assert r.halt_reason == "halt"


def test_ipc_is_reasonable_for_tight_loop():
    r = Machine(_loop_program(200), SimConfig()).run()
    assert 0.5 < r.ipc < 8.0


def test_load_store_roundtrip():
    b = ProgramBuilder()
    b.movi(1, 0x9000)
    b.movi(2, 1234)
    b.store(1, 2, 0)
    b.load(3, 1, 0)
    b.halt()
    m = Machine(b.build(), SimConfig())
    r = m.run()
    assert r.regs[3] == 1234
    assert m.memory.load(0x9000) == 1234


def test_store_to_load_forwarding_counted():
    b = ProgramBuilder()
    b.movi(1, 0x9000)
    b.movi(2, 77)
    b.store(1, 2, 0)
    b.load(3, 1, 0)    # should forward from the in-flight store
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.regs[3] == 77
    assert r.counters["lsq.forwLoads"] >= 1


def test_initial_memory_visible_to_loads():
    b = ProgramBuilder()
    b.data(0xA000, 555)
    b.movi(1, 0xA000)
    b.load(2, 1, 0)
    b.halt()
    assert Machine(b.build(), SimConfig()).run().regs[2] == 555


def test_call_and_ret_return_correctly():
    b = ProgramBuilder()
    b.reg(15, 0x8000)
    b.movi(1, 0)
    b.call("f")
    b.addi(1, 1, 100)   # executed after return
    b.halt()
    b.label("f")
    b.addi(1, 1, 1)
    b.ret()
    r = Machine(b.build(), SimConfig()).run()
    assert r.regs[1] == 101


def test_nested_calls():
    b = ProgramBuilder()
    b.reg(15, 0x8000)
    b.movi(1, 0)
    b.call("f")
    b.halt()
    b.label("f")
    b.addi(1, 1, 1)
    b.call("g")
    b.ret()
    b.label("g")
    b.addi(1, 1, 10)
    b.ret()
    assert Machine(b.build(), SimConfig()).run().regs[1] == 11


def test_indirect_jump_goes_to_register_target():
    b = ProgramBuilder()
    b.movi_label(1, "dest")
    b.jmpi(1)
    b.movi(2, 111)      # skipped
    b.label("dest")
    b.movi(3, 222)
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.regs[3] == 222
    assert r.regs[2] == 0


def test_rdtsc_monotonic():
    b = ProgramBuilder()
    b.rdtsc(1)
    b.fence()
    b.rdtsc(2)
    b.sub(3, 2, 1)
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.regs[3] > 0


def test_end_of_program_halts_without_explicit_halt():
    b = ProgramBuilder()
    b.movi(1, 3)
    r = Machine(b.build(), SimConfig()).run()
    assert r.halt_reason == "end-of-program"
    assert r.regs[1] == 3


def test_max_cycles_bounds_runaway_program():
    b = ProgramBuilder()
    b.label("spin")
    b.jmp("spin")
    r = Machine(b.build(), SimConfig()).run(max_cycles=500)
    assert r.halt_reason == "max-cycles"
    assert r.cycles == 500


def test_rob_never_exceeds_capacity():
    config = SimConfig(rob_entries=16)
    b = ProgramBuilder()
    b.movi(1, 1)
    b.movi(2, 3)
    for _ in range(60):
        b.div(1, 1, 2)      # slow chain backs up the ROB
    b.halt()
    m = Machine(b.build(), config)
    while not m.cpu.halted and m.cycle < 10_000:
        m.cpu.step(m.cycle)
        assert len(m.cpu.rob) <= 16
        m.cycle += 1


def test_fence_serializes_timing_reads():
    # without fences, both rdtscs issue together; with a fence between,
    # the second waits for the slow load to commit
    def run(with_fence):
        b = ProgramBuilder()
        b.movi(1, 0x600000)
        b.rdtsc(2)
        b.load(3, 1, 0)     # cold: DRAM miss
        if with_fence:
            b.fence()
        b.rdtsc(4)
        b.sub(5, 4, 2)
        b.halt()
        return Machine(b.build(), SimConfig()).run().regs[5]

    assert run(True) > run(False) + 20


def test_mark_records_phase_boundaries():
    b = ProgramBuilder()
    b.mark(1)
    for _ in range(5):
        b.nop()
    b.mark(2)
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    phases = [(p.phase) for p in r.phase_marks]
    assert phases == [1, 2]
