"""Branch prediction structures and misprediction behaviour."""

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.branch import BTB, RAS, TournamentPredictor


class TestTournament:
    def test_learns_always_taken(self):
        p = TournamentPredictor()
        for _ in range(8):
            p.update(100, True)
        assert p.predict(100) is True

    def test_learns_always_not_taken(self):
        p = TournamentPredictor()
        for _ in range(8):
            p.update(100, False)
        assert p.predict(100) is False

    def test_relearns_after_flip(self):
        p = TournamentPredictor()
        for _ in range(8):
            p.update(100, True)
        for _ in range(8):
            p.update(100, False)
        assert p.predict(100) is False

    def test_distinct_pcs_independent(self):
        p = TournamentPredictor()
        for _ in range(8):
            p.update(5, True)
            p.update(6, False)
        assert p.predict(5) is True
        assert p.predict(6) is False


class TestBTB:
    def test_miss_returns_none(self):
        assert BTB(entries=64).lookup(10) is None

    def test_hit_after_update(self):
        btb = BTB(entries=64)
        btb.update(10, 99)
        assert btb.lookup(10) == 99

    def test_aliasing_pc_with_different_tag_misses(self):
        btb = BTB(entries=64)
        btb.update(10, 99)
        assert btb.lookup(10 + 64) is None    # same index, different tag

    def test_update_overwrites(self):
        btb = BTB(entries=64)
        btb.update(10, 99)
        btb.update(10, 42)
        assert btb.lookup(10) == 42


class TestRAS:
    def test_lifo_order(self):
        ras = RAS(entries=4)
        ras.push(1)
        ras.push(2)
        assert ras.pop() == 2
        assert ras.pop() == 1

    def test_empty_pop_returns_none(self):
        assert RAS(entries=4).pop() is None

    def test_overflow_wraps_and_loses_oldest(self):
        ras = RAS(entries=2)
        for v in (1, 2, 3):
            ras.push(v)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None   # 1 was overwritten


def test_mispredict_squashes_wrong_path_architecturally():
    """A data-dependent branch mispredicts, but architectural state must
    be exactly the taken-path state."""
    b = ProgramBuilder()
    b.data(0x5000, 1)
    b.movi(1, 0x5000)
    b.load(2, 1, 0)
    b.movi(3, 1)
    b.beq(2, 3, "taken")
    b.movi(4, 111)            # wrong path
    b.halt()
    b.label("taken")
    b.movi(5, 222)
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.regs[5] == 222
    assert r.regs[4] == 0


def test_trained_loop_has_few_mispredicts():
    b = ProgramBuilder()
    b.movi(1, 0)
    b.movi(2, 300)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    # only warm-up and exit mispredicts
    assert r.counters["iew.branchMispredicts"] <= 8


def test_wrong_path_load_perturbs_cache_state():
    """The security-critical property: a squashed wrong-path load leaves
    its line in the cache."""
    probe = 0x40000
    b = ProgramBuilder()
    b.data(0x30000, 0x32000)
    b.data(0x32000, 7)
    b.movi(1, probe)
    b.movi(6, 0x30000)
    b.clflush(6, 0)
    b.fence()
    b.load(4, 6, 0)        # slow: r4 = 0x32000 arrives from DRAM
    b.movi(5, 0x32000)
    b.beq(4, 5, "away")    # actual taken, predicted fallthrough (cold)
    b.load(7, 1, 0)        # wrong path: touches probe, then is squashed
    b.label("away")
    b.halt()
    m = Machine(b.build(), SimConfig())
    r = m.run()
    assert m.hierarchy.data_line_present(probe)
    assert r.regs[7] == 0  # the squashed load never became architectural
