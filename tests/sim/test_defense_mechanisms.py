"""Fencing and InvisiSpec mechanics inside the core."""

import pytest

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.config import DefenseMode
from repro.sim.isa import KERNEL_BASE


def _spec_load_program():
    """A mispredicted branch shadowing a load that would touch probe."""
    probe = 0x20000
    b = ProgramBuilder()
    b.data(0x30000, 0x32000)
    b.data(0x32000, 7)
    b.movi(1, probe)
    b.movi(6, 0x30000)
    b.clflush(6, 0)
    b.fence()
    b.load(4, 6, 0)
    b.movi(5, 0x32000)
    b.beq(4, 5, "away")     # actual taken, predicted fallthrough
    b.load(7, 1, 0)         # wrong-path probe touch
    b.label("away")
    b.halt()
    return b.build(), probe


@pytest.mark.parametrize("mode", [DefenseMode.FENCE_SPECTRE,
                                  DefenseMode.FENCE_FUTURISTIC,
                                  DefenseMode.INVISISPEC_SPECTRE,
                                  DefenseMode.INVISISPEC_FUTURISTIC])
def test_defenses_stop_wrong_path_cache_fill(mode):
    program, probe = _spec_load_program()
    m = Machine(program, SimConfig(defense=mode))
    m.run()
    assert not m.hierarchy.data_line_present(probe)


def test_no_defense_leaves_wrong_path_fill():
    program, probe = _spec_load_program()
    m = Machine(program, SimConfig())
    m.run()
    assert m.hierarchy.data_line_present(probe)


def _benign_loop(n=300):
    b = ProgramBuilder()
    b.movi(1, 0)
    b.movi(2, n)
    b.movi(3, 0x9000)
    b.label("top")
    b.load(4, 3, 0)
    b.addi(4, 4, 1)
    b.store(3, 4, 0)
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    return b.build()


def test_defense_overhead_ordering():
    """Over the benign suite, fencing costs more than InvisiSpec and both
    cost more than no defense (the paper's Figure 16 ordering)."""
    from repro.workloads import all_workloads
    cycles = {mode: 0 for mode in DefenseMode}
    for w in all_workloads(scale=2):
        program, actors = w.build()
        for mode in DefenseMode:
            m = Machine(program, SimConfig(defense=mode), actors=actors)
            cycles[mode] += m.run(max_cycles=400_000).cycles
    base = cycles[DefenseMode.NONE]
    assert cycles[DefenseMode.FENCE_SPECTRE] > base * 1.05
    assert cycles[DefenseMode.INVISISPEC_SPECTRE] > base
    # fencing costs more than buffering within each threat model
    assert cycles[DefenseMode.FENCE_SPECTRE] > \
        cycles[DefenseMode.INVISISPEC_SPECTRE]
    # the futuristic (all-loads) InvisiSpec model costs more than the
    # branch-shadow-only one
    assert cycles[DefenseMode.INVISISPEC_FUTURISTIC] > \
        cycles[DefenseMode.INVISISPEC_SPECTRE]


def test_defenses_preserve_architectural_results():
    results = {}
    for mode in DefenseMode:
        m = Machine(_benign_loop(50), SimConfig(defense=mode))
        r = m.run(max_cycles=500_000)
        results[mode] = (r.regs[1], m.memory.load(0x9000))
    values = set(results.values())
    assert len(values) == 1, results
    assert values.pop() == (50, 50)


def test_invisispec_exposes_loads_at_commit():
    program, _ = _spec_load_program()
    m = Machine(program, SimConfig(defense=DefenseMode.INVISISPEC_FUTURISTIC))
    r = m.run()
    assert r.counters["specbuf.fills"] > 0
    assert r.counters["specbuf.exposes"] > 0


def test_invisispec_committed_loads_become_visible():
    b = ProgramBuilder()
    b.movi(1, 0x9000)
    b.load(2, 1, 0)
    b.fence()
    b.halt()
    m = Machine(b.build(), SimConfig(defense=DefenseMode.INVISISPEC_FUTURISTIC))
    m.run()
    # after commit+expose the line is architecturally cached
    assert m.hierarchy.data_line_present(0x9000)


def test_futuristic_fence_blocks_meltdown_probe_touch():
    probe = 0x20000
    b = ProgramBuilder()
    b.data(KERNEL_BASE + 0x100, 1)
    b.movi(1, probe)
    b.movi(2, KERNEL_BASE + 0x100)
    b.prefetch(2, 0)
    b.fence()
    b.try_("handler")
    b.movi(4, 1_000_000)
    b.movi(5, 3)
    b.div(4, 4, 5)
    b.div(4, 4, 5)
    b.load(3, 2, 0)
    b.shl(3, 3, 6)
    b.add(3, 3, 1)
    b.load(3, 3, 0)
    b.label("dead")
    b.jmp("dead")
    b.label("handler")
    b.halt()
    m = Machine(b.build(), SimConfig(defense=DefenseMode.FENCE_FUTURISTIC))
    m.run(max_cycles=500_000)
    assert not m.hierarchy.data_line_present(probe + 64)


def test_defense_switchable_mid_run():
    """set_defense() takes effect on the live machine (the adaptive
    architecture's mechanism)."""
    program = _benign_loop(400)
    m = Machine(program, SimConfig())
    # run half the program, then enable fencing
    for _ in range(200):
        m.cpu.step(m.cycle)
        m.cycle += 1
    m.set_defense(DefenseMode.FENCE_SPECTRE)
    assert m.config.defense is DefenseMode.FENCE_SPECTRE
    r = m.run(max_cycles=500_000)
    assert r.halt_reason == "halt"
    assert r.regs[1] == 400
