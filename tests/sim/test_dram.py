"""DRAM timing, write queue, refresh, and Rowhammer corruption."""

from repro.sim import SimConfig
from repro.sim.dram import DRAM
from repro.sim.hpc import CounterBank
from repro.sim.memory import MainMemory


def make_dram(**overrides):
    cfg = SimConfig(**overrides)
    counters = CounterBank()
    mem = MainMemory()
    return DRAM(cfg, counters, mem), counters, mem, cfg


def test_bank_row_mapping_roundtrip():
    dram, _, _, cfg = make_dram()
    for addr in (0, 8192, 123456, 10_000_000):
        bank, row = dram.bank_row(addr)
        base = dram.row_base_address(bank, row)
        assert dram.bank_row(base) == (bank, row)
        assert base <= addr < base + cfg.dram_row_bytes * cfg.dram_banks


def test_row_hit_faster_than_row_miss():
    dram, _, _, cfg = make_dram()
    t_open = dram.access(0x10000, False, cycle=0)
    t_hit = dram.access(0x10040, False, cycle=1)      # same row
    assert t_open == cfg.dram_row_miss_latency
    assert t_hit == cfg.dram_row_hit_latency


def test_row_conflict_reopens():
    dram, c, _, cfg = make_dram()
    dram.access(0x10000, False, cycle=0)
    bank, row = dram.bank_row(0x10000)
    other = dram.row_base_address(bank, row + 1)
    t = dram.access(other, False, cycle=1)
    assert t == cfg.dram_row_miss_latency
    assert c.get("dram.precharges") == 1


def test_peek_latency_has_no_side_effects():
    dram, c, _, _ = make_dram()
    before = dict(zip(range(len(c.values)), c.values))
    dram.peek_latency(0x10000)
    assert c.values == list(before.values())
    assert dram.open_rows == [None] * dram.num_banks


def test_reads_serviced_by_write_queue():
    dram, c, _, _ = make_dram()
    dram.access(0x20000, True, cycle=0)
    t = dram.access(0x20000, False, cycle=1)
    assert t == 8
    assert c.get("dram.bytesReadWrQ") == 64
    assert c.get("wrqueue.bytesRead") == 64


def test_refresh_clears_activation_counts():
    dram, c, _, cfg = make_dram()
    dram.access(0x10000, False, cycle=0)
    assert dram.activations_since_refresh
    dram.access(0x10000, False, cycle=cfg.dram_refresh_interval + 1)
    assert c.get("dram.refreshes") == 1
    # counts were cleared at the refresh (the access after may re-add)
    assert sum(dram.activations_since_refresh.values()) <= 1


def test_rowhammer_flips_neighbours_at_threshold():
    dram, c, mem, cfg = make_dram(rowhammer_threshold=10)
    bank, row = 3, 20
    aggressor = dram.row_base_address(bank, row)
    victim_up = dram.row_base_address(bank, row - 1)
    victim_down = dram.row_base_address(bank, row + 1)
    other_bank = dram.row_base_address(bank + 1, 5)
    for i in range(10):
        dram.access(aggressor, False, cycle=2 * i)
        dram.access(other_bank, False, cycle=2 * i + 1)  # keeps row churn?
        # force a conflict so every access activates
        dram.open_rows[bank] = None
    assert c.get("dram.bitflips") == 2
    assert mem.load(victim_up) != 0 or mem.load(victim_down) != 0
    assert victim_up in dram.flipped_addresses
    assert victim_down in dram.flipped_addresses


def test_rowhammer_disabled_never_flips():
    dram, c, _, _ = make_dram(rowhammer_enabled=False, rowhammer_threshold=2)
    aggressor = dram.row_base_address(0, 5)
    for i in range(10):
        dram.access(aggressor, False, cycle=i)
        dram.open_rows[0] = None
    assert c.get("dram.bitflips") == 0


def test_double_sided_flips_distinct_bits():
    """Flips from the two aggressors must not cancel each other."""
    dram, _, mem, _ = make_dram(rowhammer_threshold=5)
    bank, victim = 2, 10
    up = dram.row_base_address(bank, victim - 1)
    down = dram.row_base_address(bank, victim + 1)
    victim_addr = dram.row_base_address(bank, victim)
    for i in range(5):
        dram.access(up, False, cycle=2 * i)
        dram.access(down, False, cycle=2 * i + 1)
    assert mem.load(victim_addr) != 0
