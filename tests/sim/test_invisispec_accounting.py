"""InvisiSpec expose-stall accounting contract.

Regression for the commit-path bug where the early ``return`` on
``needs_expose`` skipped the idle-cycle bookkeeping and re-counted the
expose on every stalled commit attempt: ``specbuf.exposes`` must count
expose *events* exactly once per exposed load, and
``specbuf.validationStalls`` the commit cycles stalled by validation, so

    validationStalls == exposes * invisispec_expose_latency

holds for any run (the contract documented on ``O3Core._expose``).
"""

import pytest

from repro.attacks import ATTACKS_BY_NAME
from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.config import DefenseMode
from repro.sim.cpu import O3Core
from repro.sim.reference import ReferenceO3Core


def _single_load_program():
    builder = ProgramBuilder()
    builder.data(0x9000, 42)
    builder.movi(1, 0x9000)
    builder.load(2, 1, 0)
    builder.halt()
    return builder.build()


def test_single_exposed_load_counts_once():
    """Under the futuristic model every load is serviced invisibly, so one
    committed load means exactly one expose and exactly one stall block —
    no double counting while the stalled commit port re-polls the head."""
    config = SimConfig(defense=DefenseMode.INVISISPEC_FUTURISTIC)
    machine = Machine(_single_load_program(), config)
    machine.run(max_cycles=10_000)
    counters = machine.counters
    assert machine.cpu.halt_reason == "halt"
    assert counters.get("specbuf.exposes") == 1
    assert (counters.get("specbuf.validationStalls")
            == config.invisispec_expose_latency)
    # the stalled commit cycles surface as idle cycles via the
    # no-retirement path in O3Core.step
    assert counters.get("cpu.idleCycles") >= config.invisispec_expose_latency


@pytest.mark.parametrize("mode", [DefenseMode.INVISISPEC_SPECTRE,
                                  DefenseMode.INVISISPEC_FUTURISTIC])
@pytest.mark.parametrize("core_cls", [O3Core, ReferenceO3Core])
def test_stalls_track_exposes_exactly(mode, core_cls):
    program, _ = ATTACKS_BY_NAME["spectre-pht"]().build()
    config = SimConfig(defense=mode)
    machine = Machine(program, config, core_cls=core_cls)
    machine.run(max_cycles=60_000)
    counters = machine.counters
    exposes = counters.get("specbuf.exposes")
    assert exposes > 0, "attack run should expose at least one load"
    assert (counters.get("specbuf.validationStalls")
            == exposes * config.invisispec_expose_latency)
