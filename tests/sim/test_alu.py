"""Architectural semantics of ALU and move operations."""

import pytest

from repro.sim import Machine, ProgramBuilder, SimConfig


def run_regs(build_body):
    b = ProgramBuilder()
    build_body(b)
    b.halt()
    m = Machine(b.build(), SimConfig())
    r = m.run(max_cycles=50_000)
    assert r.halt_reason == "halt"
    return r.regs


def test_movi_and_mov():
    regs = run_regs(lambda b: (b.movi(1, 42), b.mov(2, 1)))
    assert regs[1] == 42 and regs[2] == 42


@pytest.mark.parametrize("op,a,c,expected", [
    ("add", 7, 5, 12),
    ("sub", 7, 5, 2),
    ("and_", 0b1100, 0b1010, 0b1000),
    ("or_", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("mul", 7, 6, 42),
    ("div", 42, 5, 8),
])
def test_binary_ops(op, a, c, expected):
    def body(b):
        b.movi(1, a)
        b.movi(2, c)
        getattr(b, op)(3, 1, 2)
    assert run_regs(body)[3] == expected


def test_addi_with_negative_immediate():
    regs = run_regs(lambda b: (b.movi(1, 10), b.addi(2, 1, -4)))
    assert regs[2] == 6


def test_shifts():
    def body(b):
        b.movi(1, 5)
        b.shl(2, 1, 3)
        b.shr(3, 2, 2)
    regs = run_regs(body)
    assert regs[2] == 40 and regs[3] == 10


def test_arithmetic_shift_right_of_negative_gives_sign():
    def body(b):
        b.movi(1, 3)
        b.movi(2, 10)
        b.sub(3, 1, 2)      # -7
        b.shr(4, 3, 63)
        b.andi(4, 4, 1)
    assert run_regs(body)[4] == 1


def test_division_by_zero_yields_zero():
    def body(b):
        b.movi(1, 5)
        b.movi(2, 0)
        b.div(3, 1, 2)
    assert run_regs(body)[3] == 0


def test_andi_masks_counter():
    def body(b):
        b.movi(1, 0x12F)
        b.andi(2, 1, 0xFF)
    assert run_regs(body)[2] == 0x2F


def test_dependent_chain_computes_in_order():
    def body(b):
        b.movi(1, 1)
        for _ in range(10):
            b.add(1, 1, 1)      # doubles each time
    assert run_regs(body)[1] == 1024
