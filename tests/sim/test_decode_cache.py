"""Decode cache: content-keyed interning, invalidation, determinism."""

from repro.sim import ProgramBuilder
from repro.sim.decode import (
    MAX_BLOCK_LEN, DecodeCache, GLOBAL_DECODE_CACHE, crack_specs,
    instruction_spec, program_content_hash,
)
from repro.sim.isa import Op

import pytest


def _loop_prog(n, name="loop"):
    b = ProgramBuilder(name)
    b.movi(1, 0)
    b.movi(2, n)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    return b.build()


def _spec(op, rd=0, rs1=0, rs2=0, imm=0, target=None):
    return (op, rd, rs1, rs2, imm, target)


class TestInterning:
    def test_identical_blocks_share_instruction_objects(self):
        """Two builds of the same source intern the very same cracked
        Instruction instances — the point of the cache."""
        a = _loop_prog(10)
        b = _loop_prog(10)
        assert len(a.instructions) == len(b.instructions)
        for ia, ib in zip(a.instructions, b.instructions):
            assert ia is ib

    def test_program_name_does_not_defeat_sharing(self):
        a = _loop_prog(10, name="x")
        b = _loop_prog(10, name="y")
        assert a.instructions[0] is b.instructions[0]

    def test_mismatched_content_misses(self):
        """Change any field of any instruction and the block is a
        distinct key: cached instructions can never alias (the
        content-hash key proof)."""
        cache = DecodeCache()
        base = [_spec(Op.MOVI, rd=1, imm=1),
                _spec(Op.HALT)]
        block = cache.intern_block(0, tuple(base))
        assert cache.misses == 1
        # same content -> hit, same objects
        again = cache.intern_block(0, tuple(base))
        assert again is block
        assert cache.hits == 1
        # different immediate -> miss, different objects
        changed = [_spec(Op.MOVI, rd=1, imm=2), _spec(Op.HALT)]
        other = cache.intern_block(0, tuple(changed))
        assert other is not block
        assert other[0].imm == 2 and block[0].imm == 1
        assert cache.misses == 2
        # same content at a different start pc -> also a miss
        moved = cache.intern_block(4, tuple(base))
        assert moved is not block
        assert cache.misses == 3

    def test_crack_splits_at_control_flow_and_max_len(self):
        specs = [_spec(Op.MOVI, rd=1, imm=1)
                 for _ in range(MAX_BLOCK_LEN + 3)]
        specs.append(_spec(Op.HALT))
        cache = DecodeCache()
        insts = crack_specs(specs, cache)
        assert len(insts) == len(specs)
        # one megablock split at MAX_BLOCK_LEN, the tail ends at HALT
        assert cache.misses == 2
        assert [instruction_spec(i) for i in insts] == specs

    def test_fifo_eviction_is_deterministic(self):
        cache = DecodeCache(capacity=2)
        k0 = (_spec(Op.MOVI, rd=1, imm=0),)
        k1 = (_spec(Op.MOVI, rd=1, imm=1),)
        k2 = (_spec(Op.MOVI, rd=1, imm=2),)
        cache.intern_block(0, k0)
        cache.intern_block(0, k1)
        cache.intern_block(0, k2)   # evicts k0 (oldest)
        assert len(cache) == 2
        cache.intern_block(0, k1)
        assert cache.hits == 1      # k1 survived
        cache.intern_block(0, k0)
        assert cache.misses == 4    # k0 was evicted -> re-cracked

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DecodeCache(capacity=0)


class TestLabelResolution:
    def test_labels_resolve_before_interning(self):
        """Cached instructions carry resolved absolute targets, so label
        resolution and sharing compose."""
        prog = _loop_prog(10)
        blt = prog.instructions[3]
        assert blt.op is Op.BLT
        assert blt.target == 2      # absolute pc of "top"
        # a structurally-identical program with the label elsewhere is a
        # different block (different resolved target)
        b = ProgramBuilder("other")
        b.label("top")
        b.movi(1, 0)
        b.movi(2, 10)
        b.addi(1, 1, 1)
        b.blt(1, 2, "top")
        b.halt()
        other = b.build()
        assert other.instructions[3].target == 0
        assert other.instructions[3] is not blt


class TestContentHash:
    def test_ignores_name_and_metadata(self):
        a = _loop_prog(10, name="x")
        b = _loop_prog(10, name="y")
        assert a.content_hash == b.content_hash

    def test_differs_on_instructions_memory_and_regs(self):
        base = _loop_prog(10)
        assert base.content_hash != _loop_prog(11).content_hash
        insts = list(base.instructions)
        with_mem = program_content_hash(insts, initial_memory={64: 7})
        with_mem2 = program_content_hash(insts, initial_memory={64: 8})
        with_regs = program_content_hash(insts, initial_regs={5: 1})
        plain = program_content_hash(insts)
        assert len({plain, with_mem, with_mem2, with_regs}) == 4
        assert base.content_hash == plain

    def test_hash_is_cached_and_stable(self):
        prog = _loop_prog(10)
        assert prog.content_hash == prog.content_hash
        assert len(prog.content_hash) == 64


class TestGlobalCacheWiring:
    def test_builder_goes_through_global_cache(self):
        GLOBAL_DECODE_CACHE.clear()
        _loop_prog(987654)
        misses = GLOBAL_DECODE_CACHE.misses
        assert misses > 0
        _loop_prog(987654)
        assert GLOBAL_DECODE_CACHE.misses == misses
        assert GLOBAL_DECODE_CACHE.hits >= misses
