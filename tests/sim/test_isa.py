"""ISA definitions and address-classification helpers."""

from repro.sim.isa import (
    ASSIST_BIT, BRANCH_OPS, COND_BRANCH_OPS, Instruction, KERNEL_BASE,
    LINE_BYTES, LOAD_OPS, Op, STORE_OPS, WORD_BYTES, is_assist_address,
    is_kernel_address, line_of,
)


def test_kernel_addresses_classified():
    assert is_kernel_address(KERNEL_BASE)
    assert is_kernel_address(KERNEL_BASE + 0x1000)
    assert not is_kernel_address(KERNEL_BASE - 8)
    assert not is_kernel_address(0)


def test_assist_addresses_classified():
    assert is_assist_address(ASSIST_BIT | 0x100)
    assert not is_assist_address(0x100)
    # kernel addresses are privileged, not assist, even with the bit set
    assert not is_assist_address(KERNEL_BASE | ASSIST_BIT)


def test_line_of_is_line_granular():
    assert line_of(0) == 0
    assert line_of(LINE_BYTES - 1) == 0
    assert line_of(LINE_BYTES) == 1
    assert line_of(10 * LINE_BYTES + 5) == 10


def test_op_groups_are_disjoint_where_expected():
    assert not (LOAD_OPS & STORE_OPS)
    assert COND_BRANCH_OPS <= BRANCH_OPS
    assert Op.JMPI in BRANCH_OPS and Op.JMPI not in COND_BRANCH_OPS


def test_instruction_source_regs():
    inst = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
    assert inst.source_regs() == [2, 3]
    inst = Instruction(Op.MOVI, rd=1, imm=5)
    assert inst.source_regs() == []
    inst = Instruction(Op.LOAD, rd=1, rs1=4, imm=8)
    assert inst.source_regs() == [4]


def test_instruction_repr_mentions_op():
    inst = Instruction(Op.BEQ, rs1=1, rs2=2, target=7)
    text = repr(inst)
    assert "beq" in text and "->7" in text
