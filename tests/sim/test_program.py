"""Program builder: labels, data directives, validation."""

import pytest

from repro.sim import ProgramBuilder
from repro.sim.isa import Op


def test_labels_resolve_to_instruction_indices():
    b = ProgramBuilder()
    b.movi(1, 0)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    p = b.build()
    assert p.instructions[2].target == 1


def test_duplicate_label_rejected():
    b = ProgramBuilder()
    b.label("x")
    with pytest.raises(ValueError):
        b.label("x")


def test_undefined_label_rejected_at_build():
    b = ProgramBuilder()
    b.jmp("nowhere")
    with pytest.raises(ValueError, match="nowhere"):
        b.build()


def test_branch_without_target_rejected():
    b = ProgramBuilder()
    b.emit(Op.BEQ, rs1=1, rs2=2)
    with pytest.raises(ValueError):
        b.build()


def test_movi_label_resolves_to_pc():
    b = ProgramBuilder()
    b.movi_label(1, "there")
    b.nop()
    b.label("there")
    b.halt()
    p = b.build()
    assert p.instructions[0].imm == 2
    assert p.instructions[0].target is None


def test_data_label_resolves_into_memory():
    b = ProgramBuilder()
    b.data_label(0x1000, "entry")
    b.nop()
    b.label("entry")
    b.halt()
    p = b.build()
    assert p.initial_memory[0x1000] == 1


def test_data_and_reg_directives():
    b = ProgramBuilder()
    b.data(0x2000, 42)
    b.reg(5, 99)
    b.halt()
    p = b.build()
    assert p.initial_memory[0x2000] == 42
    assert p.initial_regs[5] == 99


def test_call_ret_use_stack_pointer_convention():
    b = ProgramBuilder()
    b.call("f")
    b.halt()
    b.label("f")
    b.ret()
    p = b.build()
    call, _, ret = p.instructions
    assert call.rd == 15 and call.rs1 == 15
    assert ret.rd == 15 and ret.rs1 == 15


def test_fetch_out_of_range_returns_none():
    b = ProgramBuilder()
    b.halt()
    p = b.build()
    assert p.fetch(0) is not None
    assert p.fetch(1) is None
    assert p.fetch(-1) is None


def test_label_pc_lookup():
    b = ProgramBuilder()
    b.nop()
    b.label("mid")
    b.halt()
    b.build()
    assert b.label_pc("mid") == 1
