"""Time-shared two-program execution and a cross-context cache attack."""

from repro.attacks.base import bits_balanced_accuracy
from repro.sim import ProgramBuilder, SimConfig
from repro.sim.multiprog import TimeSharedMachine

SHARED_LINE = 0x50000      # page shared between the two processes
VICTIM_SECRETS = 0x58000   # victim-private secret bits
RESULTS = 0x70000
BIT_PERIOD = 8000


def _counter_prog(n, result_addr):
    b = ProgramBuilder()
    b.movi(1, 0)
    b.movi(2, n)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.movi(3, result_addr)
    b.store(3, 1, 0)
    b.halt()
    return b.build()


class TestTimeSharing:
    def test_both_programs_complete_correctly(self):
        tsm = TimeSharedMachine(_counter_prog(4000, 0x9000),
                                _counter_prog(2500, 0xA000),
                                slice_cycles=500)
        ctx_a, ctx_b = tsm.run(max_cycles=200_000)
        assert ctx_a.halted and ctx_b.halted
        assert tsm.memory.load(0x9000) == 4000
        assert tsm.memory.load(0xA000) == 2500
        assert tsm.switches >= 5

    def test_contexts_have_isolated_registers(self):
        """Each context's registers survive switches untouched by the
        other program's register writes."""
        a = ProgramBuilder()
        a.movi(5, 111)
        for _ in range(900):
            a.nop()
        a.movi(6, 0xB000)
        a.store(6, 5, 0)
        a.halt()
        b = ProgramBuilder()
        b.movi(5, 222)
        for _ in range(900):
            b.nop()
        b.movi(6, 0xB008)
        b.store(6, 5, 0)
        b.halt()
        tsm = TimeSharedMachine(a.build(), b.build(), slice_cycles=120)
        tsm.run(max_cycles=100_000)
        assert tsm.memory.load(0xB000) == 111
        assert tsm.memory.load(0xB008) == 222

    def test_switch_overhead_charged(self):
        fast = TimeSharedMachine(_counter_prog(2000, 0x9000),
                                 _counter_prog(2000, 0xA000),
                                 slice_cycles=400, switch_overhead=0)
        fast.run(max_cycles=200_000)
        slow = TimeSharedMachine(_counter_prog(2000, 0x9000),
                                 _counter_prog(2000, 0xA000),
                                 slice_cycles=400, switch_overhead=400)
        slow.run(max_cycles=200_000)
        assert slow.machine.cycle > fast.machine.cycle


def _victim_program(secret_bits):
    """Touches the shared line throughout window i iff secret bit i is 1
    (branchless, so its own predictor state stays bland)."""
    b = ProgramBuilder()
    for i, bit in enumerate(secret_bits):
        b.data(VICTIM_SECRETS + 8 * i, bit)
    b.movi(1, SHARED_LINE)
    b.movi(2, VICTIM_SECRETS)
    b.movi(13, 0)                    # bit index
    b.movi(14, len(secret_bits))
    b.label("window")
    b.shl(3, 13, 3)
    b.add(3, 3, 2)
    b.load(4, 3, 0)                  # bit
    # touch_addr = dummy + bit * (shared - dummy)
    b.movi(5, SHARED_LINE - 0x1000)  # victim-private dummy line
    b.movi(6, 0x1000)
    b.mul(7, 4, 6)
    b.add(5, 5, 7)
    # inner loop: touch every ~60 cycles until the window ends
    b.movi(8, BIT_PERIOD)
    b.mul(9, 13, 8)
    b.addi(9, 9, BIT_PERIOD - 200)   # window deadline (checked pre-touch)
    b.label("touch")
    b.rdtsc(12)
    b.blt(12, 9, "do_touch")
    b.jmp("window_done")
    b.label("do_touch")
    b.lfence()              # no wrong-path touch of a stale address
    b.load(0, 5, 0)
    b.movi(10, 0)
    b.movi(11, 30)
    b.label("pause")
    b.addi(10, 10, 1)
    b.blt(10, 11, "pause")
    b.jmp("touch")
    b.label("window_done")
    b.addi(13, 13, 1)
    b.blt(13, 14, "window")
    b.halt()
    return b.build()


def _attacker_program(n_bits):
    """Flush early in each window, reload late, store the hit bit."""
    from repro.attacks.base import (
        emit_below_threshold, emit_spin_until, emit_store_result,
        emit_timed_load,
    )
    b = ProgramBuilder()
    b.movi(1, SHARED_LINE)
    b.load(0, 1, 0xF80)              # DTLB warm for the shared page
    b.movi(13, 0)
    b.label("bitloop")
    b.movi(4, BIT_PERIOD)
    b.mul(5, 13, 4)
    b.addi(5, 5, 400)
    emit_spin_until(b, 5, 6, "pre")
    b.clflush(1, 0)
    b.fence()
    b.addi(5, 5, BIT_PERIOD - 1000)
    emit_spin_until(b, 5, 6, "probe")
    emit_timed_load(b, 1, 0, 8, 9, 10)
    emit_below_threshold(b, 8, 8, 30)
    emit_store_result(b, 13, 8, 10)
    b.addi(13, 13, 1)
    b.movi(14, n_bits)
    b.blt(13, 14, "bitloop")
    b.halt()
    return b.build()


class TestCrossContextFlushReload:
    def test_attacker_program_recovers_victim_program_secret(self):
        """The headline property of shared-state time sharing: one
        process's cache footprint leaks to the next scheduled process."""
        secret = [1, 0, 1, 1, 0]
        tsm = TimeSharedMachine(_attacker_program(len(secret)),
                                _victim_program(secret),
                                slice_cycles=1200,
                                switch_overhead=40)
        tsm.run(max_cycles=400_000)
        recovered = [tsm.memory.load(RESULTS + 8 * i) & 1
                     for i in range(len(secret))]
        assert bits_balanced_accuracy(secret, recovered) >= 0.75, \
            (secret, recovered)

    def test_channel_dies_without_shared_line(self):
        """A victim touching only private lines leaks nothing."""
        secret = [1, 0, 1, 1, 0]
        victim = _victim_program([0] * len(secret))   # never touches shared
        tsm = TimeSharedMachine(_attacker_program(len(secret)), victim,
                                slice_cycles=1200, switch_overhead=40)
        tsm.run(max_cycles=400_000)
        recovered = [tsm.memory.load(RESULTS + 8 * i) & 1
                     for i in range(len(secret))]
        assert all(bit == 0 for bit in recovered)
