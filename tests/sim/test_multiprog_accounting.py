"""Counted-event accounting across context switches.

Pins the multiprog/sampler bugfix sweep: windows close on the *global*
commit lattice, per-context commit counts are banked separately from the
global counter, switch-drain work is charged exactly once, discarded
fetches hit ``squash.squashedFetchedInsts``, kernel switch overhead
advances ``cpu.numCycles`` in lockstep with wall time, and a MARK's
phase never bleeds into the other context's windows.
"""

from repro.sim import CounterBank, ProgramBuilder
from repro.sim.multiprog import TimeSharedMachine
from repro.sim.sampler import Sampler


def _counter_prog(n, result_addr, name="count"):
    b = ProgramBuilder(name)
    b.movi(1, 0)
    b.movi(2, n)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.movi(3, result_addr)
    b.store(3, 1, 0)
    b.halt()
    return b.build()


def _marked_prog(phase, n, name="marked"):
    b = ProgramBuilder(name)
    b.mark(phase)
    b.movi(1, 0)
    b.movi(2, n)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    return b.build()


class TestGlobalCommitLattice:
    def test_windows_close_on_global_lattice(self):
        """Every non-final window's commit_index sits exactly on the
        period grid of the *combined* commit count — per-context commit
        restoration would pull boundaries off the lattice."""
        tsm = TimeSharedMachine(_counter_prog(4000, 0x9000),
                                _counter_prog(2500, 0xA000),
                                slice_cycles=400, sample_period=500)
        tsm.run(max_cycles=200_000)
        samples = tsm.machine.sampler.samples
        assert len(samples) > 4
        for sample in samples[:-1]:
            assert sample.commit_index % 500 == 0, sample
        indices = [s.commit_index for s in samples]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices), "duplicate window"
        assert [s.window_index for s in samples] == list(range(len(samples)))

    def test_per_context_committed_sums_to_global(self):
        tsm = TimeSharedMachine(_counter_prog(3000, 0x9000),
                                _counter_prog(1500, 0xA000),
                                slice_cycles=300)
        ctx_a, ctx_b = tsm.run(max_cycles=200_000)
        total = tsm.machine.cpu.committed
        assert ctx_a.committed + ctx_b.committed == total
        # both contexts really ran (the split is meaningful)
        assert ctx_a.committed > 0 and ctx_b.committed > 0
        # and the longer program committed more
        assert ctx_a.committed > ctx_b.committed


class TestSwitchCycleAccounting:
    def test_numcycles_tracks_wall_clock_exactly(self):
        """Drain cycles are stepped once and kernel overhead is charged
        into cpu.numCycles, so numCycles == machine.cycle throughout."""
        ix = CounterBank.index_of("cpu.numCycles")
        for overhead in (0, 50, 400):
            tsm = TimeSharedMachine(_counter_prog(2000, 0x9000),
                                    _counter_prog(2000, 0xA000),
                                    slice_cycles=400,
                                    switch_overhead=overhead)
            tsm.run(max_cycles=200_000)
            assert tsm.machine.counters.values[ix] == tsm.machine.cycle, \
                f"overhead={overhead}"

    def test_halted_reap_is_a_charged_switch(self):
        """When the running context halts, dispatching the survivor is a
        real switch: counted in ``switches`` and charged overhead."""
        free = TimeSharedMachine(_counter_prog(200, 0x9000),
                                 _counter_prog(4000, 0xA000),
                                 slice_cycles=50_000, switch_overhead=0)
        free.run(max_cycles=200_000)
        paid = TimeSharedMachine(_counter_prog(200, 0x9000),
                                 _counter_prog(4000, 0xA000),
                                 slice_cycles=50_000, switch_overhead=700)
        paid.run(max_cycles=200_000)
        # the slice is huge, so the only switch is the halt reap
        assert free.switches == 1
        assert paid.switches == 1
        # one post-load fetch-stall cycle overlaps the kernel overhead
        assert paid.machine.cycle - free.machine.cycle >= 700 - 1

    def test_drain_discards_count_as_squashed_fetches(self):
        """Instructions sitting in the fetch buffer when a switch drains
        the pipeline are charged to squash.squashedFetchedInsts instead
        of silently vanishing from the fetch/commit ledger."""
        ix = CounterBank.index_of("squash.squashedFetchedInsts")
        tsm = TimeSharedMachine(_counter_prog(4000, 0x9000),
                                _counter_prog(4000, 0xA000),
                                slice_cycles=300, switch_overhead=0)
        machine = tsm.machine
        cpu = machine.cpu
        # run until the fetch buffer holds undecoded work
        for _ in range(200):
            cpu.step(machine.cycle)
            machine.cycle += 1
            if cpu.fetch_buffer:
                break
        assert cpu.fetch_buffer, "warm-up never filled the fetch buffer"
        pending = len(cpu.fetch_buffer)
        before = machine.counters.values[ix]
        tsm._drain(max_cycles=10_000)
        after = machine.counters.values[ix]
        assert after - before >= pending, \
            "drained fetch buffer was not charged"


class TestPhaseAttribution:
    def test_mark_does_not_bleed_across_contexts(self):
        """Context A marks phase 7; context B never marks.  Windows that
        close during B's slices must stay phase 0 even after A's MARK
        has retired — the active phase is context state."""
        tsm = TimeSharedMachine(_marked_prog(7, 6000, name="a"),
                                _counter_prog(6000, 0xA000, name="b"),
                                slice_cycles=300, sample_period=200)
        tsm.run(max_cycles=400_000)
        phases = [s.phase for s in tsm.machine.sampler.samples]
        assert 7 in phases, "A's marked windows missing"
        first_marked = phases.index(7)
        # B's windows after A's MARK keep their own (unmarked) phase
        assert 0 in phases[first_marked + 1:], \
            "phase 7 bled into the other context's windows"


class TestSamplerFlushDedup:
    def test_no_duplicate_window_on_exact_boundary_halt(self):
        """A run that commits exactly to a period boundary already
        closed its last window in on_commit; flush must not emit an
        empty duplicate for the trailing drain cycles."""
        bank = CounterBank()
        ix = CounterBank.index_of("cpu.numCycles")
        sampler = Sampler(bank, period=100)
        bank.values[ix] += 40
        sampler.on_commit(100, cycle=40)
        assert len(sampler.samples) == 1
        # drain cycles after the final commit dirty the counters...
        bank.values[ix] += 9
        # ...but no instructions committed since the boundary
        sampler.flush(100, cycle=49)
        assert len(sampler.samples) == 1, "duplicate final window"
        assert sampler.samples[-1].commit_index == 100

    def test_partial_window_still_emitted_after_boundary(self):
        bank = CounterBank()
        ix = CounterBank.index_of("cpu.numCycles")
        sampler = Sampler(bank, period=100)
        bank.values[ix] += 40
        sampler.on_commit(100, cycle=40)
        bank.values[ix] += 10
        sampler.flush(130, cycle=50)
        assert len(sampler.samples) == 2
        assert sampler.samples[-1].commit_index == 130
        assert sampler.samples[-1].window_index == 1

    def test_zero_cycle_run_is_well_formed(self):
        """``max_cycles=0`` must return a zero-cycle result with
        ipc == 0.0 (not a ZeroDivisionError), no windows, and a
        printable stats dump."""
        from repro.sim import Machine
        machine = Machine(_counter_prog(10, 0x9000))
        result = machine.run(max_cycles=0)
        assert result.cycles == 0
        assert result.committed == 0
        assert result.ipc == 0.0
        assert result.samples == []
        assert result.halt_reason == "max-cycles"
        assert isinstance(machine.format_stats(), str)

    def test_ipc_zero_commit_edge(self):
        from repro.sim.machine import RunResult
        empty = RunResult(program_name="p", cycles=0, committed=0,
                          halt_reason=None, samples=[], phase_marks=[],
                          counters={}, regs=[])
        assert empty.ipc == 0.0
        stalled = RunResult(program_name="p", cycles=100, committed=0,
                            halt_reason=None, samples=[], phase_marks=[],
                            counters={}, regs=[])
        assert stalled.ipc == 0.0

    def test_window_and_commit_index_monotonic_under_interleaving(self):
        """Driving the sampler the way SMT does (global counts arriving
        from alternating threads) keeps indices strictly monotonic."""
        bank = CounterBank()
        ix = CounterBank.index_of("cpu.numCycles")
        sampler = Sampler(bank, period=50)
        for committed in range(50, 501, 50):
            bank.values[ix] += 30
            sampler.on_commit(committed, cycle=committed)
        sampler.flush(500, cycle=510)   # exact boundary: dedup
        samples = sampler.samples
        assert [s.window_index for s in samples] == list(range(10))
        assert [s.commit_index for s in samples] == \
            list(range(50, 501, 50))
