"""Bit-exactness of the optimized scheduler against the reference spec.

The counters ARE the dataset: every detector feature is a
:class:`~repro.sim.hpc.CounterBank` delta, so the hot-loop overhaul
(preresolved counter slots, eager operand capture, wakeup lists, the
completion heap) must not move a single event by a single window.  These
tests run the optimized :class:`~repro.sim.cpu.O3Core` and the seed
:class:`~repro.sim.reference.ReferenceO3Core` over identical programs and
require identical sampler delta streams, final counter snapshots, cycle
counts, committed counts and halt reasons.  The full matrix (all defense
modes on both benign and attack programs) lives in
``scripts/bench_sim.py``; this suite keeps the fast representative slice
in tier-1.
"""

import pytest

from repro.attacks import ATTACKS_BY_NAME
from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.config import DefenseMode
from repro.sim.cpu import O3Core
from repro.sim.reference import ReferenceO3Core
from repro.workloads import WORKLOAD_BUILDERS


def _counter_stream(core_cls, program, config, sample_period=500,
                    max_cycles=60_000):
    machine = Machine(program, config, sample_period=sample_period,
                      core_cls=core_cls)
    machine.run(max_cycles=max_cycles)
    return {
        "sampler_deltas": tuple(tuple(s.deltas)
                                for s in machine.sampler.samples),
        "window_commits": tuple(s.commit_index
                                for s in machine.sampler.samples),
        "snapshot": tuple(machine.counters.values),
        "cycle": machine.cpu.cycle,
        "committed": machine.cpu.committed,
        "halt_reason": machine.cpu.halt_reason,
    }


def _assert_bit_identical(program, config, **kwargs):
    reference = _counter_stream(ReferenceO3Core, program, config, **kwargs)
    optimized = _counter_stream(O3Core, program, config, **kwargs)
    # compare field by field so a failure names what diverged
    for key, expected in reference.items():
        assert optimized[key] == expected, f"{key} diverged from reference"


@pytest.mark.parametrize("workload", ["astar", "stream", "pointer-chase"])
def test_seeded_workloads_bit_identical(workload):
    program = WORKLOAD_BUILDERS[workload](scale=2, seed=1)
    _assert_bit_identical(program, SimConfig())


@pytest.mark.parametrize("attack", ["spectre-pht", "meltdown"])
def test_attacks_bit_identical(attack):
    program, _ = ATTACKS_BY_NAME[attack]().build()
    _assert_bit_identical(program, SimConfig())


@pytest.mark.parametrize("mode", [DefenseMode.FENCE_SPECTRE,
                                  DefenseMode.FENCE_FUTURISTIC,
                                  DefenseMode.INVISISPEC_SPECTRE,
                                  DefenseMode.INVISISPEC_FUTURISTIC])
def test_defense_modes_bit_identical(mode):
    program, _ = ATTACKS_BY_NAME["spectre-pht"]().build()
    _assert_bit_identical(program, SimConfig(defense=mode))


def test_no_stl_speculation_bit_identical():
    # stl_speculation=False takes the blockedLoads path in _load_may_issue
    program = WORKLOAD_BUILDERS["astar"](scale=2, seed=1)
    _assert_bit_identical(program, SimConfig(stl_speculation=False))


def test_sampler_windows_close_on_period_lattice():
    """Regression for the window-boundary overshoot: with commit_width > 1
    a window used to close several instructions past the period.  Every
    regular window must now end exactly on the 100-instruction lattice
    (only the final partial window may sit off it)."""
    program = WORKLOAD_BUILDERS["astar"](scale=2, seed=1)
    config = SimConfig()
    assert config.commit_width > 1  # the overshoot needs superscalar commit
    machine = Machine(program, config, sample_period=100)
    machine.run(max_cycles=60_000)
    samples = machine.sampler.samples
    assert len(samples) > 3
    for sample in samples[:-1]:
        assert sample.commit_index % 100 == 0, (
            f"window {sample.window_index} closed at "
            f"commit {sample.commit_index}, off the 100-inst lattice")


def test_icache_eviction_does_not_crash():
    """Regression: the first L1I eviction used to raise KeyError because
    the instruction cache has no ``cleanEvicts``/``writebacks`` counters
    in its namespace.  A straight-line program larger than L1I forces
    evictions on both cores."""
    builder = ProgramBuilder()
    builder.movi(1, 0)
    for _ in range(9000):  # > 32KB of code: overflows the L1I
        builder.addi(1, 1, 1)
    builder.halt()
    program = builder.build()
    for core_cls in (O3Core, ReferenceO3Core):
        machine = Machine(program, SimConfig(), core_cls=core_cls)
        machine.run(max_cycles=200_000)
        assert machine.cpu.halt_reason == "halt"
        assert machine.counters.get("icache.replacements") > 0
