"""Transient-execution semantics: the security-critical core behaviours."""

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.isa import ASSIST_BIT, KERNEL_BASE


def test_kernel_load_faults_at_commit():
    b = ProgramBuilder()
    b.data(KERNEL_BASE + 0x100, 99)
    b.movi(1, KERNEL_BASE + 0x100)
    b.load(2, 1, 0)
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.halt_reason == "fault:priv"
    assert r.counters["commit.traps"] == 1
    assert r.regs[2] == 0               # never architecturally visible


def test_trap_handler_resumes_execution():
    b = ProgramBuilder()
    b.movi(1, KERNEL_BASE)
    b.try_("handler")
    b.load(2, 1, 0)
    b.movi(3, 111)              # skipped by the trap
    b.halt()
    b.label("handler")
    b.movi(4, 222)
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.halt_reason == "halt"
    assert r.regs[4] == 222
    assert r.regs[3] == 0


def test_transient_dependents_of_faulting_load_touch_cache():
    """The Meltdown primitive: the faulting load's dependents execute
    before the trap and leave cache footprints."""
    probe = 0x20000
    b = ProgramBuilder()
    b.data(KERNEL_BASE + 0x100, 1)
    b.movi(1, probe)
    b.movi(2, KERNEL_BASE + 0x100)
    b.prefetch(2, 0)
    b.fence()
    b.try_("handler")
    b.movi(4, 1_000_000)
    b.movi(5, 3)
    b.div(4, 4, 5)
    b.div(4, 4, 5)
    b.div(4, 4, 5)              # delay retirement (covers the DTLB walk)
    b.load(3, 2, 0)             # faulting kernel load (reads 1)
    b.shl(3, 3, 6)
    b.add(3, 3, 1)
    b.load(3, 3, 0)             # transient probe touch at probe+64
    b.label("dead")
    b.jmp("dead")
    b.label("handler")
    b.halt()
    m = Machine(b.build(), SimConfig())
    m.run()
    assert m.hierarchy.data_line_present(probe + 64)
    assert not m.hierarchy.data_line_present(probe)


def test_meltdown_invulnerable_config_returns_zero():
    probe = 0x20000
    b = ProgramBuilder()
    b.data(KERNEL_BASE + 0x100, 1)
    b.movi(1, probe)
    b.movi(2, KERNEL_BASE + 0x100)
    b.prefetch(2, 0)
    b.fence()
    b.try_("handler")
    b.movi(4, 1_000_000)
    b.movi(5, 3)
    b.div(4, 4, 5)
    b.div(4, 4, 5)
    b.div(4, 4, 5)
    b.load(3, 2, 0)
    b.shl(3, 3, 6)
    b.add(3, 3, 1)
    b.load(3, 3, 0)
    b.label("dead")
    b.jmp("dead")
    b.label("handler")
    b.halt()
    m = Machine(b.build(), SimConfig(meltdown_vulnerable=False))
    m.run()
    # the transient load saw 0, so only probe+0 was touched
    assert m.hierarchy.data_line_present(probe)
    assert not m.hierarchy.data_line_present(probe + 64)


def test_assist_load_forwards_inflight_store_value():
    """The LVI/MDS primitive: an assisted load transiently receives the
    youngest in-flight store's data."""
    probe = 0x20000
    b = ProgramBuilder()
    b.movi(1, probe)
    b.movi(4, 1)                # the "secret" the store carries
    b.try_("handler")
    b.movi(8, 1_000_000)
    b.movi(9, 3)
    b.div(8, 8, 9)
    b.div(8, 8, 9)
    b.div(8, 8, 9)
    b.add(10, 8, 0)
    b.movi(6, 0x64000)
    b.store(6, 4, 0)            # in flight until the divs commit
    b.movi(5, ASSIST_BIT | 0x2000)
    b.load(5, 5, 0)             # forwards r4 = 1, faults at commit
    b.shl(5, 5, 6)
    b.add(5, 5, 1)
    b.load(5, 5, 0)
    b.label("dead")
    b.jmp("dead")
    b.label("handler")
    b.halt()
    m = Machine(b.build(), SimConfig())
    r = m.run()
    assert r.counters["lsq.assistForwards"] >= 1
    assert r.counters["lsq.ignoredResponses"] >= 1
    assert m.hierarchy.data_line_present(probe + 64)


def test_store_bypass_detected_and_squashed():
    """Spectre-STL: a load issues under an unresolved older store address,
    reads stale data transiently, and is squashed on discovery — final
    architectural state reflects the store."""
    b = ProgramBuilder()
    b.movi(1, 0x60000)
    b.movi(2, 7)
    b.store(1, 2, 0)
    b.fence()                   # [0x60000] = 7, committed
    b.movi(3, 3)
    b.mul(4, 1, 3)
    b.mul(4, 4, 3)
    b.movi(5, 9)
    b.div(4, 4, 5)              # r4 = 0x60000, slowly
    b.movi(6, 0)
    b.store(4, 6, 0)            # sanitize: address resolves late
    b.load(7, 1, 0)             # speculatively reads stale 7
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.regs[7] == 0       # re-executed after the violation
    assert r.counters["iew.memOrderViolationEvents"] >= 1
    assert r.counters["lsq.squashedLoads"] >= 1


def test_store_bypass_disabled_blocks_loads():
    b = ProgramBuilder()
    b.movi(1, 0x60000)
    b.movi(3, 3)
    b.mul(4, 1, 3)
    b.movi(5, 3)
    b.div(4, 4, 5)
    b.movi(6, 5)
    b.store(4, 6, 0)
    b.load(7, 1, 0)
    b.halt()
    r = Machine(b.build(), SimConfig(stl_speculation=False)).run()
    assert r.regs[7] == 5
    assert r.counters["iew.memOrderViolationEvents"] == 0
    assert r.counters["lsq.blockedLoads"] >= 1


def test_transient_window_bounded_by_rob():
    """The transient window is bounded by ROB size (paper Section I):
    a long dependent chain between the faulting load and the transmit
    completes inside a 192-entry ROB but cannot fit in a tiny one — the
    faulting load reaches the head and traps before the transmit issues.
    This is the property that makes heavily-padded evasive attacks
    self-defeating."""
    def probe_touched(rob_entries):
        probe = 0x20000
        b = ProgramBuilder()
        b.data(KERNEL_BASE + 0x100, 1)
        b.movi(1, probe)
        b.movi(0, 0)
        b.movi(2, KERNEL_BASE + 0x100)
        b.prefetch(2, 0)
        b.fence()
        b.try_("handler")
        b.movi(4, 1_000_000)
        b.movi(5, 3)
        for _ in range(4):
            b.div(4, 4, 5)          # retirement delay
        b.load(3, 2, 0)             # faulting kernel load
        for _ in range(20):
            b.add(3, 3, 0)          # long dependent transient chain
        b.shl(3, 3, 6)
        b.add(3, 3, 1)
        b.load(3, 3, 0)             # transmit
        b.label("dead")
        b.jmp("dead")
        b.label("handler")
        b.halt()
        m = Machine(b.build(), SimConfig(rob_entries=rob_entries))
        m.run()
        return m.hierarchy.data_line_present(probe + 64)

    assert probe_touched(192)
    assert not probe_touched(8)
