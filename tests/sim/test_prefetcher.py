"""Optional stride prefetcher."""

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.cache import CacheHierarchy
from repro.sim.dram import DRAM
from repro.sim.hpc import CounterBank
from repro.sim.memory import MainMemory
from repro.sim.prefetcher import StridePrefetcher


def make_prefetcher(degree=1, entries=32):
    cfg = SimConfig()
    counters = CounterBank()
    hierarchy = CacheHierarchy(cfg, counters, DRAM(cfg, counters,
                                                   MainMemory()))
    return StridePrefetcher(hierarchy, table_entries=entries,
                            degree=degree), hierarchy


def test_constant_stride_detected_and_prefetched():
    pf, hierarchy = make_prefetcher()
    for i in range(5):
        pf.observe(pc=10, addr=0x1000 + 64 * i, cycle=i)
    assert pf.issued >= 1
    # the next line in the stream is already cached
    assert hierarchy.data_line_present(0x1000 + 64 * 5)


def test_random_stream_never_prefetches():
    pf, _ = make_prefetcher()
    for i, addr in enumerate((0x1000, 0x9000, 0x2040, 0x77000, 0x140)):
        pf.observe(pc=10, addr=addr, cycle=i)
    assert pf.issued == 0


def test_distinct_pcs_tracked_independently():
    pf, _ = make_prefetcher()
    for i in range(5):
        pf.observe(pc=1, addr=0x1000 + 64 * i, cycle=i)
        pf.observe(pc=2, addr=0x90000 - 128 * i, cycle=i)
    assert pf.issued >= 2


def test_table_capacity_bounded():
    pf, _ = make_prefetcher(entries=4)
    for pc in range(20):
        pf.observe(pc=pc, addr=0x1000, cycle=pc)
    assert len(pf._table) <= 4


def _streaming_program(n=120):
    b = ProgramBuilder()
    b.movi(1, 0)
    b.movi(2, n)
    b.movi(3, 0x200000)
    b.label("top")
    b.load(4, 3, 0)
    b.addi(3, 3, 64)
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    return b.build()


def test_prefetcher_speeds_up_streaming():
    slow = Machine(_streaming_program(), SimConfig()).run()
    fast = Machine(_streaming_program(),
                   SimConfig(prefetcher_enabled=True)).run()
    assert fast.counters["dcache.prefetches"] > 20
    assert fast.cycles < slow.cycles * 0.9


def test_prefetcher_off_by_default():
    r = Machine(_streaming_program(), SimConfig()).run()
    assert r.counters["dcache.prefetches"] == 0


def test_attacks_still_leak_with_prefetcher():
    """The corpus remains functional on a prefetching core (the stride
    detector does not blur the pointer-chase-delayed channels)."""
    from repro.attacks import Meltdown, SpectrePHT
    for cls in (SpectrePHT, Meltdown):
        out = cls(seed=3).run(config=SimConfig(prefetcher_enabled=True))
        assert out.leaked, cls.name
