"""SMT co-tenancy: correctness, global lattice, determinism, oracle."""

from repro.sim import CounterBank, ProgramBuilder, SimConfig, SMTMachine
from repro.sim.config import DefenseMode
from repro.sim.memo import GLOBAL_MEMO_TABLE
from repro.sim.reference import ReferenceO3Core


def _counter_prog(n, result_addr, name="count"):
    b = ProgramBuilder(name)
    b.movi(1, 0)
    b.movi(2, n)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.movi(3, result_addr)
    b.store(3, 1, 0)
    b.halt()
    return b.build()


def _pointer_prog(n, result_addr, name="chase"):
    """A memory-touching loop so the threads contend on the caches."""
    b = ProgramBuilder(name)
    for i in range(32):
        b.data(0x4000 + i * 64, i)
    b.movi(1, 0)
    b.movi(2, n)
    b.movi(5, 0x4000)
    b.label("top")
    b.load(4, 5, 0)
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.movi(3, result_addr)
    b.store(3, 1, 0)
    b.halt()
    return b.build()


def _smt(n_a=1500, n_b=900, period=500, core_cls=None, config=None):
    return SMTMachine(_counter_prog(n_a, 0x9000, name="a"),
                      _pointer_prog(n_b, 0xA000, name="b"),
                      config=config, sample_period=period,
                      core_cls=core_cls)


def _stream(result):
    return ([(s.window_index, s.commit_index, s.cycle, tuple(s.deltas),
              s.phase) for s in result.samples],
            result.counters, result.cycles, result.committed,
            result.halt_reason)


class TestCorrectness:
    def test_both_threads_complete_with_correct_results(self):
        smt = _smt()
        result = smt.run(max_cycles=300_000)
        assert result.halt_reason == "halt"
        assert smt.memory.load(0x9000) == 1500
        assert smt.memory.load(0xA000) == 900
        t0, t1 = result.threads
        assert t0.program_name == "a" and t1.program_name == "b"
        assert t0.halted and t1.halted
        assert t0.committed + t1.committed == result.committed
        assert t0.committed > 0 and t1.committed > 0

    def test_register_files_are_private(self):
        smt = _smt(n_a=1500, n_b=900)
        result = smt.run(max_cycles=300_000)
        t0, t1 = result.threads
        assert t0.regs[1] == 1500
        assert t1.regs[1] == 900

    def test_shared_structures_are_the_same_objects(self):
        smt = _smt()
        a, b = smt.views
        assert a.hierarchy is b.hierarchy is smt.machine.hierarchy
        assert a.dtlb is b.dtlb
        assert a.btb is b.btb
        assert a.counters is b.counters
        assert smt.cores[0].ports is smt.cores[1].ports
        assert smt.cores[0] is not smt.cores[1]

    def test_one_core_steps_per_cycle(self):
        """Exactly one hardware context steps each machine cycle, so the
        single-thread invariant cpu.numCycles == machine.cycle holds."""
        ix = CounterBank.index_of("cpu.numCycles")
        smt = _smt()
        result = smt.run(max_cycles=300_000)
        assert smt.machine.counters.values[ix] == result.cycles

    def test_survivor_runs_alone_after_sibling_halts(self):
        smt = _smt(n_a=50, n_b=3000)
        result = smt.run(max_cycles=300_000)
        assert result.threads[0].halted and result.threads[1].halted
        assert smt.memory.load(0xA000) == 3000


class TestGlobalLattice:
    def test_windows_close_on_the_global_commit_lattice(self):
        smt = _smt(period=400)
        result = smt.run(max_cycles=300_000)
        assert len(result.samples) > 3
        for sample in result.samples[:-1]:
            assert sample.commit_index % 400 == 0, sample
        indices = [s.commit_index for s in result.samples]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        assert [s.window_index for s in result.samples] == \
            list(range(len(result.samples)))

    def test_window_deltas_cover_all_commits(self):
        result = _smt(period=400).run(max_cycles=300_000)
        assert result.samples[-1].commit_index == result.committed


class TestDeterminismAndOracle:
    def test_runs_are_deterministic(self):
        r1 = _smt().run(max_cycles=300_000)
        r2 = _smt().run(max_cycles=300_000)
        assert _stream(r1) == _stream(r2)
        assert [t.regs for t in r1.threads] == [t.regs for t in r2.threads]

    def test_bit_identical_to_reference_core(self):
        """The optimized core under SMT produces the exact stream the
        reference oracle does — the bit-exactness contract extends to
        co-tenancy."""
        fast = _smt().run(max_cycles=300_000)
        ref = _smt(core_cls=ReferenceO3Core).run(max_cycles=300_000)
        assert _stream(fast) == _stream(ref)
        assert [t.regs for t in fast.threads] == \
            [t.regs for t in ref.threads]

    def test_bit_identical_under_defense(self):
        cfg = SimConfig(defense=DefenseMode.FENCE_SPECTRE)
        fast = _smt(config=cfg).run(max_cycles=300_000)
        cfg2 = SimConfig(defense=DefenseMode.FENCE_SPECTRE)
        ref = _smt(core_cls=ReferenceO3Core,
                   config=cfg2).run(max_cycles=300_000)
        assert _stream(fast) == _stream(ref)


class TestMemoIsolation:
    def test_smt_runs_never_touch_the_memo_table(self):
        """SMT drives the cores directly; even with ``memoize=True`` no
        record is ever created or replayed for a multi-context run."""
        before_len = len(GLOBAL_MEMO_TABLE)
        before_hits = GLOBAL_MEMO_TABLE.hits
        r1 = _smt(config=SimConfig(memoize=True)).run(max_cycles=300_000)
        r2 = _smt(config=SimConfig(memoize=True)).run(max_cycles=300_000)
        assert len(GLOBAL_MEMO_TABLE) == before_len
        assert GLOBAL_MEMO_TABLE.hits == before_hits
        assert _stream(r1) == _stream(r2)
