"""Cache units and the two-level hierarchy."""

from repro.sim import SimConfig
from repro.sim.cache import Cache, CacheHierarchy
from repro.sim.dram import DRAM
from repro.sim.hpc import CounterBank
from repro.sim.memory import MainMemory


def make_cache(size=1024, assoc=2, line=64, latency=2):
    return Cache(size, assoc, line, latency, CounterBank(), "dcache")


def make_hierarchy(config=None):
    cfg = config if config is not None else SimConfig()
    counters = CounterBank()
    mem = MainMemory()
    dram = DRAM(cfg, counters, mem)
    return CacheHierarchy(cfg, counters, dram), counters


class TestCache:
    def test_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(5)
        c.fill(5)
        assert c.lookup(5)

    def test_lru_eviction_order(self):
        c = make_cache(size=2 * 64, assoc=2)   # one set, two ways
        c.fill(0)
        c.fill(1)
        c.lookup(0)            # 0 becomes MRU
        evicted = c.fill(2)
        assert evicted == (1, False)
        assert c.contains(0) and c.contains(2) and not c.contains(1)

    def test_dirty_eviction_reported(self):
        c = make_cache(size=2 * 64, assoc=2)
        c.fill(0, dirty=True)
        c.fill(1)
        evicted = c.fill(2)
        assert evicted == (0, True)
        assert c.counters.get("dcache.writebacks") == 1

    def test_clean_evict_counter(self):
        c = make_cache(size=2 * 64, assoc=2)
        c.fill(0)
        c.fill(1)
        c.fill(2)
        assert c.counters.get("dcache.cleanEvicts") == 1

    def test_invalidate(self):
        c = make_cache()
        c.fill(7, dirty=True)
        present, dirty = c.invalidate(7)
        assert present and dirty
        assert not c.contains(7)
        assert c.invalidate(7) == (False, False)

    def test_contains_does_not_touch_lru(self):
        c = make_cache(size=2 * 64, assoc=2)
        c.fill(0)
        c.fill(1)
        c.contains(0)          # must NOT refresh 0
        evicted = c.fill(2)
        assert evicted[0] == 0

    def test_set_occupancy(self):
        c = make_cache(size=4 * 64, assoc=2)   # 2 sets
        c.fill(0)
        c.fill(2)              # same set as 0 (stride = num_sets)
        assert c.set_occupancy(0) == 2
        assert c.set_occupancy(1) == 0


class TestHierarchy:
    def test_first_access_misses_to_dram(self):
        h, c = make_hierarchy()
        latency = h.access_data(0x10000, False, cycle=0)
        assert latency > 50
        assert c.get("dcache.misses") == 1
        assert c.get("l2.misses") == 1

    def test_second_access_hits_l1(self):
        h, c = make_hierarchy()
        h.access_data(0x10000, False, cycle=0)
        latency = h.access_data(0x10000, False, cycle=1)
        assert latency == SimConfig().l1d_latency
        assert c.get("dcache.hits") == 1

    def test_l2_hit_after_l1_eviction_pressure(self):
        cfg = SimConfig()
        h, c = make_hierarchy(cfg)
        h.access_data(0x10000, False, cycle=0)
        # evict 0x10000 from L1 by filling its set (L1: 128 sets, 8 ways)
        sets = cfg.l1d_size // (cfg.l1d_assoc * cfg.line_bytes)
        for k in range(1, cfg.l1d_assoc + 1):
            h.access_data(0x10000 + k * sets * cfg.line_bytes, False, cycle=k)
        latency = h.access_data(0x10000, False, cycle=100)
        assert latency == cfg.l1d_latency + cfg.l2_latency

    def test_invisible_access_changes_no_state(self):
        h, c = make_hierarchy()
        latency = h.access_data(0x10000, False, cycle=0, invisible=True)
        assert latency > 50
        assert not h.data_line_present(0x10000)
        assert c.get("specbuf.fills") == 1

    def test_invisible_access_observes_cached_latency(self):
        h, _ = make_hierarchy()
        h.access_data(0x10000, False, cycle=0)
        latency = h.access_data(0x10000, False, cycle=1, invisible=True)
        assert latency == SimConfig().l1d_latency

    def test_flush_removes_line_and_takes_longer_when_present(self):
        h, _ = make_hierarchy()
        t_absent = h.flush_line(0x10000, cycle=0)
        h.access_data(0x10000, False, cycle=1)
        t_present = h.flush_line(0x10000, cycle=2)
        assert t_present > t_absent
        assert not h.data_line_present(0x10000)

    def test_write_marks_line_dirty_for_later_writeback(self):
        cfg = SimConfig()
        h, c = make_hierarchy(cfg)
        h.access_data(0x10000, True, cycle=0)
        sets = cfg.l1d_size // (cfg.l1d_assoc * cfg.line_bytes)
        for k in range(1, cfg.l1d_assoc + 1):
            h.access_data(0x10000 + k * sets * cfg.line_bytes, False, cycle=k)
        assert c.get("dcache.writebacks") >= 1

    def test_prefetch_fills_cache(self):
        h, c = make_hierarchy()
        h.prefetch(0x10000, cycle=0)
        assert h.data_line_present(0x10000)
        assert c.get("dcache.prefetches") == 1

    def test_icache_warms(self):
        h, c = make_hierarchy()
        assert h.access_inst(0, cycle=0) > 0
        assert h.access_inst(0, cycle=1) == 0
        assert h.access_inst(7, cycle=2) == 0      # same line (8 insts/line)
        assert h.access_inst(8, cycle=3) > 0
