"""TLBs, main memory, counter bank, sampler."""

import pytest

from repro.sim import SimConfig
from repro.sim.hpc import COUNTER_NAMES, CounterBank
from repro.sim.memory import MainMemory
from repro.sim.sampler import Sampler
from repro.sim.tlb import TLB


class TestTLB:
    def make(self, entries=4):
        return TLB(entries, 4096, 30, CounterBank(), "dtlb")

    def test_miss_then_hit(self):
        tlb = self.make()
        assert tlb.access(0x1000) == 30
        assert tlb.access(0x1008) == 0      # same page

    def test_lru_eviction(self):
        tlb = self.make(entries=2)
        tlb.access(0x1000)
        tlb.access(0x2000)
        tlb.access(0x1000)                  # refresh page 1
        tlb.access(0x3000)                  # evicts page 2
        assert tlb.access(0x1000) == 0
        assert tlb.access(0x2000) == 30

    def test_read_write_counters_distinct(self):
        tlb = self.make()
        tlb.access(0x1000, is_write=False)
        tlb.access(0x9000, is_write=True)
        assert tlb.counters.get("dtlb.rdMisses") == 1
        assert tlb.counters.get("dtlb.wrMisses") == 1

    def test_flush_empties(self):
        tlb = self.make()
        tlb.access(0x1000)
        tlb.flush()
        assert tlb.access(0x1000) == 30


class TestMainMemory:
    def test_default_zero(self):
        assert MainMemory().load(0x1234) == 0

    def test_store_load_word_aligned(self):
        m = MainMemory()
        m.store(0x100, 42)
        assert m.load(0x100) == 42

    def test_unaligned_access_aliases_word(self):
        m = MainMemory()
        m.store(0x100, 42)
        assert m.load(0x103) == 42
        m.store(0x105, 7)
        assert m.load(0x100) == 7

    def test_flip_bit(self):
        m = MainMemory()
        m.store(0x100, 0b1000)
        m.flip_bit(0x100, bit=3)
        assert m.load(0x100) == 0
        m.flip_bit(0x100, bit=0)
        assert m.load(0x100) == 1

    def test_initial_contents(self):
        m = MainMemory({0x10: 5, 0x20: 6})
        assert m.load(0x10) == 5 and m.load(0x20) == 6

    def test_contains(self):
        m = MainMemory({0x10: 5})
        assert 0x10 in m and 0x13 in m and 0x18 not in m


class TestCounterBank:
    def test_bump_and_get(self):
        c = CounterBank()
        c.bump("dcache.hits")
        c.bump("dcache.hits", 4)
        assert c.get("dcache.hits") == 5

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            CounterBank().bump("not.a.counter")

    def test_snapshot_is_copy(self):
        c = CounterBank()
        snap = c.snapshot()
        c.bump("dcache.hits")
        assert snap[CounterBank.index_of("dcache.hits")] == 0

    def test_as_dict_covers_all_names(self):
        d = CounterBank().as_dict()
        assert set(d) == set(COUNTER_NAMES)

    def test_names_are_unique(self):
        assert len(COUNTER_NAMES) == len(set(COUNTER_NAMES))


class TestSampler:
    def test_window_boundaries(self):
        c = CounterBank()
        s = Sampler(c, period=10)
        c.bump("dcache.hits", 3)
        s.on_commit(10, cycle=100)
        assert len(s.samples) == 1
        assert s.samples[0].deltas[CounterBank.index_of("dcache.hits")] == 3

    def test_deltas_not_cumulative(self):
        c = CounterBank()
        s = Sampler(c, period=10)
        c.bump("dcache.hits", 3)
        s.on_commit(10, cycle=1)
        c.bump("dcache.hits", 2)
        s.on_commit(20, cycle=2)
        idx = CounterBank.index_of("dcache.hits")
        assert [w.deltas[idx] for w in s.samples] == [3, 2]

    def test_phase_attached_to_windows(self):
        c = CounterBank()
        s = Sampler(c, period=10)
        s.record_phase(2, commit_index=3)
        c.bump("dcache.hits")
        s.on_commit(10, cycle=1)
        assert s.samples[0].phase == 2

    def test_flush_emits_partial_window(self):
        c = CounterBank()
        s = Sampler(c, period=1000)
        c.bump("dcache.hits")
        s.flush(5, cycle=9)
        assert len(s.samples) == 1

    def test_flush_without_activity_emits_nothing(self):
        s = Sampler(CounterBank(), period=1000)
        s.flush(5, cycle=9)
        assert not s.samples

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Sampler(CounterBank(), period=0)


class TestStatsDump:
    def test_format_stats_gem5_style(self):
        from repro.sim import Machine, ProgramBuilder, SimConfig
        b = ProgramBuilder()
        b.movi(1, 0x9000)
        b.load(2, 1, 0)
        b.halt()
        m = Machine(b.build(), SimConfig())
        m.run()
        text = m.format_stats()
        assert "commit.committedInsts" in text
        assert "dcache.misses" in text
        # zero counters suppressed by default
        assert "dram.bitflips" not in text
        full = m.format_stats(nonzero_only=False)
        assert "dram.bitflips" in full
