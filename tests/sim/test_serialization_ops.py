"""FENCE/LFENCE semantics and commit-width effects."""

from repro.sim import Machine, ProgramBuilder, SimConfig


def test_lfence_blocks_younger_loads_not_alu():
    """Loads after an LFENCE wait for it; ALU ops flow freely."""
    # timing: a load behind LFENCE behind a slow load must wait
    b = ProgramBuilder()
    b.movi(1, 0x600000)       # cold line: slow load
    b.movi(2, 0x9000)
    b.load(0, 2, 0)           # warm 0x9000
    b.fence()
    b.rdtsc(3)
    b.load(4, 1, 0)           # slow (DRAM)
    b.lfence()
    b.load(5, 2, 0)           # would be fast, but must wait for lfence
    b.fence()
    b.rdtsc(6)
    b.sub(7, 6, 3)
    b.halt()
    with_lfence = Machine(b.build(), SimConfig()).run().regs[7]

    b2 = ProgramBuilder()
    b2.movi(1, 0x600000)
    b2.movi(2, 0x9000)
    b2.load(0, 2, 0)
    b2.fence()
    b2.rdtsc(3)
    b2.load(4, 1, 0)
    b2.load(5, 2, 0)          # free to issue immediately
    b2.fence()
    b2.rdtsc(6)
    b2.sub(7, 6, 3)
    b2.halt()
    without = Machine(b2.build(), SimConfig()).run().regs[7]
    # both runs bounded by the slow load; the LFENCE adds the second
    # load's latency *after* it, so it cannot be faster
    assert with_lfence >= without


def test_lfence_does_not_block_alu_chain():
    b = ProgramBuilder()
    b.movi(1, 0x600000)
    b.rdtsc(3)
    b.load(4, 1, 0)           # slow
    b.lfence()
    b.movi(5, 1)              # ALU behind lfence: unaffected
    b.addi(5, 5, 1)
    b.rdtsc(6)                # also unaffected by lfence
    b.sub(7, 6, 3)
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    # the rdtsc pair resolved before the slow load finished
    assert r.regs[7] < 30
    assert r.regs[5] == 2


def test_commit_width_limits_retirement_rate():
    def run(width):
        b = ProgramBuilder()
        for i in range(1, 9):
            b.movi(i, i)
        for _ in range(40):
            b.nop()
        b.halt()
        cfg = SimConfig(commit_width=width)
        return Machine(b.build(), cfg).run().cycles

    assert run(1) > run(8)


def test_fence_orders_memory_visibility():
    """A store before a fence is architecturally visible to a later load
    even across trap boundaries."""
    from repro.sim.isa import KERNEL_BASE
    b = ProgramBuilder()
    b.movi(1, 0x9000)
    b.movi(2, 77)
    b.store(1, 2, 0)
    b.fence()
    b.try_("handler")
    b.movi(3, KERNEL_BASE)
    b.load(4, 3, 0)           # traps
    b.halt()
    b.label("handler")
    b.load(5, 1, 0)           # must see the committed store
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.regs[5] == 77
