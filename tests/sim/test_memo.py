"""Hot-trace memoization: bit-exact replay, conservative refusal."""

import pytest

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.config import DefenseMode
from repro.sim.memo import GLOBAL_MEMO_TABLE, TraceMemoTable
from repro.sim.reference import ReferenceO3Core


def _prog(n=800, result_addr=0x9000, name="memoized"):
    b = ProgramBuilder(name)
    b.movi(1, 0)
    b.movi(2, n)
    b.label("top")
    b.addi(1, 1, 1)
    b.load(4, 1, 0)          # touch memory so caches/DRAM matter
    b.blt(1, 2, "top")
    b.movi(3, result_addr)
    b.store(3, 1, 0)
    b.halt()
    return b.build()


def _run(table, prog=None, config=None, sample_period=200,
         max_cycles=50_000, core_cls=None):
    machine = Machine(prog if prog is not None else _prog(),
                      config, sample_period=sample_period,
                      memo_table=table, core_cls=core_cls)
    result = machine.run(max_cycles=max_cycles)
    return machine, result


def _sample_tuples(result):
    return [(s.window_index, s.commit_index, s.cycle, tuple(s.deltas),
             s.phase)
            for s in result.samples]


class TestReplayBitExactness:
    def test_replay_is_bit_identical(self):
        table = TraceMemoTable()
        m1, r1 = _run(table)
        assert table.misses == 1 and table.hits == 0
        m2, r2 = _run(table)
        assert table.hits == 1 and table.misses == 1

        assert _sample_tuples(r2) == _sample_tuples(r1)
        assert r2.counters == r1.counters
        assert r2.cycles == r1.cycles
        assert r2.committed == r1.committed
        assert r2.halt_reason == r1.halt_reason
        assert r2.regs == r1.regs
        assert r2.ipc == r1.ipc
        assert [(p.commit_index, p.phase) for p in r2.phase_marks] == \
            [(p.commit_index, p.phase) for p in r1.phase_marks]
        # architectural side effects restored on the machine itself
        assert m2.memory.snapshot() == m1.memory.snapshot()
        assert m2.cycle == m1.cycle
        assert m2.cpu.cycle == m1.cpu.cycle
        assert m2.cpu.halted == m1.cpu.halted

    def test_program_name_does_not_split_records(self):
        table = TraceMemoTable()
        _run(table, prog=_prog(name="a"))
        _run(table, prog=_prog(name="b"))
        assert table.hits == 1

    def test_replayed_store_result_visible_in_memory(self):
        table = TraceMemoTable()
        m1, _ = _run(table)
        m2, _ = _run(table)
        assert m2.memory.load(0x9000) == 800
        assert m1.memory.load(0x9000) == 800


class TestFingerprintSeparation:
    def test_defense_modes_never_share_records(self):
        table = TraceMemoTable()
        for mode in DefenseMode:
            _run(table, config=SimConfig(defense=mode))
        assert table.hits == 0
        assert table.misses == len(DefenseMode)
        # and re-running one mode now hits its own record
        _run(table, config=SimConfig(defense=DefenseMode.FENCE_SPECTRE))
        assert table.hits == 1

    def test_sampling_periods_never_share_records(self):
        table = TraceMemoTable()
        _run(table, sample_period=100)
        _run(table, sample_period=250)
        assert table.hits == 0 and table.misses == 2

    def test_cycle_budget_is_part_of_the_key(self):
        table = TraceMemoTable()
        _run(table, max_cycles=10_000)
        _run(table, max_cycles=20_000)
        assert table.hits == 0 and table.misses == 2

    def test_core_class_is_part_of_the_key(self):
        table = TraceMemoTable()
        _run(table)
        _run(table, core_cls=ReferenceO3Core)
        assert table.hits == 0 and table.misses == 2

    def test_different_initial_regs_miss(self):
        table = TraceMemoTable()
        base = _prog()
        shifted = _prog()
        shifted.initial_regs = dict(shifted.initial_regs)
        shifted.initial_regs[9] = 42
        _run(table, prog=base)
        _run(table, prog=shifted)
        assert table.hits == 0 and table.misses == 2


class TestConservativeRefusal:
    def test_actors_make_a_machine_ineligible(self):
        table = TraceMemoTable()
        machine = Machine(_prog(), memo_table=table,
                          actors=[object()])
        assert table.fingerprint(machine, 1000) is None
        assert table.ineligible == 1

    def test_detector_hook_makes_a_machine_ineligible(self):
        table = TraceMemoTable()
        machine = Machine(_prog(), memo_table=table,
                          detector_hook=lambda m, s: False)
        assert table.fingerprint(machine, 1000) is None

    def test_already_run_machine_is_ineligible(self):
        table = TraceMemoTable()
        machine, _ = _run(table)
        assert table.fingerprint(machine, 50_000) is None
        assert table.ineligible == 1

    def test_ineligible_runs_still_simulate_correctly(self):
        table = TraceMemoTable()

        class _Nop:
            period = 64

            def tick(self, machine, cycle):
                pass

        clean_machine, clean = _run(TraceMemoTable())
        for _ in range(2):
            machine = Machine(_prog(), sample_period=200,
                              memo_table=table, actors=[_Nop()])
            result = machine.run(max_cycles=50_000)
            assert result.committed == clean.committed
        assert table.hits == 0
        assert len(table) == 0


class TestTableMechanics:
    def test_fifo_eviction(self):
        table = TraceMemoTable(capacity=2)
        _run(table, prog=_prog(100))
        _run(table, prog=_prog(200))
        _run(table, prog=_prog(300))   # evicts the n=100 record
        assert len(table) == 2
        _run(table, prog=_prog(200))
        assert table.hits == 1
        _run(table, prog=_prog(100))   # re-recorded
        assert table.misses == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceMemoTable(capacity=0)

    def test_config_memoize_attaches_global_table(self):
        machine = Machine(_prog(), SimConfig(memoize=True))
        assert machine.memo_table is GLOBAL_MEMO_TABLE
        assert Machine(_prog()).memo_table is None
        mine = TraceMemoTable()
        assert Machine(_prog(), SimConfig(memoize=True),
                       memo_table=mine).memo_table is mine
