"""Edge cases across the simulator surface."""

import pytest

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.isa import KERNEL_BASE


def test_empty_program_halts_immediately():
    b = ProgramBuilder()
    r = Machine(b.build(), SimConfig()).run(max_cycles=100)
    assert r.halt_reason == "end-of-program"
    assert r.committed == 0


def test_store_to_kernel_address_is_architectural():
    """Stores carry no deferred privilege fault in this model (loads are
    the Meltdown-relevant path); the store lands in memory."""
    b = ProgramBuilder()
    b.movi(1, KERNEL_BASE + 0x40)
    b.movi(2, 7)
    b.store(1, 2, 0)
    b.halt()
    m = Machine(b.build(), SimConfig())
    r = m.run()
    assert r.halt_reason == "halt"
    assert m.memory.load(KERNEL_BASE + 0x40) == 7


def test_nested_traps_reuse_handler():
    b = ProgramBuilder()
    b.movi(1, KERNEL_BASE)
    b.movi(5, 0)
    b.try_("handler")
    b.label("again")
    b.load(2, 1, 0)            # traps
    b.halt()
    b.label("handler")
    b.addi(5, 5, 1)
    b.movi(6, 3)
    b.blt(5, 6, "again")
    b.halt()
    r = Machine(b.build(), SimConfig()).run(max_cycles=100_000)
    assert r.regs[5] == 3
    assert r.counters["commit.traps"] == 3


def test_back_to_back_branches_resolve_in_order():
    b = ProgramBuilder()
    b.movi(1, 1)
    b.movi(2, 2)
    b.blt(1, 2, "a")           # taken
    b.movi(3, 111)
    b.label("a")
    b.blt(2, 1, "b")           # not taken
    b.movi(4, 222)
    b.label("b")
    b.halt()
    r = Machine(b.build(), SimConfig()).run()
    assert r.regs[3] == 0
    assert r.regs[4] == 222


def test_jmpi_to_zero_pc_loops_program_start():
    b = ProgramBuilder()
    b.movi(1, 0)               # target pc 0 => restart
    b.movi(2, 0x9000)
    b.load(3, 2, 0)
    b.addi(3, 3, 1)
    b.store(2, 3, 0)
    b.movi(4, 3)
    b.load(5, 2, 0)
    b.blt(5, 4, "again")
    b.halt()
    b.label("again")
    b.jmpi(1)
    m = Machine(b.build(), SimConfig())
    r = m.run(max_cycles=100_000)
    assert r.halt_reason == "halt"
    assert m.memory.load(0x9000) == 3


def test_negative_effective_address_faults_cleanly():
    """Base+imm below zero is an invalid address: it faults (the sign
    bits land in the assist range) rather than crashing the simulator."""
    b = ProgramBuilder()
    b.movi(1, 0)
    b.load(2, 1, -8)
    b.halt()
    r = Machine(b.build(), SimConfig()).run(max_cycles=50_000)
    assert r.halt_reason == "fault:assist"
    assert r.counters["commit.traps"] == 1


def test_deep_call_chain_beyond_ras_capacity():
    """33 nested calls overflow the 16-entry RAS; returns still land
    architecturally (through mispredicts)."""
    depth = 33
    b = ProgramBuilder()
    b.reg(15, 0x8000)
    b.movi(1, 0)
    b.call("f0")
    b.halt()
    for i in range(depth):
        b.label(f"f{i}")
        b.addi(1, 1, 1)
        if i + 1 < depth:
            b.call(f"f{i + 1}")
        b.ret()
    r = Machine(b.build(), SimConfig()).run(max_cycles=200_000)
    assert r.halt_reason == "halt"
    assert r.regs[1] == depth
    assert r.counters["branchPred.RASIncorrect"] > 0


def test_sample_period_one_records_every_commit():
    b = ProgramBuilder()
    for _ in range(10):
        b.nop()
    b.halt()
    m = Machine(b.build(), SimConfig(), sample_period=1)
    r = m.run()
    assert len(r.samples) >= 10
