"""Execution ports, RNG unit, and background actors."""

from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.background import (
    BranchTrainerActor, BusHammerActor, CacheToucherActor,
    KernelToucherActor, PortHogActor, RngDrainActor, RowToucherActor,
    SecretDependentToucher,
)
from repro.sim.hpc import CounterBank
from repro.sim.units import (
    ExecPorts, OP_LATENCY, PORT_INT, PORT_MEM, PORT_MULDIV, RngUnit, port_of,
)
from repro.sim.isa import Op


class TestExecPorts:
    def make(self):
        return ExecPorts(SimConfig(), CounterBank())

    def test_capacity_enforced(self):
        ports = self.make()
        ports.new_cycle()
        grants = [ports.try_issue(Op.MUL) for _ in range(4)]
        assert grants == [True, True, False, False]

    def test_new_cycle_resets(self):
        ports = self.make()
        ports.new_cycle()
        ports.try_issue(Op.MUL)
        ports.try_issue(Op.MUL)
        ports.new_cycle()
        assert ports.try_issue(Op.MUL)

    def test_steal_reserves_next_cycle(self):
        ports = self.make()
        ports.steal(PORT_MULDIV, 2)
        ports.new_cycle()
        assert not ports.try_issue(Op.MUL)

    def test_steal_clamped_to_capacity(self):
        ports = self.make()
        ports.steal(PORT_MEM, 99)
        ports.new_cycle()
        assert ports.pressure(PORT_MEM) == SimConfig().mem_ports

    def test_port_classes(self):
        assert port_of(Op.MUL) == PORT_MULDIV
        assert port_of(Op.LOAD) == PORT_MEM
        assert port_of(Op.ADD) == PORT_INT
        assert port_of(Op.RDRAND) == PORT_MULDIV


class TestRngUnit:
    def make(self):
        return RngUnit(SimConfig(), CounterBank())

    def test_buffered_reads_fast(self):
        rng = self.make()
        _, latency = rng.read(cycle=0)
        assert latency == SimConfig().rng_fast_latency

    def test_underflow_slow(self):
        rng = self.make()
        cfg = SimConfig()
        for _ in range(cfg.rng_buffer_entries):
            rng.read(cycle=0)
        _, latency = rng.read(cycle=1)
        assert latency == cfg.rng_slow_latency
        assert rng.counters.get("rng.underflows") == 1

    def test_refill_over_time(self):
        rng = self.make()
        cfg = SimConfig()
        for _ in range(cfg.rng_buffer_entries):
            rng.read(cycle=0)
        _, latency = rng.read(cycle=cfg.rng_refill_cycles * 3)
        assert latency == cfg.rng_fast_latency

    def test_drain_consumes(self):
        rng = self.make()
        consumed = rng.drain(cycle=0, amount=3)
        assert consumed == 3
        assert rng.level == SimConfig().rng_buffer_entries - 3


def _idle_machine(actors, cycles=2000):
    b = ProgramBuilder()
    b.movi(1, 0)
    b.movi(2, cycles)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    m = Machine(b.build(), SimConfig(), actors=actors)
    r = m.run(max_cycles=cycles * 4)
    return m, r


class TestActors:
    def test_cache_toucher_fills_lines(self):
        addrs = [0x200000 + 64 * i for i in range(4)]
        m, _ = _idle_machine([CacheToucherActor(addrs, period=20)])
        assert all(m.hierarchy.data_line_present(a) for a in addrs)

    def test_secret_toucher_touches_per_bit(self):
        actor = SecretDependentToucher([1], 0x50000, 0x51000,
                                       bit_period=10_000, period=20)
        m, _ = _idle_machine([actor])
        assert m.hierarchy.data_line_present(0x50000)
        assert not m.hierarchy.data_line_present(0x51000)

    def test_row_toucher_opens_rows(self):
        actor = RowToucherActor([1], addr_one=0x284000, addr_zero=0x3C4000,
                                bit_period=10_000, period=30)
        m, _ = _idle_machine([actor])
        bank, row = m.dram.bank_row(0x284000)
        assert m.dram.open_rows[bank] == row

    def test_kernel_toucher_caches_kernel_line(self):
        from repro.sim.isa import KERNEL_BASE
        actor = KernelToucherActor([1], KERNEL_BASE + 0x4000,
                                   bit_period=10_000, period=30)
        m, _ = _idle_machine([actor])
        assert m.hierarchy.data_line_present(KERNEL_BASE + 0x4000)

    def test_rng_drain_actor_empties_buffer(self):
        actor = RngDrainActor([1], bit_period=10_000, period=10, amount=4)
        m, _ = _idle_machine([actor])
        assert m.rng.level == 0

    def test_port_hog_steals(self):
        actor = PortHogActor([1], PORT_MULDIV, bit_period=10_000, period=1)
        m, r = _idle_machine([actor])
        # muls in the main loop would contend; here just check counters
        assert r.cycles > 0

    def test_branch_trainer_sets_pht(self):
        actor = BranchTrainerActor([1], pc=7, bit_period=10_000, period=10)
        m, _ = _idle_machine([actor])
        assert m.branch_predictor.predict(7) is True

    def test_bus_hammer_generates_dram_traffic(self):
        actor = BusHammerActor([1], 0x800000, bit_period=10_000, period=10)
        m, r = _idle_machine([actor])
        assert r.counters["dram.readReqs"] > 10
