"""Benign workload kernels: they run clean and behave benignly."""

import pytest

from repro.sim import Machine, SimConfig
from repro.workloads import WORKLOAD_BUILDERS, Workload, all_workloads


@pytest.mark.parametrize("name", sorted(WORKLOAD_BUILDERS),
                         ids=lambda n: n)
def test_workload_runs_to_completion(name):
    program = WORKLOAD_BUILDERS[name](scale=2, seed=0)
    r = Machine(program, SimConfig()).run(max_cycles=400_000)
    assert r.halt_reason == "halt"
    assert r.committed > 100


@pytest.mark.parametrize("name", sorted(WORKLOAD_BUILDERS),
                         ids=lambda n: n)
def test_workload_is_microarchitecturally_benign(name):
    """No traps, no flushes, no kernel accesses, no RNG probing."""
    program = WORKLOAD_BUILDERS[name](scale=2, seed=0)
    r = Machine(program, SimConfig()).run(max_cycles=400_000)
    assert r.counters["commit.traps"] == 0
    assert r.counters["dcache.flushes"] == 0
    assert r.counters["rng.reads"] == 0
    assert r.counters["cpu.rdtscReads"] == 0


def test_workload_suite_is_diverse():
    """Different kernels stress different pipeline mixes (IPC spread)."""
    ipcs = []
    for name, builder in WORKLOAD_BUILDERS.items():
        r = Machine(builder(scale=2, seed=0), SimConfig()).run(max_cycles=400_000)
        ipcs.append(r.ipc)
    assert max(ipcs) / max(min(ipcs), 1e-9) > 5


def test_workloads_deterministic_per_seed():
    a = Machine(WORKLOAD_BUILDERS["sort"](scale=2, seed=1), SimConfig()).run()
    b = Machine(WORKLOAD_BUILDERS["sort"](scale=2, seed=1), SimConfig()).run()
    assert a.cycles == b.cycles


def test_workload_seeds_change_data():
    a = Machine(WORKLOAD_BUILDERS["compress"](scale=2, seed=1), SimConfig()).run()
    b = Machine(WORKLOAD_BUILDERS["compress"](scale=2, seed=2), SimConfig()).run()
    assert a.cycles != b.cycles or a.counters != b.counters


def test_scale_parameter_extends_runtime():
    small = Machine(WORKLOAD_BUILDERS["stream"](scale=1, seed=0),
                    SimConfig()).run(max_cycles=400_000)
    large = Machine(WORKLOAD_BUILDERS["stream"](scale=4, seed=0),
                    SimConfig()).run(max_cycles=400_000)
    assert large.committed > 2 * small.committed


def test_all_workloads_factory():
    ws = all_workloads(scale=1, seeds=(0, 1))
    assert len(ws) == 2 * len(WORKLOAD_BUILDERS)
    assert all(isinstance(w, Workload) for w in ws)
    assert all(w.category == "benign" for w in ws)
    program, actors = ws[0].build()
    assert actors == []
