"""Shared fixtures: small corpora and trained artifacts, built once."""

import os
import signal
import threading

import pytest

from repro.attacks import (
    ALL_ATTACKS, FlushReload, LVI, Meltdown, PrimeProbe, Rowhammer,
    SpectrePHT, SpectreSTL,
)
from repro.core import vaccinate
from repro.data import build_dataset
from repro.workloads import all_workloads

#: a fast, representative attack subset for pipeline-level tests
FAST_ATTACKS = (SpectrePHT, SpectreSTL, Meltdown, LVI, FlushReload,
                PrimeProbe, Rowhammer)


@pytest.fixture(autouse=True)
def _per_test_timeout():
    """Dependency-free per-test deadline for CI.

    Active only when ``REPRO_TEST_TIMEOUT`` (seconds) is set in the
    environment — ``scripts/ci.sh`` sets it — so a single wedged test
    fails with a timeout instead of hanging the whole run.  Uses
    SIGALRM, hence main-thread only and a no-op elsewhere.
    """
    seconds = int(os.environ.get("REPRO_TEST_TIMEOUT", "0") or 0)
    if seconds <= 0 or \
            threading.current_thread() is not threading.main_thread():
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded {seconds}s "
                           f"(REPRO_TEST_TIMEOUT)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def small_dataset():
    """A small labelled dataset over a representative corpus."""
    attacks = [cls(seed=s) for cls in FAST_ATTACKS for s in (1, 2)]
    workloads = all_workloads(scale=3, seeds=(0, 1))
    return build_dataset(attacks, workloads, sample_period=250)


@pytest.fixture(scope="session")
def full_dataset():
    """All 22 attack programs + workloads at the paper's 100-inst period."""
    attacks = [cls(seed=s) for cls in ALL_ATTACKS for s in (1, 2)]
    workloads = all_workloads(scale=4, seeds=(0, 1))
    return build_dataset(attacks, workloads, sample_period=100)


@pytest.fixture(scope="session")
def vaccinated(full_dataset):
    """A full EVAX vaccination run (shared across integration tests)."""
    return vaccinate(full_dataset, gan_iterations=600, seed=0)
