"""Hardware detectors: schemas, training, deployment interface, HW cost."""

import numpy as np
import pytest

from repro.core import (
    DeepDetector, HardwareDetector, evax_schema, perspectron_schema,
)
from repro.core.vaccination import train_detector, train_perspectron
from repro.data import FeatureSchema


def test_schema_sizes_match_paper():
    assert perspectron_schema().dim == 106
    assert evax_schema().dim == 145


def test_perspectron_lacks_security_counters():
    names = perspectron_schema().names
    assert "lsq.assistForwards" not in names
    assert "dram.bytesReadWrQ" not in names
    assert not any(n.startswith("sec.") for n in names)


def _toy_problem(schema, n=200, seed=0):
    """Raw vectors where attack windows light up squash counters."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, schema.dim)) * 2.0
    y = rng.integers(0, 2, n)
    X[y == 1, :5] += 20.0
    return X, y


def test_detector_learns_toy_problem():
    schema = perspectron_schema()
    X, y = _toy_problem(schema)
    det = HardwareDetector(schema).fit(X, y, epochs=25)
    result = det.evaluate(X, y)
    assert result["accuracy"] > 0.95
    assert result["auc"] > 0.98


def test_detector_threshold_trades_fp_for_fn():
    schema = perspectron_schema()
    X, y = _toy_problem(schema)
    det = HardwareDetector(schema).fit(X, y, epochs=25)
    det.threshold = 0.05
    sensitive = det.evaluate(X, y)
    det.threshold = 0.95
    strict = det.evaluate(X, y)
    assert sensitive["fn"] <= strict["fn"]
    assert sensitive["fp"] >= strict["fp"]


def test_classify_window_uses_raw_deltas():
    from repro.sim.hpc import COUNTER_NAMES
    schema = evax_schema()
    X, y = _toy_problem(schema)
    det = HardwareDetector(schema).fit(X, y, epochs=10)
    deltas = [0] * len(COUNTER_NAMES)
    assert det.classify_window(deltas) in (True, False)


def test_hooks_are_callable():
    schema = evax_schema()
    X, y = _toy_problem(schema)
    det = HardwareDetector(schema).fit(X, y, epochs=5)
    hook = det.as_hook()
    fn = det.detector_fn()
    from repro.sim.sampler import Sample
    from repro.sim.hpc import COUNTER_NAMES
    s = Sample(0, 100, 50, [0] * len(COUNTER_NAMES))
    assert hook(None, s) in (True, False)
    assert fn(s) in (True, False)


def test_hardware_cost_model():
    det = HardwareDetector(evax_schema())
    cost = det.hardware_cost()
    assert cost["features"] == 145
    assert cost["weight_storage_bits"] == 145 * 9
    assert cost["adders"] == 1
    assert cost["estimated_transistors"] <= 4000


def test_quantized_weights_in_range():
    schema = evax_schema()
    X, y = _toy_problem(schema)
    det = HardwareDetector(schema).fit(X, y, epochs=10)
    q = det.quantized_weights(bits=9)
    assert q.min() >= 0 and q.max() <= 511


def test_deep_detector_depth():
    det = DeepDetector(evax_schema(), depth=4, width=16)
    assert len(det.net.layers) == 5
    with pytest.raises(ValueError):
        DeepDetector(evax_schema(), depth=0)


def test_train_detector_on_dataset(small_dataset):
    det = train_detector(small_dataset, evax_schema(), epochs=20)
    raw = small_dataset.raw_matrix(det.schema)
    result = det.evaluate(raw, small_dataset.labels())
    assert result["accuracy"] > 0.9


def test_perspectron_baseline_trains(small_dataset):
    det = train_perspectron(small_dataset, epochs=20)
    assert det.schema.dim == 106
    raw = small_dataset.raw_matrix(det.schema)
    assert det.evaluate(raw, small_dataset.labels())["accuracy"] > 0.8
