"""AM-GAN mechanics: conditioning, asymmetry, training, generation."""

import numpy as np
import pytest

from repro.core import AMGAN


def _toy_corpus(seed=0, n=240):
    """Two 'attack' classes with distinct feature co-activation patterns
    plus a benign class."""
    rng = np.random.default_rng(seed)
    dim = 16
    X, cats, targets = [], [], []
    for _ in range(n // 3):
        a = rng.random(dim) * 0.2
        a[0:3] += 0.8
        X.append(a)
        cats.append("atk-a")
        targets.append(1)
        c = rng.random(dim) * 0.2
        c[5:8] += 0.8
        X.append(c)
        cats.append("atk-b")
        targets.append(1)
        benign = rng.random(dim) * 0.3
        X.append(benign)
        cats.append("benign")
        targets.append(0)
    return np.clip(np.array(X), 0, 1), np.array(cats), np.array(targets)


@pytest.fixture(scope="module")
def trained_gan():
    X, cats, targets = _toy_corpus()
    gan = AMGAN(16, ["atk-a", "atk-b", "benign"],
                generator_hidden=(32, 32), seed=0)
    style_ref = {"atk-a": X[cats == "atk-a"][:60],
                 "atk-b": X[cats == "atk-b"][:60]}
    gan.train(X, cats, targets, iterations=400, style_reference=style_ref)
    return gan, X, cats


def test_asymmetric_architecture():
    gan = AMGAN(16, ["a", "b"], generator_hidden=(32, 32, 32))
    assert len(gan.generator.layers) == 4       # deep
    assert len(gan.discriminator.layers) == 1   # the detector's shape


def test_condition_vector_layout():
    gan = AMGAN(8, ["a", "b"])
    cond = gan.condition("b", 1)
    assert cond.shape == (3,)
    assert cond[1] == 1.0 and cond[0] == 0.0 and cond[2] == 1.0


def test_unknown_category_rejected():
    gan = AMGAN(8, ["a"])
    with pytest.raises(ValueError):
        gan.condition("zzz", 1)


def test_generated_samples_shape_and_range(trained_gan):
    gan, _, _ = trained_gan
    g = gan.generate("atk-a", 1, 12)
    assert g.shape == (12, 16)
    assert g.min() >= 0.0 and g.max() <= 1.0


def test_generator_respects_conditioning(trained_gan):
    """Class-a generations should activate class-a's signature features
    more than class-b's, and vice versa."""
    gan, _, _ = trained_gan
    ga = gan.generate("atk-a", 1, 64)
    gb = gan.generate("atk-b", 1, 64)
    assert ga[:, 0:3].mean() > gb[:, 0:3].mean()
    assert gb[:, 5:8].mean() > ga[:, 5:8].mean()


def test_style_history_recorded(trained_gan):
    gan, _, _ = trained_gan
    assert len(gan.style_history) >= 5
    iterations = [i for i, _ in gan.style_history]
    assert iterations == sorted(iterations)


def test_style_loss_improves_with_training(trained_gan):
    gan, _, _ = trained_gan
    first = np.mean([v for _, v in gan.style_history[:3]])
    last = np.mean([v for _, v in gan.style_history[-3:]])
    assert last < first


def test_discriminator_scores_in_unit_interval(trained_gan):
    gan, X, cats = trained_gan
    scores = gan.discriminator_score(X[:10], "atk-a", 1)
    assert scores.shape == (10,)
    assert (scores >= 0).all() and (scores <= 1).all()


def test_training_requires_samples():
    gan = AMGAN(4, ["a"])
    with pytest.raises(ValueError):
        gan.train(np.zeros((1, 4)), np.array(["a"]), np.array([1.0]),
                  iterations=1)
