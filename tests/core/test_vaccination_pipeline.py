"""The end-to-end vaccination pipeline and feature engineering."""

import numpy as np
import pytest

from repro.core import (
    BENIGN, combo_fire_rates, mine_security_hpcs, train_perspectron,
    vaccinate,
)
from repro.data import FeatureSchema
from repro.data.features import BASE_FEATURES


@pytest.fixture(scope="module")
def result(small_dataset):
    return vaccinate(small_dataset, gan_iterations=250, seed=0)


def test_pipeline_produces_widened_schema(result):
    assert result.schema.dim == 133 + 12
    assert len(result.engineered) == 12


def test_engineered_features_reference_real_counters(result):
    from repro.sim.hpc import CounterBank
    for name, counters in result.engineered:
        assert name.startswith("sec.auto_")
        assert len(counters) == 2
        for c in counters:
            assert CounterBank.has(c)


def test_engineered_combos_unique(result):
    combos = [tuple(c) for _, c in result.engineered]
    assert len(combos) == len(set(combos))


def test_style_history_recorded_and_improving(result):
    assert len(result.style_history) >= 5
    first = np.mean([v for _, v in result.style_history[:2]])
    last = np.mean([v for _, v in result.style_history[-2:]])
    assert last <= first * 1.5      # no divergence; usually improves


def test_generated_counts_cover_all_classes(result, small_dataset):
    for cat in small_dataset.categories:
        assert result.generated_counts.get(cat, 0) > 0
    # benign gets extra generated coverage (the paper's benign corpus)
    assert result.generated_counts[BENIGN] > \
        result.generated_counts["meltdown"]


def test_vaccinated_detector_fits_training_corpus(result, small_dataset):
    raw = small_dataset.raw_matrix(result.schema)
    y = small_dataset.labels()
    metrics = result.detector.evaluate(raw, y)
    assert metrics["accuracy"] > 0.95
    assert metrics["auc"] > 0.98


def test_vaccinated_beats_perspectron_on_fp(result, small_dataset):
    y = small_dataset.labels()
    evax = result.detector.evaluate(
        small_dataset.raw_matrix(result.schema), y)
    pers = train_perspectron(small_dataset, epochs=40)
    pers_m = pers.evaluate(small_dataset.raw_matrix(pers.schema), y)
    assert evax["fp_rate"] <= pers_m["fp_rate"] + 0.02
    assert evax["auc"] >= pers_m["auc"] - 0.01


def test_mine_security_hpcs_shapes(result):
    base_schema = FeatureSchema(engineered=(), base=BASE_FEATURES)
    combos = mine_security_hpcs(result.gan, base_schema, top_nodes=5,
                                counters_per_node=3)
    assert len(combos) == 5
    assert all(len(c) == 3 for _, c in combos)


def test_combo_fire_rates(result, small_dataset):
    base_schema = FeatureSchema(engineered=(), base=BASE_FEATURES)
    raw = small_dataset.raw_matrix(base_schema)
    rates = combo_fire_rates(raw, base_schema, result.engineered)
    assert set(rates) == {n for n, _ in result.engineered}
    assert all(0.0 <= v <= 1.0 for v in rates.values())


def test_pipeline_without_feature_engineering(small_dataset):
    res = vaccinate(small_dataset, gan_iterations=60, engineer_features=False,
                    seed=1, style_tracking=False)
    assert res.schema.dim == 133
    assert res.engineered == []
