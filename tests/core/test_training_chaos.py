"""Training-stage chaos: injected NaN/spike/kill faults must end in a
recovered model (rollback or checkpoint resume), never a garbage one —
and a faulted detector at inference time must latch the adaptive core
into always-secure mode."""

import argparse
import json

import numpy as np
import pytest

from repro.core import AMGAN, AdaptiveArchitecture, vaccinate
from repro.core.perceptron import HardwareDetector, evax_schema
from repro.ml.resilience import (
    NAN, TrainingCheckpointer, TrainingGuard,
)
from repro.obs import read_manifest
from repro.obs.metrics import metrics
from repro.runtime import (
    ChaosKill, KILL_FAULT, LOSS_SPIKE_FAULT, NAN_GRAD_FAULT, TrainingChaos,
    TrainingFault,
)


def _toy_problem(seed=7, n=40):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 6))
    cats = np.array(["atk", "benign"] * (n // 2))
    y = np.array([1.0, 0.0] * (n // 2))
    return X, cats, y


def _gan(seed=1):
    return AMGAN(6, ["atk", "benign"], generator_hidden=(8,), seed=seed)


def _all_finite(gan):
    return all(np.isfinite(p).all()
               for net in (gan.generator, gan.discriminator)
               for p in net.parameters)


class TestTrainingChaos:
    def test_nan_fault_rolls_back_and_completes(self):
        X, cats, y = _toy_problem()
        guard = TrainingGuard(snapshot_every=10)
        chaos = TrainingChaos([TrainingFault(NAN_GRAD_FAULT, at=12)])
        gan = _gan().train(X, cats, y, iterations=30,
                           guard=guard, chaos=chaos)
        assert chaos.fired                         # the fault was injected
        assert guard.failure_counts()[NAN] == 1
        assert [(s, k) for s, k, _ in guard.trips] == [(12, NAN)]
        assert _all_finite(gan)

    def test_loss_spike_fault_is_caught_and_recovered(self):
        X, cats, y = _toy_problem()
        guard = TrainingGuard(snapshot_every=10, loss_window=4,
                              loss_factor=5.0)
        chaos = TrainingChaos([TrainingFault(LOSS_SPIKE_FAULT, at=15,
                                             scale=1e8)])
        gan = _gan().train(X, cats, y, iterations=30,
                           guard=guard, chaos=chaos)
        assert chaos.fired
        assert sum(guard.failure_counts().values()) >= 1
        assert _all_finite(gan)
        # recovered parameters are back at trained scale, not 1e8
        assert max(np.abs(p).max() for p in gan.generator.parameters) < 1e3

    def test_unguarded_nan_fault_poisons_training(self):
        """The counterfactual the guard exists for: without it, one
        transient NaN propagates into the weights."""
        X, cats, y = _toy_problem()
        chaos = TrainingChaos([TrainingFault(NAN_GRAD_FAULT, at=5)])
        gan = _gan().train(X, cats, y, iterations=12, chaos=chaos)
        assert not _all_finite(gan)

    def test_guard_presence_does_not_change_healthy_trajectory(self):
        """The guard must be RNG-neutral when nothing trips, or enabling
        it would invalidate reproducibility of every clean run."""
        X, cats, y = _toy_problem()
        plain = _gan().train(X, cats, y, iterations=15)
        guarded = _gan().train(X, cats, y, iterations=15,
                               guard=TrainingGuard(snapshot_every=5))
        for a, b in zip(plain.generator.parameters,
                        guarded.generator.parameters):
            assert np.array_equal(a, b)


class TestKillAndResume:
    def test_kill_then_resume_is_bit_exact(self, tmp_path):
        X, cats, y = _toy_problem()
        clean = _gan().train(X, cats, y, iterations=30)

        ckdir, ctx = str(tmp_path / "ck"), {"test": "resume"}
        chaos = TrainingChaos([TrainingFault(KILL_FAULT, at=23)])
        interrupted = _gan()
        with pytest.raises(ChaosKill):
            interrupted.train(
                X, cats, y, iterations=30, chaos=chaos,
                checkpointer=TrainingCheckpointer(ckdir, ctx, interval=10))

        resumed_ck = TrainingCheckpointer(ckdir, ctx, interval=10,
                                          resume=True)
        survivor = _gan()
        start, payload = survivor.restore_checkpoint(resumed_ck, "gan")
        assert start == 20                         # last durable snapshot
        survivor.train(X, cats, y, iterations=30, checkpointer=resumed_ck,
                       start_iteration=start)
        for net in ("generator", "discriminator"):
            for a, b in zip(getattr(clean, net).parameters,
                            getattr(survivor, net).parameters):
                assert np.array_equal(a, b)
        # the RNG stream is aligned too: post-training generation matches
        assert np.array_equal(clean.generate("atk", 1, 4),
                              survivor.generate("atk", 1, 4))

    def test_nan_plus_kill_recovers_with_close_eval_metrics(self, tmp_path):
        """The acceptance scenario: NaN mid-training plus a kill between
        checkpoints; rollback + resume must complete and the vaccinated
        detector must score close to the fault-free run."""
        from repro.data import build_dataset
        from repro.workloads import all_workloads
        from tests.conftest import FAST_ATTACKS

        dataset = build_dataset(
            [cls(seed=1) for cls in FAST_ATTACKS[:3]],
            all_workloads(scale=2, seeds=(0,))[:3], sample_period=500)
        kwargs = dict(gan_iterations=30, epochs=6, engineer_features=False,
                      adversarial_hardening=False, style_tracking=False,
                      seed=0)
        clean = vaccinate(dataset, **kwargs)

        ckdir, ctx = str(tmp_path / "ck"), {"seed": 0}
        chaos = TrainingChaos([TrainingFault(NAN_GRAD_FAULT, at=8),
                               TrainingFault(KILL_FAULT, at=24)])
        guard = TrainingGuard(snapshot_every=5)
        with pytest.raises(ChaosKill):
            vaccinate(dataset, guard=guard, chaos=chaos,
                      checkpointer=TrainingCheckpointer(ckdir, ctx,
                                                        interval=10),
                      **kwargs)
        assert guard.failure_counts()[NAN] == 1

        recovered = vaccinate(
            dataset, guard=TrainingGuard(snapshot_every=5),
            checkpointer=TrainingCheckpointer(ckdir, ctx, interval=10,
                                              resume=True),
            **kwargs)
        raw, labels = dataset.raw_matrix(clean.schema), dataset.labels()
        clean_eval = clean.detector.evaluate(raw, labels)
        recovered_eval = recovered.detector.evaluate(
            dataset.raw_matrix(recovered.schema), labels)
        # the NaN rollback reseeds the RNG, so trajectories legitimately
        # differ — but the recovered detector must be comparably good
        assert abs(clean_eval["accuracy"]
                   - recovered_eval["accuracy"]) < 0.15

    def test_manifest_records_taxonomy_and_lineage(self, tmp_path):
        """A guarded, resumed training run inside a RunContext lands its
        trip taxonomy and checkpoint lineage in the run manifest."""
        from repro.obs.context import RunContext

        X, cats, y = _toy_problem()
        ckdir, ctx = str(tmp_path / "ck"), {"seed": 0}

        def _run(manifest_path, resume):
            args = argparse.Namespace(
                command="train", log_file=None, log_level="info",
                metrics_out=None, manifest_out=manifest_path,
                no_manifest=False, profile=None, seed=0)
            run_ctx = RunContext(args, argv=["train"])
            with run_ctx:
                ck = TrainingCheckpointer(ckdir, ctx, interval=10,
                                          resume=resume)
                gan = _gan()
                start = 0
                if resume:
                    start, payload = gan.restore_checkpoint(ck, "gan")
                    if payload is not None:
                        from repro.obs.context import record_lineage
                        record_lineage(
                            parent_run=payload["extra"].get("run"),
                            checkpoint_iteration=start)
                chaos = TrainingChaos(
                    [TrainingFault(NAN_GRAD_FAULT, at=start + 3)])
                gan.train(X, cats, y, iterations=start + 10,
                          guard=TrainingGuard(snapshot_every=5),
                          checkpointer=ck, chaos=chaos,
                          start_iteration=start)
            return run_ctx.run_id

        parent = _run(str(tmp_path / "m1.json"), resume=False)
        _run(str(tmp_path / "m2.json"), resume=True)

        first = read_manifest(str(tmp_path / "m1.json"))
        assert first["lineage"] is None
        assert first["failures"]["training"][NAN] == 1
        assert first["failures"]["training"]["rollbacks"] == 1
        assert first["metrics"]["counters"]["guard.checkpoints.written"] >= 1

        second = read_manifest(str(tmp_path / "m2.json"))
        assert second["lineage"] == {"parent_run": parent,
                                     "resumed_from_iteration": 10}
        assert second["failures"]["training"][NAN] == 1
        assert second["metrics"]["counters"]["guard.checkpoints.restored"] \
            == 1


class TestAdaptiveFailSecure:
    def _poisoned_detector(self):
        schema = evax_schema()
        detector = HardwareDetector(schema, seed=0)
        detector.normalizer.max_values = np.ones(schema.dim)
        detector.net.layers[0].weights[:] = np.nan     # silently degraded
        return detector

    def test_nan_detector_raises_instead_of_passing_everything(self):
        from repro.sim.hpc import COUNTER_NAMES

        detector = self._poisoned_detector()
        with pytest.raises(ValueError):
            detector.classify_window([1] * len(COUNTER_NAMES))

    def test_adaptive_run_latches_always_secure(self):
        from repro.attacks import Meltdown

        metrics().reset()
        arch = AdaptiveArchitecture(self._poisoned_detector(),
                                    sample_period=200)
        run = arch.run_source(Meltdown(seed=1), max_cycles=20_000)
        assert run.latched
        assert "ValueError" in run.latch_reason
        assert run.secure_fraction == 1.0
        snapshot = metrics().snapshot()["counters"]
        assert snapshot["adaptive.fail_secure.latches"] == 1
        assert snapshot["adaptive.detector.errors"] == 1
        assert snapshot["adaptive.windows.secure"] == \
            snapshot["adaptive.windows.total"]

    def test_fail_secure_can_be_disabled_for_debugging(self):
        from repro.attacks import Meltdown

        arch = AdaptiveArchitecture(self._poisoned_detector(),
                                    sample_period=200, fail_secure=False)
        with pytest.raises(RuntimeError):
            arch.run_source(Meltdown(seed=1), max_cycles=20_000)


@pytest.mark.slow
def test_vaccinate_resume_matches_uninterrupted_bit_exact(small_dataset,
                                                          tmp_path):
    """Full-pipeline determinism: kill the GAN stage between checkpoints,
    resume, and the final detector (weights, threshold, artifacts all the
    way down) must equal the uninterrupted run bit for bit."""
    kwargs = dict(gan_iterations=60, epochs=8, engineer_features=False,
                  seed=0)
    clean = vaccinate(small_dataset, **kwargs)

    ckdir, ctx = str(tmp_path / "ck"), {"seed": 0}
    chaos = TrainingChaos([TrainingFault(KILL_FAULT, at=50)])
    with pytest.raises(ChaosKill):
        vaccinate(small_dataset, chaos=chaos,
                  checkpointer=TrainingCheckpointer(ckdir, ctx, interval=20),
                  **kwargs)

    resumed = vaccinate(
        small_dataset,
        checkpointer=TrainingCheckpointer(ckdir, ctx, interval=20,
                                          resume=True),
        **kwargs)
    for a, b in zip(clean.detector.net.parameters,
                    resumed.detector.net.parameters):
        assert np.array_equal(a, b)
    assert clean.detector.threshold == resumed.detector.threshold
    assert np.array_equal(clean.detector.normalizer.max_values,
                          resumed.detector.normalizer.max_values)
    assert json.dumps(clean.style_history) == \
        json.dumps(resumed.style_history)
