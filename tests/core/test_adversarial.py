"""Adversarial-direction dilution model (core/adversarial)."""

import numpy as np
import pytest

from repro.core import (
    ESSENTIAL_COUNTERS, MAX_FEASIBLE_STRENGTH, adversarial_augmentation,
    dilute_toward_benign, essential_columns, evax_schema,
)
from repro.sim.hpc import CounterBank


@pytest.fixture(scope="module")
def schema():
    return evax_schema()


def test_essential_counters_exist():
    for name in ESSENTIAL_COUNTERS:
        assert CounterBank.has(name), name


def test_essential_columns_include_engineered(schema):
    cols = essential_columns(schema)
    names = [schema.names[i] for i in cols]
    assert any(n.startswith("sec.") for n in names)
    assert "commit.traps" in names


def test_dilution_strength_zero_is_identity(schema):
    rng = np.random.default_rng(0)
    X = rng.random((10, schema.dim))
    benign = rng.random(schema.dim) * 0.1
    out = dilute_toward_benign(X, benign, 0.0, schema)
    assert np.allclose(out, X)


def test_dilution_moves_toward_benign(schema):
    rng = np.random.default_rng(1)
    X = rng.random((10, schema.dim)) * 0.5 + 0.5
    benign = np.zeros(schema.dim)
    out = dilute_toward_benign(X, benign, 0.5, schema)
    non_essential = [i for i in range(schema.dim)
                     if i not in set(essential_columns(schema))]
    assert np.all(out[:, non_essential] < X[:, non_essential])


def test_essential_floor_preserved(schema):
    X = np.ones((4, schema.dim))
    benign = np.zeros(schema.dim)
    out = dilute_toward_benign(X, benign, 1.0, schema)
    cols = essential_columns(schema)
    assert np.all(out[:, cols] >= 0.3 - 1e-12)


def test_augmentation_shape_and_determinism(schema):
    rng = np.random.default_rng(2)
    X = rng.random((12, schema.dim))
    benign = np.zeros(schema.dim)
    a = adversarial_augmentation(X, benign, schema, seed=5, copies=2)
    b = adversarial_augmentation(X, benign, schema, seed=5, copies=2)
    assert a.shape == (24, schema.dim)
    assert np.allclose(a, b)


def test_max_feasible_strength_in_unit_interval():
    assert 0.0 < MAX_FEASIBLE_STRENGTH < 1.0
