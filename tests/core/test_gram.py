"""Gram matrix and style loss (Section V-D)."""

import numpy as np
import pytest

from repro.core import feature_correlation, gram_matrix, style_loss


def test_gram_is_symmetric_psd():
    rng = np.random.default_rng(0)
    X = rng.random((20, 6))
    G = gram_matrix(X)
    assert G.shape == (6, 6)
    assert np.allclose(G, G.T)
    eigenvalues = np.linalg.eigvalsh(G)
    assert eigenvalues.min() > -1e-10


def test_gram_diagonal_is_mean_square():
    X = np.array([[1.0, 2.0], [3.0, 0.0]])
    G = gram_matrix(X)
    assert G[0, 0] == pytest.approx((1 + 9) / 2)
    assert G[1, 1] == pytest.approx(4 / 2)
    assert G[0, 1] == pytest.approx(2 / 2)


def test_gram_requires_2d_nonempty():
    with pytest.raises(ValueError):
        gram_matrix(np.zeros(3))
    with pytest.raises(ValueError):
        gram_matrix(np.zeros((0, 3)))


def test_style_loss_zero_for_identical_batches():
    rng = np.random.default_rng(1)
    X = rng.random((30, 8))
    assert style_loss(X, X) == pytest.approx(0.0)


def test_style_loss_small_for_same_distribution():
    rng = np.random.default_rng(2)
    base = rng.random((200, 8)) * np.array([1, 1, 0, 0, 1, 0, 0, 1])
    gen = rng.random((200, 8)) * np.array([1, 1, 0, 0, 1, 0, 0, 1])
    other = rng.random((200, 8)) * np.array([0, 0, 1, 1, 0, 1, 1, 0])
    same = style_loss(base, gen)
    diff = style_loss(base, other)
    assert same < diff


def test_style_loss_alpha_scales():
    rng = np.random.default_rng(3)
    a, b = rng.random((10, 4)), rng.random((10, 4))
    assert style_loss(a, b, alpha=2.0) == pytest.approx(
        style_loss(a, b, alpha=1.0) / 2)


def test_feature_correlation_matches_gram_entry():
    rng = np.random.default_rng(4)
    X = rng.random((15, 5))
    G = gram_matrix(X)
    assert feature_correlation(X, 1, 3) == pytest.approx(G[1, 3])
