"""Validated model artifacts: atomic, checksummed, schema-versioned
save/load with typed failures — a torn or tampered file can never load
into a silently wrong detector."""

import json

import numpy as np
import pytest

from repro.core.patching import (
    MODEL_FORMAT, ModelChecksumError, ModelCorruptError, ModelError,
    ModelMissingError, ModelSchemaError, detector_from_dict,
    detector_to_dict, load_detector, save_detector, schema_fingerprint,
    verify_corpus_compatible,
)
from repro.core.perceptron import HardwareDetector, evax_schema


@pytest.fixture()
def detector():
    det = HardwareDetector(evax_schema(), seed=3, threshold=0.7)
    det.normalizer.max_values = np.ones(det.schema.dim)
    return det


@pytest.fixture()
def artifact(detector, tmp_path):
    path = str(tmp_path / "detector.json")
    save_detector(detector, path)
    return path


def test_roundtrip_preserves_everything(detector, artifact):
    loaded = load_detector(artifact)
    assert loaded.threshold == detector.threshold
    assert loaded.schema.names == detector.schema.names
    for a, b in zip(loaded.net.parameters, detector.net.parameters):
        assert np.array_equal(a, b)
    assert np.array_equal(loaded.normalizer.max_values,
                          detector.normalizer.max_values)


def test_envelope_carries_format_checksum_and_fingerprint(detector,
                                                          artifact):
    envelope = json.load(open(artifact))
    assert envelope["format"] == MODEL_FORMAT
    assert len(envelope["sha256"]) == 64
    assert envelope["schema_fingerprint"] == \
        schema_fingerprint(detector.schema)
    assert envelope["feature_count"] == detector.schema.dim


def test_missing_file_is_typed(tmp_path):
    with pytest.raises(ModelMissingError):
        load_detector(str(tmp_path / "nope.json"))


def test_truncated_file_is_corrupt(artifact):
    raw = open(artifact, "rb").read()
    open(artifact, "wb").write(raw[: len(raw) // 2])
    with pytest.raises(ModelCorruptError):
        load_detector(artifact)


def test_non_object_payload_is_corrupt(tmp_path):
    path = str(tmp_path / "d.json")
    open(path, "w").write("[1, 2, 3]")
    with pytest.raises(ModelCorruptError):
        load_detector(path)


def test_flipped_weight_fails_checksum(artifact):
    envelope = json.load(open(artifact))
    envelope["detector"]["layers"][0]["weights"][0][0] += 0.25
    json.dump(envelope, open(artifact, "w"))
    with pytest.raises(ModelChecksumError):
        load_detector(artifact)


def test_unknown_format_tag_is_schema_error(artifact):
    envelope = json.load(open(artifact))
    envelope["format"] = "repro.detector/999"
    json.dump(envelope, open(artifact, "w"))
    with pytest.raises(ModelSchemaError):
        load_detector(artifact)


def test_nonfinite_weights_rejected_even_with_valid_checksum(detector,
                                                             tmp_path):
    """A NaN that survives into the artifact must be caught structurally
    — checksums only prove the file matches what was written."""
    detector.net.layers[0].weights[0, 0] = float("nan")
    path = str(tmp_path / "d.json")
    save_detector(detector, path)
    with pytest.raises(ModelSchemaError):
        load_detector(path)


def test_dimension_mismatch_rejected(detector, artifact):
    envelope = json.load(open(artifact))
    payload = envelope["detector"]
    payload["layers"][0]["weights"] = payload["layers"][0]["weights"][:-1]
    # recompute the checksum so only the structural check can object
    import hashlib
    envelope["sha256"] = hashlib.sha256(json.dumps(
        payload, sort_keys=True, separators=(",", ":")).encode()).hexdigest()
    json.dump(envelope, open(artifact, "w"))
    with pytest.raises(ModelSchemaError):
        load_detector(artifact)


def test_legacy_envelope_less_artifact_still_loads(detector, tmp_path):
    path = str(tmp_path / "legacy.json")
    json.dump(detector_to_dict(detector), open(path, "w"))
    loaded = load_detector(path)
    for a, b in zip(loaded.net.parameters, detector.net.parameters):
        assert np.array_equal(a, b)


def test_model_errors_are_value_errors(artifact):
    """Back-compat: pre-taxonomy callers caught ValueError."""
    assert issubclass(ModelError, ValueError)
    open(artifact, "w").write("{not json")
    with pytest.raises(ValueError):
        load_detector(artifact)


def test_save_is_atomic_no_partial_file_on_crash(detector, tmp_path,
                                                 monkeypatch):
    """A crash mid-save leaves the previous artifact intact (temp +
    os.replace), never a half-written one."""
    import os
    path = str(tmp_path / "d.json")
    save_detector(detector, path)
    before = open(path, "rb").read()

    real_replace = os.replace

    def exploding_replace(src, dst):
        if dst == path:
            raise OSError("simulated crash at publish time")
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", exploding_replace)
    detector.threshold = 0.9
    with pytest.raises(OSError):
        save_detector(detector, path)
    monkeypatch.undo()
    assert open(path, "rb").read() == before
    assert load_detector(path).threshold == 0.7


def test_cli_rejects_corrupted_detector_with_exit_2(artifact, capsys):
    from repro.cli import main

    envelope = json.load(open(artifact))
    envelope["detector"]["threshold"] = 0.2       # silently retuned
    json.dump(envelope, open(artifact, "w"))
    with pytest.raises(SystemExit) as err:
        main(["explain", artifact])
    assert err.value.code == 2
    out = capsys.readouterr()
    assert "checksum mismatch" in out.err
    assert artifact in out.err


def test_stale_schema_in_payload_is_typed_not_keyerror(detector):
    """A detector dict naming a counter this build's layout lacks must
    raise :class:`ModelSchemaError`, not a bare ``KeyError`` mid-gather
    — the arena resume path and the adaptive loader both rely on it."""
    payload = detector_to_dict(detector)
    payload["schema"]["base"] = ["no.such.counter"] \
        + payload["schema"]["base"][1:]
    with pytest.raises(ModelSchemaError, match="stale envelope"):
        detector_from_dict(payload)


def test_stale_engineered_counter_is_typed_too(detector):
    payload = detector_to_dict(detector)
    payload["schema"]["engineered"][0] = ["sec.bogus",
                                          ["no.such.counter", "icache.miss"]]
    with pytest.raises(ModelSchemaError):
        detector_from_dict(payload)


class TestVerifyCorpusCompatible:
    """Detector envelope vs evaluation corpus: each can be internally
    consistent yet mutually wrong; the check makes that typed."""

    def corpus(self, width=None, sha=None):
        from repro.data.dataset import Dataset, SampleRecord
        from repro.sim.hpc import COUNTER_NAMES
        width = width if width is not None else len(COUNTER_NAMES)
        record = SampleRecord(deltas=[1] * width, label=0,
                              category="benign", phase=0, source="b",
                              commit_index=0)
        return Dataset(records=[record], sample_period=100,
                       counters_sha256=sha)

    def test_compatible_pair_passes(self, detector):
        from repro.data.io import counter_layout_sha256
        assert verify_corpus_compatible(
            detector, self.corpus(sha=counter_layout_sha256())) is detector
        assert verify_corpus_compatible(detector,
                                        self.corpus(sha=None)) is detector

    def test_stale_detector_schema_is_rejected(self, detector):
        detector.schema.base_features = ("no.such.counter",) \
            + detector.schema.base_features[1:]
        with pytest.raises(ModelSchemaError, match="absent from"):
            verify_corpus_compatible(detector, self.corpus(),
                                     detector_origin="arena incumbent")

    def test_foreign_layout_fingerprint_is_rejected(self, detector):
        with pytest.raises(ModelSchemaError, match="different counter"):
            verify_corpus_compatible(detector, self.corpus(sha="0" * 64),
                                     corpus_origin="held-out corpus")

    def test_wrong_delta_width_is_rejected(self, detector):
        with pytest.raises(ModelSchemaError, match="counter deltas"):
            verify_corpus_compatible(detector, self.corpus(width=7))


def test_cli_adaptive_rejects_missing_detector_with_exit_2(tmp_path,
                                                           capsys):
    from repro.cli import main

    with pytest.raises(SystemExit) as err:
        main(["adaptive", "--detector", str(tmp_path / "none.json"),
              "--no-manifest"])
    assert err.value.code == 2
    assert "cannot load detector" in capsys.readouterr().err
