"""Attack-family classification and the targeted adaptive architecture."""

import numpy as np
import pytest

from repro.attacks import CATEGORIES
from repro.core import evax_schema
from repro.core.classifier import (
    AttackClassifier, CATEGORY_FAMILIES, FAMILIES, FAMILY_RESPONSES,
    TargetedController,
)
from repro.ml import CategoricalCrossEntropy, MLP
from repro.sim.config import DefenseMode
from repro.sim.sampler import Sample
from repro.sim.hpc import COUNTER_NAMES


def test_every_category_has_a_family():
    for category in CATEGORIES + ("benign", "evict-time", "zombieload",
                                  "foreshadow", "spoiler"):
        assert CATEGORY_FAMILIES[category] in FAMILIES


def test_family_responses_cover_all_families():
    assert set(FAMILY_RESPONSES) == set(FAMILIES)
    assert FAMILY_RESPONSES["fault"] is DefenseMode.FENCE_FUTURISTIC


class TestSoftmaxSubstrate:
    def test_softmax_outputs_distribution(self):
        net = MLP([4, 3], ["softmax"], loss=CategoricalCrossEntropy())
        out = net.predict(np.random.default_rng(0).normal(size=(5, 4)))
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out >= 0).all()

    def test_learns_three_classes(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 4))
        labels = np.argmax(X[:, :3], axis=1)
        Y = np.eye(3)[labels]
        net = MLP([4, 16, 3], ["tanh", "softmax"],
                  loss=CategoricalCrossEntropy())
        for _ in range(100):
            for i in range(0, 300, 32):
                net.train_batch(X[i:i + 32], Y[i:i + 32])
        acc = (np.argmax(net.predict(X), axis=1) == labels).mean()
        assert acc > 0.9


class TestAttackClassifier:
    @pytest.fixture(scope="class")
    def trained(self, small_dataset):
        return AttackClassifier(evax_schema(), seed=0).fit(small_dataset,
                                                           epochs=40)

    def test_family_accuracy_high(self, trained, small_dataset):
        assert trained.family_accuracy(small_dataset) > 0.85

    def test_predicts_families_for_known_windows(self, trained,
                                                 small_dataset):
        for record in small_dataset.records[:20]:
            family = trained.predict_family(record.deltas)
            assert family in FAMILIES

    def test_benign_windows_mostly_benign(self, trained, small_dataset):
        benign = [r for r in small_dataset.records if r.label == 0][:50]
        predicted = [trained.predict_family(r.deltas) for r in benign]
        benign_rate = sum(p == "benign" for p in predicted) / len(predicted)
        assert benign_rate > 0.8


class FakeMachine:
    def __init__(self):
        self.defense = DefenseMode.NONE
        self.actors_suspended = False
        from repro.sim import SimConfig
        self.config = SimConfig()

    def set_defense(self, mode):
        self.defense = mode


class FixedClassifier:
    def __init__(self, family):
        self.family = family

    def predict_family(self, deltas):
        return self.family


def _window(commit):
    return Sample(0, commit, 0, [0] * len(COUNTER_NAMES))


class TestTargetedController:
    def test_contention_flag_quarantines(self):
        m = FakeMachine()
        ctrl = TargetedController(lambda s: True,
                                  FixedClassifier("contention"),
                                  secure_window=500)
        ctrl(m, _window(100))
        assert m.actors_suspended
        assert m.defense is DefenseMode.NONE

    def test_dram_flag_boosts_refresh(self):
        m = FakeMachine()
        normal = m.config.dram_refresh_interval
        ctrl = TargetedController(lambda s: True, FixedClassifier("dram"),
                                  secure_window=500)
        ctrl(m, _window(100))
        assert m.config.dram_refresh_interval < normal

    def test_relaxes_after_window(self):
        m = FakeMachine()
        normal = m.config.dram_refresh_interval
        flags = iter([True, False])
        ctrl = TargetedController(lambda s: next(flags),
                                  FixedClassifier("contention"),
                                  secure_window=500)
        ctrl(m, _window(100))
        ctrl(m, _window(1000))
        assert not m.actors_suspended
        assert m.defense is DefenseMode.NONE
        assert m.config.dram_refresh_interval == normal

    def test_benign_classification_falls_back_to_fault(self):
        m = FakeMachine()
        ctrl = TargetedController(lambda s: True, FixedClassifier("benign"),
                                  secure_window=500)
        ctrl(m, _window(100))
        assert m.defense is DefenseMode.FENCE_FUTURISTIC
