"""Interpretability tooling and vendor-patch serialization."""

import numpy as np
import pytest

from repro.core import (
    DetectorPatch, HardwareDetector, attack_signature, detector_from_dict,
    detector_to_dict, evax_schema, explain_window, gram_heatmap,
    load_detector, perspectron_schema, save_detector, weight_report,
)
from repro.sim.hpc import COUNTER_NAMES


@pytest.fixture(scope="module")
def trained(small_dataset):
    det = HardwareDetector(evax_schema(), seed=0, name="evax-test")
    raw = small_dataset.raw_matrix(det.schema)
    det.fit(raw, small_dataset.labels(), epochs=30)
    return det


class TestInterpret:
    def test_weight_report_shapes(self, trained):
        malicious, benign = weight_report(trained, top=6)
        assert len(malicious) == 6 and len(benign) == 6
        assert malicious[0][1] >= malicious[-1][1]
        assert benign[0][1] <= benign[-1][1]
        # the two ends of the hyperplane do not overlap
        assert not ({n for n, _ in malicious} & {n for n, _ in benign})

    def test_explain_window_flags_attack_features(self, trained,
                                                  small_dataset):
        attack = next(r for r in small_dataset.records if r.label == 1)
        score, contributions = explain_window(trained, attack.deltas)
        assert 0.0 <= score <= 1.0
        assert contributions
        assert all(value > 0 for _, value in contributions)
        names = {n for n, _ in contributions}
        assert names <= set(trained.schema.names)

    def test_gram_heatmap_renders(self):
        rng = np.random.default_rng(0)
        windows = rng.random((20, 4))
        art = gram_heatmap(windows, ["a", "b", "c", "d"])
        lines = art.splitlines()
        assert len(lines) == 4
        assert all("|" in line for line in lines)

    def test_attack_signature_finds_mechanism_counters(self, small_dataset):
        schema = evax_schema()
        sig = attack_signature(small_dataset, "meltdown", schema)
        names = [n for n, _ in sig]
        assert any(n in ("commit.traps", "iq.squashedNonSpecLD",
                         "squash.faultSquashes", "cpu.rdtscReads",
                         "dcache.flushes") or n.startswith("sec.")
                   for n in names)

    def test_attack_signature_unknown_category(self, small_dataset):
        with pytest.raises(ValueError):
            attack_signature(small_dataset, "not-an-attack", evax_schema())


class TestPatching:
    def test_roundtrip_preserves_predictions(self, trained, small_dataset):
        data = detector_to_dict(trained)
        clone = detector_from_dict(data)
        raw = small_dataset.raw_matrix(trained.schema)
        assert np.allclose(clone.scores_raw(raw), trained.scores_raw(raw))
        assert clone.schema.names == trained.schema.names

    def test_save_load_file(self, trained, small_dataset, tmp_path):
        path = tmp_path / "detector.json"
        save_detector(trained, path)
        loaded = load_detector(path)
        raw = small_dataset.raw_matrix(trained.schema)
        assert np.allclose(loaded.scores_raw(raw), trained.scores_raw(raw))

    def test_patch_apply_and_version(self, trained):
        patch = DetectorPatch.from_retrained(trained, version="2026.07")
        patched = patch.apply()
        assert patched.name.endswith("@2026.07")
        assert patched.schema.dim == trained.schema.dim

    def test_patch_reports_new_features(self, small_dataset):
        deployed = HardwareDetector(perspectron_schema(), name="deployed")
        updated = HardwareDetector(evax_schema(), name="updated")
        patch = DetectorPatch.from_retrained(updated, version="v2")
        new = patch.new_features_vs(deployed)
        assert len(new) == 12       # the engineered security HPCs

    def test_patch_json_roundtrip(self, trained):
        patch = DetectorPatch.from_retrained(trained, version="v9")
        again = DetectorPatch.from_json(patch.to_json())
        assert again.version == "v9"
        assert again.apply().schema.names == trained.schema.names

    def test_deep_detector_roundtrip(self, small_dataset):
        from repro.core import DeepDetector
        det = DeepDetector(perspectron_schema(), depth=2, width=8, seed=1)
        raw = small_dataset.raw_matrix(det.schema)
        det.fit(raw, small_dataset.labels(), epochs=5)
        clone = detector_from_dict(detector_to_dict(det))
        assert np.allclose(clone.scores_raw(raw), det.scores_raw(raw))


class TestClassifierPatching:
    def test_classifier_roundtrip(self, small_dataset):
        import numpy as np
        from repro.core import evax_schema
        from repro.core.classifier import AttackClassifier
        from repro.core.patching import (
            classifier_from_dict, classifier_to_dict,
        )
        clf = AttackClassifier(evax_schema(), seed=0).fit(small_dataset,
                                                          epochs=10)
        clone = classifier_from_dict(classifier_to_dict(clf))
        for record in small_dataset.records[:15]:
            assert clone.predict_family(record.deltas) == \
                clf.predict_family(record.deltas)
