"""Leave-one-attack-out evaluation and the adaptive architecture."""

import pytest

from repro.attacks import Meltdown, SpectrePHT, default_secret_bits
from repro.core import (
    AdaptiveArchitecture, leave_one_attack_out, mean_generalization_error,
    train_detector, evax_schema,
)
from repro.sim.config import DefenseMode
from repro.workloads import all_workloads


def _trainer(train_dataset):
    return train_detector(train_dataset, evax_schema(), epochs=25)


class TestLeaveOneAttackOut:
    @pytest.fixture(scope="class")
    def folds(self, small_dataset):
        return leave_one_attack_out(small_dataset, _trainer,
                                    categories=["meltdown", "spectre-pht"])

    def test_each_category_scored(self, folds):
        assert set(folds) == {"meltdown", "spectre-pht"}
        for fold in folds.values():
            assert fold.n_test_attack > 0
            assert fold.n_test_benign > 0
            assert 0.0 <= fold.tpr <= 1.0
            assert 0.0 <= fold.error <= 1.0

    def test_recovery_phase_excluded(self, small_dataset):
        from repro.attacks.base import PHASE_RECOVER
        folds = leave_one_attack_out(small_dataset, _trainer,
                                     categories=["meltdown"],
                                     exclude_recovery=True)
        total = sum(1 for r in small_dataset.records
                    if r.category == "meltdown"
                    and r.phase != PHASE_RECOVER)
        assert folds["meltdown"].n_test_attack == total

    def test_mean_generalization_error(self, folds):
        err = mean_generalization_error(folds)
        assert 0.0 <= err <= 1.0
        assert mean_generalization_error({}) == 0.0


class TestAdaptiveArchitecture:
    @pytest.fixture(scope="class")
    def arch(self, vaccinated):
        return AdaptiveArchitecture(vaccinated.detector,
                                    secure_mode=DefenseMode.FENCE_FUTURISTIC,
                                    secure_window=10_000,
                                    sample_period=100)

    def test_blocks_unseen_seed_attacks(self, arch):
        for cls in (SpectrePHT, Meltdown):
            attack = cls(secret_bits=default_secret_bits(9, n=10), seed=9)
            run, leaked = arch.run_attack(attack)
            assert run.flags > 0
            assert not leaked, cls.name

    def test_benign_overhead_negligible(self, arch):
        workloads = all_workloads(scale=4, seeds=(3,))[:5]
        overheads, _ = arch.overhead_on(workloads)
        mean = sum(overheads.values()) / len(overheads)
        assert mean < 0.05

    def test_secure_fraction_reported(self, arch):
        attack = SpectrePHT(seed=9)
        run, _ = arch.run_attack(attack)
        assert 0.0 <= run.secure_fraction <= 1.0
        assert run.secure_fraction > 0.3       # attack keeps defenses on
