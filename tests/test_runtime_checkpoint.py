"""Checkpoint shards + manifest: atomicity, verification, resume."""

import json
import os

import pytest

from repro.runtime import CheckpointError, CheckpointStore
from repro.runtime.atomic import atomic_write_bytes, sha256_bytes

CONTEXT = {"sample_period": 100, "keys": ["a", "b"]}


def _store(tmp_path, resume=False, context=CONTEXT):
    return CheckpointStore(str(tmp_path / "shards")).open(
        context=context, resume=resume)


class TestAtomicWrite:
    def test_roundtrip_and_digest(self, tmp_path):
        path = str(tmp_path / "blob.bin")
        digest = atomic_write_bytes(path, b"hello")
        assert open(path, "rb").read() == b"hello"
        assert digest == sha256_bytes(b"hello")

    def test_no_temp_droppings_on_success(self, tmp_path):
        atomic_write_bytes(str(tmp_path / "x"), b"data")
        assert sorted(os.listdir(tmp_path)) == ["x"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        path = str(tmp_path / "x")
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert open(path, "rb").read() == b"new"


class TestCheckpointStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        store.put("a", {"records": [1, 2, 3]})
        assert store.get("a") == {"records": [1, 2, 3]}
        assert store.has("a") and not store.has("b")

    def test_resume_sees_previous_shards(self, tmp_path):
        _store(tmp_path).put("a", {"records": [1]})
        store = _store(tmp_path, resume=True)
        assert store.valid_keys() == ["a"]
        assert store.get("a") == {"records": [1]}

    def test_fresh_open_clears_previous_state(self, tmp_path):
        _store(tmp_path).put("a", {"records": [1]})
        store = _store(tmp_path)           # no resume -> rebuild
        assert store.valid_keys() == []

    def test_resume_with_different_context_refused(self, tmp_path):
        _store(tmp_path).put("a", {"records": [1]})
        with pytest.raises(CheckpointError):
            _store(tmp_path, resume=True,
                   context={"sample_period": 250, "keys": ["a", "b"]})

    def test_tampered_shard_is_dropped_not_trusted(self, tmp_path):
        store = _store(tmp_path)
        store.put("a", {"records": [1]})
        store.put("b", {"records": [2]})
        shard = next(p for p in (tmp_path / "shards").iterdir()
                     if p.name.startswith("a") and
                     p.name.endswith(".shard.json"))
        shard.write_text(json.dumps({"records": [999]}))
        resumed = _store(tmp_path, resume=True)
        assert resumed.valid_keys() == ["b"]    # "a" must be re-simulated

    def test_get_checksum_mismatch_raises(self, tmp_path):
        store = _store(tmp_path)
        store.put("a", {"records": [1]})
        shard = next(p for p in (tmp_path / "shards").iterdir()
                     if p.name.endswith(".shard.json"))
        shard.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            store.get("a")

    def test_get_unknown_key_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            _store(tmp_path).get("nope")

    def test_corrupt_manifest_refused_loudly(self, tmp_path):
        _store(tmp_path).put("a", {"records": [1]})
        (tmp_path / "shards" / "manifest.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            _store(tmp_path, resume=True)

    def test_keys_with_awkward_characters(self, tmp_path):
        store = _store(tmp_path)
        key = "003-atk-spectre/pht v2-s1"
        store.put(key, {"records": []})
        assert store.get(key) == {"records": []}
