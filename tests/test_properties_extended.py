"""Second round of property-based tests: builder programs, schema
round-trips, DRAM geometry, adversarial dilution, detector serialization."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.adversarial import (
    ESSENTIAL_FLOOR, dilute_toward_benign, essential_columns,
)
from repro.core.perceptron import evax_schema
from repro.data.features import FeatureSchema
from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.dram import DRAM
from repro.sim.hpc import COUNTER_NAMES, CounterBank
from repro.sim.memory import MainMemory

_SCHEMA = evax_schema()


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=2,
                max_size=12))
@settings(max_examples=30, deadline=None)
def test_straightline_movi_sequence_commits_all(values):
    b = ProgramBuilder()
    for i, v in enumerate(values[:12]):
        b.movi(i % 14, v)
        if i % 14 == 13:
            break
    b.halt()
    r = Machine(b.build(), SimConfig()).run(max_cycles=50_000)
    assert r.halt_reason == "halt"
    assert r.committed == min(len(values), 12) + 1


@given(st.integers(min_value=0, max_value=1 << 34))
@settings(max_examples=60, deadline=None)
def test_dram_geometry_bijective(addr):
    dram = DRAM(SimConfig(), CounterBank(), MainMemory())
    bank, row = dram.bank_row(addr)
    assert 0 <= bank < dram.num_banks
    base = dram.row_base_address(bank, row)
    assert dram.bank_row(base) == (bank, row)
    assert base % dram.row_bytes == 0


@given(st.lists(st.lists(st.floats(0, 1, allow_nan=False), min_size=145,
                         max_size=145), min_size=1, max_size=10),
       st.floats(0, 1, allow_nan=False))
@settings(max_examples=30, deadline=None)
def test_dilution_essential_floor_invariant(rows, strength):
    X = np.array(rows)
    benign = np.zeros(145)
    out = dilute_toward_benign(X, benign, strength, _SCHEMA)
    cols = essential_columns(_SCHEMA)
    assert np.all(out[:, cols] >= ESSENTIAL_FLOOR * X[:, cols] - 1e-12)
    assert np.all(out >= 0.0)
    assert out.shape == X.shape


@given(st.integers(min_value=1, max_value=132))
@settings(max_examples=20, deadline=None)
def test_schema_dim_matches_base_subset(n_base):
    from repro.data.features import BASE_FEATURES
    schema = FeatureSchema(engineered=(), base=BASE_FEATURES[:n_base])
    assert schema.dim == n_base
    deltas = [1] * len(COUNTER_NAMES)
    assert schema.raw_vector(deltas).shape == (n_base,)


@given(st.lists(st.integers(min_value=0, max_value=1000),
                min_size=len(COUNTER_NAMES), max_size=len(COUNTER_NAMES)))
@settings(max_examples=30, deadline=None)
def test_engineered_and_is_min_of_members(deltas):
    schema = FeatureSchema()
    vec = schema.raw_vector(deltas)
    for k, (name, counters) in enumerate(schema.engineered):
        expected = min(deltas[CounterBank.index_of(c)] for c in counters)
        assert vec[len(schema.base_features) + k] == expected


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_detector_serialization_roundtrip_scores(seed):
    from repro.core import HardwareDetector
    from repro.core.patching import detector_from_dict, detector_to_dict
    rng = np.random.default_rng(seed)
    schema = FeatureSchema()
    det = HardwareDetector(schema, seed=seed % 7)
    X = rng.random((4, schema.dim)) * 3
    det.normalizer.fit(X)
    clone = detector_from_dict(detector_to_dict(det))
    assert np.allclose(clone.scores_raw(X), det.scores_raw(X))
