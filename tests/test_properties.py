"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.attacks.base import bits_balanced_accuracy
from repro.core.gram import gram_matrix, style_loss
from repro.data.features import MaxNormalizer
from repro.ml.metrics import (
    accuracy, auc, confusion_counts, roc_curve,
)
from repro.sim import Machine, ProgramBuilder, SimConfig
from repro.sim.branch import RAS, TournamentPredictor
from repro.sim.cache import Cache
from repro.sim.hpc import CounterBank
from repro.sim.memory import MainMemory

# ---------------------------------------------------------------- cache

lines = st.integers(min_value=0, max_value=500)


@given(st.lists(lines, min_size=1, max_size=120))
@settings(max_examples=60, deadline=None)
def test_cache_occupancy_never_exceeds_ways(sequence):
    cache = Cache(4 * 64 * 2, 2, 64, 2, CounterBank(), "dcache")
    for line in sequence:
        cache.fill(line)
        for s in range(cache.num_sets):
            assert cache.set_occupancy(s) <= cache.assoc


@given(st.lists(lines, min_size=1, max_size=120))
@settings(max_examples=60, deadline=None)
def test_cache_most_recent_fill_always_present(sequence):
    cache = Cache(4 * 64 * 2, 2, 64, 2, CounterBank(), "dcache")
    for line in sequence:
        cache.fill(line)
        assert cache.contains(line)


@given(st.lists(lines, min_size=1, max_size=80), lines)
@settings(max_examples=60, deadline=None)
def test_cache_invalidate_removes(sequence, victim):
    cache = Cache(4 * 64 * 2, 2, 64, 2, CounterBank(), "dcache")
    for line in sequence:
        cache.fill(line)
    cache.invalidate(victim)
    assert not cache.contains(victim)


# ---------------------------------------------------------------- memory

@given(st.integers(min_value=0, max_value=1 << 40),
       st.integers(min_value=0, max_value=1 << 62))
@settings(max_examples=80, deadline=None)
def test_memory_store_load_roundtrip(addr, value):
    mem = MainMemory()
    mem.store(addr, value)
    assert mem.load(addr) == value


@given(st.integers(min_value=0, max_value=1 << 30),
       st.integers(min_value=0, max_value=63))
@settings(max_examples=60, deadline=None)
def test_memory_double_flip_is_identity(addr, bit):
    mem = MainMemory()
    mem.store(addr, 12345)
    mem.flip_bit(addr, bit)
    mem.flip_bit(addr, bit)
    assert mem.load(addr) == 12345


# ---------------------------------------------------------------- predictors

@given(st.lists(st.booleans(), min_size=1, max_size=60),
       st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_predictor_prediction_is_boolean(outcomes, pc):
    p = TournamentPredictor()
    for taken in outcomes:
        p.update(pc, taken)
        assert p.predict(pc) in (True, False)


@given(st.lists(st.integers(min_value=1, max_value=1 << 20),
                min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_ras_is_lifo_within_capacity(pushes):
    ras = RAS(entries=16)
    for v in pushes:
        ras.push(v)
    for v in reversed(pushes):
        assert ras.pop() == v


# ---------------------------------------------------------------- metrics

binary_lists = st.lists(st.integers(min_value=0, max_value=1),
                        min_size=2, max_size=80)


@given(binary_lists)
@settings(max_examples=60, deadline=None)
def test_confusion_counts_sum_to_n(labels):
    preds = labels[::-1]
    tp, fp, tn, fn = confusion_counts(labels, preds)
    assert tp + fp + tn + fn == len(labels)


@given(binary_lists)
@settings(max_examples=60, deadline=None)
def test_accuracy_bounded(labels):
    preds = [1 - v for v in labels]
    assert 0.0 <= accuracy(labels, preds) <= 1.0


@given(st.lists(st.tuples(st.integers(0, 1),
                          st.floats(0, 1, allow_nan=False)),
                min_size=4, max_size=100))
@settings(max_examples=60, deadline=None)
def test_auc_bounded_and_curve_monotone(pairs):
    labels = [l for l, _ in pairs]
    scores = [s for _, s in pairs]
    if len(set(labels)) < 2:
        return
    value = auc(labels, scores)
    assert 0.0 <= value <= 1.0
    fpr, tpr = roc_curve(labels, scores)
    assert np.all(np.diff(fpr) >= -1e-12)
    assert np.all(np.diff(tpr) >= -1e-12)


@given(binary_lists)
@settings(max_examples=60, deadline=None)
def test_balanced_accuracy_constant_readout_is_half(bits):
    if len(set(bits)) < 2:
        return
    assert bits_balanced_accuracy(bits, [0] * len(bits)) == 0.5
    assert bits_balanced_accuracy(bits, [1] * len(bits)) == 0.5
    assert bits_balanced_accuracy(bits, bits) == 1.0


# ---------------------------------------------------------------- features

matrices = st.lists(
    st.lists(st.floats(0, 1000, allow_nan=False, allow_infinity=False),
             min_size=3, max_size=3),
    min_size=1, max_size=40)


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_normalizer_output_in_unit_interval(rows):
    X = np.array(rows)
    out = MaxNormalizer().fit_transform(X)
    assert np.all(out >= 0) and np.all(out <= 1)
    assert np.isfinite(out).all()


@given(matrices)
@settings(max_examples=60, deadline=None)
def test_gram_symmetry_and_style_identity(rows):
    X = np.array(rows)
    G = gram_matrix(X)
    assert np.allclose(G, G.T)
    assert style_loss(X, X) == 0.0


# ---------------------------------------------------------------- end-to-end

@given(st.integers(min_value=1, max_value=40),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=15, deadline=None)
def test_counting_loop_architecturally_correct(iterations, start):
    b = ProgramBuilder()
    b.movi(1, start)
    b.movi(2, start + iterations)
    b.label("top")
    b.addi(1, 1, 1)
    b.blt(1, 2, "top")
    b.halt()
    r = Machine(b.build(), SimConfig()).run(max_cycles=100_000)
    assert r.regs[1] == start + iterations
