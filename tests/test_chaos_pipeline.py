"""Chaos harness end-to-end: the ISSUE's acceptance scenario.

Seeded faults are injected into 3 of 10 sources (one crash, one hang,
one divergent trace).  The resilient build must complete, quarantine
exactly those 3 in the FailureReport, and a subsequent ``resume`` run
must re-simulate only the quarantined sources.
"""

import pytest

from repro.data import build_dataset
from repro.data.parallel import (
    build_dataset_resilient, source_key,
)
from repro.runtime import (
    CRASH, DIVERGENT, TIMEOUT, CoverageError, FaultSpec, inject_faults,
)
from repro.runtime.chaos import (
    CRASH_FAULT, GARBAGE_FAULT, HANG_FAULT, ChaosSource,
)
from repro.workloads import all_workloads

#: indices of the faulty sources in the 10-source suite
CRASH_AT, HANG_AT, GARBAGE_AT = 1, 4, 7


def _sources():
    return all_workloads(scale=1)[:10]


def _chaotic_sources():
    plan = {
        CRASH_AT: FaultSpec(CRASH_FAULT),
        HANG_AT: FaultSpec(HANG_FAULT, hang_seconds=3600),
        GARBAGE_AT: FaultSpec(GARBAGE_FAULT),
    }
    return inject_faults(_sources(), plan, seed=7)


def test_chaos_build_quarantines_exactly_the_faulty_sources(tmp_path):
    shard_dir = str(tmp_path / "shards")
    dataset, report = build_dataset_resilient(
        [], _chaotic_sources(), sample_period=250, processes=4,
        retries=1, task_timeout=2.5, checkpoint_dir=shard_dir,
        min_coverage=0.5, backoff_base=0.0)

    # exactly the three injected sources quarantined, correctly typed
    assert report.total == 10
    assert report.completed == 7
    assert len(report.failures) == 3
    kinds = {f.index: f.kind for f in report.failures}
    assert kinds == {CRASH_AT: CRASH, HANG_AT: TIMEOUT,
                     GARBAGE_AT: DIVERGENT}
    assert all(f.attempts == 2 for f in report.failures)   # retried once
    assert report.coverage == pytest.approx(0.7)

    # surviving corpus contains only the 7 healthy sources
    healthy = {w.name for i, w in enumerate(_sources())
               if i not in (CRASH_AT, HANG_AT, GARBAGE_AT)}
    assert {r.source for r in dataset.records} == healthy

    # -- resume re-simulates only the quarantined sources --------------------
    dataset2, report2 = build_dataset_resilient(
        [], _sources(), sample_period=250, processes=4,
        retries=1, task_timeout=30, checkpoint_dir=shard_dir,
        resume=True, min_coverage=1.0, backoff_base=0.0)
    assert report2.skipped == 7
    assert report2.completed == 3      # only the quarantined trio re-ran
    assert not report2.failures
    assert report2.coverage == 1.0

    # the resumed corpus is byte-identical to a clean sequential build
    reference = build_dataset([], _sources(), sample_period=250)
    assert len(dataset2) == len(reference)
    for a, b in zip(dataset2.records, reference.records):
        assert a.deltas == list(b.deltas)
        assert a.source == b.source


def test_flaky_source_recovers_via_retry(tmp_path):
    sources = _sources()[:3]
    sources[1] = ChaosSource(sources[1],
                             FaultSpec(CRASH_FAULT, fail_attempts=1))
    dataset, report = build_dataset_resilient(
        [], sources, sample_period=250, processes=3,
        retries=2, backoff_base=0.0)
    assert report.completed == 3 and not report.failures
    assert {r.source for r in dataset.records} == \
        {w.name for w in _sources()[:3]}


def test_min_coverage_gate_is_a_hard_failure():
    sources = inject_faults(_sources()[:4], {0: FaultSpec(CRASH_FAULT)})
    with pytest.raises(CoverageError) as excinfo:
        build_dataset_resilient([], sources, sample_period=250,
                                processes=4, retries=0,
                                min_coverage=1.0, backoff_base=0.0)
    err = excinfo.value
    assert err.report is not None and len(err.report.failures) == 1
    # the partial corpus survives on the exception for inspection
    assert err.partial is not None and len(err.partial) > 0


def test_failure_report_summary_reads_well():
    sources = inject_faults(_sources()[:4], {2: FaultSpec(CRASH_FAULT)})
    _, report = build_dataset_resilient(
        [], sources, sample_period=250, processes=4, retries=0,
        min_coverage=0.5, backoff_base=0.0)
    text = report.summary()
    assert "3/4 sources" in text
    assert "crash=1" in text
    assert source_key(2, _sources()[2], 0) in text


def test_source_keys_are_stable_and_unique():
    sources = _sources()
    keys = [source_key(i, s, 0) for i, s in enumerate(sources)]
    assert len(set(keys)) == len(keys)
    assert keys == [source_key(i, s, 0)
                    for i, s in enumerate(_chaotic_sources())]
