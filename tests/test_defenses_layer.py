"""Defense policies and the secure-mode controller."""

from repro.defenses import (
    DEFENSE_CONFIGS, DefensePolicy, SecureModeController, measure_overhead,
    run_workload,
)
from repro.sim.config import DefenseMode
from repro.sim.sampler import Sample
from repro.workloads import all_workloads


class FakeMachine:
    def __init__(self):
        self.defense = DefenseMode.NONE

    def set_defense(self, mode):
        self.defense = mode


def window(commit_index):
    return Sample(window_index=0, commit_index=commit_index, cycle=0,
                  deltas=[], phase=0)


class TestController:
    def test_flag_enables_secure_mode(self):
        m = FakeMachine()
        ctrl = SecureModeController(lambda s: True,
                                    DefenseMode.FENCE_SPECTRE,
                                    secure_window=1000)
        assert ctrl(m, window(100)) is True
        assert m.defense is DefenseMode.FENCE_SPECTRE
        assert ctrl.active

    def test_no_flag_stays_off(self):
        m = FakeMachine()
        ctrl = SecureModeController(lambda s: False,
                                    DefenseMode.FENCE_SPECTRE)
        assert ctrl(m, window(100)) is False
        assert m.defense is DefenseMode.NONE

    def test_secure_mode_expires_after_window(self):
        m = FakeMachine()
        flags = iter([True, False, False])
        ctrl = SecureModeController(lambda s: next(flags),
                                    DefenseMode.FENCE_SPECTRE,
                                    secure_window=500)
        ctrl(m, window(100))           # flag -> secure until 600
        ctrl(m, window(400))           # still secure
        assert m.defense is DefenseMode.FENCE_SPECTRE
        ctrl(m, window(700))           # past the window -> back off
        assert m.defense is DefenseMode.NONE
        assert not ctrl.active

    def test_repeated_flags_rearm(self):
        m = FakeMachine()
        ctrl = SecureModeController(lambda s: True,
                                    DefenseMode.FENCE_SPECTRE,
                                    secure_window=500)
        ctrl(m, window(100))
        ctrl(m, window(550))           # re-armed before expiry
        assert ctrl.secure_until == 1050
        assert m.defense is DefenseMode.FENCE_SPECTRE

    def test_secure_fraction(self):
        m = FakeMachine()
        flags = iter([True, False, False, False])
        ctrl = SecureModeController(lambda s: next(flags),
                                    DefenseMode.FENCE_SPECTRE,
                                    secure_window=250)
        for commit in (100, 200, 300, 10_000):
            ctrl(m, window(commit))
        assert 0 < ctrl.secure_fraction < 1


class TestFailSecure:
    """The controller's health watchdog: a degraded detector latches the
    core into always-secure mode instead of silently disabling defense."""

    def test_raising_detector_latches_always_secure(self):
        m = FakeMachine()
        calls = []

        def broken(sample):
            calls.append(sample)
            raise RuntimeError("detector wedged")

        ctrl = SecureModeController(broken, DefenseMode.FENCE_SPECTRE,
                                    secure_window=100)
        assert ctrl(m, window(100)) is False
        assert ctrl.latched
        assert "RuntimeError" in ctrl.latch_reason
        assert m.defense is DefenseMode.FENCE_SPECTRE
        # every later window runs secure; the dead detector is never
        # consulted again and the mitigation never expires
        for commit in (10_000, 10_000_000):
            ctrl(m, window(commit))
        assert len(calls) == 1
        assert m.defense is DefenseMode.FENCE_SPECTRE
        assert ctrl.secure_fraction == 1.0

    def test_nan_score_latches(self):
        m = FakeMachine()
        ctrl = SecureModeController(lambda s: float("nan"),
                                    DefenseMode.FENCE_SPECTRE)
        ctrl(m, window(100))
        assert ctrl.latched
        assert ctrl.secure_fraction == 1.0

    def test_nonfinite_feature_vector_latches(self):
        m = FakeMachine()
        ctrl = SecureModeController(lambda s: False,
                                    DefenseMode.FENCE_SPECTRE)
        sample = Sample(window_index=0, commit_index=100, cycle=0,
                        deltas=[1.0, float("nan"), 3.0], phase=0)
        ctrl(m, sample)
        assert ctrl.latched
        assert ctrl.detector_errors == 1

    def test_feature_width_change_latches(self):
        m = FakeMachine()
        ctrl = SecureModeController(lambda s: False,
                                    DefenseMode.FENCE_SPECTRE)
        ctrl(m, Sample(window_index=0, commit_index=100, cycle=0,
                       deltas=[1, 2, 3], phase=0))
        assert not ctrl.latched
        ctrl(m, Sample(window_index=1, commit_index=200, cycle=0,
                       deltas=[1, 2], phase=0))
        assert ctrl.latched

    def test_fail_secure_off_propagates_fault(self):
        import pytest
        m = FakeMachine()
        ctrl = SecureModeController(lambda s: float("nan"),
                                    DefenseMode.FENCE_SPECTRE,
                                    fail_secure=False)
        with pytest.raises(RuntimeError):
            ctrl(m, window(100))

    def test_latch_mid_run_counts_remaining_windows_secure(self):
        m = FakeMachine()
        verdicts = iter([False, False])

        def flaky(sample):
            return next(verdicts)        # third call raises StopIteration

        ctrl = SecureModeController(flaky, DefenseMode.FENCE_SPECTRE)
        ctrl(m, window(100))
        ctrl(m, window(200))
        assert ctrl.secure_fraction == 0.0
        for commit in (300, 400, 500):
            ctrl(m, window(commit))
        assert ctrl.latched
        assert ctrl.windows_total == 5
        assert ctrl.windows_secure == 3  # the faulted window + both after


class TestPolicies:
    def test_catalogue_covers_figure16(self):
        names = {p.name for p in DEFENSE_CONFIGS}
        assert "baseline" in names
        assert "fence-spectre" in names and "fence-futuristic" in names
        assert "invisispec-spectre" in names
        assert any(p.adaptive for p in DEFENSE_CONFIGS)

    def test_policy_is_frozen(self):
        import dataclasses
        import pytest
        p = DEFENSE_CONFIGS[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.name = "x"

    def test_measure_overhead_positive_for_fencing(self):
        ws = all_workloads(scale=2)[:4]
        overheads, baseline = measure_overhead(ws, DefenseMode.FENCE_SPECTRE)
        assert set(overheads) == {w.name for w in ws}
        assert sum(overheads.values()) > 0
        # baseline is reusable
        overheads2, _ = measure_overhead(ws, DefenseMode.NONE,
                                         baseline_cycles=baseline)
        assert all(abs(v) < 1e-9 for v in overheads2.values())

    def test_run_workload_returns_result(self):
        w = all_workloads(scale=1)[0]
        r = run_workload(w)
        assert r.halt_reason == "halt"
