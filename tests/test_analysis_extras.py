"""Extra coverage: analysis summaries on edge inputs, CLI parser details,
and quick_pipeline wiring."""

import pytest

from repro.analysis import dataset_summary, markdown_report
from repro.cli import build_parser
from repro.data import Dataset, SampleRecord
from repro.sim.hpc import COUNTER_NAMES


def _tiny_dataset():
    ds = Dataset(sample_period=100)
    zeros = [0] * len(COUNTER_NAMES)
    hot = list(zeros)
    hot[0] = 5
    ds.records = [
        SampleRecord(deltas=hot, label=1, category="meltdown", phase=2,
                     source="meltdown", commit_index=100),
        SampleRecord(deltas=zeros, label=0, category="benign", phase=0,
                     source="stream", commit_index=100),
    ]
    return ds


def test_dataset_summary_tiny():
    summary = dataset_summary(_tiny_dataset())
    assert summary["total_windows"] == 2
    assert summary["attack_windows"] == 1
    categories = {r["category"]: r for r in summary["categories"]}
    assert categories["meltdown"]["phases"] == [2]


def test_markdown_report_tiny():
    from repro.core import HardwareDetector, evax_schema
    ds = _tiny_dataset()
    det = HardwareDetector(evax_schema(), name="tiny")
    det.fit(ds.raw_matrix(det.schema), ds.labels(), epochs=2)
    text = markdown_report(ds, det, title="Tiny")
    assert text.startswith("# Tiny")
    assert "| meltdown | 1 | 1 |" in text


class TestParserShapes:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subactions = next(a for a in parser._actions
                          if hasattr(a, "choices") and a.choices)
        assert set(subactions.choices) >= {
            "attack", "attacks", "workloads", "collect", "train",
            "adaptive", "explain", "report",
        }

    def test_defense_choices_match_modes(self):
        from repro.sim.config import DefenseMode
        parser = build_parser()
        args = parser.parse_args(["attack", "meltdown",
                                  "--defense", "invisispec-futuristic"])
        assert args.defense == DefenseMode.INVISISPEC_FUTURISTIC.value

    def test_bad_defense_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["attack", "meltdown", "--defense", "magic"])


def test_quick_pipeline_signature():
    """quick_pipeline is importable and parameterized as documented."""
    import inspect
    from repro import quick_pipeline
    params = inspect.signature(quick_pipeline).parameters
    assert "gan_iterations" in params
    assert params["gan_iterations"].default == 1200
