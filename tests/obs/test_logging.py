"""Structured JSONL logging: round-trip, levels, context binding."""

import io
import json

import pytest

from repro.obs import EventLog, read_events
from repro.obs.log import get_log, obs_event


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog().configure(path=path, run="abc123", seed=7)
    log.event("task.finished", key="003-atk-meltdown-s1",
              attempts=1, elapsed_s=0.5)
    log.event("cli.end", level="error", status="error", exit_code=2)
    log.close()

    events = read_events(path)
    assert len(events) == 2
    first, second = events
    assert first["event"] == "task.finished"
    assert first["level"] == "info"
    assert first["run"] == "abc123" and first["seed"] == 7
    assert first["key"] == "003-atk-meltdown-s1"
    assert first["elapsed_s"] == 0.5
    assert isinstance(first["ts"], float)
    assert second["level"] == "error" and second["exit_code"] == 2


def test_level_threshold_drops_lower_events(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog().configure(path=path, level="warn")
    log.event("noise", level="debug")
    log.event("info", level="info")
    log.event("trouble", level="warn")
    log.event("fire", level="error")
    log.close()
    assert [e["event"] for e in read_events(path)] == ["trouble", "fire"]


def test_unconfigured_log_is_silent():
    log = EventLog()
    log.event("anything", level="error")     # must simply not raise
    assert not log.active


def test_bind_merges_context():
    stream = io.StringIO()
    log = EventLog().configure(stream=stream, run="r1")
    log.bind(config="deadbeef")
    log.event("x")
    record = json.loads(stream.getvalue())
    assert record["run"] == "r1" and record["config"] == "deadbeef"


def test_unjsonable_fields_are_stringified():
    stream = io.StringIO()
    log = EventLog().configure(stream=stream)
    log.event("x", payload=object())
    assert "object object at" in json.loads(stream.getvalue())["payload"]


def test_read_events_tolerates_torn_tail(tmp_path):
    path = tmp_path / "torn.jsonl"
    path.write_text('{"ts": 1.0, "level": "info", "event": "ok"}\n'
                    '{"ts": 2.0, "level": "in')     # crash mid-write
    events = read_events(str(path))
    assert [e["event"] for e in events] == ["ok"]


def test_bad_level_rejected():
    with pytest.raises(ValueError):
        EventLog().configure(level="loud")


def test_global_log_configure_and_reset(tmp_path):
    path = str(tmp_path / "g.jsonl")
    get_log().configure(path=path, run="gl")
    obs_event("hello", n=1)
    get_log().close()
    assert read_events(path)[0]["run"] == "gl"
    obs_event("after-close")                 # silent again, no raise
