"""Metrics registry: instrument correctness, reset semantics, and
snapshot determinism under a fixed seed."""

import json
import time

import pytest

from repro.obs import MetricsRegistry, metrics


def test_counter_increments_and_snapshot():
    reg = MetricsRegistry()
    c = reg.counter("x.count")
    c.inc()
    c.inc(4)
    reg.inc("x.count", 2)
    assert reg.snapshot()["counters"] == {"x.count": 7}


def test_counter_identity_is_stable():
    reg = MetricsRegistry()
    assert reg.counter("a.b") is reg.counter("a.b")


def test_gauge_keeps_last_value():
    reg = MetricsRegistry()
    reg.set_gauge("g.v", 1.5)
    reg.set_gauge("g.v", 0.25)
    assert reg.snapshot()["gauges"] == {"g.v": 0.25}


def test_timer_summary_statistics():
    reg = MetricsRegistry()
    t = reg.timer("t.secs")
    for s in (0.5, 1.5, 1.0):
        t.observe(s)
    summary = reg.snapshot()["timers"]["t.secs"]
    assert summary["count"] == 3
    assert summary["total_s"] == pytest.approx(3.0)
    assert summary["min_s"] == pytest.approx(0.5)
    assert summary["max_s"] == pytest.approx(1.5)
    assert summary["mean_s"] == pytest.approx(1.0)


def test_empty_timer_summary_has_no_infinities():
    reg = MetricsRegistry()
    reg.timer("t.never")
    summary = reg.snapshot()["timers"]["t.never"]
    assert summary == {"count": 0, "total_s": 0.0, "min_s": 0.0,
                       "max_s": 0.0, "mean_s": 0.0}
    json.dumps(reg.snapshot())         # must serialize cleanly


def test_time_block_measures_wall_clock():
    reg = MetricsRegistry()
    with reg.time_block("t.block"):
        time.sleep(0.01)
    summary = reg.snapshot()["timers"]["t.block"]
    assert summary["count"] == 1
    assert summary["total_s"] >= 0.009


def test_name_cannot_change_kind():
    reg = MetricsRegistry()
    reg.counter("one.name")
    with pytest.raises(ValueError):
        reg.timer("one.name")
    with pytest.raises(ValueError):
        reg.gauge("one.name")


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("n.c")
    c.inc(10)
    reg.set_gauge("n.g", 3.0)
    with reg.time_block("n.t"):
        pass
    snap = reg.snapshot()
    assert snap["counters"] == {"n.c": 0}
    assert snap["gauges"] == {"n.g": 0.0}
    assert "n.t" not in snap["timers"]     # time_block short-circuits


def test_reset_zeroes_in_place_keeping_cached_handles():
    reg = MetricsRegistry()
    c = reg.counter("r.c")
    t = reg.timer("r.t")
    c.inc(5)
    t.observe(1.0)
    reg.reset()
    assert reg.counter("r.c") is c and c.value == 0
    assert reg.timer("r.t") is t and t.count == 0
    c.inc()                                # the old handle still records
    assert reg.snapshot()["counters"]["r.c"] == 1


def test_snapshot_key_order_is_sorted():
    reg = MetricsRegistry()
    for name in ("z.last", "a.first", "m.mid"):
        reg.counter(name).inc()
    assert list(reg.snapshot()["counters"]) == ["a.first", "m.mid", "z.last"]


def test_snapshot_deterministic_under_fixed_seed():
    """Two identical sequential corpus builds must produce identical
    counter and gauge snapshots (wall-clock noise lives only in timers)."""
    from repro.attacks import Meltdown
    from repro.data import build_dataset
    from repro.workloads import all_workloads

    def one_build():
        reg = metrics()
        reg.reset()
        build_dataset([Meltdown(seed=1)], all_workloads(scale=1, seeds=(0,))[:2],
                      sample_period=250)
        snap = reg.snapshot()
        return snap["counters"], snap["gauges"]

    counters_a, gauges_a = one_build()
    counters_b, gauges_b = one_build()
    assert counters_a == counters_b
    assert gauges_a == gauges_b
    assert counters_a["sim.runs"] == 3
    assert counters_a["sim.sampler.windows"] > 0
