"""The metric/event docs and repro.obs.names must agree, in both
directions, and instrumentation sites must only emit cataloged names.

Two pages carry catalog tables: ``docs/observability.md`` (the original
layers), ``docs/serving.md`` (the ``serve`` layer) and ``docs/arena.md``
(the ``arena`` layer); all are parsed,
so a metric documented on either page satisfies the contract and a name
on either page that the code cannot emit fails it.
"""

import re
from pathlib import Path

from repro.obs import metrics
from repro.obs.names import ALL_METRICS, CATALOG, EVENTS, is_known_metric

_DOCS_DIR = Path(__file__).resolve().parents[2] / "docs"
#: every page whose backticked dotted tokens are checked as catalog names
DOCS = (_DOCS_DIR / "observability.md", _DOCS_DIR / "serving.md",
        _DOCS_DIR / "arena.md")

#: first name segments that mark a backticked token as a metric/event
_LAYER_PREFIXES = {"sim", "runner", "data", "ml", "amgan", "vaccinate",
                   "adaptive", "stage", "cli", "task", "manifest", "guard",
                   "campaign", "serve", "arena"}
#: backticked dotted tokens that are file names, not metric names
_FILE_SUFFIXES = {"json", "jsonl", "md", "py", "pstats", "npz"}


def _doc_names():
    text = "\n".join(page.read_text() for page in DOCS)
    names = set()
    for token in re.findall(
            r"`([a-z_][a-z0-9_]*(?:\.[a-z_][a-z0-9_]*)+)`", text):
        head, _, _ = token.partition(".")
        if head in _LAYER_PREFIXES and \
                token.rsplit(".", 1)[-1] not in _FILE_SUFFIXES:
            names.add(token)
    return names


def test_every_docs_name_exists_in_code():
    """Acceptance check: a metric or event name mentioned in the docs
    that the code cannot emit is a docs bug (or a typo)."""
    known = set(ALL_METRICS) | set(EVENTS)
    unknown = _doc_names() - known
    assert not unknown, f"docs mention unknown metrics/events: {unknown}"


def test_every_catalog_name_is_documented():
    documented = _doc_names()
    missing = (set(ALL_METRICS) | set(EVENTS)) - documented
    assert not missing, f"cataloged but undocumented: {missing}"


def test_catalog_is_well_formed():
    assert set(CATALOG) == {"sim", "runtime", "data", "ml", "core",
                            "campaign", "serve", "cli",
                            "arena"}
    for name, (kind, desc) in ALL_METRICS.items():
        assert kind in ("counter", "gauge", "timer"), name
        assert desc
        assert re.fullmatch(
            r"[a-z_][a-z0-9_]*(\.[a-z_][a-z0-9_]*)+", name), name
    assert is_known_metric("sim.runs")
    assert not is_known_metric("sim.nope")


def test_instrumented_run_emits_only_cataloged_names():
    """Drive real instrumentation, then check the global registry holds
    no name outside the catalog (sites cannot invent metrics)."""
    from repro.attacks import Meltdown
    from repro.data import build_dataset
    from repro.workloads import all_workloads

    reg = metrics()
    reg.reset()
    build_dataset([Meltdown(seed=1)], all_workloads(scale=1, seeds=(0,))[:1],
                  sample_period=500)
    emitted = set(reg.names())
    assert emitted, "instrumentation emitted nothing"
    rogue = {n for n in emitted
             if n.partition(".")[0] in _LAYER_PREFIXES
             and not is_known_metric(n)}
    assert not rogue, f"instrumentation emitted uncataloged names: {rogue}"
    assert {"sim.runs", "sim.sampler.windows", "sim.run.seconds"} <= emitted
