"""Every CLI command leaves a run manifest — on success and on failure —
with per-stage wall-clock timings and a metric snapshot."""

import json

import pytest

from repro.cli import main
from repro.obs import read_events, read_manifest
from repro.obs.manifest import MANIFEST_SCHEMA


@pytest.fixture(scope="module")
def cli_artifacts(tmp_path_factory):
    """One collect + train, shared by the per-command manifest tests."""
    root = tmp_path_factory.mktemp("cli-obs")
    corpus = str(root / "corpus")
    detector = str(root / "detector.json")
    assert main(["collect", corpus, "--seeds", "1", "--scale", "2",
                 "--period", "250", "--jobs", "2"]) == 0
    assert main(["train", corpus, "--out", detector,
                 "--iterations", "120"]) == 0
    return root, corpus, detector


def test_collect_manifest_success(cli_artifacts):
    root, corpus, detector = cli_artifacts
    manifest = read_manifest(corpus + ".collect-manifest.json")
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["status"] == {"ok": True, "exit_code": 0, "error": None}
    stages = manifest["stages"]
    assert stages["collect.build"]["seconds"] > 0
    assert stages["collect.save"]["seconds"] > 0
    counters = manifest["metrics"]["counters"]
    assert counters["data.sources.completed"] > 0
    assert counters["runner.tasks.finished"] == \
        counters["data.sources.completed"]
    assert manifest["failures"]["quarantined"] == 0
    assert manifest["metrics"]["gauges"]["data.coverage"] == 1.0
    # per-source wall time lands in the runner timer
    timer = manifest["metrics"]["timers"]["runner.task.seconds"]
    assert timer["count"] == counters["runner.tasks.finished"]
    assert timer["total_s"] > 0
    # the manifest fingerprints its effective configuration
    assert len(manifest["config"]["fingerprint"]) == 64
    assert manifest["config"]["options"]["seeds"] == 1
    assert manifest["run"]["command"] == "collect"
    assert manifest["run"]["duration_s"] > 0


def test_train_manifest_success(cli_artifacts):
    root, corpus, detector = cli_artifacts
    manifest = read_manifest(detector + ".train-manifest.json")
    assert manifest["status"]["ok"] is True
    stages = manifest["stages"]
    for stage in ("train.load", "train.vaccinate", "train.evaluate",
                  "train.save"):
        assert stages[stage]["count"] == 1
    # the vaccination pipeline's own stage timers ride along
    timers = manifest["metrics"]["timers"]
    assert timers["vaccinate.gan.seconds"]["total_s"] > 0
    assert timers["amgan.train.seconds"]["count"] == 1
    counters = manifest["metrics"]["counters"]
    assert counters["amgan.iterations"] == 120
    assert counters["ml.train.batches"] > 120


def test_report_manifest_success(cli_artifacts, tmp_path):
    root, corpus, detector = cli_artifacts
    out = str(tmp_path / "report.md")
    assert main(["report", corpus, detector, "--out", out]) == 0
    manifest = read_manifest(out + ".report-manifest.json")
    assert manifest["status"]["ok"] is True
    assert manifest["stages"]["report.load"]["seconds"] > 0
    assert manifest["stages"]["report.render"]["seconds"] > 0


def test_explain_manifest_success(cli_artifacts):
    root, corpus, detector = cli_artifacts
    assert main(["explain", detector, "--corpus", corpus]) == 0
    manifest = read_manifest(detector + ".explain-manifest.json")
    assert manifest["status"]["ok"] is True
    assert manifest["stages"]["explain.load"]["count"] == 2
    assert "explain.windows" in manifest["stages"]


def test_manifest_written_on_failure(tmp_path, capsys):
    missing = str(tmp_path / "no-such-corpus")
    with pytest.raises(SystemExit):
        main(["train", missing])
    capsys.readouterr()
    manifest = read_manifest(missing + ".train-manifest.json")
    assert manifest["status"]["ok"] is False
    assert manifest["status"]["exit_code"] == 2
    assert manifest["status"]["error"]["type"] == "SystemExit"
    # the load stage was entered before the failure and is accounted for
    assert manifest["stages"]["train.load"]["count"] == 1


def test_manifest_out_and_no_manifest_flags(tmp_path, capsys):
    corpus = str(tmp_path / "c")
    custom = str(tmp_path / "custom-manifest.json")
    with pytest.raises(SystemExit):
        main(["train", corpus, "--manifest-out", custom])
    capsys.readouterr()
    assert read_manifest(custom)["status"]["exit_code"] == 2
    with pytest.raises(SystemExit):
        main(["train", corpus + "2", "--no-manifest"])
    capsys.readouterr()
    assert not (tmp_path / "c2.train-manifest.json").exists()


def test_commands_without_artifacts_write_no_manifest(tmp_path, capsys,
                                                      monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["workloads", "--scale", "1"]) == 0
    capsys.readouterr()
    assert not list(tmp_path.glob("*manifest*"))


def test_metrics_out_and_log_file(cli_artifacts, tmp_path, capsys):
    root, corpus, detector = cli_artifacts
    metrics_out = str(tmp_path / "metrics.json")
    log_file = str(tmp_path / "events.jsonl")
    assert main(["explain", detector,
                 "--metrics-out", metrics_out,
                 "--log-file", log_file, "--log-level", "debug"]) == 0
    capsys.readouterr()
    snapshot = json.load(open(metrics_out))
    assert "stage.explain.weights" in snapshot["timers"]
    events = read_events(log_file)
    names = [e["event"] for e in events]
    assert names[0] == "cli.start" and names[-1] == "cli.end"
    run_ids = {e["run"] for e in events}
    assert len(run_ids) == 1             # every event joined to one run


def test_profile_flag_dumps_pstats(cli_artifacts, tmp_path, capsys):
    import pstats
    root, corpus, detector = cli_artifacts
    out = str(tmp_path / "explain.pstats")
    assert main(["explain", detector, "--profile", out]) == 0
    capsys.readouterr()
    stats = pstats.Stats(out)
    assert stats.total_calls > 0
