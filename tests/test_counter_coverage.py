"""Counter-coverage meta-test: the corpus must exercise the HPC space.

Dead counters would silently weaken the feature schema, so this test runs
the full attack corpus plus the benign suite and checks that almost every
counter in the namespace fires somewhere.
"""

import numpy as np

from repro.sim.hpc import COUNTER_NAMES, CounterBank

#: counters that only fire under conditions the default corpus does not
#: create:
#: * specbuf.* — InvisiSpec defense runs only;
#: * icache/itlb misses and fetch stalls — the instruction path is
#:   pre-warmed (attack/benchmark code is resident);
#: * L2 evictions — the corpus footprints fit in the 2MB L2;
#: * lsq.blockedLoads — requires stl_speculation=False;
#: * dcache.mshrFullEvents — needs >20 concurrent outstanding misses;
#: * dram.refresh*/wrqueue.drains — need longer runs / deeper write bursts.
#: Each has a dedicated unit test proving it can fire.
_CONDITIONAL = {
    "specbuf.fills", "specbuf.hits", "specbuf.exposes",
    "specbuf.squashes", "specbuf.validationStalls",
    "icache.misses", "icache.replacements", "itlb.misses",
    "fetch.icacheStallCycles",
    "l2.replacements", "l2.cleanEvicts", "l2.writebacks",
    "lsq.blockedLoads", "dcache.mshrFullEvents",
    "dram.refreshes", "dram.selfRefreshEnergy", "wrqueue.drains",
}


def test_corpus_exercises_nearly_every_counter(full_dataset):
    totals = np.zeros(len(COUNTER_NAMES), dtype=np.int64)
    for record in full_dataset.records:
        totals += np.asarray(record.deltas)
    dead = [name for name, total in zip(COUNTER_NAMES, totals)
            if total == 0 and name not in _CONDITIONAL]
    assert not dead, f"counters never fired in the corpus: {dead}"


def test_defense_counters_fire_under_invisispec():
    from repro.sim import Machine, SimConfig
    from repro.sim.config import DefenseMode
    from repro.workloads import WORKLOAD_BUILDERS

    program = WORKLOAD_BUILDERS["stream"](scale=2, seed=0)
    machine = Machine(program,
                      SimConfig(defense=DefenseMode.INVISISPEC_FUTURISTIC))
    result = machine.run(max_cycles=400_000)
    assert result.counters["specbuf.fills"] > 0
    assert result.counters["specbuf.exposes"] > 0


def test_attack_windows_have_distinct_footprints(full_dataset):
    """Each attack category's mean feature vector differs from every
    other category's (no two categories are HPC-identical)."""
    from repro.data import FeatureSchema, MaxNormalizer
    schema = FeatureSchema()
    raw = full_dataset.raw_matrix(schema)
    norm = MaxNormalizer().fit(raw)
    X = norm.transform(raw)
    groups = full_dataset.groups()
    means = {}
    for cat in full_dataset.categories:
        means[cat] = X[groups == cat].mean(axis=0)
    cats = list(means)
    for i, a in enumerate(cats):
        for b in cats[i + 1:]:
            distance = np.abs(means[a] - means[b]).max()
            assert distance > 1e-3, (a, b)


def test_conditional_counters_can_fire():
    """Each allowlisted conditional counter has a scenario that fires it."""
    from repro.sim import Machine, ProgramBuilder, SimConfig
    from repro.sim.cache import CacheHierarchy
    from repro.sim.dram import DRAM
    from repro.sim.memory import MainMemory

    # L2 evictions: fill one L2 set past its associativity
    cfg = SimConfig()
    counters = CounterBank()
    hierarchy = CacheHierarchy(cfg, counters, DRAM(cfg, counters,
                                                   MainMemory()))
    l2_sets = cfg.l2_size // (cfg.l2_assoc * cfg.line_bytes)
    for k in range(cfg.l2_assoc + 2):
        hierarchy.access_data(k * l2_sets * cfg.line_bytes, False, cycle=k)
    assert counters.get("l2.replacements") > 0

    # MSHR-full: more outstanding misses than MSHRs within one latency
    counters2 = CounterBank()
    hierarchy2 = CacheHierarchy(cfg, counters2, DRAM(cfg, counters2,
                                                     MainMemory()))
    for k in range(cfg.l1d_mshrs + 4):
        hierarchy2.access_data(0x100000 + k * 64, False, cycle=0)
    assert counters2.get("dcache.mshrFullEvents") > 0

    # DRAM refresh + self-refresh energy after the refresh interval
    counters3 = CounterBank()
    dram = DRAM(cfg, counters3, MainMemory())
    dram.access(0, False, cycle=0)
    dram.access(0, False, cycle=cfg.dram_refresh_interval + 1)
    assert counters3.get("dram.refreshes") == 1
    assert counters3.get("dram.selfRefreshEnergy") > 0

    # write-queue drains past its capacity
    counters4 = CounterBank()
    dram4 = DRAM(cfg, counters4, MainMemory())
    for k in range(40):
        dram4.access(k * 4096, True, cycle=k)
    assert counters4.get("wrqueue.drains") > 0

    # blocked loads with memory-dependence speculation off
    b = ProgramBuilder()
    b.movi(1, 0x9000)
    b.movi(2, 3)
    b.mul(3, 1, 2)
    b.movi(4, 3)
    b.div(3, 3, 4)
    b.movi(5, 7)
    b.store(3, 5, 0)
    b.load(6, 1, 0)
    b.halt()
    r = Machine(b.build(), SimConfig(stl_speculation=False)).run()
    assert r.counters["lsq.blockedLoads"] > 0
