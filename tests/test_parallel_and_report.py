"""Parallel corpus collection and the analysis/report layer."""

import numpy as np

from repro.analysis import (
    attack_inventory, dataset_summary, detector_summary, markdown_report,
)
from repro.attacks import Meltdown, SpectrePHT
from repro.core import evax_schema, train_detector
from repro.data import build_dataset
from repro.data.parallel import build_dataset_parallel
from repro.workloads import all_workloads


def _sources():
    attacks = [SpectrePHT(seed=1), Meltdown(seed=1)]
    workloads = all_workloads(scale=2)[:4]
    return attacks, workloads


class TestParallel:
    def test_matches_sequential_builder(self):
        attacks, workloads = _sources()
        seq = build_dataset(attacks, workloads, sample_period=250)
        attacks2, workloads2 = _sources()
        par = build_dataset_parallel(attacks2, workloads2,
                                     sample_period=250, processes=3)
        assert len(par) == len(seq)
        for a, b in zip(par.records, seq.records):
            assert a.deltas == list(b.deltas)
            assert a.category == b.category

    def test_single_process_path(self):
        attacks, workloads = _sources()
        ds = build_dataset_parallel(attacks, workloads, sample_period=250,
                                    processes=1)
        assert len(ds) > 0


class TestReport:
    def test_dataset_summary_counts(self, small_dataset):
        summary = dataset_summary(small_dataset)
        assert summary["total_windows"] == len(small_dataset)
        assert summary["attack_windows"] + summary["benign_windows"] == \
            len(small_dataset)
        categories = {r["category"] for r in summary["categories"]}
        assert "benign" in categories

    def test_detector_summary_fields(self, small_dataset):
        detector = train_detector(small_dataset, evax_schema(), epochs=15)
        summary = detector_summary(detector, small_dataset)
        assert summary["features"] == 145
        assert 0 <= summary["metrics"]["accuracy"] <= 1
        assert len(summary["top_malicious_features"]) == 6
        assert summary["hardware"]["adders"] == 1

    def test_markdown_report_renders(self, small_dataset):
        detector = train_detector(small_dataset, evax_schema(), epochs=15)
        text = markdown_report(small_dataset, detector)
        assert text.startswith("# EVAX system report")
        assert "## Corpus" in text and "## Detector" in text
        assert "accuracy" in text
        assert "| meltdown |" in text

    def test_attack_inventory_runs_quickly(self):
        rows = attack_inventory(seeds=(3,))
        assert len(rows) >= 19
        assert all(r["leaked"] for r in rows)
