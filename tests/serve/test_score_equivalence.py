"""The serving layer's numerical bedrock: batch == single, bit for bit.

``score_batch`` row *i* must equal scoring window *i* alone — exactly,
not approximately — for any batch size and any chopping of the stream
into batches.  Everything above (tenant isolation, chaos replays, the
verified equivalence in the smoke check) rests on this, so it is pinned
here for both detector depths, including non-finite inputs.
"""

import numpy as np
import pytest

from repro.data.features import BASE_FEATURES, FeatureSchema, MaxNormalizer
from repro.serve.bench import synthetic_windows
from repro.sim.hpc import CounterBank

#: a raw-counter column the schema actually maps into a feature —
#: a poison must land on one of these to reach the score at all (the
#: serving layer additionally finite-checks the *raw* window, so
#: excluded columns are still caught there)
IN_SCHEMA = CounterBank.index_of(BASE_FEATURES[0])


def _both(request):
    return request.getfixturevalue(request.param)


@pytest.fixture(params=["detector", "deep_detector"])
def any_detector(request):
    return _both(request)


def test_batch_matches_single_bit_identical(any_detector):
    X = synthetic_windows(257, seed=1)
    batch = any_detector.score_batch(X)
    singles = np.array([any_detector.score_window(X[i])
                        for i in range(len(X))])
    assert np.array_equal(batch, singles)


def test_batch_is_chunking_invariant(any_detector):
    """However the stream is chopped into batches, every window's score
    is the same — so batch composition can never change a verdict."""
    X = synthetic_windows(100, seed=2)
    full = any_detector.score_batch(X)
    for chunk in (1, 7, 33, 100):
        parts = [any_detector.score_batch(X[i:i + chunk])
                 for i in range(0, len(X), chunk)]
        assert np.array_equal(np.concatenate(parts), full)


def test_classify_window_agrees_with_batch_threshold(detector):
    X = synthetic_windows(64, seed=3)
    scores = detector.score_batch(X)
    for i in range(len(X)):
        assert detector.classify_window(X[i]) == \
            bool(scores[i] >= detector.threshold)


def test_nan_window_poisons_only_its_row(any_detector):
    """A non-finite input makes *that row's* score non-finite; sibling
    rows in the same batch stay bit-identical to a clean batch."""
    X = synthetic_windows(32, seed=4)
    clean = any_detector.score_batch(X)
    poisoned = X.copy()
    poisoned[11, IN_SCHEMA] = float("nan")
    scores = any_detector.score_batch(poisoned)
    assert not np.isfinite(scores[11])
    mask = np.arange(len(X)) != 11
    assert np.array_equal(scores[mask], clean[mask])


def test_infinite_window_poisons_only_its_row(detector):
    X = synthetic_windows(16, seed=5)
    clean = detector.score_batch(X)
    poisoned = X.copy()
    poisoned[3, IN_SCHEMA] = float("inf")
    scores = detector.score_batch(poisoned)
    assert not np.isfinite(scores[3]) or scores[3] != clean[3]
    mask = np.arange(len(X)) != 3
    assert np.array_equal(scores[mask], clean[mask])


def test_classify_window_raises_on_non_finite_score(detector):
    window = synthetic_windows(1, seed=6)[0].copy()
    window[IN_SCHEMA] = float("nan")
    with pytest.raises(ValueError, match="non-finite"):
        detector.classify_window(window)


def test_raw_matrix_matches_raw_vector():
    schema = FeatureSchema()
    X = synthetic_windows(40, seed=7)
    matrix = schema.raw_matrix(X)
    for i in range(len(X)):
        assert np.array_equal(matrix[i], schema.raw_vector(X[i]))


def test_raw_matrix_rejects_vectors():
    with pytest.raises(ValueError, match="matrix"):
        FeatureSchema().raw_matrix(synthetic_windows(1, seed=8)[0])


def test_transform_inplace_matches_transform():
    schema = FeatureSchema()
    X = schema.raw_matrix(synthetic_windows(50, seed=9))
    norm = MaxNormalizer().fit(X[:25])
    expected = norm.transform(X)
    got = norm.transform_inplace(X.copy())
    assert np.array_equal(got, expected)
