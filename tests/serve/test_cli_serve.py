"""The ``repro serve`` command: flags, report artifact, replay mode."""

import json

import numpy as np

from repro.cli import main
from repro.data.dataset import Dataset, SampleRecord
from repro.serve import streams_from_dataset
from repro.sim.hpc import COUNTER_NAMES


def test_serve_writes_report_and_summary(tmp_path, capsys):
    out = str(tmp_path / "report.json")
    code = main(["serve", "--tenants", "3", "--duration", "20",
                 "--batch-window", "16", "--out", out])
    captured = capsys.readouterr().out
    assert code == 0
    assert "scored=60" in captured
    assert "windows/s" in captured
    with open(out) as f:
        report = json.load(f)
    assert report["windows"]["scored"] == 60
    assert sorted(report["tenants"]) == ["t0", "t1", "t2"]


def test_serve_writes_manifest_next_to_report(tmp_path):
    out = str(tmp_path / "report.json")
    assert main(["serve", "--tenants", "2", "--duration", "8",
                 "--out", out]) == 0
    with open(out + ".serve-manifest.json") as f:
        manifest = json.load(f)
    assert manifest["run"]["command"] == "serve"
    assert manifest["status"] == {"ok": True, "exit_code": 0, "error": None}
    stages = set(manifest["stages"])
    assert {"serve.load", "serve.run", "serve.report"} <= stages


def test_serve_bench_flag(capsys):
    assert main(["serve", "--bench"]) == 0
    out = capsys.readouterr().out
    assert "speedup=" in out
    assert "serve-demo" in out


def test_serve_rejects_bad_detector(tmp_path, capsys):
    bad = tmp_path / "detector.json"
    bad.write_text("{not json")
    try:
        main(["serve", "--detector", str(bad)])
        raise AssertionError("bad detector did not exit")
    except SystemExit as exc:
        assert exc.code == 2
    assert "cannot load detector" in capsys.readouterr().err


def test_streams_from_dataset_replays_corpus_windows(detector):
    rng = np.random.default_rng(0)
    records = [
        SampleRecord(deltas=[int(v) for v in
                             rng.integers(0, 50, len(COUNTER_NAMES))],
                     label=i % 2, category="benign", phase=0,
                     source="synthetic", commit_index=(i + 1) * 100)
        for i in range(12)
    ]
    dataset = Dataset(records=records, sample_period=100)
    streams = streams_from_dataset(dataset, tenants=3)
    assert [s.tenant for s in streams] == ["t0", "t1", "t2"]
    # offsets decorrelate the tenants: first windows differ
    firsts = [s.next_window()[1].tolist() for s in streams]
    assert firsts[0] != firsts[1]
    # replay cycles: 13th window of a tenant equals its 1st
    stream = streams[0]
    for _ in range(11):
        stream.next_window()
    assert stream.next_window()[1].tolist() == firsts[0]
