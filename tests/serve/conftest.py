"""Shared serving fixtures: quick-fit detectors, no simulator runs."""

import pytest

from repro.serve import demo_detector


@pytest.fixture(scope="session")
def detector():
    """The quick-fit perceptron every serve test scores with."""
    return demo_detector(seed=0)


@pytest.fixture(scope="session")
def deep_detector():
    """A small deep variant (4x16) — enough layers to exercise the
    multi-layer batched path without slowing the suite."""
    return demo_detector(seed=0, depth=4, width=16)
