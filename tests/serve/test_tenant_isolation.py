"""The multi-tenant guarantee: one tenant's fault never degrades
siblings.

Every scenario injects a :class:`~repro.runtime.chaos.ServeFault`
through the same chaos plumbing the campaign and training layers use,
then holds the service to two obligations at once:

* the *offending* tenant latches into always-secure mode (fail secure,
  never open), and
* every *sibling* tenant's recorded ``(commit_index, score, verdict)``
  stream is **bit-identical** to a run where the fault never happened —
  possible only because scoring is batch-size-invariant per row and
  controller state is per tenant.
"""

import numpy as np

from repro.runtime import (
    BURST_ARRIVAL_FAULT, DETECTOR_EXCEPTION_FAULT, DETECTOR_POISON_SENTINEL,
    NAN_WINDOW_FAULT, SLOW_TENANT_FAULT, ServeChaos, ServeFault,
)
from repro.serve import ServeConfig, run_serve, synthetic_streams
from repro.serve.bench import synthetic_windows

CONFIG = dict(duration=48, batch_window=64)


def _run(detector, chaos=None, tenants=4, **overrides):
    config = ServeConfig(**{**CONFIG, **overrides})
    return run_serve(detector, synthetic_streams(tenants, seed=0),
                     config, chaos=chaos, record=True)


def _assert_siblings_identical(faulty, clean, *victims):
    for tenant in clean.record:
        if tenant in victims:
            continue
        assert faulty.record[tenant] == clean.record[tenant], \
            f"sibling {tenant} diverged"


def test_nan_window_latches_only_offender(detector):
    chaos = ServeChaos([ServeFault(NAN_WINDOW_FAULT, "t1", at_tick=10)])
    faulty, report = _run(detector, chaos)
    clean, _ = _run(detector)
    assert report["latched"] == ["t1"]
    assert "non-finite" in faulty.fanout.slot("t1").controller.latch_reason
    _assert_siblings_identical(faulty, clean, "t1")
    # after the latch, every remaining t1 window ran mitigated
    assert report["tenants"]["t1"]["secure_fraction"] > 0.7


def test_detector_exception_mid_stream_latches_only_offender(detector):
    """A batch-level detector blow-up must narrow to the poisoned row:
    the per-window fallback re-scores siblings bit-identically."""
    chaos = ServeChaos(
        [ServeFault(DETECTOR_EXCEPTION_FAULT, "t2", at_tick=20)])
    faulty, report = _run(detector, chaos)
    clean, _ = _run(detector)
    assert report["latched"] == ["t2"]
    assert "RuntimeError" in faulty.fanout.slot("t2").controller.latch_reason
    assert report["detector_faults"] == 1
    _assert_siblings_identical(faulty, clean, "t2")


def test_two_simultaneous_faults_latch_exactly_two(detector):
    chaos = ServeChaos([
        ServeFault(NAN_WINDOW_FAULT, "t0", at_tick=5),
        ServeFault(DETECTOR_EXCEPTION_FAULT, "t3", at_tick=5),
    ])
    faulty, report = _run(detector, chaos)
    clean, _ = _run(detector)
    assert report["latched"] == ["t0", "t3"]
    _assert_siblings_identical(faulty, clean, "t0", "t3")


def test_burst_arrival_sheds_without_latching(detector):
    """An arrival spike drives shedding (bounded queue), but shedding is
    an overload response, not a detector fault — nobody latches."""
    chaos = ServeChaos(
        [ServeFault(BURST_ARRIVAL_FAULT, "t3", at_tick=8, windows=300)])
    _, report = _run(detector, chaos, queue_limit=64)
    assert report["windows"]["shed"] > 0
    assert report["latched"] == []
    assert report["queue"]["peak"] <= 64


def test_slow_tenant_starves_only_itself(detector):
    chaos = ServeChaos([ServeFault(SLOW_TENANT_FAULT, "t0", every=4)])
    faulty, report = _run(detector, chaos)
    clean, clean_report = _run(detector)
    assert report["tenants"]["t0"]["windows"] < \
        clean_report["tenants"]["t0"]["windows"]
    _assert_siblings_identical(faulty, clean, "t0")
    # the slow tenant's own windows are a prefix-by-commit-index subset
    # of its clean stream: same scores, just fewer of them
    slow = dict((ci, (s, v)) for ci, s, v in faulty.record["t0"])
    full = dict((ci, (s, v)) for ci, s, v in clean.record["t0"])
    assert set(slow) <= set(full)
    assert all(slow[ci][0] == full[ci][0] for ci in slow)


def test_poison_sentinel_raises_through_wrapped_detector(detector):
    chaos = ServeChaos(
        [ServeFault(DETECTOR_EXCEPTION_FAULT, "t0", at_tick=0)])
    wrapped = chaos.wrap_detector(detector)
    X = synthetic_windows(8, seed=11)
    poisoned = X.copy()
    poisoned[4, 0] = DETECTOR_POISON_SENTINEL
    # clean batches pass through bit-identically; poisoned ones raise
    assert np.array_equal(wrapped.score_batch(X), detector.score_batch(X))
    try:
        wrapped.score_batch(poisoned)
        raise AssertionError("poisoned batch did not raise")
    except RuntimeError as exc:
        assert "injected detector exception" in str(exc)


def test_chaos_runs_are_replayable(detector):
    chaos_plan = [ServeFault(NAN_WINDOW_FAULT, "t1", at_tick=10),
                  ServeFault(SLOW_TENANT_FAULT, "t2", every=3)]
    a, report_a = _run(detector, ServeChaos(chaos_plan))
    b, report_b = _run(detector, ServeChaos(chaos_plan))
    assert a.record == b.record
    assert report_a["latched"] == report_b["latched"]
    assert report_a["windows"] == report_b["windows"]
