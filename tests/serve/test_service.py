"""DetectionService semantics: batching, backpressure, reporting."""

import json

import numpy as np
import pytest

from repro.serve import (
    DetectionService, ServeConfig, run_serve, synthetic_streams,
)
from repro.serve.bench import synthetic_windows


def test_every_window_scored_once(detector):
    config = ServeConfig(duration=50, batch_window=64)
    service, report = run_serve(detector, synthetic_streams(4, seed=0),
                                config)
    assert report["windows"]["ingested"] == 200
    assert report["windows"]["scored"] == 200
    assert report["windows"]["shed"] == 0
    assert sum(s["windows"] for s in report["tenants"].values()) == 200
    assert service.pending == 0


def test_batches_bounded_by_batch_window(detector):
    config = ServeConfig(duration=40, batch_window=32)
    _, report = run_serve(detector, synthetic_streams(8, seed=1), config)
    sizes = {int(k): v for k, v in
             report["batches"]["histogram"].items()}
    assert max(sizes) <= 32
    assert report["batches"]["max_windows"] <= 32
    assert sum(size * count for size, count in sizes.items()) == \
        report["windows"]["scored"]


def test_backpressure_sheds_into_secure_mode(detector):
    """Overflowed windows are dropped from scoring but *flagged*: the
    tenant runs mitigated through the overload, never unmonitored."""
    config = ServeConfig(duration=10, batch_window=512, queue_limit=16)
    service, report = run_serve(detector, synthetic_streams(8, seed=2),
                                config)
    assert report["windows"]["shed"] > 0
    assert report["windows"]["ingested"] + report["windows"]["shed"] == 80
    assert report["queue"]["peak"] <= 16
    shed_tenants = [t for t, s in report["tenants"].items() if s["shed"]]
    assert shed_tenants
    for tenant in shed_tenants:
        slot = service.fanout.slot(tenant)
        # every shed window was fed to the controller as a positive flag
        assert slot.controller.flags >= report["tenants"][tenant]["shed"]
        assert not slot.latched


def test_queue_never_exceeds_limit(detector):
    config = ServeConfig(duration=20, batch_window=1024, queue_limit=32)
    service = DetectionService(detector, config)
    for tick in range(64):
        service.submit("t0", (tick + 1) * 100, synthetic_windows(1, tick)[0])
    assert service.pending <= 32
    assert service.queue_peak <= 32
    service.drain()
    assert service.pending == 0


def test_report_is_json_serializable_and_complete(detector):
    config = ServeConfig(duration=16, batch_window=16)
    _, report = run_serve(detector, synthetic_streams(2, seed=3), config)
    payload = json.loads(json.dumps(report))
    assert payload["schema"] == "repro.serve-report/1"
    for key in ("config", "windows", "batches", "queue", "latency_ms",
                "tenants", "latched", "throughput"):
        assert key in payload, key
    lat = payload["latency_ms"]
    assert 0.0 <= lat["p50"] <= lat["p95"] <= lat["p99"]
    assert payload["throughput"]["windows_per_sec"] > 0


def test_recorded_streams_are_deterministic(detector):
    """Two identical runs produce identical (commit_index, score,
    verdict) streams — wall clock only touches the timers."""
    config = ServeConfig(duration=32, batch_window=32)
    a, _ = run_serve(detector, synthetic_streams(3, seed=4), config,
                     record=True)
    b, _ = run_serve(detector, synthetic_streams(3, seed=4), config,
                     record=True)
    assert a.record == b.record


def test_non_finite_window_latches_only_its_tenant(detector):
    """The batched path's fail-secure contract without chaos plumbing:
    submit a NaN window directly, only that tenant latches."""
    config = ServeConfig(duration=8, batch_window=64)
    service = DetectionService(detector, config)
    bad = synthetic_windows(1, seed=5)[0].copy()
    bad[0] = float("nan")
    for tick in range(8):
        for tenant in ("t0", "t1", "t2"):
            window = synthetic_windows(1, seed=100 + tick)[0]
            if tenant == "t1" and tick == 3:
                window = bad
            service.submit(tenant, (tick + 1) * 100, window)
    service.drain()
    assert service.fanout.latched_tenants() == ["t1"]
    slot = service.fanout.slot("t1")
    assert "non-finite" in slot.controller.latch_reason
    assert service.n_faults == 1


def test_serve_emits_cataloged_metrics_only(detector):
    from repro.obs import metrics
    from repro.obs.names import is_known_metric

    reg = metrics()
    reg.reset()
    run_serve(detector, synthetic_streams(2, seed=6),
              ServeConfig(duration=8, batch_window=8))
    emitted = {n for n in reg.names() if n.startswith("serve.")}
    assert {"serve.windows.ingested", "serve.windows.scored",
            "serve.batches", "serve.batch.seconds",
            "serve.queue.depth", "serve.latency.p99_ms",
            "serve.tenants"} <= emitted
    rogue = {n for n in emitted if not is_known_metric(n)}
    assert not rogue, f"uncataloged serve metrics: {rogue}"


def test_latency_reservoir_percentiles():
    from repro.serve.service import LatencyReservoir

    res = LatencyReservoir(cap=10)
    for ms in range(1, 11):
        res.observe(ms / 1000.0)
    assert res.percentile_ms(50) == pytest.approx(5.0)
    assert res.percentile_ms(99) == pytest.approx(10.0)
    res.observe(99.0)
    assert res.overflow == 1
    assert len(res.samples) == 10


def test_empty_service_report(detector):
    service = DetectionService(detector, ServeConfig())
    report = service.report()
    assert report["windows"] == {"ingested": 0, "scored": 0, "shed": 0}
    assert report["latency_ms"]["p50"] == 0.0
    assert report["tenants"] == {}
    assert np.isfinite(report["latency_ms"]["p99"])
