"""CampaignSpec: expansion order, fingerprints, eager validation."""

import json

import pytest

from repro.campaign import (
    ATTACK, WORKLOAD, CampaignCell, CampaignSpec, CampaignSpecError,
    default_spec,
)


def _small():
    return CampaignSpec(workloads=("stream",), attacks=("meltdown",),
                        defenses=("none", "fence-spectre"),
                        periods=(100, 200), seeds=(0, 1), scale=1,
                        max_cycles=2000)


def test_expand_is_the_full_cross_product_in_stable_order():
    cells = _small().expand()
    # 2 sources x 2 defenses x 2 periods x 2 seeds
    assert len(cells) == 16
    assert [c.index for c in cells] == list(range(16))
    # workloads come before attacks; then defense, period, seed nest
    assert cells[0].kind == WORKLOAD and cells[0].name == "stream"
    assert cells[8].kind == ATTACK and cells[8].name == "meltdown"
    assert (cells[0].defense, cells[0].period, cells[0].seed) == \
        ("none", 100, 0)
    assert (cells[1].defense, cells[1].period, cells[1].seed) == \
        ("none", 100, 1)
    assert cells[2].period == 200
    assert cells[4].defense == "fence-spectre"
    # keys are unique by construction
    assert len({c.key for c in cells}) == 16


def test_cell_fingerprint_is_content_addressed():
    cells = _small().expand()
    # distinct configs -> distinct fingerprints
    assert len({c.fingerprint for c in cells}) == len(cells)
    # the fingerprint depends only on the config, not matrix position:
    # the same cell expanded from a *differently shaped* spec matches
    solo = CampaignSpec(workloads=("stream",), defenses=("none",),
                        periods=(100,), seeds=(0,), scale=1,
                        max_cycles=2000).expand()[0]
    twin = next(c for c in cells
                if c.kind == WORKLOAD and c.defense == "none"
                and c.period == 100 and c.seed == 0)
    assert solo.index != twin.index or True  # position may differ
    assert solo.fingerprint == twin.fingerprint
    assert solo.key == twin.key


def test_spec_fingerprint_ignores_field_ordering():
    a = _small()
    b = CampaignSpec.from_dict(dict(reversed(list(a.to_dict().items()))))
    assert a.fingerprint == b.fingerprint


def test_round_trip_through_json_file(tmp_path):
    spec = _small()
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    loaded = CampaignSpec.from_json_file(str(path))
    assert loaded == spec
    assert loaded.fingerprint == spec.fingerprint


@pytest.mark.parametrize("overrides, fragment", [
    ({"workloads": ("nope",)}, "unknown workload"),
    ({"attacks": ("nope",)}, "unknown attack"),
    ({"defenses": ("nope",)}, "unknown defense"),
    ({"periods": (0,)}, "period must be positive"),
    ({"periods": (-5,)}, "period must be positive"),
    ({"scale": 0}, "scale must be positive"),
    ({"max_cycles": -1}, "max_cycles must be positive"),
    ({"workloads": (), "attacks": ()}, "empty matrix"),
    ({"seeds": ()}, "empty matrix"),
])
def test_bad_specs_fail_eagerly(overrides, fragment):
    base = {"workloads": ("stream",), "attacks": (),
            "defenses": ("none",), "periods": (100,), "seeds": (0,)}
    base.update(overrides)
    with pytest.raises(CampaignSpecError, match=fragment):
        CampaignSpec(**base)


def test_from_dict_rejects_unknown_fields_and_non_dicts():
    with pytest.raises(CampaignSpecError, match="unknown spec fields"):
        CampaignSpec.from_dict({"workloads": ["stream"], "color": "red"})
    with pytest.raises(CampaignSpecError, match="JSON object"):
        CampaignSpec.from_dict(["stream"])


def test_from_json_file_unreadable(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(CampaignSpecError, match="unreadable spec file"):
        CampaignSpec.from_json_file(str(missing))
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(CampaignSpecError, match="unreadable spec file"):
        CampaignSpec.from_json_file(str(bad))


def test_default_spec_covers_the_full_figure_suite():
    from repro.attacks import ALL_ATTACKS
    from repro.workloads import WORKLOAD_BUILDERS
    spec = default_spec()
    assert spec.workloads == tuple(WORKLOAD_BUILDERS)
    assert spec.attacks == tuple(cls.name for cls in ALL_ATTACKS)
    cells = spec.expand()
    assert len(cells) == len(WORKLOAD_BUILDERS) + len(ALL_ATTACKS)
    # axes stay overridable piecemeal
    small = default_spec(attacks=(), periods=(50,), max_cycles=1000)
    assert small.attacks == ()
    assert all(c.period == 50 for c in small.expand())


def test_cell_config_matches_dataclass_fields():
    cell = CampaignCell(index=0, kind=WORKLOAD, name="stream",
                        defense="none", period=100, seed=3, scale=1,
                        max_cycles=None)
    assert cell.config() == {"kind": "wl", "name": "stream",
                             "defense": "none", "period": 100, "seed": 3,
                             "scale": 1, "max_cycles": None,
                             "tenancy": "single"}
    assert cell.key == "wl-stream-none-p100-s3"
    smt = CampaignCell(index=1, kind=WORKLOAD, name="stream",
                       defense="none", period=100, seed=3, scale=1,
                       max_cycles=None, tenancy="smt")
    assert smt.key == "wl-stream-none-p100-s3-smt"
    assert smt.fingerprint != cell.fingerprint
