"""run_campaign: graceful degradation, crash-resume, bit-identical
aggregates, exit-code contract."""

import json
import os

import pytest

from repro.campaign import (
    CampaignError, CampaignResult, CampaignSpec, CellCache,
    read_campaign_manifest, render_aggregate, run_campaign,
    validate_cell_result,
)
from repro.campaign.orchestrator import (
    AGGREGATE_NAME, CACHE_DIR, HOLE, MANIFEST_NAME, OK, PENDING, CellStatus,
)
from repro.runtime import CACHE_CORRUPT, DivergentTraceError
from repro.runtime.chaos import (
    CACHE_CORRUPT_FAULT, CACHE_TRUNCATE_FAULT, WORKER_KILL_FAULT,
    CampaignChaos, CampaignFault,
)


def _spec(**overrides):
    base = {"workloads": ("stream",), "defenses": ("none",),
            "periods": (100,), "seeds": (0, 1, 2), "scale": 1,
            "max_cycles": 2000}
    base.update(overrides)
    return CampaignSpec(**base)


def _read(path):
    with open(path, "rb") as f:
        return f.read()


# -- clean runs ---------------------------------------------------------------

def test_clean_run_exit_zero(tmp_path):
    directory = str(tmp_path / "camp")
    result = run_campaign(_spec(), directory, processes=2)
    assert result.exit_code == 0
    assert result.total == 3 and result.completed == 3
    assert result.holes == [] and result.cache_hits == 0
    assert all(s.ok and s.result["windows"] > 0 for s in result.statuses)

    manifest = read_campaign_manifest(os.path.join(directory, MANIFEST_NAME))
    assert manifest["exit_code"] == 0
    assert manifest["counts"] == {"total": 3, "completed": 3, "pending": 0,
                                  "holes": 0, "holes_by_kind": {},
                                  "cache_hits": 0}
    assert manifest["spec_fingerprint"] == _spec().fingerprint
    assert all(c["state"] == OK for c in manifest["cells"])

    aggregate = _read(os.path.join(directory, AGGREGATE_NAME)).decode()
    assert "| wl-stream-none-p100-s0 | ok |" in aggregate
    assert "HOLE" not in aggregate


def test_results_are_deterministic_across_runs(tmp_path):
    a = run_campaign(_spec(), str(tmp_path / "a"), processes=2)
    b = run_campaign(_spec(), str(tmp_path / "b"), processes=1)
    assert _read(a.aggregate_path) == _read(b.aggregate_path)
    for sa, sb in zip(a.statuses, b.statuses):
        assert sa.result == sb.result


# -- resume -------------------------------------------------------------------

def test_resume_replays_everything_from_cache(tmp_path):
    directory = str(tmp_path / "camp")
    first = run_campaign(_spec(), directory, processes=2)
    reference = _read(first.aggregate_path)

    resumed = run_campaign(_spec(), directory, processes=2, resume=True)
    assert resumed.exit_code == 0
    assert resumed.cache_hits == resumed.total == 3
    assert resumed.hit_rate == 1.0
    assert _read(resumed.aggregate_path) == reference


def test_resume_into_empty_directory_is_a_cold_start(tmp_path):
    result = run_campaign(_spec(), str(tmp_path / "camp"), processes=2,
                          resume=True)
    assert result.exit_code == 0 and result.cache_hits == 0


def test_resume_with_a_different_spec_is_fatal(tmp_path):
    directory = str(tmp_path / "camp")
    run_campaign(_spec(), directory, processes=2)
    with pytest.raises(CampaignError, match="different spec"):
        run_campaign(_spec(seeds=(7,)), directory, resume=True)
    # without --resume the directory is legitimately rebuilt
    rebuilt = run_campaign(_spec(seeds=(7,)), directory, processes=1)
    assert rebuilt.exit_code == 0 and rebuilt.total == 1


def test_resume_quarantines_corrupt_entries_and_reruns(tmp_path):
    """Self-healing: a corrupt cache entry found on resume is moved to
    quarantine and the cell re-executed live, not served."""
    directory = str(tmp_path / "camp")
    first = run_campaign(_spec(), directory, processes=2)
    reference = _read(first.aggregate_path)

    cache = CellCache(os.path.join(directory, CACHE_DIR))
    victim = first.statuses[1].cell
    path = cache.entry_path(victim.fingerprint)
    data = _read(path)
    with open(path, "wb") as f:
        f.write(data[: len(data) // 3])

    resumed = run_campaign(_spec(), directory, processes=2, resume=True)
    assert resumed.exit_code == 0
    assert resumed.cache_hits == 2 and resumed.completed == 3
    assert not resumed.statuses[1].cache_hit
    assert cache.quarantined()           # forensic copy kept
    assert _read(resumed.aggregate_path) == reference


# -- graceful degradation under chaos ----------------------------------------

def test_worker_kill_becomes_a_crash_hole_not_an_abort(tmp_path):
    directory = str(tmp_path / "camp")
    chaos = CampaignChaos([CampaignFault(WORKER_KILL_FAULT, cell=1)])
    result = run_campaign(_spec(), directory, processes=2, retries=0,
                          chaos=chaos)
    assert result.exit_code == 1
    assert result.completed == 2                 # siblings untouched
    assert result.holes_by_kind() == {"crash": 1}
    hole = result.holes[0]
    assert hole.cell.index == 1 and hole.state == HOLE

    aggregate = _read(result.aggregate_path).decode()
    assert "HOLE:crash" in aggregate and "## Holes" in aggregate
    manifest = read_campaign_manifest(result.manifest_path)
    assert manifest["exit_code"] == 1
    assert manifest["counts"]["holes_by_kind"] == {"crash": 1}


def test_transient_kill_is_retried_to_success(tmp_path):
    chaos = CampaignChaos([CampaignFault(WORKER_KILL_FAULT, cell=0,
                                         fail_attempts=1)])
    result = run_campaign(_spec(), str(tmp_path / "camp"), processes=2,
                          retries=1, chaos=chaos)
    assert result.exit_code == 0
    assert result.statuses[0].attempts == 2


@pytest.mark.parametrize("fault_kind", [CACHE_CORRUPT_FAULT,
                                        CACHE_TRUNCATE_FAULT])
def test_mangled_cache_write_is_a_cache_corrupt_hole(tmp_path, fault_kind):
    directory = str(tmp_path / "camp")
    chaos = CampaignChaos([CampaignFault(fault_kind, cell=2)])
    result = run_campaign(_spec(), directory, processes=2, chaos=chaos)
    assert result.exit_code == 1
    assert result.holes_by_kind() == {CACHE_CORRUPT: 1}
    assert result.completed == 2

    cache = CellCache(os.path.join(directory, CACHE_DIR))
    assert cache.quarantined()                   # mangled bytes preserved
    victim = result.statuses[2].cell
    assert cache.get(victim.fingerprint) is None  # never served corrupt

    # the fault fired once: resume re-executes the hole clean
    healed = run_campaign(_spec(), directory, processes=2, resume=True,
                          chaos=chaos)
    assert healed.exit_code == 0
    assert healed.cache_hits == 2 and healed.completed == 3


def test_chaos_run_then_resume_is_bit_identical_to_clean(tmp_path):
    """The acceptance scenario end to end: chaos leaves classified
    holes + exit 1; resume heals to exit 0 with an aggregate
    byte-identical to an uninterrupted run's."""
    clean = run_campaign(_spec(), str(tmp_path / "clean"), processes=2)
    reference = _read(clean.aggregate_path)

    directory = str(tmp_path / "camp")
    chaos = CampaignChaos([
        CampaignFault(WORKER_KILL_FAULT, cell=0),
        CampaignFault(CACHE_CORRUPT_FAULT, cell=2),
    ])
    broken = run_campaign(_spec(), directory, processes=2, retries=0,
                          chaos=chaos)
    assert broken.exit_code == 1
    assert broken.holes_by_kind() == {"crash": 1, CACHE_CORRUPT: 1}

    healed = run_campaign(_spec(), directory, processes=2, retries=1,
                          resume=True)
    assert healed.exit_code == 0
    assert healed.cache_hits == 1                # the one surviving cell
    assert _read(healed.aggregate_path) == reference


def test_ledger_is_written_even_when_everything_holes(tmp_path):
    directory = str(tmp_path / "camp")
    chaos = CampaignChaos([CampaignFault(WORKER_KILL_FAULT, cell=i)
                           for i in range(3)])
    result = run_campaign(_spec(), directory, processes=2, retries=0,
                          chaos=chaos)
    assert result.exit_code == 1 and result.completed == 0
    manifest = read_campaign_manifest(result.manifest_path)
    assert manifest["counts"]["holes"] == 3


# -- pieces -------------------------------------------------------------------

def test_validate_cell_result_taxonomy():
    good = {"cycles": 10, "committed": 5, "ipc": 0.5, "windows": 1,
            "counters_sha256": "ab" * 32}
    validate_cell_result(good)
    for bad in [
        "not a dict",
        {**good, "cycles": -1},
        {**good, "committed": True},
        {**good, "ipc": "fast"},
        {**good, "ipc": -0.1},
        {**good, "counters_sha256": "xyz"},
        {**good, "windows": 0},
    ]:
        with pytest.raises(DivergentTraceError):
            validate_cell_result(bad)


def test_render_aggregate_marks_pending_cells():
    spec = _spec()
    statuses = [CellStatus(cell=c) for c in spec.expand()]
    statuses[0].state = OK
    statuses[0].result = {"cycles": 10, "committed": 5, "ipc": 0.5,
                          "windows": 1, "counters_sha256": "ab" * 32}
    text = render_aggregate(spec, statuses)
    assert "| pending |" in text
    assert statuses[1].state == PENDING
    # deterministic: same inputs, same bytes
    assert text == render_aggregate(spec, statuses)


def test_read_campaign_manifest_rejects_garbage(tmp_path):
    path = tmp_path / "campaign.json"
    with pytest.raises(CampaignError, match="unreadable"):
        read_campaign_manifest(str(path))
    path.write_text("{torn")
    with pytest.raises(CampaignError, match="unreadable"):
        read_campaign_manifest(str(path))
    path.write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(CampaignError, match="unsupported"):
        read_campaign_manifest(str(path))


def test_campaign_result_summary_lists_holes():
    spec = _spec()
    statuses = [CellStatus(cell=c) for c in spec.expand()]
    statuses[0].state = OK
    statuses[1].state = HOLE
    statuses[1].kind = "timeout"
    statuses[1].message = "exceeded 5s"
    statuses[1].attempts = 2
    result = CampaignResult(spec=spec, statuses=statuses)
    text = result.summary()
    assert "1/3 cells" in text
    assert "timeout=1" in text and "exceeded 5s" in text
    assert result.exit_code == 1
