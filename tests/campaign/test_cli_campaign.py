"""`repro campaign` CLI: flag plumbing, exit codes, resume."""

import json
import os

import pytest

from repro.campaign import CampaignSpec
from repro.cli import main

ARGS = ["--workloads", "stream", "--attacks", "--defenses", "none",
        "--periods", "100", "--cell-seeds", "0", "1", "--scale", "1",
        "--max-cycles", "2000", "--jobs", "2", "--no-manifest"]


def test_campaign_flags_run_a_matrix(tmp_path, capsys):
    directory = str(tmp_path / "camp")
    assert main(["campaign", directory] + ARGS) == 0
    out = capsys.readouterr().out
    assert "campaign: 2/2 cells" in out
    assert "aggregate:" in out and "manifest :" in out
    assert os.path.exists(os.path.join(directory, "aggregate.md"))
    manifest = json.loads(
        open(os.path.join(directory, "campaign.json")).read())
    assert manifest["counts"]["completed"] == 2


def test_campaign_resume_hits_the_cache(tmp_path, capsys):
    directory = str(tmp_path / "camp")
    assert main(["campaign", directory] + ARGS) == 0
    reference = open(os.path.join(directory, "aggregate.md"), "rb").read()
    capsys.readouterr()
    assert main(["campaign", directory, "--resume"] + ARGS) == 0
    out = capsys.readouterr().out
    assert "(2 from cache" in out
    assert open(os.path.join(directory, "aggregate.md"), "rb").read() \
        == reference


def test_campaign_spec_file(tmp_path, capsys):
    spec = CampaignSpec(workloads=("stream",), defenses=("none",),
                        periods=(100,), seeds=(0,), scale=1,
                        max_cycles=2000)
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec.to_dict()))
    directory = str(tmp_path / "camp")
    assert main(["campaign", directory, "--spec", str(spec_path),
                 "--no-manifest"]) == 0
    assert "campaign: 1/1 cells" in capsys.readouterr().out


def test_campaign_requires_a_directory(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["campaign", "--no-manifest"])
    assert exc.value.code == 2
    assert "directory required" in capsys.readouterr().err


def test_campaign_bad_spec_exits_fatal(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["campaign", str(tmp_path / "camp"), "--workloads", "nope",
              "--no-manifest"])
    assert exc.value.code == 2
    assert "unknown workload" in capsys.readouterr().err


def test_campaign_resume_spec_mismatch_exits_fatal(tmp_path, capsys):
    directory = str(tmp_path / "camp")
    assert main(["campaign", directory] + ARGS) == 0
    with pytest.raises(SystemExit) as exc:
        main(["campaign", directory, "--resume", "--workloads", "sort",
              "--attacks", "--defenses", "none", "--periods", "100",
              "--cell-seeds", "0", "--scale", "1", "--max-cycles", "2000",
              "--no-manifest"])
    assert exc.value.code == 2
    assert "different spec" in capsys.readouterr().err
