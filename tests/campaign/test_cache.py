"""CellCache: verified reads, corruption taxonomy, quarantine."""

import json
import os

import pytest

from repro.campaign import CampaignSpec, CellCache, CellCorruptError

RESULT = {"cycles": 420, "committed": 300, "ipc": 0.7143, "windows": 3,
          "counters_sha256": "ab" * 32}


@pytest.fixture()
def cell():
    spec = CampaignSpec(workloads=("stream",), defenses=("none",),
                        periods=(100,), seeds=(0,), scale=1,
                        max_cycles=2000)
    return spec.expand()[0]


@pytest.fixture()
def cache(tmp_path):
    return CellCache(str(tmp_path / "cache"))


def test_put_get_round_trip(cache, cell):
    assert cache.get(cell.fingerprint) is None
    assert not cache.has_valid(cell.fingerprint)
    path = cache.put(cell, RESULT)
    assert path == cache.entry_path(cell.fingerprint)
    assert cache.get(cell.fingerprint) == RESULT
    assert cache.has_valid(cell.fingerprint)


def test_entry_is_keyed_by_fingerprint_not_campaign(cache, cell):
    """Content addressing: any campaign covering this cell hits the
    same entry; a fresh CellCache object sees it immediately."""
    cache.put(cell, RESULT)
    other = CellCache(cache.directory)
    assert other.get(cell.fingerprint) == RESULT


def _mangle(cache, cell, fn):
    path = cache.entry_path(cell.fingerprint)
    data = path and open(path, "rb").read()
    with open(path, "wb") as f:
        f.write(fn(data))


def test_unparseable_entry(cache, cell):
    cache.put(cell, RESULT)
    _mangle(cache, cell, lambda d: d[: len(d) // 3])        # truncated
    with pytest.raises(CellCorruptError) as exc:
        cache.get(cell.fingerprint)
    assert exc.value.reason == "unparseable"
    assert not cache.has_valid(cell.fingerprint)


def test_wrong_schema_entry(cache, cell):
    cache.put(cell, RESULT)
    entry = json.loads(open(cache.entry_path(cell.fingerprint)).read())
    entry["schema"] = "repro.campaign-cell/999"
    _mangle(cache, cell, lambda d: json.dumps(entry).encode())
    with pytest.raises(CellCorruptError) as exc:
        cache.get(cell.fingerprint)
    assert exc.value.reason == "schema"


def test_misfiled_entry_fails_fingerprint_check(cache, cell):
    """An entry renamed to another cell's fingerprint cannot masquerade
    as that cell."""
    cache.put(cell, RESULT)
    bogus = "0" * 64
    os.rename(cache.entry_path(cell.fingerprint), cache.entry_path(bogus))
    with pytest.raises(CellCorruptError) as exc:
        cache.get(bogus)
    assert exc.value.reason == "fingerprint"


def test_tampered_config_fails_fingerprint_check(cache, cell):
    cache.put(cell, RESULT)
    entry = json.loads(open(cache.entry_path(cell.fingerprint)).read())
    entry["config"]["seed"] = 999
    _mangle(cache, cell, lambda d: json.dumps(entry).encode())
    with pytest.raises(CellCorruptError) as exc:
        cache.get(cell.fingerprint)
    assert exc.value.reason == "fingerprint"


def test_tampered_result_fails_checksum(cache, cell):
    cache.put(cell, RESULT)
    entry = json.loads(open(cache.entry_path(cell.fingerprint)).read())
    entry["result"]["ipc"] = 9.99                   # silent result flip
    _mangle(cache, cell, lambda d: json.dumps(entry).encode())
    with pytest.raises(CellCorruptError) as exc:
        cache.get(cell.fingerprint)
    assert exc.value.reason == "checksum"


def test_single_flipped_byte_is_caught(cache, cell):
    cache.put(cell, RESULT)

    def flip(data):
        pos = len(data) // 2
        return data[:pos] + bytes([(data[pos] + 1) % 256]) + data[pos + 1:]

    _mangle(cache, cell, flip)
    with pytest.raises(CellCorruptError):
        cache.get(cell.fingerprint)


def test_quarantine_preserves_and_hides(cache, cell):
    cache.put(cell, RESULT)
    dst = cache.quarantine(cell.fingerprint, reason="checksum")
    assert os.path.exists(dst)
    assert "quarantine" in dst and "checksum" in dst
    # hidden from lookups, but preserved for forensics
    assert cache.get(cell.fingerprint) is None
    assert cache.quarantined() == [os.path.basename(dst)]
    # quarantining a vanished entry is a no-op, not an error
    assert cache.quarantine(cell.fingerprint, reason="checksum") is None


def test_quarantine_name_collisions_get_a_counter(cache, cell):
    names = set()
    for _ in range(3):
        cache.put(cell, RESULT)
        names.add(os.path.basename(
            cache.quarantine(cell.fingerprint, reason="checksum")))
    assert len(names) == 3
    assert sorted(names) == cache.quarantined()
