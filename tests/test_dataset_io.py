"""Dataset persistence round-trips."""

import numpy as np
import pytest

from repro.data import load_dataset, save_dataset


def test_roundtrip_preserves_everything(small_dataset, tmp_path):
    path = str(tmp_path / "corpus")
    save_dataset(small_dataset, path)
    loaded = load_dataset(path)
    assert len(loaded) == len(small_dataset)
    assert loaded.sample_period == small_dataset.sample_period
    for a, b in zip(loaded.records, small_dataset.records):
        assert a.deltas == list(b.deltas)
        assert a.label == b.label
        assert a.category == b.category
        assert a.phase == b.phase
        assert a.source == b.source
        assert a.commit_index == b.commit_index


def test_roundtrip_features_identical(small_dataset, tmp_path):
    path = str(tmp_path / "corpus.npz")
    save_dataset(small_dataset, path)
    loaded = load_dataset(path)
    Xa, ya, schema, norm = small_dataset.features()
    Xb = norm.transform(loaded.raw_matrix(schema))
    assert np.allclose(Xa, Xb)
    assert (ya == loaded.labels()).all()


def test_corrupt_metadata_rejected(small_dataset, tmp_path):
    path = str(tmp_path / "corpus")
    save_dataset(small_dataset, path)
    meta = tmp_path / "corpus.meta.json"
    text = meta.read_text()
    # drop one record from the metadata
    import json
    data = json.loads(text)
    data["records"] = data["records"][:-1]
    meta.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_dataset(path)
