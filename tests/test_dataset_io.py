"""Dataset persistence round-trips, atomicity and corruption handling."""

import json

import numpy as np
import pytest

from repro.data import (
    Dataset, DatasetChecksumError, DatasetCorruptError, DatasetError,
    DatasetMissingError, DatasetSchemaError, SampleRecord, load_dataset,
    save_dataset,
)
from repro.sim.hpc import COUNTER_NAMES


def test_roundtrip_preserves_everything(small_dataset, tmp_path):
    path = str(tmp_path / "corpus")
    save_dataset(small_dataset, path)
    loaded = load_dataset(path)
    assert len(loaded) == len(small_dataset)
    assert loaded.sample_period == small_dataset.sample_period
    for a, b in zip(loaded.records, small_dataset.records):
        assert a.deltas == list(b.deltas)
        assert a.label == b.label
        assert a.category == b.category
        assert a.phase == b.phase
        assert a.source == b.source
        assert a.commit_index == b.commit_index


def test_roundtrip_features_identical(small_dataset, tmp_path):
    path = str(tmp_path / "corpus.npz")
    save_dataset(small_dataset, path)
    loaded = load_dataset(path)
    Xa, ya, schema, norm = small_dataset.features()
    Xb = norm.transform(loaded.raw_matrix(schema))
    assert np.allclose(Xa, Xb)
    assert (ya == loaded.labels()).all()


def test_corrupt_metadata_rejected(small_dataset, tmp_path):
    path = str(tmp_path / "corpus")
    save_dataset(small_dataset, path)
    meta = tmp_path / "corpus.meta.json"
    text = meta.read_text()
    # drop one record from the metadata
    data = json.loads(text)
    data["records"] = data["records"][:-1]
    meta.write_text(json.dumps(data))
    with pytest.raises(ValueError):
        load_dataset(path)


def _tiny_dataset(n=3):
    ds = Dataset(sample_period=100)
    width = len(COUNTER_NAMES)
    for i in range(n):
        ds.records.append(SampleRecord(
            deltas=[(i * 7 + j) % 100 for j in range(width)],
            label=i % 2, category="benign", phase=0,
            source=f"src{i}", commit_index=100 * i))
    return ds


class TestTypedErrors:
    def test_missing_metadata_sidecar(self, tmp_path):
        path = str(tmp_path / "corpus")
        save_dataset(_tiny_dataset(), path)
        (tmp_path / "corpus.meta.json").unlink()
        with pytest.raises(DatasetMissingError):
            load_dataset(path)

    def test_missing_npz(self, tmp_path):
        path = str(tmp_path / "corpus")
        save_dataset(_tiny_dataset(), path)
        (tmp_path / "corpus.npz").unlink()
        with pytest.raises(DatasetMissingError):
            load_dataset(path)

    def test_nonexistent_path(self, tmp_path):
        with pytest.raises(DatasetMissingError):
            load_dataset(str(tmp_path / "never-saved"))

    def test_truncated_npz(self, tmp_path):
        path = str(tmp_path / "corpus")
        save_dataset(_tiny_dataset(), path)
        npz = tmp_path / "corpus.npz"
        npz.write_bytes(npz.read_bytes()[: 40])
        # a legacy sidecar (no digest) must still detect the truncation
        meta = tmp_path / "corpus.meta.json"
        data = json.loads(meta.read_text())
        del data["npz_sha256"]
        meta.write_text(json.dumps(data))
        with pytest.raises(DatasetCorruptError):
            load_dataset(path)

    def test_garbage_metadata_json(self, tmp_path):
        path = str(tmp_path / "corpus")
        save_dataset(_tiny_dataset(), path)
        (tmp_path / "corpus.meta.json").write_text("{not json at all")
        with pytest.raises(DatasetCorruptError):
            load_dataset(path)

    def test_row_count_mismatch(self, tmp_path):
        path = str(tmp_path / "corpus")
        save_dataset(_tiny_dataset(), path)
        meta = tmp_path / "corpus.meta.json"
        data = json.loads(meta.read_text())
        data["records"] = data["records"][:-1]
        data["n_records"] = len(data["records"])
        meta.write_text(json.dumps(data))
        with pytest.raises(DatasetSchemaError):
            load_dataset(path)

    def test_checksum_mismatch(self, tmp_path):
        path = str(tmp_path / "corpus")
        save_dataset(_tiny_dataset(), path)
        npz = tmp_path / "corpus.npz"
        npz.write_bytes(npz.read_bytes() + b"tail")
        with pytest.raises(DatasetChecksumError):
            load_dataset(path)

    def test_all_typed_errors_are_dataset_errors(self):
        for cls in (DatasetMissingError, DatasetCorruptError,
                    DatasetChecksumError, DatasetSchemaError):
            assert issubclass(cls, DatasetError)
            assert issubclass(cls, ValueError)   # legacy contract


class _Killed(BaseException):
    """Stands in for a SIGKILL at a precise point inside save_dataset."""


class TestMidWriteKill:
    """Killing save_dataset mid-write never leaves a loadable-but-wrong
    corpus: load either returns a fully-verified dataset or raises a
    DatasetError."""

    def _save_with_kill(self, dataset, path, kill_at):
        """Run save_dataset but die just before atomic write #kill_at."""
        import repro.data.io as dio
        real = dio.atomic_write_bytes
        calls = {"n": 0}

        def flaky(target, data, **kwargs):
            calls["n"] += 1
            if calls["n"] >= kill_at:
                raise _Killed()
            return real(target, data, **kwargs)

        dio.atomic_write_bytes = flaky
        try:
            with pytest.raises(_Killed):
                save_dataset(dataset, path)
        finally:
            dio.atomic_write_bytes = real

    @pytest.mark.parametrize("kill_at", [1, 2])
    def test_interrupted_overwrite_is_never_silently_wrong(
            self, tmp_path, kill_at):
        path = str(tmp_path / "corpus")
        old = _tiny_dataset(3)
        save_dataset(old, path)
        new = _tiny_dataset(5)
        self._save_with_kill(new, path, kill_at)
        try:
            loaded = load_dataset(path)
        except DatasetError:
            return                      # detected loudly: acceptable
        # if it loads, it must be exactly one of the two corpora
        assert len(loaded) in (len(old), len(new))
        reference = old if len(loaded) == len(old) else new
        for a, b in zip(loaded.records, reference.records):
            assert a.deltas == list(b.deltas)

    def test_kill_before_any_write_preserves_old_corpus(self, tmp_path):
        path = str(tmp_path / "corpus")
        old = _tiny_dataset(3)
        save_dataset(old, path)
        self._save_with_kill(_tiny_dataset(5), path, 1)
        assert len(load_dataset(path)) == len(old)

    def test_kill_between_replaces_is_detected(self, tmp_path):
        # meta lands first; dying before the matrix write leaves a
        # mismatched pair that the checksum must reject
        path = str(tmp_path / "corpus")
        save_dataset(_tiny_dataset(3), path)
        self._save_with_kill(_tiny_dataset(5), path, 2)
        with pytest.raises(DatasetChecksumError):
            load_dataset(path)


# -- round-trip property test ------------------------------------------------

from hypothesis import given, settings, strategies as st  # noqa: E402

_WIDTH = len(COUNTER_NAMES)

_records = st.lists(
    st.builds(
        SampleRecord,
        deltas=st.lists(st.integers(min_value=0, max_value=1 << 40),
                        min_size=_WIDTH, max_size=_WIDTH),
        label=st.integers(min_value=0, max_value=1),
        category=st.sampled_from(["benign", "spectre-pht", "rowhammer"]),
        phase=st.integers(min_value=0, max_value=3),
        source=st.text(
            alphabet=st.characters(whitelist_categories=("L", "N"),
                                   max_codepoint=0x2FF),
            min_size=1, max_size=12),
        commit_index=st.integers(min_value=0, max_value=1 << 31),
    ),
    min_size=0, max_size=6)


@settings(max_examples=20, deadline=None)
@given(records=_records,
       period=st.integers(min_value=1, max_value=10_000))
def test_roundtrip_property(records, period, tmp_path_factory):
    """save -> load is the identity for any structurally valid dataset."""
    dataset = Dataset(records=records, sample_period=period)
    path = str(tmp_path_factory.mktemp("prop") / "corpus")
    save_dataset(dataset, path)
    loaded = load_dataset(path)
    assert loaded.sample_period == period
    assert len(loaded) == len(dataset)
    for a, b in zip(loaded.records, dataset.records):
        assert a.deltas == list(b.deltas)
        assert (a.label, a.category, a.phase, a.source, a.commit_index) == \
            (b.label, b.category, b.phase, b.source, b.commit_index)

