"""Figure 16: end-to-end defense performance comparison.

The paper's headline numbers: adaptive gating reduces Fencing's Spectre-
mitigation overhead from 74% to 3.46% and InvisiSpec's from 27% to 1.26%
(>= 95% reduction); for the Futuristic model, Fencing falls from 209% to
10% and InvisiSpec from 75% to 4%.  Absolute numbers depend on the
substrate; the asserted shape is the ordering and the >=80% reductions.
"""

from conftest import print_table

from repro.core import AdaptiveArchitecture
from repro.defenses import measure_overhead, run_workload
from repro.sim import SimConfig
from repro.sim.config import DefenseMode


def test_fig16_end_to_end_overhead(benchmark, evax, bench_workloads):
    modes = {
        "fence-spectre": DefenseMode.FENCE_SPECTRE,
        "invisispec-spectre": DefenseMode.INVISISPEC_SPECTRE,
        "fence-futuristic": DefenseMode.FENCE_FUTURISTIC,
        "invisispec-futuristic": DefenseMode.INVISISPEC_FUTURISTIC,
    }

    def measure():
        baseline = {w.name: run_workload(w, SimConfig()).cycles
                    for w in bench_workloads}
        always_on = {}
        adaptive = {}
        for name, mode in modes.items():
            oh, _ = measure_overhead(bench_workloads, mode,
                                     baseline_cycles=baseline)
            always_on[name] = sum(oh.values()) / len(oh)
            arch = AdaptiveArchitecture(evax.detector, secure_mode=mode,
                                        secure_window=10_000,
                                        sample_period=100)
            oh_a, _ = arch.overhead_on(bench_workloads,
                                       baseline_cycles=baseline)
            adaptive[name] = sum(oh_a.values()) / len(oh_a)
        return always_on, adaptive

    always_on, adaptive = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for name in modes:
        aon, ada = always_on[name], adaptive[name]
        reduction = 100.0 * (1 - ada / aon) if aon > 0 else 0.0
        rows.append((name, f"{100 * aon:.1f}%", f"{100 * ada:.2f}%",
                     f"{reduction:.0f}%"))
    print_table("Figure 16 — mean benign overhead: always-on vs EVAX-gated",
                ["defense", "always-on", "EVAX-adaptive", "reduction"],
                rows)

    # paper shape: fencing > invisispec; futuristic >= spectre flavour;
    # adaptive cuts every overhead by a large factor
    assert always_on["fence-spectre"] > always_on["invisispec-spectre"]
    assert always_on["fence-futuristic"] >= always_on["fence-spectre"]
    for name in modes:
        assert adaptive[name] < 0.2 * always_on[name] + 0.01, name
        assert adaptive[name] < 0.05, name
