"""Sampling-period study (paper Section VIII-A).

The paper collects statistics every 100 / 1,000 / 10,000 / 100,000
instructions and reports that detection accuracy increases with sampling
frequency ("which is expected since these attacks perform their anomalous
behaviour during the transient window").  This benchmark trains and
evaluates a detector per period and reproduces that trend, along with the
flag-latency consequence for the adaptive architecture.
"""

from conftest import print_table

from repro.attacks import ALL_ATTACKS
from repro.core import evax_schema, train_detector
from repro.data import build_dataset
from repro.workloads import all_workloads

PERIODS = (100, 250, 1000)


def test_detection_quality_vs_sampling_period(benchmark):
    def sweep():
        results = {}
        for period in PERIODS:
            train = build_dataset(
                [cls(seed=s) for cls in ALL_ATTACKS for s in (1, 2)],
                all_workloads(scale=4, seeds=(0, 1)),
                sample_period=period)
            test = build_dataset(
                [cls(seed=5) for cls in ALL_ATTACKS],
                all_workloads(scale=4, seeds=(3,)),
                sample_period=period)
            detector = train_detector(train, evax_schema(), epochs=40)
            metrics = detector.evaluate(test.raw_matrix(detector.schema),
                                        test.labels())
            results[period] = (metrics["accuracy"], metrics["fn_rate"],
                               len(train))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Sampling-period study — held-out detection vs window size",
        ["period (insts)", "accuracy", "FN rate", "train windows"],
        [(p, f"{a:.4f}", f"{fn:.4f}", n)
         for p, (a, fn, n) in results.items()])

    # denser sampling detects at least as well (the paper's trend), and
    # gives the adaptive architecture proportionally earlier flags
    acc_100 = results[100][0]
    acc_1000 = results[1000][0]
    assert acc_100 >= acc_1000 - 0.005
    assert results[100][2] > results[1000][2]      # more training windows
    assert acc_100 > 0.97
