"""Figure 15: false-positive / false-negative rates per sampling window.

The paper reports EVAX improving FPs by 85% and FNs by 72% over
PerSpectron, reaching ~4 FPs per 1M instructions at the 10k period and
even lower at the 100-instruction period.
"""

from conftest import print_table


def test_fig15_fp_fn_rates(benchmark, heldout_corpus, evax, perspectron):
    corpus = heldout_corpus    # unseen seeds: the deployment setting

    def measure():
        y = corpus.labels()
        evax_m = evax.detector.evaluate(corpus.raw_matrix(evax.schema), y)
        pers_m = perspectron.evaluate(
            corpus.raw_matrix(perspectron.schema), y)
        return evax_m, pers_m

    evax_m, pers_m = benchmark.pedantic(measure, rounds=1, iterations=1)
    window = corpus.sample_period
    rows = []
    for name, m in (("PerSpectron", pers_m), ("EVAX", evax_m)):
        fp_per_10k = m["fp_rate"] * (10_000 / window)
        rows.append((name, f"{m['fp_rate']:.4f}", f"{m['fn_rate']:.4f}",
                     f"{fp_per_10k:.3f}", f"{m['accuracy']:.4f}"))
    print_table(
        f"Figure 15 — FP/FN per {window}-inst window",
        ["detector", "FP rate", "FN rate", "FP per 10k inst", "accuracy"],
        rows)

    # the paper's shape on unseen executions: EVAX improves the combined
    # error and keeps FPs at a deployable level (~4 per 1M at 10k)
    assert evax_m["fp_rate"] <= pers_m["fp_rate"] + 0.001
    assert (evax_m["fp_rate"] + evax_m["fn_rate"]) <= \
        (pers_m["fp_rate"] + pers_m["fn_rate"]) + 0.002
    assert evax_m["fp_rate"] < 0.01
    assert evax_m["fn_rate"] < 0.02
