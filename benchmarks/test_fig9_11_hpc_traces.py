"""Figures 9-11: HPC time series that expose stealthy attacks.

* Fig 9  — complex cache HPCs (flush activity / clean evicts) fire for
  stealthy cache attacks (Flush+Flush) but not benign programs.
* Fig 10 — squash-related engineered HPCs fire for speculative and
  Meltdown-type attacks.
* Fig 11 — the automatically-engineered ``SquashedBytesReadFromWRQu``
  analogue detects both MDS-type and LVI attacks.
"""

import numpy as np

from conftest import print_table

from repro.sim.hpc import CounterBank


def _series(corpus, category, counter):
    idx = CounterBank.index_of(counter)
    rows = [r.deltas[idx] for r in corpus.records if r.category == category]
    return np.array(rows if rows else [0])


def test_fig9_cache_attack_hpcs(benchmark, corpus):
    counters = ("dcache.flushes", "dcache.flushHits", "dcache.cleanEvicts")

    def collect():
        return {c: (_series(corpus, "flush-flush", c).mean(),
                    _series(corpus, "flush-reload", c).mean(),
                    _series(corpus, "benign", c).mean())
                for c in counters}

    data = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table("Figure 9 — cache-attack HPC rates (per 100-inst window)",
                ["counter", "flush-flush", "flush-reload", "benign"],
                [(c, f"{ff:.2f}", f"{fr:.2f}", f"{b:.2f}")
                 for c, (ff, fr, b) in data.items()])
    # the stealthy-cache-attack signal: flush traffic absent from benign
    assert data["dcache.flushes"][0] > 0.0
    assert data["dcache.flushes"][1] > 0.0
    assert data["dcache.flushes"][2] == 0.0


def test_fig10_transient_attack_hpcs(benchmark, corpus):
    counters = ("iq.squashedNonSpecLD", "iew.execSquashedInsts",
                "commit.traps")

    def collect():
        return {c: (_series(corpus, "meltdown", c).mean(),
                    _series(corpus, "spectre-pht", c).mean(),
                    _series(corpus, "benign", c).mean())
                for c in counters}

    data = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table("Figure 10 — speculative/Meltdown HPC rates",
                ["counter", "meltdown", "spectre-pht", "benign"],
                [(c, f"{m:.2f}", f"{s:.2f}", f"{b:.2f}")
                 for c, (m, s, b) in data.items()])
    assert data["commit.traps"][0] > 0.2          # meltdown traps
    assert data["commit.traps"][2] == 0.0
    # squashed non-speculative (faulting) loads fire only for the
    # fault-based attack, never for benign code
    assert data["iq.squashedNonSpecLD"][0] > 0.0
    assert data["iq.squashedNonSpecLD"][2] == 0.0


def test_fig11_engineered_hpc_detects_mds_and_lvi(benchmark, corpus):
    """The SquashedBytesReadFromWRQu analogue: assist-forwarding ANDed
    with write-queue reads fires for every MDS/LVI variant."""
    a_idx = CounterBank.index_of("lsq.assistForwards")
    w_idx = CounterBank.index_of("lsq.specLoadsHitWriteQueue")
    mds_categories = ("lvi", "fallout", "medusa-cache", "medusa-unaligned",
                      "medusa-shadow")

    def collect():
        rates = {}
        for cat in mds_categories + ("benign", "spectre-pht"):
            rows = [r.deltas for r in corpus.records if r.category == cat]
            fired = [min(d[a_idx], d[w_idx]) > 0 for d in rows]
            rates[cat] = float(np.mean(fired)) if fired else 0.0
        return rates

    rates = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table("Figure 11 — engineered SquashedBytesReadFromWRQu fire rate",
                ["category", "fire rate"],
                [(c, f"{v:.2f}") for c, v in rates.items()])
    for cat in mds_categories:
        assert rates[cat] > 0.2, cat
    assert rates["benign"] == 0.0
    assert rates["spectre-pht"] == 0.0
