"""Ablation study: which EVAX ingredient buys what.

DESIGN.md calls out three design choices layered on the PerSpectron-style
baseline: (1) the widened feature space with GAN-engineered security HPCs,
(2) AM-GAN sample augmentation, (3) adversarial-direction hardening.  This
benchmark removes them one at a time and measures the two metrics they
exist for: robustness to feasible adversarial evasion (Figure 18's
setting) and held-out detection quality.
"""

import numpy as np

from conftest import print_table

from repro.core import dilute_toward_benign, MAX_FEASIBLE_STRENGTH, vaccinate


def _aml_accuracy(detector, corpus):
    """Detection accuracy on maximally-evaded attack windows."""
    raw = corpus.raw_matrix(detector.schema)
    y = corpus.labels()
    X = detector.normalizer.transform(raw)
    benign_mean = X[y == 0].mean(axis=0)
    evaded = dilute_toward_benign(X[y == 1], benign_mean,
                                  MAX_FEASIBLE_STRENGTH, detector.schema)
    preds = (detector.net.predict(evaded)[:, 0] >=
             detector.threshold).astype(int)
    return float(preds.mean())


def _heldout_quality(detector, heldout):
    m = detector.evaluate(heldout.raw_matrix(detector.schema),
                          heldout.labels())
    return m["accuracy"], m["fp_rate"] + m["fn_rate"]


def test_ablation_of_evax_ingredients(benchmark, corpus, heldout_corpus):
    def run_all():
        variants = {
            "full EVAX": dict(),
            "- engineered HPCs": dict(engineer_features=False),
            "- GAN samples": dict(samples_per_class=0),
            "- adversarial hardening": dict(adversarial_hardening=False),
        }
        results = {}
        for name, overrides in variants.items():
            res = vaccinate(corpus, gan_iterations=800, seed=0,
                            style_tracking=False, **overrides)
            aml = _aml_accuracy(res.detector, corpus)
            acc, err = _heldout_quality(res.detector, heldout_corpus)
            results[name] = (aml, acc, err)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Ablation — contribution of each EVAX ingredient",
        ["variant", "AML accuracy", "held-out accuracy", "held-out err"],
        [(name, f"{aml:.3f}", f"{acc:.4f}", f"{err:.4f}")
         for name, (aml, acc, err) in results.items()])

    full_aml = results["full EVAX"][0]
    # adversarial hardening is what buys AML robustness
    assert full_aml > results["- adversarial hardening"][0] + 0.3
    # every variant still detects unperturbed attacks well
    for name, (_, acc, _) in results.items():
        assert acc > 0.95, name
    # the full pipeline is not worse than any ablation on held-out error
    full_err = results["full EVAX"][2]
    assert full_err <= min(err for _, _, err in results.values()) + 0.01
