"""Raw throughput benchmarks (true multi-round pytest-benchmark runs).

Not a paper figure — these track the substrate's own performance so
regressions in simulator or detector speed are visible: simulated cycles
per second, detector classification latency (the software model of the
hardware fast path), and GAN sample-generation throughput.
"""

from repro.sim import Machine, SimConfig
from repro.sim.memo import TraceMemoTable
from repro.workloads import WORKLOAD_BUILDERS


def test_simulator_throughput(benchmark):
    program = WORKLOAD_BUILDERS["astar"](scale=4, seed=0)

    def run():
        return Machine(program, SimConfig()).run(max_cycles=400_000)

    result = benchmark(run)
    assert result.halt_reason == "halt"
    cycles_per_sec = result.cycles / benchmark.stats["mean"]
    print(f"\nsimulated cycles/sec: {cycles_per_sec:,.0f} "
          f"({result.cycles} cycles, IPC {result.ipc:.2f})")
    # Locks in the hot-loop overhaul (preresolved counter slots, eager
    # operand capture, wakeup lists, completion heap): the seed scheduler
    # measured ~19k c/s on this workload, the optimized core ~55-75k
    # (host-dependent).  3x the old 5k floor keeps headroom for slow CI
    # hosts while making a return to per-cycle scans fail loudly.
    assert cycles_per_sec > 15_000


def test_memoized_simulator_throughput(benchmark):
    """The repeated-trace path: every run after the first replays the
    memo record instead of simulating."""
    table = TraceMemoTable()
    program = WORKLOAD_BUILDERS["astar"](scale=4, seed=0)

    def run():
        return Machine(program, SimConfig(), memo_table=table) \
            .run(max_cycles=400_000)

    result = benchmark(run)
    assert result.halt_reason == "halt"
    assert table.hits > 0, "benchmark rounds never replayed"
    cycles_per_sec = result.cycles / benchmark.stats["mean"]
    print(f"\nmemoized cycles/sec: {cycles_per_sec:,.0f} "
          f"(hits={table.hits}, misses={table.misses})")
    # Replay restores recorded state instead of stepping ~190k cycles;
    # measured ~100x over the cold run.  The floor is 10x the cold-path
    # floor — loose enough for slow hosts, tight enough that silently
    # falling back to full simulation fails loudly.
    assert cycles_per_sec > 150_000


def test_detector_window_latency(benchmark, evax, corpus):
    deltas = corpus.records[0].deltas

    def classify():
        return evax.detector.classify_window(deltas)

    benchmark(classify)
    per_window_us = benchmark.stats["mean"] * 1e6
    print(f"\ndetector latency per window: {per_window_us:.1f} us")
    assert per_window_us < 5_000


def test_gan_generation_throughput(benchmark, evax):
    def generate():
        return evax.gan.generate("meltdown", 1, 64)

    samples = benchmark(generate)
    assert samples.shape[0] == 64
    per_sample_us = benchmark.stats["mean"] / 64 * 1e6
    print(f"\ngeneration: {per_sample_us:.1f} us/sample")
