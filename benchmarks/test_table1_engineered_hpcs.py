"""Table I: security HPCs engineered automatically from the AM-GAN.

The paper lists 12 new counters, each the AND of raw HPCs selected from
heavy generator hidden-node connections.  We print the mined combinations
and verify they are discriminative: each fires far more often on attack
windows than on benign ones.
"""

from conftest import print_table

from repro.core import combo_fire_rates
from repro.data import FeatureSchema
from repro.data.features import BASE_FEATURES


def test_table1_engineered_security_hpcs(benchmark, corpus, evax):
    base_schema = FeatureSchema(engineered=(), base=BASE_FEATURES)
    attacks = corpus.subset(lambda r: r.label == 1)
    benign = corpus.subset(lambda r: r.label == 0)

    def mined_rates():
        attack_rates = combo_fire_rates(attacks.raw_matrix(base_schema),
                                        base_schema, evax.engineered)
        benign_rates = combo_fire_rates(benign.raw_matrix(base_schema),
                                        base_schema, evax.engineered)
        return attack_rates, benign_rates

    attack_rates, benign_rates = benchmark.pedantic(mined_rates, rounds=1,
                                                    iterations=1)
    rows = [(i + 1, " AND ".join(combo),
             f"{attack_rates[name]:.2f}", f"{benign_rates[name]:.2f}")
            for i, (name, combo) in enumerate(evax.engineered)]
    print_table("Table I — engineered security HPCs (GAN-mined)",
                ["#", "combination", "attack fire", "benign fire"], rows)

    assert len(evax.engineered) == 12
    discriminative = sum(
        1 for name, _ in evax.engineered
        if attack_rates[name] > benign_rates[name])
    assert discriminative >= 8, "mined HPCs should skew toward attacks"
