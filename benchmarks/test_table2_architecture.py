"""Table II: parameters of the simulated architecture."""

from repro.sim import SimConfig


def test_table2_simulated_architecture(benchmark):
    config = benchmark.pedantic(SimConfig, rounds=1, iterations=1)
    print("\n=== Table II — parameters of simulated architecture ===")
    print(config.pretty())

    # the values the paper fixes
    assert config.rob_entries == 192
    assert config.lq_entries == 32 and config.sq_entries == 32
    assert config.fetch_width == 8 and config.commit_width == 8
    assert config.btb_entries == 4096
    assert config.ras_entries == 16
    assert config.l1i_size == 32 * 1024 and config.l1i_assoc == 4
    assert config.l1d_size == 64 * 1024 and config.l1d_assoc == 8
    assert config.l2_size == 2 * 1024 * 1024 and config.l2_assoc == 8
    assert config.l2_latency == 20
    assert config.l1d_mshrs == 20 and config.l1d_write_buffers == 8
    assert config.line_bytes == 64
