"""Serving-throughput floors: batched scoring must stay batched.

Not a paper figure — these pin the serving layer's own performance so a
regression in the batched inference path (e.g. a return to per-window
Python loops, or an accidental copy in batch assembly) fails loudly.
``scripts/bench_serve.py`` measures and reports the full numbers; these
tests carry defensive fractions of the same floors for the benchmark
tier.
"""

from repro.serve import (
    ServeConfig, demo_detector, measure_scoring_throughput, run_serve,
    synthetic_streams,
)


def test_batched_scoring_speedup():
    """Batched matrix-matrix scoring vs the per-window loop on the
    headline (perceptron) detector.  Measured 50-80x / ~1M windows/s
    on a dev host; 20x / 150k keep headroom for slow CI hosts while
    making a fall back to row-at-a-time scoring fail loudly (that
    regression measures ~1x)."""
    result = measure_scoring_throughput(demo_detector(seed=0),
                                        windows=8192, repeats=3)
    print(f"\nperceptron: batched {result['batch_windows_per_sec']:,.0f} "
          f"w/s, single {result['single_windows_per_sec']:,.0f} w/s, "
          f"speedup {result['speedup']:.1f}x")
    assert result["speedup"] > 20.0
    assert result["batch_windows_per_sec"] > 150_000


def test_deep_detector_still_batches():
    """The deep 16x32 variant is the worst case the service carries;
    measured ~13-16x / ~100k w/s batched.  The floors catch the batch
    path silently degrading to per-window dispatch for deep models."""
    result = measure_scoring_throughput(
        demo_detector(seed=0, depth=16, width=32), windows=4096, repeats=3)
    print(f"\ndnn-16x32: batched {result['batch_windows_per_sec']:,.0f} "
          f"w/s, speedup {result['speedup']:.1f}x")
    assert result["speedup"] > 4.0
    assert result["batch_windows_per_sec"] > 20_000


def test_end_to_end_service_throughput():
    """The full service — queueing, batch assembly, per-tenant
    controllers, latency bookkeeping — around the batched kernel.
    Measured ~50-90k windows/s; the 5k floor is ~10x the throughput
    the unbatched seed path managed end to end."""
    streams = synthetic_streams(8, seed=0)
    config = ServeConfig(duration=512, batch_window=1024, queue_limit=8192)
    service, report = run_serve(demo_detector(seed=0), streams,
                                config=config)
    wps = report["throughput"]["windows_per_sec"]
    print(f"\nservice: {wps:,.0f} windows/s end to end "
          f"({service.n_scored} scored, {service.n_batches} batches)")
    assert service.n_scored == 8 * 512
    assert service.n_shed == 0
    assert wps > 5_000
