"""Figure 18: filling the adversarial space — accuracy under adversarial
ML evasion.

The attacker (with white-box access to a similar detector, per the threat
model) perturbs attack windows toward the benign distribution as far as
the attack's mechanism allows: essential events (traps, flushes, assists,
activations, timing reads) can be *diluted* across windows only by a
bounded factor before the transient window (ROB-bounded) closes and the
attack disables itself.  The paper reports fuzz-hardened PerSpectron
plateauing near 78% while EVAX reaches 93%, at which point evasion
attempts disable the attack.
"""

import numpy as np

from conftest import SAMPLE_PERIOD, print_table

from repro.attacks import Transynther
from repro.core import HardwareDetector, perspectron_schema
from repro.data import build_dataset
from repro.workloads import all_workloads

from repro.core.adversarial import (
    MAX_FEASIBLE_STRENGTH, dilute_toward_benign,
)


def _adversarial_variants(X_attack, benign_mean, strengths, schema):
    """The attacker's best feasible camouflage at each strength."""
    return {s: dilute_toward_benign(X_attack, benign_mean, s, schema)
            for s in strengths}


def _accuracy_under_attack(detector, corpus, strengths):
    raw = corpus.raw_matrix(detector.schema)
    y = corpus.labels()
    X = detector.normalizer.transform(raw)
    benign_mean = X[y == 0].mean(axis=0)
    attacks = X[y == 1]
    accs = {}
    for s, variants in _adversarial_variants(attacks, benign_mean, strengths,
                                             detector.schema).items():
        preds = (detector.net.predict(variants)[:, 0] >=
                 detector.threshold).astype(int)
        accs[s] = float(preds.mean())
    return accs


def test_fig18_adversarial_ml_accuracy(benchmark, corpus, evax, perspectron):
    # strengths beyond ~0.5 exceed the ROB-bounded dilution budget and
    # disable the attack (the paper's "further attempts to evade disable
    # the attack"), so 0.5 is the attacker's best feasible evasion
    strengths = (0.0, 0.25, MAX_FEASIBLE_STRENGTH)

    def measure():
        # the fuzz-hardened baseline: PerSpectron retrained with
        # tool-generated attacks added to the corpus
        fuzzed = Transynther(seed=31).generate(6)
        fuzz_corpus = build_dataset(fuzzed, all_workloads(scale=3, seeds=(8,)),
                                    sample_period=SAMPLE_PERIOD)
        merged = type(corpus)(sample_period=corpus.sample_period)
        merged.records = corpus.records + fuzz_corpus.records
        hardened = HardwareDetector(perspectron_schema(), seed=1,
                                    name="p.fuzzer")
        hardened.fit(merged.raw_matrix(hardened.schema), merged.labels(),
                     epochs=40)
        return {
            "PerSpectron": _accuracy_under_attack(perspectron, corpus,
                                                  strengths),
            "P.Fuzzer": _accuracy_under_attack(hardened, corpus, strengths),
            "EVAX": _accuracy_under_attack(evax.detector, corpus, strengths),
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Figure 18 — detection accuracy vs adversarial evasion strength",
        ["detector"] + [f"strength {s}" for s in strengths],
        [(name, *(f"{accs[s]:.3f}" for s in strengths))
         for name, accs in results.items()])

    # at the strongest feasible evasion, EVAX holds high accuracy while
    # the classically- and fuzz-trained baselines collapse — the
    # adversarial space has been filled
    full = {name: accs[strengths[-1]] for name, accs in results.items()}
    assert full["EVAX"] > full["PerSpectron"] + 0.1
    assert full["EVAX"] > full["P.Fuzzer"] + 0.1
    assert full["EVAX"] > 0.85
