"""Figure 7: attack style loss falls as AM-GAN training progresses —
the quality-of-generated-attacks curve used as the harvest criterion."""

import numpy as np


def test_fig7_style_loss_over_training(benchmark, evax):
    history = benchmark.pedantic(lambda: evax.style_history, rounds=1,
                                 iterations=1)
    assert len(history) >= 8
    print("\n=== Figure 7 — style loss vs AM-GAN training iteration ===")
    for iteration, loss in history:
        bar = "#" * int(min(loss, 0.05) * 800)
        print(f"iter {iteration:4d}  L_GM={loss:.4f}  {bar}")

    first = np.mean([v for _, v in history[:3]])
    last = np.mean([v for _, v in history[-3:]])
    print(f"first-3 mean {first:.4f} -> last-3 mean {last:.4f}")
    # quality improves (loss shrinks) over training
    assert last < first
    # and ends in the small-loss harvest regime
    assert last < 0.05
