"""Figure 20: EVAX training data improves deep detectors too.

The paper trains 1/16/32-layer networks traditionally and on EVAX
(AM-GAN-augmented) data: traditional accuracy degrades with depth on
noisy data, while EVAX training lifts every depth — a 1-layer EVAX model
beats a traditionally-trained 32-layer one.
"""

import numpy as np

from conftest import print_table

from repro.core import DeepDetector, HardwareDetector
from repro.core.vaccination import (
    build_augmented_training_set, fit_on_normalized,
)

DEPTHS = (1, 8, 16)
WIDTH = 24


def _make(schema, depth, seed):
    if depth == 1:
        return HardwareDetector(schema, seed=seed, name="dnn-1")
    return DeepDetector(schema, depth=depth, width=WIDTH, seed=seed)


def test_fig20_deep_detectors(benchmark, corpus, heldout_corpus, evax):
    schema = evax.schema

    def measure():
        raw_train = corpus.raw_matrix(schema)
        y_train = corpus.labels()
        raw_test = heldout_corpus.raw_matrix(schema)
        y_test = heldout_corpus.labels()
        X_aug, y_aug, norm, _ = build_augmented_training_set(
            evax.gan, corpus, schema)
        results = {}
        for depth in DEPTHS:
            traditional = _make(schema, depth, seed=depth)
            traditional.fit(raw_train, y_train, epochs=30)
            trad_acc = traditional.evaluate(raw_test, y_test)["accuracy"]

            vaccinated = _make(schema, depth, seed=depth)
            vaccinated.normalizer = norm
            fit_on_normalized(vaccinated, X_aug, y_aug, epochs=30, seed=depth)
            evax_acc = vaccinated.evaluate(raw_test, y_test)["accuracy"]
            results[depth] = (trad_acc, evax_acc)
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Figure 20 — held-out accuracy: traditional vs EVAX training",
                ["depth", "traditional", "EVAX-trained"],
                [(d, f"{t:.4f}", f"{e:.4f}")
                 for d, (t, e) in results.items()])

    # EVAX training never hurts, and lifts the deep models decisively
    for depth in DEPTHS:
        trad, evax_acc = results[depth]
        assert evax_acc >= trad - 0.01, depth
    # a 1-layer EVAX model is at least as good as the deepest
    # traditionally-trained model (the paper's headline comparison)
    assert results[1][1] >= results[DEPTHS[-1]][0] - 0.005
    # deep EVAX-trained models stay accurate
    assert min(e for _, e in results.values()) > 0.9
