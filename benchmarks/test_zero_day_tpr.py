"""Section VIII-C: zero-day true-positive rates for named attacks.

The paper reports, with each attack held out of training entirely:
RDRND 95% TPR, FlushConflict 97% (vs 63% for PerSpectron), Medusa 98%
(vs 38%), DRAMA 99% — and that MicroScope / Leaky Buddies / SMotherSpectre
evade zero-day detection but are caught once added to training.
"""

from conftest import print_table

from repro.core import (
    leave_one_attack_out, train_perspectron, vaccinate,
)

NAMED = ("rdrnd", "flushconflict", "medusa-cache", "drama")


def test_zero_day_named_attack_tprs(benchmark, corpus):
    def measure():
        evax_folds = leave_one_attack_out(
            corpus, lambda ds: vaccinate(ds, gan_iterations=800,
                                         seed=0).detector,
            categories=NAMED)
        pers_folds = leave_one_attack_out(
            corpus, lambda ds: train_perspectron(ds, epochs=30),
            categories=NAMED)
        return evax_folds, pers_folds

    evax_folds, pers_folds = benchmark.pedantic(measure, rounds=1,
                                                iterations=1)
    rows = [(cat, f"{evax_folds[cat].tpr:.2f}", f"{pers_folds[cat].tpr:.2f}")
            for cat in NAMED]
    print_table("Zero-day TPR on held-out named attacks",
                ["attack", "EVAX TPR", "PerSpectron TPR"], rows)

    mean_evax = sum(evax_folds[c].tpr for c in NAMED) / len(NAMED)
    mean_pers = sum(pers_folds[c].tpr for c in NAMED) / len(NAMED)
    # EVAX generalizes to these never-seen attacks
    assert mean_evax >= mean_pers - 0.02
    assert mean_evax > 0.85
    # each named attack is substantially detected by EVAX
    for cat in NAMED:
        assert evax_folds[cat].tpr > 0.6, cat
