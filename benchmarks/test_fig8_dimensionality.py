"""Figure 8: added feature dimension linearizes the problem — the same
single-layer model classifies better as the monitored-counter space grows
(no hidden layer needed at full width)."""

from conftest import print_table

from repro.core import HardwareDetector
from repro.data import FeatureSchema
from repro.data.features import BASE_FEATURES, ENGINEERED_FEATURES


def test_fig8_dimension_vs_linear_accuracy(benchmark, corpus):
    dims = (20, 60, 106, 133, 145)

    def sweep():
        results = {}
        for dim in dims:
            if dim <= 133:
                schema = FeatureSchema(engineered=(), base=BASE_FEATURES[:dim])
            else:
                schema = FeatureSchema(engineered=ENGINEERED_FEATURES)
            det = HardwareDetector(schema, seed=0)
            raw = corpus.raw_matrix(schema)
            y = corpus.labels()
            det.fit(raw, y, epochs=30)
            results[dim] = det.evaluate(raw, y)["accuracy"]
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Figure 8 — single-layer accuracy vs input dimension",
                ["input features", "accuracy"],
                [(d, f"{results[d]:.4f}") for d in dims])

    # more monitored counters -> a linear model suffices
    assert results[145] > results[20]
    assert results[106] >= results[20]
    assert results[145] >= results[106] - 0.01
    assert results[145] > 0.97
