"""Targeted adaptive responses (extension): classify the attack family,
apply only the mitigation that covers it.

The binary adaptive architecture can only gate speculation defenses, which
do nothing against contention channels (Flush+Reload, SMotherSpectre,
RDRND, DRAMA) or Rowhammer.  With the family classifier aiming the
response — quarantine for contention, refresh boost for DRAM, the cheapest
covering fence otherwise — every family is blocked.
"""

from conftest import print_table

from repro.attacks import (
    DRAMA, FlushReload, Meltdown, RDRNDCovert, Rowhammer, SMotherSpectre,
    SpectrePHT, default_secret_bits,
)
from repro.core import AdaptiveArchitecture
from repro.core.classifier import AttackClassifier, TargetedAdaptiveArchitecture
from repro.sim.config import DefenseMode


def _cases():
    return [
        SpectrePHT(secret_bits=default_secret_bits(9, n=10), seed=9),
        Meltdown(secret_bits=default_secret_bits(9, n=10), seed=9),
        FlushReload(seed=9),
        SMotherSpectre(seed=9),
        RDRNDCovert(seed=9),
        DRAMA(seed=9),
        Rowhammer(seed=9),
    ]


def test_targeted_vs_binary_adaptive_coverage(benchmark, corpus, evax):
    classifier = AttackClassifier(evax.schema, seed=0).fit(corpus, epochs=40)
    targeted = TargetedAdaptiveArchitecture(evax.detector, classifier,
                                            secure_window=10_000,
                                            sample_period=100)
    binary = AdaptiveArchitecture(evax.detector,
                                  secure_mode=DefenseMode.FENCE_FUTURISTIC,
                                  secure_window=10_000, sample_period=100)

    def measure():
        rows = []
        for attack in _cases():
            t_run, t_leak = targeted.run_attack(attack)
            fresh = type(attack)(secret_bits=attack.secret_bits,
                                 seed=attack.seed)
            _, b_leak = binary.run_attack(fresh)
            family = max(t_run.family_flags, key=t_run.family_flags.get) \
                if t_run.family_flags else "-"
            rows.append((attack.name, family, t_leak, b_leak))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table(
        "Targeted responses — per-family mitigation coverage",
        ["attack", "classified family", "targeted leak",
         "binary-fence leak"],
        rows)

    accuracy = classifier.family_accuracy(corpus)
    print(f"family classification accuracy: {accuracy:.4f}")
    assert accuracy > 0.9
    # targeted responses block every family
    assert not any(t_leak for _, _, t_leak, _ in rows)
    # and cover strictly more than speculation-only gating
    targeted_blocked = sum(not t for _, _, t, _ in rows)
    binary_blocked = sum(not b for _, _, _, b in rows)
    assert targeted_blocked > binary_blocked
