"""Figure 14: IPC of the adaptive architecture vs always-on defenses.

The paper plots IPC over benign execution regions: EVAX-gated defenses
keep IPC near the unprotected baseline while always-on InvisiSpec (and
even more so Fencing) depress it everywhere.
"""

from conftest import print_table

from repro.core import AdaptiveArchitecture
from repro.defenses import run_workload
from repro.sim import SimConfig
from repro.sim.config import DefenseMode


def test_fig14_adaptive_ipc_vs_always_on(benchmark, evax, bench_workloads):
    arch = AdaptiveArchitecture(evax.detector,
                                secure_mode=DefenseMode.FENCE_SPECTRE,
                                secure_window=10_000, sample_period=100)

    def measure():
        rows = []
        for w in bench_workloads:
            base = run_workload(w, SimConfig())
            invisi = run_workload(
                w, SimConfig(defense=DefenseMode.INVISISPEC_SPECTRE))
            fence = run_workload(
                w, SimConfig(defense=DefenseMode.FENCE_SPECTRE))
            adaptive = arch.run_source(w)
            rows.append((w.name, base.ipc, adaptive.result.ipc,
                         invisi.ipc, fence.ipc))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_table("Figure 14 — IPC: baseline vs EVAX-adaptive vs always-on",
                ["workload", "baseline", "EVAX-adaptive", "InvisiSpec",
                 "Fence"],
                [(n, f"{b:.2f}", f"{a:.2f}", f"{i:.2f}", f"{f:.2f}")
                 for n, b, a, i, f in rows])

    # EVAX keeps IPC at/near baseline; always-on defenses depress it
    n = len(rows)
    mean = lambda xs: sum(xs) / len(xs)
    base_ipc = mean([r[1] for r in rows])
    adaptive_ipc = mean([r[2] for r in rows])
    invisi_ipc = mean([r[3] for r in rows])
    fence_ipc = mean([r[4] for r in rows])
    assert adaptive_ipc > 0.97 * base_ipc
    assert adaptive_ipc > invisi_ipc
    assert invisi_ipc > fence_ipc
