"""Figure 6: Gram matrices during the leakage phase.

Meltdown and Spectre-RSB have distinct feature-correlation patterns; a
GAN-generated sample conditioned on SPECTRE-RSB must match real
Spectre-RSB's Gram matrix far better than Meltdown's.
"""

import numpy as np

from conftest import print_table

from repro.core import style_loss
from repro.core.vaccination import _extend_generated
from repro.data import FeatureSchema, MaxNormalizer
from repro.data.features import BASE_FEATURES


def _attack_windows(corpus, category, schema, normalizer):
    """All windows of one attack category.  (The paper snapshots the
    leakage phase; the AM-GAN here is trained on every phase of the
    attack's execution, so its output is compared like-for-like.)"""
    subset = corpus.subset(lambda r: r.category == category)
    return normalizer.transform(subset.raw_matrix(schema))


def test_fig6_gram_matrices(benchmark, corpus, evax):
    schema = FeatureSchema(engineered=(), base=BASE_FEATURES)
    normalizer = MaxNormalizer().fit(corpus.raw_matrix(schema))
    # the paper shows "part of the Gram matrix" for a few chosen features;
    # these separate the fault-based leakage style from the RAS one
    chosen = ["commit.traps", "iq.squashedNonSpecLD", "squash.faultSquashes",
              "branchPred.RASIncorrect", "lsq.forwLoads",
              "iew.branchMispredicts"]
    cols = [schema.base_features.index(c) for c in chosen]

    def experiment():
        meltdown = _attack_windows(corpus, "meltdown", schema, normalizer)
        rsb = _attack_windows(corpus, "spectre-rsb", schema, normalizer)
        generated = evax.gan.generate("spectre-rsb", 1, max(16, len(rsb)))
        return meltdown[:, cols], rsb[:, cols], generated[:, cols]

    meltdown, rsb, generated = benchmark.pedantic(experiment, rounds=1,
                                                  iterations=1)
    loss_same_type = style_loss(rsb, generated)          # (B) vs (C)
    loss_cross_type = style_loss(meltdown, generated)    # (A) vs (C)
    loss_real_pair = style_loss(meltdown, rsb)           # (A) vs (B)

    print_table(
        "Figure 6 — attack style losses (lower = same leakage style)",
        ["pair", "L_GM"],
        [("spectre-rsb vs generated-rsb (B,C)", f"{loss_same_type:.4f}"),
         ("meltdown    vs generated-rsb (A,C)", f"{loss_cross_type:.4f}"),
         ("meltdown    vs spectre-rsb   (A,B)", f"{loss_real_pair:.4f}")])

    # the paper's visual check, quantified: (B,C) match, (A,C) mismatch
    assert loss_same_type < loss_cross_type
    # generated samples differ in raw values from the real windows
    # (a new variation, not a copy)
    assert not np.allclose(generated[: len(rsb)], rsb)
