"""Figure 19: K-fold cross-validation (zero-day setting).

At each fold one attack category is entirely removed from training; the
paper shows EVAX dropping the mean generalization error of PerSpectron —
even fuzz-hardened PerSpectron (P.Fuzzer) — by an order of magnitude.
"""

from conftest import SAMPLE_PERIOD, print_table

from repro.attacks import Transynther
from repro.core import (
    HardwareDetector, leave_one_attack_out, mean_generalization_error,
    perspectron_schema, train_perspectron, vaccinate,
)
from repro.data import build_dataset
from repro.workloads import all_workloads

#: categories folded over (a representative spread across mechanisms)
FOLD_CATEGORIES = ("meltdown", "spectre-pht", "lvi", "drama",
                   "flush-reload", "rdrnd")


def _perspectron_trainer(train_ds):
    return train_perspectron(train_ds, epochs=30)


def _fuzz_hardened_trainer(fuzz_records):
    def trainer(train_ds):
        # only fuzzed variants of attacks the fold is allowed to know —
        # variants of the held-out category would leak the test class
        known = {r.category for r in train_ds.records}
        usable = [r for r in fuzz_records
                  if r.category in known or r.category == "benign"]
        merged = type(train_ds)(sample_period=train_ds.sample_period)
        merged.records = train_ds.records + usable
        det = HardwareDetector(perspectron_schema(), seed=1, name="p.fuzzer")
        det.fit(merged.raw_matrix(det.schema), merged.labels(), epochs=30)
        return det
    return trainer


def _evax_trainer(train_ds):
    return vaccinate(train_ds, gan_iterations=800, seed=0).detector


def test_fig19_kfold_generalization(benchmark, corpus):
    def measure():
        fuzz_corpus = build_dataset(Transynther(seed=41).generate(5),
                                    all_workloads(scale=2, seeds=(8,)),
                                    sample_period=SAMPLE_PERIOD)
        trainers = {
            "PerSpectron": _perspectron_trainer,
            "P.Fuzzer": _fuzz_hardened_trainer(fuzz_corpus.records),
            "EVAX": _evax_trainer,
        }
        return {
            name: leave_one_attack_out(corpus, trainer,
                                       categories=FOLD_CATEGORIES)
            for name, trainer in trainers.items()
        }

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    errors = {name: mean_generalization_error(folds)
              for name, folds in results.items()}

    rows = []
    for cat in FOLD_CATEGORIES:
        rows.append((cat,
                     *(f"{results[n][cat].error:.3f}"
                       for n in ("PerSpectron", "P.Fuzzer", "EVAX"))))
    rows.append(("MEAN", *(f"{errors[n]:.3f}"
                           for n in ("PerSpectron", "P.Fuzzer", "EVAX"))))
    print_table("Figure 19 — zero-day generalization error per fold",
                ["held-out attack", "PerSpectron", "P.Fuzzer", "EVAX"],
                rows)

    # the paper's shape: EVAX generalizes to unseen attacks much better
    assert errors["EVAX"] <= errors["PerSpectron"]
    assert errors["EVAX"] <= errors["P.Fuzzer"]
    assert errors["EVAX"] < 0.15
