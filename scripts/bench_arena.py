#!/usr/bin/env python
"""Arms-race economics: per-generation wall-clock + evasion trajectory.

Runs one fixed arms race (``repro.arena``) in a scratch directory and
records what each generation cost and what evolution bought:

* ``seconds`` per generation — evaluate + re-vaccinate + gate + breed,
* the evasion trajectory (mean/max fitness of the leaking population
  against the *incumbent* of that generation),
* the gate verdicts (promotions vs rollbacks) and the incumbent's
  held-out FP/FN/AUC after each generation,

and writes ``benchmarks/BENCH_arena.json``.  A resumed replay of the
finished race is timed too: that is the cost of re-verifying the whole
lineage from its generation checkpoints (it must also reproduce the
report byte-for-byte, which doubles as a determinism regression check —
the script exits 1 if it does not).

Usage::

    PYTHONPATH=src python scripts/bench_arena.py [--jobs N] [--out PATH]
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.arena import ArenaSpec, run_arena   # noqa: E402

#: the measured race: 3 generations of 9 genomes, 3 survivors each
SPEC = dict(
    generations=3,
    population=9,
    survivors=3,
    attacks=("meltdown", "flush-reload"),
    workloads=("stream", "sort"),
    sample_period=120,
    samples_per_class=8,
    gan_iterations=24,
    gan_hidden=(24, 24),
    epochs=8,
    fp_budget=0.15,
    fn_budget=0.10,
    seed=7,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="per-generation arms-race wall-clock + evasion")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel genome workers (default: CPU count)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "benchmarks", "BENCH_arena.json"))
    args = parser.parse_args(argv)

    spec = ArenaSpec(**SPEC)
    with tempfile.TemporaryDirectory(prefix="bench-arena-") as tmp:
        directory = os.path.join(tmp, "race")

        t0 = time.perf_counter()
        race = run_arena(spec, directory, processes=args.jobs)
        race_s = time.perf_counter() - t0
        with open(os.path.join(directory, "arena.md"), "rb") as f:
            reference = f.read()

        t0 = time.perf_counter()
        replay = run_arena(spec, directory, processes=args.jobs,
                           resume=True)
        replay_s = time.perf_counter() - t0
        with open(os.path.join(directory, "arena.md"), "rb") as f:
            identical = f.read() == reference

    generations = [{
        "generation": e["generation"],
        "seconds": e.get("seconds", 0.0),
        "evaluated": e.get("evaluated", 0),
        "leaked": e.get("leaked", 0),
        "evasion_mean": e.get("evasion_mean", 0.0),
        "evasion_max": e.get("evasion_max", 0.0),
        "gate": ("seed" if e["generation"] == 0
                 else "promoted" if e["promoted"] else "rollback"),
        "incumbent": {k: e["incumbent"][k]
                      for k in ("fp_rate", "fn_rate", "auc")},
    } for e in race.trajectory]

    ok = (race.exit_code in (0, 1) and replay.exit_code == race.exit_code
          and identical)
    report = {
        "schema": "repro.bench-arena/1",
        "spec": SPEC,
        "jobs": args.jobs or os.cpu_count(),
        "race": {"seconds": round(race_s, 3),
                 "exit_code": race.exit_code,
                 "promotions": race.promotions,
                 "rollbacks": race.rollbacks,
                 "holes": len(race.holes)},
        "replay": {"seconds": round(replay_s, 3),
                   "bit_identical": identical},
        "generations": generations,
        "ok": ok,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(f"race: {spec.generations} generations x {spec.population} "
          f"genomes ({spec.survivors} survivors), "
          f"{race.promotions} promotions / {race.rollbacks} rollbacks "
          f"in {race_s:.2f}s")
    print(f"{'gen':>3s} {'seconds':>8s} {'leaked':>6s} "
          f"{'evasion mean':>12s} {'evasion max':>11s} {'gate':9s} "
          f"{'fp':>6s} {'fn':>6s} {'auc':>6s}")
    for g in generations:
        inc = g["incumbent"]
        print(f"{g['generation']:3d} {g['seconds']:7.2f}s "
              f"{g['leaked']:6d} {g['evasion_mean']:12.4f} "
              f"{g['evasion_max']:11.4f} {g['gate']:9s} "
              f"{inc['fp_rate']:6.3f} {inc['fn_rate']:6.3f} "
              f"{inc['auc']:6.3f}")
    print(f"replay from checkpoints: {replay_s:.2f}s "
          f"({race_s / replay_s:.0f}x faster, "
          f"bit-identical={identical}); report: {args.out}")
    if not ok:
        print("FAIL: replay of the finished race was not bit-identical",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
