#!/usr/bin/env bash
# Fast CI tier: everything except the slow benchmark/integration tests,
# with a per-test wall-clock deadline so a wedged test fails loudly
# instead of hanging the pipeline.
#
#   scripts/ci.sh                 # fast tier, 180s per-test deadline
#   REPRO_TEST_TIMEOUT=60 scripts/ci.sh -k runtime   # extra pytest args
#
# The full tier (slow tests + benchmarks) remains:
#   python -m pytest -x -q && python -m pytest benchmarks -q
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export REPRO_TEST_TIMEOUT="${REPRO_TEST_TIMEOUT:-180}"

python scripts/check_docs.py

# combined static-analysis gate: per-file contract lint (determinism,
# atomic IO, catalog hygiene, error contracts) plus the whole-program
# flow passes (fingerprint drift, determinism taint, fail-secure
# exception flow, catalog provenance) over ONE shared parse cache —
# see docs/static_analysis.md.  New flow findings (not in the
# committed .flow-baseline.json) fail the run; JSON findings land next
# to the run so manifests/ops tooling can ingest them.  Standalone
# equivalents: python -m repro.analysis.lint src tests scripts
#              python -m repro.analysis.flow src/repro
python -m repro.analysis src tests scripts \
    --json-out "${REPRO_LINT_JSON:-.lint-findings.json}" \
    --flow-json-out "${REPRO_FLOW_JSON:-.flow-findings.json}"

# fast bit-exactness smoke: optimized scheduler vs reference spec on a
# workload, an attack, and an InvisiSpec mode (~2s; full matrix +
# throughput numbers: python scripts/bench_sim.py)
python scripts/bench_sim.py --check-only

# fast resume smoke: the guarded/checkpointed training path end to end
# (toy GAN, a couple of seconds) — kill, resume, assert bit-exactness
python scripts/resume_smoke.py

# campaign resumability smoke (~5s): chaos-seeded matrix (worker kill +
# cache corruption) must degrade to classified holes with exit 1, and
# --resume must hit >=90% cache and reproduce the clean aggregate
# bit-for-bit — see docs/campaigns.md
python -m repro campaign --smoke --no-manifest

# arena smoke (~6s): clean arms race exits 0, SIGKILL mid-generation +
# --resume reproduces the report bit-for-bit, and a worker kill plus a
# sabotaged candidate degrade to classified holes with the gate rolled
# back — see docs/arena.md
python -m repro arena --smoke --no-manifest

# serving smoke (~5s): batch==single bit-identity, batched-kernel and
# end-to-end windows/sec floors, and a real CLI run that must exit 0
# with its report + manifest written — see docs/serving.md (full
# numbers: python scripts/bench_serve.py)
python -m repro serve --smoke --no-manifest

exec python -m pytest -x -q -m "not slow" "$@"
