#!/usr/bin/env python
"""Observability overhead snapshot.

Runs a fixed micro-workload (the ``astar`` kernel from
``benchmarks/test_throughput.py``, same scale and cycle budget) three
ways —

* ``enabled``      — metrics registry on (the default for every run),
* ``disabled``     — ``metrics().enabled = False`` (instruments become
  no-ops, cached handles stay valid),
* ``debug_logged`` — registry on *and* a JSONL debug log attached (the
  worst configured case),

— and writes ``benchmarks/BENCH_obs_baseline.json``.

Two overhead figures are recorded:

* ``overhead_wallclock`` — median enabled-vs-disabled wall clock over
  interleaved rounds.  Informational only: on shared CI machines the
  noise floor (several percent) exceeds the true cost by orders of
  magnitude, so this number flickers around zero.
* ``overhead_bound`` — the deterministic gate.  The instrumentation's
  per-run cost is *counted*: (instrument operations per run) x
  (measured nanoseconds per operation from a tight calibration loop),
  divided by the run's wall clock.  This bounds the true overhead from
  above and is stable run to run.

The acceptance budget is **< 3 % with logging disabled**; the script
exits 1 if ``overhead_bound`` breaches it.

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py [--rounds 5] [--out PATH]
"""

import argparse
import json
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs import MetricsRegistry, get_log, metrics  # noqa: E402
from repro.sim import Machine, SimConfig                 # noqa: E402
from repro.workloads import WORKLOAD_BUILDERS            # noqa: E402

MAX_CYCLES = 400_000
BUDGET = 0.03

#: built once — program construction must not pollute the timings
_PROGRAM = None


def one_run():
    global _PROGRAM
    if _PROGRAM is None:
        _PROGRAM = WORKLOAD_BUILDERS["astar"](scale=4, seed=0)
    return Machine(_PROGRAM, SimConfig()).run(max_cycles=MAX_CYCLES)


def timed_run(repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        result = one_run()
    elapsed = (time.perf_counter() - start) / repeats
    assert result.halt_reason == "halt"
    return elapsed, result.cycles


def cost_per_op_s(loops=200_000):
    """Measured seconds per instrument operation (counter.inc), the
    most common instrumentation call — timers cost a few of these."""
    reg = MetricsRegistry()
    counter = reg.counter("calibration.op")
    start = time.perf_counter()
    for _ in range(loops):
        counter.inc()
    return (time.perf_counter() - start) / loops


def ops_per_run(snapshot):
    """Instrument operations one simulation run performs: per-window
    sampler increments plus the constant batch of run-end records."""
    runs = max(snapshot["counters"]["sim.runs"], 1)
    windows = (snapshot["counters"]["sim.sampler.windows"]
               + snapshot["counters"]["sim.sampler.partial_windows"])
    run_end_records = 6          # counters + timer in _record_run_observations
    return windows / runs + run_end_records


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved timing rounds per mode")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "benchmarks",
        "BENCH_obs_baseline.json"))
    args = parser.parse_args(argv)

    reg = metrics()

    one_run()                                     # warm caches
    one_run()

    # Interleave the modes within each round so thermal/load drift hits
    # every mode equally instead of biasing whichever ran first.
    log_path = args.out + ".events.jsonl"
    samples = {"disabled": [], "enabled": [], "debug_logged": []}
    cycles = 0
    for _ in range(args.rounds):
        reg.enabled = False
        elapsed, cycles = timed_run()
        samples["disabled"].append(elapsed)

        reg.enabled = True
        elapsed, cycles = timed_run()
        samples["enabled"].append(elapsed)

        get_log().configure(path=log_path, level="debug", bench="obs")
        elapsed, cycles = timed_run()
        samples["debug_logged"].append(elapsed)
        get_log().close()

    os.unlink(log_path)
    reg.reset()
    one_run()                      # a counted run for the metrics sample
    snapshot = reg.snapshot()
    modes = {name: (statistics.median(times), cycles)
             for name, times in samples.items()}

    wallclock = modes["enabled"][0] / modes["disabled"][0] - 1.0
    op_s = cost_per_op_s()
    ops = ops_per_run(snapshot)
    bound = (ops * op_s) / modes["enabled"][0]

    report = {
        "workload": {"name": "astar", "scale": 4, "seed": 0,
                     "max_cycles": MAX_CYCLES,
                     "cycles": modes["enabled"][1]},
        "rounds": args.rounds,
        "modes": {
            name: {"median_s": round(median, 6),
                   "cycles_per_sec": round(cycles / median, 1)}
            for name, (median, cycles) in modes.items()
        },
        "overhead_wallclock": round(wallclock, 6),
        "overhead_bound": round(bound, 9),
        "cost_per_op_ns": round(op_s * 1e9, 2),
        "ops_per_run": round(ops, 1),
        "budget": BUDGET,
        "within_budget": bound < BUDGET,
        "metrics_sample": {
            "sim.runs": snapshot["counters"]["sim.runs"],
            "sim.cycles": snapshot["counters"]["sim.cycles"],
            "sim.sampler.windows": snapshot["counters"]
                                           ["sim.sampler.windows"],
        },
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for name, mode in report["modes"].items():
        print(f"{name:13s} {mode['median_s']:8.3f}s  "
              f"{mode['cycles_per_sec']:>12,.0f} cycles/s")
    print(f"wall-clock delta (noise-dominated): {wallclock:+.2%}")
    print(f"counted overhead bound: {bound:.5%} "
          f"({ops:.0f} ops/run x {op_s * 1e9:.0f} ns/op, "
          f"budget {BUDGET:.0%}) -> wrote {os.path.relpath(args.out)}")
    return 0 if report["within_budget"] else 1


if __name__ == "__main__":
    sys.exit(main())
