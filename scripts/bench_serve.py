#!/usr/bin/env python
"""Serving-throughput benchmark: batched vs per-window scoring.

Measures the two detector kernels the streaming service deploys —

* ``perceptron``  — the paper's hardware detector (depth 0), the
  headline serving configuration,
* ``dnn-16x32``   — a deep 16-layer x 32-wide variant, the worst case
  the service is expected to carry,

— each scored two ways over identical synthetic HPC windows: one
``score_batch`` matrix-matrix call vs a ``score_window`` Python loop.
Prints both rates and the speedup, verifies batch == single bit-for-bit
on a sample, writes ``benchmarks/BENCH_serve.json``, and also times an
end-to-end ``DetectionService`` run (queueing + controllers included).

The perceptron speedup is the acceptance gate for the batched serving
path: **batched must be >= 50x the per-window loop** (measured 50-80x,
~1M windows/s on a dev host).  The script exits 1 below the floor.
``repro serve --smoke`` (CI) re-checks defensive fractions of the same
floors on every push; this script is the full-strength version.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py [--windows N] [--out PATH]
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import (                                   # noqa: E402
    ServeConfig, demo_detector, measure_scoring_throughput,
    run_serve, synthetic_streams,
)

#: acceptance floor for the headline (perceptron) configuration
SPEEDUP_FLOOR = 50.0

DETECTORS = (
    ("perceptron", dict(seed=0)),
    ("dnn-16x32", dict(seed=0, depth=16, width=32)),
)


def _service_throughput(detector, tenants=8, duration=512):
    """End-to-end windows/sec through the full service (queue, batch
    assembly, controllers), not just the scoring kernel."""
    streams = synthetic_streams(tenants, seed=0)
    config = ServeConfig(duration=duration, batch_window=1024,
                         queue_limit=tenants * duration + 1)
    t0 = time.perf_counter()
    service, report = run_serve(detector, streams, config=config)
    elapsed = time.perf_counter() - t0
    return service.n_scored / elapsed, report["latency_ms"]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="batched vs per-window detector scoring throughput")
    parser.add_argument("--windows", type=int, default=8192,
                        help="windows per batched measurement")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "benchmarks",
        "BENCH_serve.json"))
    args = parser.parse_args(argv)

    rows = []
    print(f"{'detector':12s} {'batched w/s':>12s} {'single w/s':>11s} "
          f"{'speedup':>8s} {'service w/s':>12s} {'p99 ms':>7s}")
    for name, kwargs in DETECTORS:
        detector = demo_detector(**kwargs)
        kernel = measure_scoring_throughput(
            detector, windows=args.windows, repeats=args.repeats)
        service_wps, latency = _service_throughput(detector)
        rows.append({
            "detector": name,
            "batch_windows_per_sec": round(kernel["batch_windows_per_sec"]),
            "single_windows_per_sec": round(kernel["single_windows_per_sec"]),
            "speedup": round(kernel["speedup"], 1),
            "service_windows_per_sec": round(service_wps),
            "latency_ms": latency,
            "score_checksum": kernel["score_checksum"],
        })
        print(f"{name:12s} {kernel['batch_windows_per_sec']:12,.0f} "
              f"{kernel['single_windows_per_sec']:11,.0f} "
              f"{kernel['speedup']:7.1f}x {service_wps:12,.0f} "
              f"{latency['p99']:7.3f}")

    headline = rows[0]["speedup"]
    ok = headline >= SPEEDUP_FLOOR
    report = {
        "schema": "repro.bench-serve/1",
        "windows": args.windows,
        "repeats": args.repeats,
        "speedup_floor": SPEEDUP_FLOOR,
        "detectors": rows,
        "ok": ok,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(f"headline (perceptron) speedup: {headline:.1f}x "
          f"(floor {SPEEDUP_FLOOR:.0f}x); report: {args.out}")
    if not ok:
        print(f"FAIL: batched scoring {headline:.1f}x < "
              f"{SPEEDUP_FLOOR:.0f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
