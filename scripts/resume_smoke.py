#!/usr/bin/env python
"""CI resume smoke: kill a checkpointed toy GAN run between checkpoints,
resume it, and assert the resumed weights are bit-exact against an
uninterrupted run.  A few seconds of numpy — no simulator involved —
so the fast CI tier exercises the whole guarded/checkpointed training
path (TrainingGuard, TrainingCheckpointer, TrainingChaos, rollback and
bit-exact resume) on every push.

Exit 0 on success, 1 with a one-line reason otherwise.
"""

import sys
import tempfile

import numpy as np

sys.path.insert(0, "src")

from repro.core import AMGAN                                  # noqa: E402
from repro.ml.resilience import (                             # noqa: E402
    TrainingCheckpointer, TrainingGuard,
)
from repro.runtime import (                                   # noqa: E402
    ChaosKill, KILL_FAULT, NAN_GRAD_FAULT, TrainingChaos, TrainingFault,
)

ITERATIONS = 30


def _problem():
    rng = np.random.default_rng(7)
    X = rng.random((40, 6))
    cats = np.array(["atk", "benign"] * 20)
    y = np.array([1.0, 0.0] * 20)
    return X, cats, y


def _gan():
    return AMGAN(6, ["atk", "benign"], generator_hidden=(8,), seed=1)


def main():
    X, cats, y = _problem()
    clean = _gan().train(X, cats, y, iterations=ITERATIONS)

    with tempfile.TemporaryDirectory() as ckdir:
        context = {"smoke": 1}
        chaos = TrainingChaos([TrainingFault(NAN_GRAD_FAULT, at=7),
                               TrainingFault(KILL_FAULT, at=23)])
        guard = TrainingGuard(snapshot_every=5)
        try:
            _gan().train(X, cats, y, iterations=ITERATIONS, guard=guard,
                         chaos=chaos,
                         checkpointer=TrainingCheckpointer(
                             ckdir, context, interval=10))
            return "injected kill never fired"
        except ChaosKill:
            pass
        if guard.failure_counts()["nan"] != 1:
            return "guard missed the injected NaN"

        survivor = _gan()
        ck = TrainingCheckpointer(ckdir, context, interval=10, resume=True)
        start, _ = survivor.restore_checkpoint(ck, "gan")
        if start != 20:
            return f"expected resume at iteration 20, got {start}"
        survivor.train(X, cats, y, iterations=ITERATIONS, checkpointer=ck,
                       start_iteration=start)
    if not all(np.isfinite(p).all() for p in survivor.generator.parameters):
        return "NaN survived rollback into the resumed weights"

    # the NaN rollback reseeds the RNG, so that run legitimately differs
    # from the fault-free one; bit-exactness is asserted on a kill-only
    # run, where resume must reproduce the uninterrupted trajectory
    replay = _gan()
    with tempfile.TemporaryDirectory() as ckdir2:
        ck2 = TrainingCheckpointer(ckdir2, {"smoke": 2}, interval=10)
        try:
            _gan().train(X, cats, y, iterations=ITERATIONS,
                         chaos=TrainingChaos(
                             [TrainingFault(KILL_FAULT, at=23)]),
                         checkpointer=ck2)
            return "second injected kill never fired"
        except ChaosKill:
            pass
        ck2r = TrainingCheckpointer(ckdir2, {"smoke": 2}, interval=10,
                                    resume=True)
        start, _ = replay.restore_checkpoint(ck2r, "gan")
        replay.train(X, cats, y, iterations=ITERATIONS, checkpointer=ck2r,
                     start_iteration=start)
    for a, b in zip(clean.generator.parameters, replay.generator.parameters):
        if not np.array_equal(a, b):
            return "resumed weights diverge from the uninterrupted run"
    if not np.array_equal(clean.generate("atk", 1, 4),
                          replay.generate("atk", 1, 4)):
        return "post-resume RNG stream diverges"
    return None


if __name__ == "__main__":
    failure = main()
    if failure:
        print(f"resume smoke FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
    print("resume smoke ok: kill -> resume is bit-exact, "
          "NaN -> rollback recovered")
