#!/usr/bin/env python
"""Simulator hot-loop benchmark + bit-exactness harness.

Two jobs, matching the hot-loop overhaul's acceptance contract:

1. **Bit-exactness** — run the optimized :class:`~repro.sim.cpu.O3Core`
   and the seed :class:`~repro.sim.reference.ReferenceO3Core` over the
   same programs and assert *identical* sampler delta streams, final
   counter snapshots, cycle counts, committed-instruction counts and halt
   reasons.  The matrix covers three benign workloads, two attacks, every
   fencing/InvisiSpec defense mode (on both an attack and a benign
   program) and the no-STL-speculation configuration.  Each cell also
   proves the hot-trace **memo replay** path bit-identical (record on
   the first optimized run, replay on the second), and a separate SMT
   matrix holds two-tenant runs to the same oracle.
2. **Throughput** — best-of-N wall-clock cycles/sec per workload
   (including ``Machine`` construction, same methodology as the frozen
   pre-overhaul baseline embedded below), plus memoization cold-vs-replay
   speedup with hit rate and SMT co-tenancy throughput, written to
   ``benchmarks/BENCH_sim_hotloop.json``.

Usage (repo root):

    PYTHONPATH=src python scripts/bench_sim.py                # full run
    PYTHONPATH=src python scripts/bench_sim.py --check-only   # CI smoke

``--check-only`` runs a reduced bit-exactness matrix on small budgets
(a few seconds) and skips the timing runs — wired into scripts/ci.sh.
The full run exits non-zero unless every configuration is bit-exact AND
the ``astar`` workload clears the >=3x speedup floor.
"""

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.attacks import ATTACKS_BY_NAME                  # noqa: E402
from repro.sim.config import DefenseMode, SimConfig        # noqa: E402
from repro.sim.cpu import O3Core                           # noqa: E402
from repro.sim.machine import Machine                      # noqa: E402
from repro.sim.memo import TraceMemoTable                  # noqa: E402
from repro.sim.multiprog import SMTMachine                 # noqa: E402
from repro.sim.reference import ReferenceO3Core            # noqa: E402
from repro.workloads import WORKLOAD_BUILDERS              # noqa: E402

OUT_PATH = REPO / "benchmarks" / "BENCH_sim_hotloop.json"

#: Pre-overhaul throughput (simulated cycles/sec) measured with this
#: script's own methodology (best of 3, scale=4 seed=0, sample_period
#: 1000, 400k-cycle budget, Machine construction included) at the seed
#: scheduler, commit e213cbf, CPython 3.11.  Frozen here so the JSON
#: always reports the speedup against the same reference point.
PRE_PR_BASELINE = {"astar": 18906, "stream": 7626, "pointer-chase": 53958}

THROUGHPUT_WORKLOADS = ("astar", "stream", "pointer-chase")
SPEEDUP_FLOOR = {"astar": 3.0}
#: replayed (memo-hit) runs must be at least this much faster than the
#: cold run of the same trace
MEMO_SPEEDUP_FLOOR = 2.0


def counter_stream(core_cls, program, config, sample_period, max_cycles,
                   memo_table=None):
    """Everything observable about a run that must not change."""
    m = Machine(program, config, sample_period=sample_period,
                core_cls=core_cls, memo_table=memo_table)
    m.run(max_cycles=max_cycles)
    deltas = tuple(tuple(s.deltas) for s in m.sampler.samples)
    return (deltas, tuple(m.counters.values), m.cpu.cycle,
            m.cpu.committed, m.cpu.halt_reason)


def smt_stream(core_cls, program_a, program_b, config, sample_period,
               max_cycles):
    """The SMT equivalent of :func:`counter_stream` (plus thread regs)."""
    smt = SMTMachine(program_a, program_b, config,
                     sample_period=sample_period, core_cls=core_cls)
    result = smt.run(max_cycles=max_cycles)
    deltas = tuple(tuple(s.deltas) for s in result.samples)
    return (deltas, tuple(smt.counters.values), result.cycles,
            result.committed, result.halt_reason,
            tuple(tuple(t.regs) for t in result.threads))


def bitexact_matrix(quick=False):
    """(name, program-builder, config) triples for the equivalence runs."""
    configs = []

    def workload(name, scale, seed):
        return WORKLOAD_BUILDERS[name](scale=scale, seed=seed)

    def attack(name):
        return ATTACKS_BY_NAME[name]().build()[0]

    if quick:
        configs.append(("workload:astar", workload("astar", 2, 1),
                        SimConfig()))
        configs.append(("attack:spectre-pht", attack("spectre-pht"),
                        SimConfig()))
        configs.append(("defense:INVISISPEC_SPECTRE:spectre",
                        attack("spectre-pht"),
                        SimConfig(defense=DefenseMode.INVISISPEC_SPECTRE)))
        return configs
    for w in ("astar", "stream", "pointer-chase"):
        configs.append((f"workload:{w}", workload(w, 2, 1), SimConfig()))
    for a in ("spectre-pht", "meltdown"):
        configs.append((f"attack:{a}", attack(a), SimConfig()))
    for d in (DefenseMode.NONE, DefenseMode.FENCE_SPECTRE,
              DefenseMode.FENCE_FUTURISTIC, DefenseMode.INVISISPEC_SPECTRE):
        configs.append((f"defense:{d.name}:spectre", attack("spectre-pht"),
                        SimConfig(defense=d)))
        configs.append((f"defense:{d.name}:astar", workload("astar", 2, 1),
                        SimConfig(defense=d)))
    configs.append(("stl_off:astar", workload("astar", 2, 1),
                    SimConfig(stl_speculation=False)))
    configs.append(("stl_off:spectre", attack("spectre-pht"),
                    SimConfig(stl_speculation=False)))
    return configs


def run_bitexact(quick=False):
    max_cycles = 60_000 if quick else 200_000
    results = {}
    ok = True
    for name, program, config in bitexact_matrix(quick):
        ref = counter_stream(ReferenceO3Core, program, config, 500,
                             max_cycles)
        # the optimized core's first run records into a fresh memo table;
        # the second run replays it — both must equal the reference
        table = TraceMemoTable()
        fast = counter_stream(O3Core, program, config, 500, max_cycles,
                              memo_table=table)
        memo = counter_stream(O3Core, program, config, 500, max_cycles,
                              memo_table=table)
        exact = ref == fast
        memo_exact = ref == memo and table.hits == 1
        ok &= exact and memo_exact
        results[name] = {
            "bit_exact": exact,
            "memo_replay_exact": memo_exact,
            "windows": len(ref[0]),
            "cycles": ref[2],
            "committed": ref[3],
        }
        status = "OK " if exact and memo_exact else "MISMATCH"
        print(f"  {status} {name}: {ref[2]} cycles, "
              f"{len(ref[0])} sampler windows"
              + ("" if memo_exact else "  [memo replay diverged]"))
    return ok, results


def smt_bitexact_matrix(quick=False):
    """(name, program pair, config) triples for the SMT oracle runs."""
    def workload(name, scale, seed):
        return WORKLOAD_BUILDERS[name](scale=scale, seed=seed)

    def attack(name):
        return ATTACKS_BY_NAME[name]().build()[0]

    pairs = [("smt:astar+stream",
              (workload("astar", 2, 1), workload("stream", 2, 1)),
              SimConfig(smt_contexts=2))]
    if quick:
        return pairs
    pairs.append(("smt:spectre+astar",
                  (attack("spectre-pht"), workload("astar", 2, 1)),
                  SimConfig(smt_contexts=2)))
    pairs.append(("smt:FENCE_SPECTRE:spectre+pointer-chase",
                  (attack("spectre-pht"), workload("pointer-chase", 2, 1)),
                  SimConfig(smt_contexts=2,
                            defense=DefenseMode.FENCE_SPECTRE)))
    return pairs


def run_smt_bitexact(quick=False):
    max_cycles = 60_000 if quick else 200_000
    results = {}
    ok = True
    for name, (prog_a, prog_b), config in smt_bitexact_matrix(quick):
        ref = smt_stream(ReferenceO3Core, prog_a, prog_b, config, 500,
                         max_cycles)
        fast = smt_stream(O3Core, prog_a, prog_b, config, 500, max_cycles)
        exact = ref == fast
        ok &= exact
        results[name] = {
            "bit_exact": exact,
            "windows": len(ref[0]),
            "cycles": ref[2],
            "committed": ref[3],
        }
        status = "OK " if exact else "MISMATCH"
        print(f"  {status} {name}: {ref[2]} cycles, "
              f"{len(ref[0])} sampler windows")
    return ok, results


def measure_throughput(rounds=3):
    results = {}
    for name in THROUGHPUT_WORKLOADS:
        best = 0.0
        for _ in range(rounds):
            program = WORKLOAD_BUILDERS[name](scale=4, seed=0)
            t0 = time.perf_counter()
            m = Machine(program, SimConfig(), sample_period=1000)
            m.run(max_cycles=400_000)
            best = max(best, m.cpu.cycle / (time.perf_counter() - t0))
        baseline = PRE_PR_BASELINE[name]
        results[name] = {
            "baseline_cycles_per_sec": baseline,
            "cycles_per_sec": round(best),
            "speedup": round(best / baseline, 2),
        }
        print(f"  {name}: {best:,.0f} c/s  "
              f"({best / baseline:.2f}x over baseline {baseline:,})")
    return results


def measure_relative(rounds=3, max_cycles=100_000):
    """Same-process, interleaved fast-vs-reference speedup on astar.

    The absolute numbers above are at the mercy of host frequency and
    load (observed swings of +/-40% run to run on shared machines); the
    interleaved ratio cancels that out.  Note the reference core shares
    this PR's fetch/cache/TLB fast paths, so this UNDERSTATES the
    speedup over the true pre-PR seed — it is a floor, not the headline.
    """
    program = WORKLOAD_BUILDERS["astar"](scale=4, seed=0)
    best = {O3Core: 0.0, ReferenceO3Core: 0.0}
    for _ in range(rounds):
        for core_cls in (ReferenceO3Core, O3Core):
            t0 = time.perf_counter()
            m = Machine(program, SimConfig(), sample_period=1000,
                        core_cls=core_cls)
            m.run(max_cycles=max_cycles)
            best[core_cls] = max(best[core_cls],
                                 m.cpu.cycle / (time.perf_counter() - t0))
    ratio = best[O3Core] / best[ReferenceO3Core]
    print(f"  astar interleaved: optimized {best[O3Core]:,.0f} c/s vs "
          f"reference-scheduler {best[ReferenceO3Core]:,.0f} c/s "
          f"({ratio:.2f}x, noise-immune floor)")
    return {
        "workload": "astar",
        "optimized_cycles_per_sec": round(best[O3Core]),
        "reference_scheduler_cycles_per_sec": round(best[ReferenceO3Core]),
        "speedup_vs_reference_scheduler": round(ratio, 2),
    }


def measure_memoization(rounds=3, max_cycles=400_000):
    """Cold-vs-replay wall clock on a repeated trace, plus hit rate.

    Models the campaign/arena pattern: the same (program, config,
    period, budget) cell evaluated again and again.  The first run
    simulates and records; every later run replays the record.
    """
    table = TraceMemoTable()
    program = WORKLOAD_BUILDERS["astar"](scale=4, seed=0)

    def one_run():
        t0 = time.perf_counter()
        m = Machine(program, SimConfig(), sample_period=1000,
                    memo_table=table)
        m.run(max_cycles=max_cycles)
        return m.cpu.cycle / (time.perf_counter() - t0)

    cold = one_run()
    assert table.misses == 1 and table.hits == 0
    warm = max(one_run() for _ in range(rounds))
    total = table.hits + table.misses
    hit_rate = table.hits / total
    speedup = warm / cold
    print(f"  astar repeated trace: cold {cold:,.0f} c/s, replay "
          f"{warm:,.0f} c/s ({speedup:.1f}x, hit rate "
          f"{table.hits}/{total} = {hit_rate:.2f})")
    return {
        "workload": "astar",
        "cold_cycles_per_sec": round(cold),
        "replay_cycles_per_sec": round(warm),
        "replay_speedup": round(speedup, 2),
        "hits": table.hits,
        "misses": table.misses,
        "hit_rate": round(hit_rate, 4),
        "floor": MEMO_SPEEDUP_FLOOR,
    }


def measure_smt(rounds=3, max_cycles=400_000):
    """Best-of-N wall clock for a two-tenant SMT run."""
    best = 0.0
    committed = {}
    for _ in range(rounds):
        smt = SMTMachine(WORKLOAD_BUILDERS["astar"](scale=4, seed=0),
                         WORKLOAD_BUILDERS["stream"](scale=4, seed=0),
                         SimConfig(smt_contexts=2), sample_period=1000)
        t0 = time.perf_counter()
        result = smt.run(max_cycles=max_cycles)
        best = max(best, result.cycles / (time.perf_counter() - t0))
        committed = {t.program_name: t.committed for t in result.threads}
    print(f"  astar+stream SMT: {best:,.0f} c/s, per-thread committed "
          f"{committed}")
    return {
        "pair": "astar+stream",
        "cycles_per_sec": round(best),
        "per_thread_committed": committed,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-only", action="store_true",
                        help="fast bit-exactness smoke only (CI); no "
                             "timing runs, no JSON output")
    parser.add_argument("--rounds", type=int, default=5,
                        help="throughput rounds per workload (best-of)")
    args = parser.parse_args()

    print("bit-exactness (optimized O3Core vs ReferenceO3Core, "
          "plus memo replay):")
    exact_ok, exact_results = run_bitexact(quick=args.check_only)
    print("SMT bit-exactness (two hardware contexts, shared machine):")
    smt_ok, smt_exact_results = run_smt_bitexact(quick=args.check_only)
    if not (exact_ok and smt_ok):
        print("bench_sim: counter streams DIVERGED", file=sys.stderr)
        return 1
    if args.check_only:
        print("bench_sim: bit-exactness smoke passed "
              "(incl. memo replay and SMT)")
        return 0

    print("throughput (best of {}, methodology as baseline):"
          .format(args.rounds))
    throughput = measure_throughput(rounds=args.rounds)
    relative = measure_relative(rounds=args.rounds)
    print("memoization (repeated trace, cold record vs replay):")
    memoization = measure_memoization(rounds=args.rounds)
    print("SMT co-tenancy throughput:")
    smt = measure_smt(rounds=args.rounds)

    failures = [
        f"{name}: {throughput[name]['speedup']}x < {floor}x"
        for name, floor in SPEEDUP_FLOOR.items()
        if throughput[name]["speedup"] < floor
    ]
    if memoization["replay_speedup"] < MEMO_SPEEDUP_FLOOR:
        failures.append(f"memo replay: {memoization['replay_speedup']}x "
                        f"< {MEMO_SPEEDUP_FLOOR}x")

    OUT_PATH.write_text(json.dumps({
        "methodology": {
            "throughput": "best-of-N wall clock incl. Machine "
                          "construction; scale=4 seed=0, sample_period "
                          "1000, max_cycles 400000",
            "baseline": "seed scan-based scheduler at commit e213cbf, "
                        "CPython 3.11, same methodology",
            "bit_exactness": "sampler delta streams + final counter "
                             "snapshot + cycle/committed/halt_reason, "
                             "optimized vs reference core, plus "
                             "memo-replay and SMT pairs",
            "memoization": "cold run records into a fresh TraceMemoTable,"
                           " later identical runs replay; best-of-N "
                           "replay vs the cold run",
            "smt": "two-tenant SMTMachine (astar+stream, scale=4), "
                   "best-of-N wall clock",
        },
        "throughput": throughput,
        "relative": relative,
        "memoization": memoization,
        "smt": smt,
        "bit_exactness": exact_results,
        "smt_bit_exactness": smt_exact_results,
        "all_bit_exact": exact_ok and smt_ok,
    }, indent=2) + "\n")
    print(f"wrote {OUT_PATH.relative_to(REPO)}")

    if failures:
        print("bench_sim: speedup floor not met: " + "; ".join(failures),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
