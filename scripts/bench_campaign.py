#!/usr/bin/env python
"""Campaign cache economics: cold run vs warm ``--resume``.

Runs a fixed evaluation matrix twice in a scratch directory —

* ``cold``  — empty cache: every cell simulated in a worker process,
* ``warm``  — ``resume=True`` over the populated cache: every cell
  replayed from its verified entry, no workers launched,

— prints the wall-clock for each, the speedup, and the warm run's
cache-hit rate, and writes ``benchmarks/BENCH_campaign_cache.json``.
The warm figure is the cost of *verifying* the whole matrix (one
SHA-256-checked JSON read per cell, plus the incremental ledger
rewrites); it bounds what an interrupted week-long sweep pays to get
back to where it died.

The hit-rate gate doubles as a regression check: a warm resume of an
untouched cache must replay **every** cell (hit rate 1.0) — anything
less means fingerprints drifted between runs, which would silently
re-simulate completed work.  The script exits 1 in that case.

Usage::

    PYTHONPATH=src python scripts/bench_campaign.py [--jobs N] [--out PATH]
"""

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.campaign import CampaignSpec, run_campaign   # noqa: E402

#: the measured matrix: 4 workloads + 4 attacks x 2 defenses x 2 periods
SPEC = dict(
    workloads=("stream", "pointer-chase", "sort", "crypto"),
    attacks=("meltdown", "spectre-pht", "flush-reload", "lvi"),
    defenses=("none", "fence-spectre"),
    periods=(100, 250),
    seeds=(0,),
    scale=2,
    max_cycles=40_000,
)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="cold vs warm-cache campaign wall-clock")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel cell workers (default: CPU count)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "benchmarks",
        "BENCH_campaign_cache.json"))
    args = parser.parse_args(argv)

    spec = CampaignSpec(**SPEC)
    cells = len(spec.expand())
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        directory = os.path.join(tmp, "camp")

        t0 = time.perf_counter()
        cold = run_campaign(spec, directory, processes=args.jobs)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = run_campaign(spec, directory, processes=args.jobs,
                            resume=True)
        warm_s = time.perf_counter() - t0

    ok = (cold.exit_code == 0 and warm.exit_code == 0
          and warm.hit_rate == 1.0)
    report = {
        "schema": "repro.bench-campaign/1",
        "matrix": SPEC | {"cells": cells},
        "jobs": args.jobs or os.cpu_count(),
        "cold": {"seconds": round(cold_s, 3),
                 "completed": cold.completed,
                 "cache_hits": cold.cache_hits},
        "warm": {"seconds": round(warm_s, 3),
                 "completed": warm.completed,
                 "cache_hits": warm.cache_hits,
                 "hit_rate": warm.hit_rate},
        "speedup": round(cold_s / warm_s, 1) if warm_s else None,
        "ok": ok,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    print(f"matrix: {cells} cells "
          f"({len(SPEC['workloads'])} workloads + "
          f"{len(SPEC['attacks'])} attacks x {len(SPEC['defenses'])} "
          f"defenses x {len(SPEC['periods'])} periods)")
    print(f"{'run':6s} {'wall-clock':>10s} {'cells/sec':>9s} "
          f"{'cache-hit rate':>14s}")
    print(f"{'cold':6s} {cold_s:9.2f}s {cells / cold_s:9.1f} "
          f"{cold.hit_rate:14.2f}")
    print(f"{'warm':6s} {warm_s:9.2f}s {cells / warm_s:9.1f} "
          f"{warm.hit_rate:14.2f}")
    print(f"speedup: {cold_s / warm_s:.1f}x; report: {args.out}")
    if not ok:
        print("FAIL: warm resume did not replay the full matrix from "
              "cache", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
