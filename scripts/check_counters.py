#!/usr/bin/env python
"""Static check: every counter name used in the simulator must exist.

``CounterBank.bump``/``get`` raise on unknown names, but only when the
event in question first *fires* — a typo on a rare path (a trap counter,
a defense-mode-only stall) can survive the whole test suite and then
crash a long collection run.  The hot loop no longer even goes through
``bump``: it preresolves names to slots at import time with
``CounterBank.index_of`` (aliased ``_IX`` in the sim modules), which
fails at import for the optimized core but not for any string literal
that only a cold path touches.

This script is now a thin wrapper over the ``catalog-counters`` rule of
``repro.analysis.lint`` (the extraction logic moved there verbatim —
see ``docs/static_analysis.md``); CLI and exit behaviour are unchanged.
Dynamically built names (f-strings such as the per-cache
``f"{prefix}.cleanEvicts"``) cannot be checked statically and are
skipped — keep those behind a ``CounterBank.has`` guard.

Run from the repo root (scripts/ci.sh runs the full linter, which
includes this rule):

    PYTHONPATH=src python scripts/check_counters.py
"""

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SIM_DIR = REPO / "src" / "repro" / "sim"

sys.path.insert(0, str(REPO / "src"))

from repro.analysis.lint import run_lint  # noqa: E402
from repro.analysis.lint.rules.catalog import (  # noqa: E402
    iter_counter_literals,
)
from repro.sim.hpc import COUNTER_NAMES  # noqa: E402


def main():
    result = run_lint([SIM_DIR], root=REPO, select=["catalog-counters"])
    if result.findings:
        print("check_counters: unknown counter names:", file=sys.stderr)
        for finding in result.findings:
            print(f"  {finding.path}:{finding.line}: "
                  f"{finding.data['name']!r}", file=sys.stderr)
        return 1
    checked = 0
    for path in sorted(SIM_DIR.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        checked += sum(1 for _ in iter_counter_literals(tree))
    print(f"check_counters: {checked} counter-name literals under "
          f"src/repro/sim/ all resolve against COUNTER_NAMES "
          f"({len(COUNTER_NAMES)} defined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
