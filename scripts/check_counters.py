#!/usr/bin/env python
"""Static check: every counter name used in the simulator must exist.

``CounterBank.bump``/``get`` raise on unknown names, but only when the
event in question first *fires* — a typo on a rare path (a trap counter,
a defense-mode-only stall) can survive the whole test suite and then
crash a long collection run.  The hot loop no longer even goes through
``bump``: it preresolves names to slots at import time with
``CounterBank.index_of`` (aliased ``_IX`` in the sim modules), which
fails at import for the optimized core but not for any string literal
that only a cold path touches.

This script closes the gap: it AST-walks every module under
``src/repro/sim/`` and extracts the first-argument string literal of
every ``*.bump(...)``, ``*.get(...)``, ``*.index_of(...)`` / ``_IX(...)``
and ``CounterBank.has(...)`` call, then fails if any literal is not in
``COUNTER_NAMES``.  Dynamically built names (f-strings such as the
per-cache ``f"{prefix}.cleanEvicts"``) cannot be checked statically and
are skipped — keep those behind a ``CounterBank.has`` guard.

Run from the repo root (wired into scripts/ci.sh):

    PYTHONPATH=src python scripts/check_counters.py
"""

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SIM_DIR = REPO / "src" / "repro" / "sim"

sys.path.insert(0, str(REPO / "src"))

from repro.sim.hpc import COUNTER_NAMES  # noqa: E402

#: method/function names whose first string-literal argument is a counter
#: name.  ``get`` is only counter-related on a CounterBank, but a plain
#: string literal that *happens* to be a counter name is harmless to
#: accept, and dict ``.get("other")`` calls pass non-counter strings we
#: can recognize and skip only by the unknown-name failure itself — so
#: ``get`` literals are checked only when they contain a dot (every
#: counter name is namespaced, no dict key under sim/ is).
_CHECKED_CALLS = {"bump", "index_of", "has", "_IX"}
_DOTTED_ONLY_CALLS = {"get"}


def _callee_name(func):
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def extract_counter_literals(tree):
    """Yield (name, lineno) for every statically-visible counter literal."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        callee = _callee_name(node.func)
        if callee not in _CHECKED_CALLS and callee not in _DOTTED_ONLY_CALLS:
            continue
        arg = node.args[0]
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            continue  # dynamic name (f-string etc.): not statically checkable
        if callee in _DOTTED_ONLY_CALLS and "." not in arg.value:
            continue  # un-namespaced literal: a dict .get, not a counter
        yield arg.value, node.lineno


def main():
    known = frozenset(COUNTER_NAMES)
    unknown = []
    checked = 0
    for path in sorted(SIM_DIR.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for name, lineno in extract_counter_literals(tree):
            checked += 1
            if name not in known:
                unknown.append((path.relative_to(REPO), lineno, name))
    if unknown:
        print("check_counters: unknown counter names:", file=sys.stderr)
        for path, lineno, name in unknown:
            print(f"  {path}:{lineno}: {name!r}", file=sys.stderr)
        return 1
    print(f"check_counters: {checked} counter-name literals under "
          f"src/repro/sim/ all resolve against COUNTER_NAMES "
          f"({len(COUNTER_NAMES)} defined)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
