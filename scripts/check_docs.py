#!/usr/bin/env python
"""Docs link checker: fail on broken relative links in the repo's
Markdown files.

Scans every tracked ``*.md`` (repo root, ``docs/``, ``benchmarks/``,
``examples/`` — anything except virtualenv/cache directories), extracts
``[text](target)`` links, and verifies that each relative target exists
on disk.  External links (``http(s)://``, ``mailto:``) and pure anchors
(``#section``) are skipped; an anchor suffix on a relative link is
stripped before the existence check.

Exit status 0 when every relative link resolves, 1 otherwise (one line
per broken link: ``file:line: target``).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
             ".venv", "venv", ".eggs"}
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files():
    for path in sorted(ROOT.rglob("*.md")):
        if not SKIP_DIRS.intersection(path.relative_to(ROOT).parts):
            yield path


def broken_links(path):
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if relative and not (path.parent / relative).exists():
                yield lineno, target


def main():
    failures = 0
    checked = 0
    for path in markdown_files():
        checked += 1
        for lineno, target in broken_links(path):
            rel = path.relative_to(ROOT)
            print(f"{rel}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"docs check: {failures} broken link(s)", file=sys.stderr)
        return 1
    print(f"docs check: {checked} markdown files, all relative links ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
