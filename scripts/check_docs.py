#!/usr/bin/env python
"""Docs link checker: fail on broken relative links in the repo's
Markdown files.

Now a thin wrapper over the ``docs-links`` rule of
``repro.analysis.lint`` (see ``docs/static_analysis.md``); CLI and exit
behaviour are unchanged.  Scans every tracked ``*.md`` (repo root,
``docs/``, ``benchmarks/``, ``examples/`` — anything except
virtualenv/cache directories), extracts ``[text](target)`` links, and
verifies that each relative target exists on disk.  External links
(``http(s)://``, ``mailto:``) and pure anchors (``#section``) are
skipped; an anchor suffix on a relative link is stripped before the
existence check.

Exit status 0 when every relative link resolves, 1 otherwise (one line
per broken link: ``file:line: broken link -> target``).
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.lint import run_lint  # noqa: E402


def main():
    result = run_lint([ROOT], root=ROOT, select=["docs-links"])
    for finding in result.findings:
        print(f"{finding.path}:{finding.line}: {finding.message}")
    if result.findings:
        print(f"docs check: {len(result.findings)} broken link(s)",
              file=sys.stderr)
        return 1
    print(f"docs check: {result.files['markdown']} markdown files, "
          f"all relative links ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
