#!/usr/bin/env python3
"""Attack playground: run every attack category on the simulator and
watch the channels actually leak — then watch defenses shut them down.

For each of the 22 attack programs this prints the secret bits the
attacker planted, the bits its timing channel recovered, and the
distinctive HPC events the run generated.  It then re-runs a few of them
under always-on mitigations to show the leak disappearing.
"""

from repro.attacks import ALL_ATTACKS, LVI, Meltdown, SpectrePHT
from repro.sim import SimConfig
from repro.sim.config import DefenseMode

#: the HPC each attack family lights up
SIGNATURES = {
    "spectre-pht": "iew.branchMispredicts",
    "spectre-btb": "branchPred.indirectMispredicted",
    "spectre-rsb": "branchPred.RASIncorrect",
    "spectre-stl": "iew.memOrderViolationEvents",
    "meltdown": "commit.traps",
    "medusa-cache": "lsq.assistForwards",
    "medusa-unaligned": "lsq.unalignedStores",
    "medusa-shadow": "lsq.assistForwards",
    "lvi": "lsq.ignoredResponses",
    "fallout": "lsq.specLoadsHitWriteQueue",
    "rowhammer": "dram.bitflips",
    "trrespass": "dram.activations",
    "drama": "dram.rowMisses",
    "flush-reload": "dcache.flushes",
    "flush-flush": "dcache.flushHits",
    "prime-probe": "dcache.replacements",
    "smotherspectre": "iew.portContentionCycles",
    "branchscope": "branchPred.condIncorrect",
    "microscope": "commit.traps",
    "leaky-buddies": "membus.pktCount",
    "rdrnd": "rng.underflows",
    "flushconflict": "dcache.flushes",
}


def main():
    print(f"{'attack':18s} {'expected':14s} {'recovered':14s} "
          f"{'leak':5s} signature")
    for cls in ALL_ATTACKS:
        outcome = cls(seed=3).run()
        sig = SIGNATURES[outcome.category]
        count = outcome.run.counters[sig]
        bits = "".join(map(str, outcome.expected_bits))
        got = "".join(map(str, outcome.recovered_bits))
        print(f"{outcome.name:18s} {bits:14s} {got:14s} "
              f"{str(outcome.leaked):5s} {sig}={count}")

    print("\nThe same attacks under always-on mitigations:")
    cases = [
        (SpectrePHT, DefenseMode.FENCE_SPECTRE),
        (SpectrePHT, DefenseMode.INVISISPEC_SPECTRE),
        (Meltdown, DefenseMode.FENCE_FUTURISTIC),
        (LVI, DefenseMode.INVISISPEC_FUTURISTIC),
    ]
    for cls, mode in cases:
        outcome = cls(seed=3).run(config=SimConfig(defense=mode))
        print(f"  {cls.name:14s} under {mode.value:24s} leak={outcome.leaked}")


if __name__ == "__main__":
    main()
