#!/usr/bin/env python3
"""Zero-day detection (paper Section VIII-C).

Holds each named attack out of training completely, vaccinates EVAX on the
remainder, and reports the true-positive rate on the unseen attack next to
the PerSpectron baseline — the paper's cross-validation setting.
"""

from repro.attacks import ALL_ATTACKS
from repro.core import (
    leave_one_attack_out, train_perspectron, vaccinate,
)
from repro.data import build_dataset
from repro.workloads import all_workloads

HELD_OUT = ("rdrnd", "flushconflict", "medusa-cache", "drama")


def main():
    print("Building the trace corpus...")
    attacks = [cls(seed=s) for cls in ALL_ATTACKS for s in (1, 2)]
    dataset = build_dataset(attacks, all_workloads(scale=4, seeds=(0, 1)),
                            sample_period=100)

    print("Running leave-one-attack-out folds (this retrains per fold)...")
    evax_folds = leave_one_attack_out(
        dataset, lambda ds: vaccinate(ds, gan_iterations=800, seed=0).detector,
        categories=HELD_OUT)
    pers_folds = leave_one_attack_out(
        dataset, lambda ds: train_perspectron(ds, epochs=30),
        categories=HELD_OUT)

    print(f"\n{'held-out attack':18s} {'EVAX TPR':>9s} {'PerSpectron TPR':>16s}")
    for cat in HELD_OUT:
        print(f"{cat:18s} {evax_folds[cat].tpr:9.2f} "
              f"{pers_folds[cat].tpr:16.2f}")
    mean_e = sum(f.tpr for f in evax_folds.values()) / len(evax_folds)
    mean_p = sum(f.tpr for f in pers_folds.values()) / len(pers_folds)
    print(f"{'MEAN':18s} {mean_e:9.2f} {mean_p:16.2f}")


if __name__ == "__main__":
    main()
