#!/usr/bin/env python3
"""Interpretability walkthrough (paper Sections V-D / VIII-C).

Shows the three interpretability views the paper argues for:

1. the detector's hyperplane — which HPCs the single-layer model weighs
   toward "attack" and which toward "benign";
2. per-window explanations — why one specific sampling window was flagged;
3. Gram-matrix heatmaps — the leakage-style fingerprints of two attack
   types and of a GAN-generated sample conditioned on one of them.
"""

import numpy as np

from repro.attacks import ALL_ATTACKS
from repro.core import (
    attack_signature, explain_window, gram_heatmap, vaccinate, weight_report,
)
from repro.data import FeatureSchema, MaxNormalizer, build_dataset
from repro.data.features import BASE_FEATURES
from repro.workloads import all_workloads


def main():
    print("Collecting traces and vaccinating the detector...")
    attacks = [cls(seed=s) for cls in ALL_ATTACKS for s in (1, 2)]
    dataset = build_dataset(attacks, all_workloads(scale=4, seeds=(0, 1)),
                            sample_period=100)
    evax = vaccinate(dataset, gan_iterations=1200, seed=0)

    print("\n1. The hyperplane — strongest weights:")
    malicious, benign = weight_report(evax.detector, top=8)
    print("   toward ATTACK:")
    for name, weight in malicious:
        print(f"     {weight:+7.3f}  {name}")
    print("   toward BENIGN:")
    for name, weight in benign:
        print(f"     {weight:+7.3f}  {name}")

    print("\n2. Why was this Meltdown window flagged?")
    window = next(r for r in dataset.records if r.category == "meltdown")
    score, contributions = explain_window(evax.detector, window.deltas)
    print(f"   score = {score:.3f}; top contributions:")
    for name, value in contributions:
        print(f"     {value:6.3f}  {name}")

    print("\n3. Per-attack signatures (vs benign):")
    for category in ("meltdown", "rowhammer", "rdrnd"):
        sig = attack_signature(dataset, category, evax.schema, top=4)
        readable = ", ".join(f"{n} (+{v:.2f})" for n, v in sig)
        print(f"   {category:12s}: {readable}")

    print("\n4. Gram-matrix leakage styles (darker = stronger co-firing):")
    schema = FeatureSchema(engineered=(), base=BASE_FEATURES)
    norm = MaxNormalizer().fit(dataset.raw_matrix(schema))
    chosen = ["commit.traps", "iq.squashedNonSpecLD",
              "branchPred.RASIncorrect", "lsq.forwLoads",
              "dcache.flushes", "cpu.rdtscReads"]
    for category in ("meltdown", "spectre-rsb"):
        windows = norm.transform(
            dataset.subset(lambda r, c=category: r.category == c)
            .raw_matrix(schema))
        print(f"\n   -- {category} --")
        print(gram_heatmap(windows, schema.names, selected=chosen))
    generated = evax.gan.generate("spectre-rsb", 1, 32)
    print("\n   -- AM-GAN sample conditioned on spectre-rsb --")
    print(gram_heatmap(generated, schema.names, selected=chosen))


if __name__ == "__main__":
    main()
