#!/usr/bin/env python3
"""Targeted mitigation (extension): detect, *classify*, then respond.

The paper's abstract promises a detector that can "detect and classify
attacks in time for mitigation to be deployed".  This example trains the
binary EVAX detector plus a softmax attack-family classifier, and shows
why classification matters: speculation fences do nothing against
contention channels (Flush+Reload, SMotherSpectre, RDRND, DRAMA), but a
classified flag can trigger the response that actually covers the family
— quarantine for contention, a refresh boost for Rowhammer, the cheapest
covering fence otherwise.
"""

from repro.attacks import (
    ALL_ATTACKS, DRAMA, FlushReload, Meltdown, RDRNDCovert, Rowhammer,
    SMotherSpectre, SpectrePHT, default_secret_bits,
)
from repro.core import AdaptiveArchitecture, vaccinate
from repro.core.classifier import (
    AttackClassifier, TargetedAdaptiveArchitecture,
)
from repro.data import build_dataset
from repro.sim.config import DefenseMode
from repro.workloads import all_workloads


def main():
    print("Training detector + family classifier...")
    attacks = [cls(seed=s) for cls in ALL_ATTACKS for s in (1, 2)]
    dataset = build_dataset(attacks, all_workloads(scale=4, seeds=(0, 1)),
                            sample_period=100)
    evax = vaccinate(dataset, gan_iterations=1200, seed=0)
    classifier = AttackClassifier(evax.schema, seed=0).fit(dataset, epochs=40)
    print(f"family classification accuracy: "
          f"{classifier.family_accuracy(dataset):.3f}")

    targeted = TargetedAdaptiveArchitecture(evax.detector, classifier,
                                            secure_window=10_000,
                                            sample_period=100)
    binary = AdaptiveArchitecture(evax.detector,
                                  secure_mode=DefenseMode.FENCE_FUTURISTIC,
                                  secure_window=10_000, sample_period=100)

    cases = [
        SpectrePHT(secret_bits=default_secret_bits(9, n=10), seed=9),
        Meltdown(secret_bits=default_secret_bits(9, n=10), seed=9),
        FlushReload(seed=9),
        SMotherSpectre(seed=9),
        RDRNDCovert(seed=9),
        DRAMA(seed=9),
        Rowhammer(seed=9),
    ]
    print(f"\n{'attack':16s} {'classified as':14s} "
          f"{'targeted leak':14s} {'fence-only leak'}")
    for attack in cases:
        run, t_leak = targeted.run_attack(attack)
        fresh = type(attack)(secret_bits=attack.secret_bits,
                             seed=attack.seed)
        _, b_leak = binary.run_attack(fresh)
        family = max(run.family_flags, key=run.family_flags.get) \
            if run.family_flags else "-"
        print(f"{attack.name:16s} {family:14s} {str(t_leak):14s} {b_leak}")


if __name__ == "__main__":
    main()
