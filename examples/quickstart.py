#!/usr/bin/env python3
"""Quickstart: train an EVAX detector end to end in a few minutes.

Builds a trace corpus by *actually running* microarchitectural attacks and
benign workloads on the bundled cycle-level out-of-order CPU simulator,
vaccinates the hardware detector with the AM-GAN, and reports accuracy,
the engineered security HPCs, and the hardware cost of the deployed model.
"""

from repro.attacks import ALL_ATTACKS
from repro.core import vaccinate
from repro.data import build_dataset
from repro.workloads import all_workloads


def main():
    print("1. Running the attack corpus and benign suite on the simulator")
    attacks = [cls(seed=s) for cls in ALL_ATTACKS for s in (1, 2)]
    workloads = all_workloads(scale=4, seeds=(0, 1))
    dataset = build_dataset(attacks, workloads, sample_period=100)
    n_attack, n_benign = dataset.balance_counts()
    print(f"   {len(dataset)} HPC windows "
          f"({n_attack} attack / {n_benign} benign) "
          f"over {len(dataset.categories)} classes")

    print("2. Vaccinating the detector (AM-GAN + feature engineering)")
    result = vaccinate(dataset, gan_iterations=1200, seed=0)

    print("3. Engineered security HPCs (mined from the generator):")
    for i, (name, counters) in enumerate(result.engineered, 1):
        print(f"   {i:2d}. {' AND '.join(counters)}")

    print("4. Detector quality on the corpus:")
    metrics = result.detector.evaluate(dataset.raw_matrix(result.schema),
                                       dataset.labels())
    print(f"   accuracy={metrics['accuracy']:.4f}  auc={metrics['auc']:.4f}"
          f"  fp_rate={metrics['fp_rate']:.4f}  fn_rate={metrics['fn_rate']:.4f}")

    print("5. Hardware cost of the deployed perceptron:")
    for key, value in result.detector.hardware_cost().items():
        print(f"   {key}: {value}")


if __name__ == "__main__":
    main()
