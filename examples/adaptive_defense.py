#!/usr/bin/env python3
"""The adaptive architecture end to end (paper Figures 14/16).

Trains the EVAX detector, then:

* runs every transient attack at an *unseen* seed under detector-gated
  fencing and shows that the secrets no longer leak;
* runs the benign suite and compares the adaptive overhead with always-on
  Fencing and InvisiSpec.
"""

import statistics

from repro.attacks import (
    Fallout, LVI, Meltdown, MedusaUnaligned, SpectreBTB, SpectrePHT,
    SpectreRSB, SpectreSTL, ALL_ATTACKS, default_secret_bits,
)
from repro.core import AdaptiveArchitecture, vaccinate
from repro.data import build_dataset
from repro.defenses import measure_overhead, run_workload
from repro.sim import SimConfig
from repro.sim.config import DefenseMode
from repro.workloads import all_workloads


def main():
    print("Training the EVAX detector on the full corpus...")
    attacks = [cls(seed=s) for cls in ALL_ATTACKS for s in (1, 2)]
    dataset = build_dataset(attacks, all_workloads(scale=4, seeds=(0, 1)),
                            sample_period=100)
    evax = vaccinate(dataset, gan_iterations=1200, seed=0)

    arch = AdaptiveArchitecture(evax.detector,
                                secure_mode=DefenseMode.FENCE_FUTURISTIC,
                                secure_window=10_000, sample_period=100)

    print("\nUnseen-seed attacks under the adaptive architecture:")
    for cls in (SpectrePHT, SpectreBTB, SpectreRSB, SpectreSTL,
                Meltdown, LVI, Fallout, MedusaUnaligned):
        attack = cls(secret_bits=default_secret_bits(7, n=12), seed=7)
        baseline = cls(secret_bits=default_secret_bits(7, n=12),
                       seed=7).run()
        run, leaked = arch.run_attack(attack)
        print(f"  {attack.name:18s} undefended leak={baseline.leaked!s:5s}"
              f"  adaptive: flags={run.flags:3d}"
              f"  secure={run.secure_fraction:4.0%}  leak={leaked}")

    print("\nBenign overhead (vs the unprotected baseline):")
    bench = all_workloads(scale=5, seeds=(9,))
    baseline = {w.name: run_workload(w, SimConfig()).cycles for w in bench}
    adaptive, _ = arch.overhead_on(bench, baseline_cycles=baseline)
    fence, _ = measure_overhead(bench, DefenseMode.FENCE_FUTURISTIC,
                                baseline_cycles=baseline)
    invisi, _ = measure_overhead(bench, DefenseMode.INVISISPEC_SPECTRE,
                                 baseline_cycles=baseline)
    print(f"  always-on fencing   : {statistics.mean(fence.values()):7.1%}")
    print(f"  always-on invisispec: {statistics.mean(invisi.values()):7.1%}")
    print(f"  EVAX adaptive       : {statistics.mean(adaptive.values()):7.1%}")


if __name__ == "__main__":
    main()
