"""EVAX core: the paper's contribution.

* :mod:`perceptron` — the hardware detector (EVAX) and PerSpectron baseline
* :mod:`dnn` — deep detectors (Figure 20)
* :mod:`amgan` — the asymmetric conditional GAN (Section V)
* :mod:`gram` — Gram-matrix style loss / interpretability (Section V-D)
* :mod:`feature_engineering` — automatic security-HPC mining (Section VI-A)
* :mod:`vaccination` — the end-to-end training pipeline (Figure 4)
* :mod:`crossval` — leave-one-attack-out zero-day evaluation
* :mod:`adaptive` — the detector-gated adaptive architecture (Section VIII)
"""

from repro.core.perceptron import (
    HardwareDetector, evax_schema, perspectron_schema,
)
from repro.core.dnn import DeepDetector
from repro.core.amgan import AMGAN
from repro.core.gram import feature_correlation, gram_matrix, style_loss
from repro.core.feature_engineering import combo_fire_rates, mine_security_hpcs
from repro.core.vaccination import (
    BENIGN, VaccinationResult, train_detector, train_perspectron, vaccinate,
)
from repro.core.crossval import (
    FoldResult, leave_one_attack_out, mean_generalization_error,
)
from repro.core.adaptive import AdaptiveArchitecture, AdaptiveRun
from repro.core.adversarial import (
    ESSENTIAL_COUNTERS, MAX_FEASIBLE_STRENGTH, adversarial_augmentation,
    dilute_toward_benign, essential_columns,
)
from repro.core.interpret import (
    attack_signature, explain_window, gram_heatmap, weight_report,
)
from repro.core.patching import (
    MODEL_FORMAT, DetectorPatch, ModelChecksumError, ModelCorruptError,
    ModelError, ModelMissingError, ModelSchemaError, detector_from_dict,
    detector_to_dict, load_detector, save_detector, schema_fingerprint,
)
from repro.core.classifier import (
    AttackClassifier, CATEGORY_FAMILIES, FAMILIES, FAMILY_RESPONSES,
    TargetedAdaptiveArchitecture, TargetedController,
)

__all__ = [
    "HardwareDetector", "DeepDetector", "AMGAN",
    "evax_schema", "perspectron_schema",
    "gram_matrix", "style_loss", "feature_correlation",
    "mine_security_hpcs", "combo_fire_rates",
    "BENIGN", "VaccinationResult", "train_detector", "train_perspectron",
    "vaccinate",
    "FoldResult", "leave_one_attack_out", "mean_generalization_error",
    "AdaptiveArchitecture", "AdaptiveRun",
    "ESSENTIAL_COUNTERS", "MAX_FEASIBLE_STRENGTH",
    "adversarial_augmentation", "dilute_toward_benign", "essential_columns",
    "attack_signature", "explain_window", "gram_heatmap", "weight_report",
    "DetectorPatch", "detector_to_dict", "detector_from_dict",
    "save_detector", "load_detector", "schema_fingerprint",
    "MODEL_FORMAT", "ModelError", "ModelMissingError", "ModelCorruptError",
    "ModelChecksumError", "ModelSchemaError",
    "AttackClassifier", "CATEGORY_FAMILIES", "FAMILIES", "FAMILY_RESPONSES",
    "TargetedAdaptiveArchitecture", "TargetedController",
]
