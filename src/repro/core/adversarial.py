"""Adversarial-direction sample synthesis (paper Figure 2 and Section V).

Evasive attacks exploit the margin between attack samples and the decision
boundary by camouflaging their general activity as benign.  What they
*cannot* hide are the mechanism-essential events — flushes, deferred
faults, stale forwarding, row activations, timing reads — which must still
occur within the ROB-bounded transient window for the attack to work; an
attacker can dilute their per-window density only down to a floor before
the attack disables itself.

``dilute_toward_benign`` models that feasible evasion family.  The
vaccination pipeline trains on such adversarial-direction interpolations
of attack windows (the virtual-adversarial-training idea the paper builds
on), pushing the detector's boundary to the edge of the feasible evasion
space — so that "further attempts to evade disable the attack".
"""

import numpy as np

#: events an attack's mechanism cannot avoid generating
ESSENTIAL_COUNTERS = frozenset({
    "dcache.flushes", "dcache.flushHits", "membus.transDist_FlushReq",
    "l2.flushes", "cpu.rdtscReads", "commit.traps", "iq.squashedNonSpecLD",
    "squash.faultSquashes", "lsq.assistForwards",
    "lsq.specLoadsHitWriteQueue", "lsq.ignoredResponses",
    "dram.activations", "dram.bitflips", "rng.underflows",
    "branchPred.RASIncorrect", "iew.memOrderViolationEvents",
})

#: the minimum fraction of essential-event density an attack retains
#: (further dilution stretches the attack past its transient window)
ESSENTIAL_FLOOR = 0.3

#: dilution strengths beyond this disable the attack entirely
MAX_FEASIBLE_STRENGTH = 0.55


def essential_columns(schema):
    """Indices of mechanism-essential features in a schema (raw essential
    counters plus every engineered security HPC)."""
    return [i for i, name in enumerate(schema.names)
            if name in ESSENTIAL_COUNTERS or name.startswith("sec.")]


def dilute_toward_benign(X_attack, benign_mean, strength, schema,
                         floor=ESSENTIAL_FLOOR):
    """Camouflage attack windows toward the benign mean at ``strength``
    in [0, 1], holding essential events above their feasibility floor.
    Operates on normalized features."""
    X_attack = np.asarray(X_attack, dtype=float)
    variant = X_attack * (1.0 - strength) + benign_mean[None, :] * strength
    cols = essential_columns(schema)
    if cols:
        floors = floor * X_attack[:, cols]
        variant[:, cols] = np.maximum(variant[:, cols], floors)
    return variant


def adversarial_augmentation(X_attack, benign_mean, schema, seed=0,
                             copies=2):
    """Adversarial-direction training samples: ``copies`` diluted variants
    of each attack window at random feasible strengths."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(copies):
        strength = rng.uniform(0.15, MAX_FEASIBLE_STRENGTH,
                               size=(len(X_attack), 1))
        variant = X_attack * (1.0 - strength) + \
            benign_mean[None, :] * strength
        cols = essential_columns(schema)
        if cols:
            floors = ESSENTIAL_FLOOR * X_attack[:, cols]
            variant[:, cols] = np.maximum(variant[:, cols], floors)
        out.append(variant)
    return np.vstack(out) if out else X_attack[:0]
