"""The adaptive architecture: a trained detector gating mitigations
(paper Section VIII-A, Figures 14 and 16).

``AdaptiveArchitecture`` runs any program with the detector classifying
every HPC sampling window; a positive flag enables the configured defense
for ``secure_window`` committed instructions, after which the core falls
back to full performance.
"""

import copy
from dataclasses import dataclass

from repro.defenses.controller import SecureModeController
from repro.sim import Machine, SimConfig
from repro.sim.config import DefenseMode


@dataclass
class AdaptiveRun:
    """Outcome of one adaptive execution."""

    result: object               # sim RunResult
    flags: int                   # detector positives
    secure_fraction: float       # fraction of windows in secure mode
    machine: object = None
    latched: bool = False        # watchdog forced always-secure mode
    latch_reason: str = None     # why (None unless latched)

    @property
    def cycles(self):
        return self.result.cycles

    @property
    def ipc(self):
        return self.result.ipc


class AdaptiveArchitecture:
    """Detector + secure-mode policy, runnable over attacks or workloads."""

    def __init__(self, detector, secure_mode=DefenseMode.FENCE_SPECTRE,
                 secure_window=10_000, sample_period=1000,
                 fail_secure=True):
        self.detector = detector
        self.secure_mode = secure_mode
        self.secure_window = secure_window
        self.sample_period = sample_period
        self.fail_secure = fail_secure

    def run_source(self, source, config=None, max_cycles=None):
        """Run an Attack or Workload under adaptive protection."""
        program, actors = source.build()
        controller = SecureModeController(self.detector.detector_fn(),
                                          self.secure_mode,
                                          self.secure_window,
                                          fail_secure=self.fail_secure)
        machine = Machine(
            program,
            copy.deepcopy(config) if config is not None else SimConfig(),
            sample_period=self.sample_period,
            actors=actors,
            detector_hook=controller,
        )
        if max_cycles is None:
            max_cycles = source.max_cycles() if hasattr(source, "max_cycles") \
                else 400_000
        result = machine.run(max_cycles=max_cycles)
        return AdaptiveRun(result=result, flags=controller.flags,
                           secure_fraction=controller.secure_fraction,
                           machine=machine, latched=controller.latched,
                           latch_reason=controller.latch_reason)

    def overhead_on(self, workloads, baseline_cycles=None):
        """Adaptive overhead per benign workload vs the undefended run."""
        from repro.defenses.policies import run_workload
        if baseline_cycles is None:
            baseline_cycles = {
                w.name: run_workload(w, SimConfig()).cycles for w in workloads
            }
        overheads = {}
        for w in workloads:
            run = self.run_source(w)
            base = baseline_cycles[w.name]
            overheads[w.name] = (run.cycles - base) / base if base else 0.0
        return overheads, baseline_cycles

    def run_attack(self, attack, config=None):
        """Run an attack under adaptive protection; returns
        ``(run, leaked)`` where ``leaked`` checks whether the channel
        still recovered the secret despite the gated defense."""
        from repro.attacks.base import bits_balanced_accuracy
        run = self.run_source(attack, config=config)
        recovered = attack.recover(run.machine, run.result)
        leaked = bool(attack.secret_bits) and bits_balanced_accuracy(
            attack.secret_bits, recovered) >= 0.75
        return run, leaked
