"""Cross-validation evaluation in the paper's zero-day setting.

At each fold, *all* samples of one attack category are removed from
training (the model never saw that attack); the test set is the held-out
attack's windows — with the recovery/transmission phase excluded, exactly
as the paper check-points and excludes it — plus a held-out slice of
benign windows.
"""

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import PHASE_RECOVER
from repro.core.vaccination import BENIGN


@dataclass
class FoldResult:
    """Scores for one leave-one-attack-out fold."""

    category: str
    tpr: float            # detection rate on the unseen attack
    fpr: float            # false positives on held-out benign
    error: float          # 1 - accuracy over the fold's test set
    n_test_attack: int
    n_test_benign: int


def _benign_holdout_mask(records, fraction=0.25):
    """Deterministically hold out a stratified slice of benign windows:
    every k-th benign record, so every benign kernel contributes to both
    the training and the test side of each fold."""
    mask = np.zeros(len(records), dtype=bool)
    benign_positions = [i for i, r in enumerate(records)
                        if r.category == BENIGN]
    stride = max(1, int(round(1.0 / max(fraction, 1e-9))))
    mask[benign_positions[::stride]] = True
    return mask


def leave_one_attack_out(dataset, trainer, categories=None,
                         exclude_recovery=True, benign_fraction=0.25):
    """Run the paper's K-fold setting.

    Parameters
    ----------
    dataset:
        A :class:`repro.data.Dataset`.
    trainer:
        Callable ``(train_dataset) -> detector`` (plain training, fuzz
        hardening, or the full vaccination pipeline).
    categories:
        Attack categories to fold over (default: every non-benign
        category present).

    Returns a dict ``category -> FoldResult``.
    """
    records = dataset.records
    all_categories = categories if categories is not None else [
        c for c in dataset.categories if c != BENIGN
    ]
    benign_test = _benign_holdout_mask(records, benign_fraction)
    results = {}
    for held_out in all_categories:
        train_records, test_attack, test_benign = [], [], []
        for i, r in enumerate(records):
            if r.category == held_out:
                if exclude_recovery and r.phase == PHASE_RECOVER:
                    continue
                test_attack.append(r)
            elif benign_test[i]:
                test_benign.append(r)
            else:
                train_records.append(r)
        train = type(dataset)(sample_period=dataset.sample_period)
        train.records = train_records
        detector = trainer(train)
        results[held_out] = _score_fold(detector, held_out,
                                        test_attack, test_benign)
    return results


def _score_fold(detector, category, test_attack, test_benign):
    schema = detector.schema
    tpr = fpr = 0.0
    correct = total = 0
    if test_attack:
        Xa = schema.matrix([r.deltas for r in test_attack])
        pa = detector.predict_raw(Xa)
        tpr = float(pa.mean())
        correct += int(pa.sum())
        total += len(pa)
    if test_benign:
        Xb = schema.matrix([r.deltas for r in test_benign])
        pb = detector.predict_raw(Xb)
        fpr = float(pb.mean())
        correct += int((pb == 0).sum())
        total += len(pb)
    error = 1.0 - correct / total if total else 0.0
    return FoldResult(category=category, tpr=tpr, fpr=fpr, error=error,
                      n_test_attack=len(test_attack),
                      n_test_benign=len(test_benign))


def mean_generalization_error(fold_results):
    """Mean fold error — the paper's Figure 19 metric."""
    if not fold_results:
        return 0.0
    return float(np.mean([f.error for f in fold_results.values()]))
