"""AM-GAN: the Asymmetric-Model conditional GAN (paper Section V).

The Generator is a deep network mapping (noise, class condition, target)
to a synthetic HPC feature window; the Discriminator has the *detector's*
architecture (a single layer) — the asymmetry the paper names the model
after.  Training follows the paper's algorithm (Figure 4): the
discriminator learns to accept real matching (sample, label) pairs and
reject generated or mismatched pairs; the generator is updated through
the discriminator's gradient to maximize its error.

Generated samples are feature vectors of counter values — per the paper's
ethics discussion, they train detectors but cannot be reverse-engineered
into attack code.
"""

import numpy as np

from repro.core.gram import style_loss
from repro.ml import MLP
from repro.ml.optim import Adam
from repro.obs import metrics, obs_event, time_block


class AMGAN:
    """Conditional GAN over normalized HPC feature windows.

    Parameters
    ----------
    feature_dim:
        Width of a feature window (145 in the paper).
    categories:
        Ordered class labels (attack types plus "benign").
    generator_hidden:
        Hidden widths of the deep generator.
    noise_dim:
        Noise vector width (the paper uses 145).
    """

    def __init__(self, feature_dim, categories, generator_hidden=(96, 96, 96),
                 noise_dim=None, seed=0):
        self.feature_dim = feature_dim
        self.categories = list(categories)
        self.noise_dim = noise_dim if noise_dim is not None else feature_dim
        self.cond_dim = len(self.categories) + 1      # one-hot + target bit
        self.rng = np.random.default_rng(seed)
        gen_dims = ([self.noise_dim + self.cond_dim]
                    + list(generator_hidden) + [feature_dim])
        gen_acts = ["relu"] * len(generator_hidden) + ["sigmoid"]
        self.generator = MLP(gen_dims, gen_acts, seed=seed,
                             optimizer=Adam(lr=0.002))
        # Asymmetric: the discriminator mirrors the hardware detector — a
        # single layer.  A purely linear function cannot express whether a
        # sample *matches* its condition, so (exactly as the paper widens
        # the perceptron's input space instead of deepening the model) the
        # discriminator sees explicit sample-by-condition interaction
        # features alongside the raw inputs.
        disc_in = feature_dim + self.cond_dim + feature_dim * self.cond_dim
        self.discriminator = MLP([disc_in, 1], ["sigmoid"], seed=seed + 1,
                                 optimizer=Adam(lr=0.002))
        self.style_history = []

    def _disc_input(self, x, cond):
        """[x, cond, x (x) cond]: the widened single-layer input."""
        n = len(x)
        interact = (x[:, :, None] * cond[:, None, :]).reshape(n, -1)
        return np.hstack([x, cond, interact])

    # -- conditioning -----------------------------------------------------------------

    def condition(self, category, target):
        """One-hot class + malicious/safe target bit."""
        vec = np.zeros(self.cond_dim)
        vec[self.categories.index(category)] = 1.0
        vec[-1] = float(target)
        return vec

    def _conditions(self, categories, targets):
        return np.vstack([self.condition(c, t)
                          for c, t in zip(categories, targets)])

    # -- training ----------------------------------------------------------------------

    def train(self, X, categories, targets, iterations=400, batch_size=32,
              style_reference=None, style_every=25, guard=None,
              checkpointer=None, checkpoint_stage="gan", chaos=None,
              start_iteration=0):
        """Adversarial training on normalized windows ``X``.

        ``style_reference`` may map a category name to its real windows;
        when given, the mean per-category style loss of freshly generated
        batches is recorded in :attr:`style_history` every ``style_every``
        iterations (Figure 7's quality curve).

        Resilience hooks (all optional, no-ops when absent):

        * ``guard`` — a :class:`repro.ml.resilience.TrainingGuard`
          inspecting every iteration; on an anomaly it may rewind the
          loop to its last in-memory snapshot.
        * ``checkpointer`` — a
          :class:`repro.ml.resilience.TrainingCheckpointer`; every
          ``checkpointer.interval`` completed iterations (and once at
          the end) the generator/discriminator parameters, optimizer
          moments, RNG state and style history are persisted atomically
          under ``checkpoint_stage``, so a killed run resumes bit-exact
          via ``start_iteration``.
        * ``chaos`` — a :class:`repro.runtime.chaos.TrainingChaos`
          fault injector (tests only).
        """
        X = np.asarray(X, dtype=float)
        categories = np.asarray(categories)
        targets = np.asarray(targets, dtype=float)
        n = len(X)
        if n < 2:
            raise ValueError("need at least two training samples")
        # per-class real feature means for the feature-matching term: the
        # adversarial signal alone underweights sparse counters (traps,
        # RAS mispredicts...) that are exactly the class signatures
        class_means = {}
        class_second_moments = {}
        for cat in sorted(set(categories.tolist())):
            mask = categories == cat
            key = (cat, float(targets[mask][0]))
            class_means[key] = X[mask].mean(axis=0)
            class_second_moments[key] = (X[mask] ** 2).mean(axis=0)
        class_keys = sorted(class_means)
        reg = metrics()
        loss_real = reg.gauge("amgan.loss.disc_real")
        loss_mismatch = reg.gauge("amgan.loss.disc_mismatch")
        loss_fake = reg.gauge("amgan.loss.disc_fake")
        networks = {"generator": self.generator,
                    "discriminator": self.discriminator}
        if guard is not None:
            guard.watch(stage="gan", **networks)
            guard.attach_rng(self.rng)
        with time_block("amgan.train.seconds"):
            iteration = start_iteration
            while iteration < iterations:
                if chaos is not None:
                    chaos.maybe_kill(iteration)
                if guard is not None:
                    guard.snapshot_if_due(iteration)
                idx = self.rng.integers(0, n, size=batch_size)
                real_x = X[idx]
                real_c = self._conditions(categories[idx], targets[idx])
                # --- discriminator: real matching pairs -> 1
                loss_real.set(self.discriminator.train_batch(
                    self._disc_input(real_x, real_c),
                    np.ones((batch_size, 1))))
                # --- discriminator: mismatched pairs -> 0
                shuffled = self.rng.permutation(batch_size)
                mismatched_c = real_c[shuffled]
                changed = np.any(mismatched_c != real_c, axis=1,
                                 keepdims=True)
                loss_mismatch.set(self.discriminator.train_batch(
                    self._disc_input(real_x, mismatched_c),
                    1.0 - changed.astype(float)))
                # --- discriminator: generated pairs -> 0
                fake_x, fake_c = self._generate_batch(categories[idx],
                                                      targets[idx])
                loss_fake.set(self.discriminator.train_batch(
                    self._disc_input(fake_x, fake_c),
                    np.zeros((batch_size, 1))))
                # --- generator: fool the discriminator (target 1)
                self._train_generator(categories[idx], targets[idx])
                # --- generator: per-class feature matching (a few classes
                # per iteration, round-robin)
                for k in range(3):
                    key = class_keys[(3 * iteration + k) % len(class_keys)]
                    self._feature_match_step(key[0], key[1],
                                             class_means[key],
                                             class_second_moments[key])
                if chaos is not None:
                    chaos.corrupt(iteration, networks)
                if guard is not None:
                    rewind = guard.inspect(
                        iteration, loss=loss_real.value
                        + loss_mismatch.value + loss_fake.value)
                    if rewind is not None:
                        iteration = rewind
                        continue
                reg.inc("amgan.iterations")
                if style_reference and iteration % style_every == 0:
                    probe = self._mean_style_loss(style_reference)
                    self.style_history.append((iteration, probe))
                    reg.set_gauge("amgan.style_loss", probe)
                    obs_event("amgan.round", iteration=iteration,
                              style_loss=round(probe, 6),
                              disc_real=round(loss_real.value, 6),
                              disc_fake=round(loss_fake.value, 6))
                iteration += 1
                if checkpointer is not None and \
                        (checkpointer.due(iteration)
                         or iteration == iterations):
                    self._save_checkpoint(checkpointer, checkpoint_stage,
                                          iteration)
        return self

    def _save_checkpoint(self, checkpointer, stage, iteration):
        from repro.obs.context import current_run_id
        checkpointer.save(
            stage, iteration,
            networks={"generator": self.generator,
                      "discriminator": self.discriminator},
            rngs={"gan": self.rng},
            extra={"style_history": [list(e) for e in self.style_history],
                   "run": current_run_id()})

    def restore_checkpoint(self, checkpointer, stage="gan"):
        """Restore generator/discriminator/RNG/style history from a
        durable checkpoint; returns the completed-iteration count (0
        when there is nothing to resume)."""
        payload = checkpointer.restore(
            stage,
            networks={"generator": self.generator,
                      "discriminator": self.discriminator},
            rngs={"gan": self.rng})
        if payload is None:
            return 0, None
        self.style_history = [tuple(e) for e in
                              payload["extra"].get("style_history", [])]
        return payload["iteration"], payload

    def _generate_batch(self, categories, targets):
        cond = self._conditions(categories, targets)
        noise = self.rng.normal(0.0, 1.0, size=(len(cond), self.noise_dim))
        fake = self.generator.predict(np.hstack([noise, cond]))
        return fake, cond

    def _train_generator(self, categories, targets):
        cond = self._conditions(categories, targets)
        noise = self.rng.normal(0.0, 1.0, size=(len(cond), self.noise_dim))
        gen_in = np.hstack([noise, cond])
        fake = self.generator.forward(gen_in, train=True)
        d_in = self._disc_input(fake, cond)
        pred = self.discriminator.forward(d_in, train=True)
        # non-saturating generator loss: maximize log D(G(z))
        target = np.ones_like(pred)
        grad_out = self.discriminator.loss.gradient(pred, target)
        grad_d_in = self.discriminator.backward(grad_out)
        # dL/dx flows through both the raw block and the interaction block
        d, c = self.feature_dim, self.cond_dim
        grad_fake = grad_d_in[:, :d].copy()
        grad_interact = grad_d_in[:, d + c:].reshape(len(fake), d, c)
        grad_fake += (grad_interact * cond[:, None, :]).sum(axis=2)
        self.generator.backward(grad_fake)
        self.generator.optimizer.step(self.generator.parameters,
                                      self.generator.gradients)

    def _feature_match_step(self, category, target, real_mean,
                            real_second_moment=None, batch=16, weight=4.0):
        """One feature-matching update: pull the generated batch's first
        (and optionally second) per-feature moments for (category, target)
        toward the real class moments — this keeps sparse class-signature
        counters (traps, RAS mispredicts, ...) alive in the output and
        matches the Gram diagonal the style metric scores."""
        cond = np.vstack([self.condition(category, target)] * batch)
        noise = self.rng.normal(0.0, 1.0, size=(batch, self.noise_dim))
        gen_in = np.hstack([noise, cond])
        fake = self.generator.forward(gen_in, train=True)
        grad = np.tile(weight * 2.0 * (fake.mean(axis=0) - real_mean) / batch,
                       (batch, 1))
        if real_second_moment is not None:
            m2_err = (fake ** 2).mean(axis=0) - real_second_moment
            grad = grad + weight * 4.0 * fake * m2_err[None, :] / batch
        self.generator.backward(grad)
        self.generator.optimizer.step(self.generator.parameters,
                                      self.generator.gradients)

    def _mean_style_loss(self, style_reference):
        losses = []
        for category, real in style_reference.items():
            generated = self.generate(category, 1, max(8, len(real) // 2))
            losses.append(style_loss(real, generated))
        return float(np.mean(losses))

    # -- generation (AUTOMATIC ATTACK GENERATION in the paper) ---------------------------

    def generate(self, category, target, count):
        """Synthesize ``count`` windows conditioned on (category, target)."""
        cond = np.vstack([self.condition(category, target)] * count)
        noise = self.rng.normal(0.0, 1.0, size=(count, self.noise_dim))
        return self.generator.predict(np.hstack([noise, cond]))

    def discriminator_score(self, X, category, target):
        """Discriminator belief that windows are real matching samples."""
        cond = np.vstack([self.condition(category, target)] * len(X))
        return self.discriminator.predict(self._disc_input(np.asarray(X, dtype=float), cond))[:, 0]
