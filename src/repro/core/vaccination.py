"""The EVAX vaccination pipeline (paper Figure 4,
``VaccinateHardwareDetector``): train the AM-GAN on real HPC windows,
harvest generated samples per attack class once their style loss is low,
mine engineered security HPCs from the generator, and retrain the
hardware detector on the augmented corpus with the widened feature set.
"""

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.amgan import AMGAN
from repro.core.feature_engineering import mine_security_hpcs
from repro.core.perceptron import HardwareDetector, perspectron_schema
from repro.data.features import BASE_FEATURES, FeatureSchema, MaxNormalizer
from repro.obs import obs_event, time_block

BENIGN = "benign"


@dataclass
class VaccinationResult:
    """Everything the pipeline produces."""

    detector: HardwareDetector
    gan: AMGAN
    schema: FeatureSchema
    engineered: list
    style_history: list
    generated_counts: Dict[str, int]


def train_detector(dataset, schema, hidden_layers=(), epochs=40, seed=0,
                   threshold=0.5, name="detector", record_filter=None):
    """Train a plain (non-vaccinated) detector on a dataset — the
    PerSpectron baseline and every 'traditional training' comparison."""
    ds = dataset if record_filter is None else dataset.subset(record_filter)
    raw = ds.raw_matrix(schema)
    y = ds.labels()
    detector = HardwareDetector(schema, hidden_layers=hidden_layers,
                                seed=seed, threshold=threshold, name=name)
    detector.fit(raw, y, epochs=epochs, seed=seed)
    return detector


def train_perspectron(dataset, epochs=40, seed=0, threshold=0.5):
    """The PerSpectron baseline: 106 counters, classical training."""
    return train_detector(dataset, perspectron_schema(), epochs=epochs,
                          seed=seed, threshold=threshold, name="perspectron")


def _extend_generated(generated_base, schema):
    """Lift generated base-feature windows into the full schema by
    computing each engineered AND-column as the minimum of its member
    base columns (in normalized space)."""
    col = {name: i for i, name in enumerate(schema.base_features)}
    eng = []
    for _, counters in schema.engineered:
        member_cols = [col[c] for c in counters if c in col]
        if member_cols:
            eng.append(generated_base[:, member_cols].min(axis=1))
        else:
            eng.append(np.zeros(len(generated_base)))
    if not eng:
        return generated_base
    return np.hstack([generated_base, np.column_stack(eng)])


def build_augmented_training_set(gan, dataset, schema, samples_per_class=40):
    """Combine the real corpus with GAN-generated samples of every class.

    Returns ``(X_aug, y_aug, normalizer, generated_counts)`` — normalized
    feature matrices ready for detector training, plus the fitted
    normalizer for deployment.
    """
    raw_full = dataset.raw_matrix(schema)
    norm_full = MaxNormalizer().fit(raw_full)
    X_real = norm_full.transform(raw_full)
    y = dataset.labels()
    categories = sorted(set(dataset.groups().tolist()) | {BENIGN})
    gen_X, gen_y, generated_counts = [], [], {}
    for cat in categories:
        target = 0 if cat == BENIGN else 1
        count = samples_per_class * (2 if cat == BENIGN else 1)
        generated_counts[cat] = count
        if count <= 0:
            continue
        g = gan.generate(cat, target, count)
        gen_X.append(_extend_generated(g, schema))
        gen_y.append(np.full(count, target))
    X_aug = np.vstack([X_real] + gen_X)
    y_aug = np.concatenate([y] + gen_y)
    return X_aug, y_aug, norm_full, generated_counts


def fit_on_normalized(detector, X, y, epochs=40, seed=0, guard=None):
    """Train a detector directly on already-normalized features (its
    normalizer must be set separately for deployment)."""
    return _fit_normalized(detector, X, y, epochs, seed, guard=guard)


def vaccinate(dataset, samples_per_class=40, gan_iterations=400,
              gan_hidden=(96, 96, 96), engineer_features=True, top_hpcs=12,
              detector_hidden=(), epochs=40, seed=0, threshold=0.5,
              style_tracking=True, adversarial_hardening=True,
              guard=None, checkpointer=None, chaos=None):
    """Run the full EVAX pipeline on a labelled dataset.

    Returns a :class:`VaccinationResult` whose ``detector`` classifies raw
    counter-delta windows through the widened 145-feature schema.

    Resilience hooks (see ``docs/training_resilience.md``):

    * ``guard`` — a :class:`repro.ml.resilience.TrainingGuard` watching
      both the AM-GAN loop and the detector fit for NaN parameters,
      gradient spikes and loss divergence;
    * ``checkpointer`` — a
      :class:`repro.ml.resilience.TrainingCheckpointer`; the GAN stage
      (the long one) is periodically persisted and, when the
      checkpointer was opened with ``resume=True``, training continues
      from the stored iteration — bit-exact versus an uninterrupted
      run, because parameters, optimizer moments *and* RNG states are
      restored;
    * ``chaos`` — a :class:`repro.runtime.chaos.TrainingChaos` fault
      injector (tests only).
    """
    base_schema = FeatureSchema(engineered=(), base=BASE_FEATURES)
    raw_base = dataset.raw_matrix(base_schema)
    norm_base = MaxNormalizer().fit(raw_base)
    Xb = norm_base.transform(raw_base)
    y = dataset.labels()
    cats = dataset.groups()
    categories = sorted(set(cats.tolist()) | {BENIGN})

    # --- 1. adversarial training of the AM-GAN -------------------------------
    obs_event("vaccinate.stage", stage="gan", windows=len(Xb))
    gan = AMGAN(base_schema.dim, categories, generator_hidden=gan_hidden,
                seed=seed)
    start_iteration = 0
    if checkpointer is not None:
        start_iteration, payload = gan.restore_checkpoint(checkpointer, "gan")
        if payload is not None:
            from repro.obs.context import record_lineage
            record_lineage(parent_run=payload["extra"].get("run"),
                           checkpoint_iteration=start_iteration)
            obs_event("vaccinate.resumed", stage="gan",
                      iteration=start_iteration,
                      parent_run=payload["extra"].get("run"))
    style_ref = None
    if style_tracking:
        style_ref = {}
        for cat in categories:
            mask = cats == cat
            if mask.sum() >= 4:
                style_ref[cat] = Xb[mask][:64]
    with time_block("vaccinate.gan.seconds"):
        gan.train(Xb, cats, y, iterations=gan_iterations,
                  style_reference=style_ref, guard=guard,
                  checkpointer=checkpointer, chaos=chaos,
                  start_iteration=start_iteration)

    # --- 2. engineer security HPCs from the generator ------------------------
    obs_event("vaccinate.stage", stage="engineer")
    with time_block("vaccinate.engineer.seconds"):
        if engineer_features:
            engineered = mine_security_hpcs(
                gan, base_schema, top_nodes=top_hpcs,
                attack_windows=raw_base[y == 1],
                benign_windows=raw_base[y == 0])
        else:
            engineered = []
    schema = FeatureSchema(engineered=tuple(engineered))

    # --- 3. harvest generated samples per class, plus adversarial-
    # direction interpolations that push the boundary to the edge of the
    # feasible evasion space (Figure 2)
    obs_event("vaccinate.stage", stage="augment")
    with time_block("vaccinate.augment.seconds"):
        X_aug, y_aug, norm_full, generated_counts = \
            build_augmented_training_set(
                gan, dataset, schema, samples_per_class=samples_per_class)
        if adversarial_hardening:
            from repro.core.adversarial import adversarial_augmentation
            benign_mean = X_aug[y_aug == 0].mean(axis=0)
            adv = adversarial_augmentation(X_aug[y_aug == 1], benign_mean,
                                           schema, seed=seed)
            X_aug = np.vstack([X_aug, adv])
            y_aug = np.concatenate([y_aug, np.ones(len(adv))])

    # --- 4. retrain the hardware detector on the vaccinated corpus ------------
    obs_event("vaccinate.stage", stage="fit", samples=len(X_aug))
    detector = HardwareDetector(schema, hidden_layers=detector_hidden,
                                seed=seed, threshold=threshold, name="evax")
    detector.normalizer = norm_full
    with time_block("vaccinate.fit.seconds"):
        _fit_normalized(detector, X_aug, y_aug, epochs, seed, guard=guard)
    # --- 5. tune the operating point on the real benign windows ----------------
    obs_event("vaccinate.stage", stage="calibrate")
    with time_block("vaccinate.calibrate.seconds"):
        raw_benign = dataset.raw_matrix(schema)[y == 0]
        if len(raw_benign):
            detector.calibrate_threshold(raw_benign)

    return VaccinationResult(
        detector=detector,
        gan=gan,
        schema=schema,
        engineered=list(engineered) if engineer_features else [],
        style_history=list(gan.style_history),
        generated_counts=generated_counts,
    )


def _fit_normalized(detector, X, y, epochs, seed, guard=None):
    """Train a detector directly on already-normalized features (its
    normalizer must be fitted separately for deployment).

    When a :class:`~repro.ml.resilience.TrainingGuard` is given, every
    batch loss is inspected; an anomalous epoch is rewound to its start
    (parameters, optimizer moments and RNG restored) and retried.
    """
    rng = np.random.default_rng(seed)
    y = np.asarray(y, dtype=float)
    if guard is not None:
        guard.watch(stage="fit", detector=detector.net)
        guard.attach_rng(rng)
    epoch = 0
    while epoch < epochs:
        if guard is not None:
            guard.take_snapshot(epoch)
        order = rng.permutation(len(y))
        rewound = False
        for i in range(0, len(y), 32):
            batch = order[i:i + 32]
            loss = detector.net.train_batch(X[batch], y[batch])
            if guard is not None and \
                    guard.inspect(epoch, loss=loss) is not None:
                rewound = True        # epoch replays from restored state
                break
        if not rewound:
            epoch += 1
    return detector
