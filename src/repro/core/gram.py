"""Gram-matrix interpretability metric (paper Section V-D).

The Gram matrix of a set of feature windows measures how often feature
pairs fire together.  Attacks of the same type share leakage-phase
correlation patterns even when their instruction mixes differ, so the
style loss between a generated sample batch and real samples of the
conditioned attack type scores the semantic quality of AM-GAN output —
the paper's criterion for when to start harvesting training samples.
"""

import numpy as np


def gram_matrix(windows):
    """G = X^T X / n over a batch of feature windows (features on rows of
    the result: ``G[i, j]`` is the mean co-activation of features i, j)."""
    X = np.asarray(windows, dtype=float)
    if X.ndim != 2:
        raise ValueError("windows must be a 2-D batch")
    if X.shape[0] == 0:
        raise ValueError("need at least one window")
    return X.T @ X / X.shape[0]


def style_loss(base_windows, generated_windows, alpha=1.0):
    """Attack leakage style loss L_GM (paper Section V-D):

        L = 1 / (4 * alpha * N^2) * sum_ij (GM(B)_ij - GM(G)_ij)^2
    """
    gb = gram_matrix(base_windows)
    gg = gram_matrix(generated_windows)
    n = gb.shape[0]
    return float(np.sum((gb - gg) ** 2) / (4.0 * alpha * n * n))


def feature_correlation(windows, index_a, index_b):
    """Co-activation of one feature pair (one Gram entry)."""
    X = np.asarray(windows, dtype=float)
    return float(X[:, index_a] @ X[:, index_b] / X.shape[0])
