"""Automatic security-HPC engineering from the AM-GAN generator
(paper Section VI-A, Table I).

A brute-force search over 3-counter combinations of 1160 counters is
intractable (~2.6e8 candidates).  Instead, the paper inspects the trained
generator: hidden nodes adjacent to the output (HPC) layer whose heaviest
outgoing weights concentrate on a few counters identify counter groups
that co-vary in attack samples.  Each selected node becomes one new
engineered HPC — the Boolean AND of its top counters — implementable in
hardware with minimal logic.
"""

import numpy as np


def mine_security_hpcs(gan, schema, top_nodes=12, counters_per_node=2,
                       attack_windows=None, benign_windows=None):
    """Extract engineered security HPCs from a trained AM-GAN generator.

    Parameters
    ----------
    gan:
        A trained :class:`repro.core.amgan.AMGAN`.
    schema:
        The :class:`FeatureSchema` the GAN was trained over — its *base*
        features name the generator's output columns.
    top_nodes:
        How many hidden nodes to turn into HPCs (the paper engineers 12).
    counters_per_node:
        How many counters each node's AND combines.
    attack_windows, benign_windows:
        Optional raw base-feature matrices.  When given, candidate combos
        mined from the generator are validated against real data and the
        most discriminative (attack-fire minus benign-fire) are kept —
        the paper's visual verification step, automated.

    Returns
    -------
    list of ``(name, (counter_a, counter_b, ...))`` suitable for
    :class:`FeatureSchema`'s ``engineered`` argument.
    """
    output_layer = gan.generator.layers[-1]
    weights = output_layer.weights          # (hidden, feature_dim)
    n_base = len(schema.base_features)
    base_weights = np.abs(weights[:, :n_base])
    if base_weights.shape[1] < counters_per_node:
        raise ValueError("schema has too few base features")
    # bias toward counters the generator activates for *attack* conditions
    # but not benign ones — the security-centric differential
    attack_cats = [c for c in gan.categories if c != "benign"]
    samples = [gan.generate(c, 1, 16)[:, :n_base] for c in attack_cats]
    attack_act = np.mean(np.vstack(samples), axis=0) if samples else \
        np.ones(n_base)
    if "benign" in gan.categories:
        benign_act = gan.generate("benign", 0, 48)[:, :n_base].mean(axis=0)
    else:
        benign_act = np.zeros(n_base)
    security_bias = np.clip(attack_act - benign_act, 0.0, None)
    base_weights = base_weights * (0.05 + security_bias)[None, :]
    # score each hidden node by the mass of its heaviest base-counter links
    top_per_node = np.sort(base_weights, axis=1)[:, -counters_per_node:]
    node_scores = top_per_node.sum(axis=1)
    chosen_nodes = np.argsort(-node_scores)[: 12 * top_nodes]
    candidates = []
    seen = set()
    for node in chosen_nodes:
        idx = np.argsort(-base_weights[node])[:counters_per_node]
        counters = tuple(sorted(schema.base_features[i] for i in idx))
        if counters in seen:
            continue  # distinct nodes often agree; keep unique combos
        seen.add(counters)
        name = "sec.auto_" + "_and_".join(
            c.split(".")[-1] for c in counters)
        candidates.append((name, counters))
    if attack_windows is None or benign_windows is None:
        return candidates[:top_nodes]
    # validate against real windows: keep the most discriminative combos
    attack_rates = combo_fire_rates(attack_windows, schema, candidates)
    benign_rates = combo_fire_rates(benign_windows, schema, candidates)
    ranked = sorted(
        candidates,
        key=lambda item: benign_rates[item[0]] - attack_rates[item[0]])
    useful = [item for item in ranked if attack_rates[item[0]] > 0]
    chosen = (useful + [c for c in ranked if c not in useful])[:top_nodes]
    return chosen


def combo_fire_rates(dataset_matrix_raw, schema, combos):
    """How often each engineered combo fires (all members nonzero) on
    attack windows — a quick usefulness diagnostic."""
    name_to_col = {n: i for i, n in enumerate(schema.base_features)}
    rates = {}
    X = np.asarray(dataset_matrix_raw, dtype=float)
    for name, counters in combos:
        cols = [name_to_col[c] for c in counters]
        fired = np.all(X[:, cols] > 0, axis=1)
        rates[name] = float(fired.mean())
    return rates
