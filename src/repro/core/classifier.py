"""Attack-type classification and targeted mitigation selection.

The paper's abstract promises a detector that can "detect *and classify*
attacks in time for mitigation to be deployed" — the AM-GAN is conditioned
per attack type precisely so the system understands type structure.  This
module completes that arc:

* :class:`AttackClassifier` — a softmax head over the same HPC feature
  schema that names the attack *family* of a flagged window;
* :data:`FAMILY_RESPONSES` — the cheapest mitigation that covers each
  family (a Spectre flag does not need to fence every load; a Rowhammer
  flag needs a DRAM response, not a speculation fence);
* :class:`TargetedAdaptiveArchitecture` — the adaptive architecture with
  per-family responses: binary detector gates, classifier aims.
"""

import copy

import numpy as np

from repro.core.adaptive import AdaptiveRun
from repro.data.features import MaxNormalizer
from repro.ml import MLP, Adam, CategoricalCrossEntropy
from repro.sim import Machine, SimConfig
from repro.sim.config import DefenseMode

#: attack category -> mitigation family
#:
#: * ``speculation`` — wrong-path transient leaks; covered by fencing
#:   conditional/indirect speculation (the Spectre threat model);
#: * ``fault``      — deferred-fault / assist / store-bypass transients;
#:   need the Futuristic model (fence every load);
#: * ``contention`` — cross-process channels through shared state (caches,
#:   ports, predictor, RNG, row buffer, bus); speculation defenses do not
#:   touch them — the response is quarantine (deschedule / migrate the
#:   co-resident party);
#: * ``dram``       — integrity attacks on DRAM cells; the response is an
#:   in-DRAM refresh-rate boost.
CATEGORY_FAMILIES = {
    "spectre-pht": "speculation", "spectre-btb": "speculation",
    "spectre-rsb": "speculation",
    "spectre-stl": "fault", "meltdown": "fault", "lvi": "fault",
    "fallout": "fault", "medusa-cache": "fault",
    "medusa-unaligned": "fault", "medusa-shadow": "fault",
    "microscope": "fault", "zombieload": "fault", "foreshadow": "fault",
    "spoiler": "fault",
    "rowhammer": "dram", "trrespass": "dram",
    "drama": "contention", "leaky-buddies": "contention",
    "smotherspectre": "contention", "branchscope": "contention",
    "flush-reload": "contention", "flush-flush": "contention",
    "prime-probe": "contention", "flushconflict": "contention",
    "rdrnd": "contention", "evict-time": "contention",
    "benign": "benign",
}

#: family -> the cheapest covering speculation defense; contention-family
#: responses quarantine actors, dram-family responses boost refresh
FAMILY_RESPONSES = {
    "speculation": DefenseMode.FENCE_SPECTRE,
    "fault": DefenseMode.FENCE_FUTURISTIC,
    "contention": DefenseMode.NONE,      # quarantine instead
    "dram": DefenseMode.NONE,            # refresh boost instead
    "benign": DefenseMode.NONE,
}

FAMILIES = ("speculation", "fault", "contention", "dram", "benign")


class AttackClassifier:
    """Softmax family classifier over raw HPC windows."""

    def __init__(self, schema, hidden=(48,), seed=0):
        self.schema = schema
        self.families = FAMILIES
        self.normalizer = MaxNormalizer()
        dims = [schema.dim] + list(hidden) + [len(self.families)]
        acts = ["relu"] * len(hidden) + ["softmax"]
        self.net = MLP(dims, acts, seed=seed,
                       loss=CategoricalCrossEntropy(),
                       optimizer=Adam(lr=0.005))

    def _one_hot(self, families):
        out = np.zeros((len(families), len(self.families)))
        for i, fam in enumerate(families):
            out[i, self.families.index(fam)] = 1.0
        return out

    def fit(self, dataset, epochs=40, seed=0):
        """Train on a labelled dataset's windows, grouped into families."""
        raw = dataset.raw_matrix(self.schema)
        self.normalizer.fit(raw)
        X = self.normalizer.transform(raw)
        families = [CATEGORY_FAMILIES.get(c, "benign")
                    for c in dataset.groups()]
        Y = self._one_hot(families)
        rng = np.random.default_rng(seed)
        for _ in range(epochs):
            order = rng.permutation(len(X))
            for i in range(0, len(X), 32):
                batch = order[i:i + 32]
                self.net.train_batch(X[batch], Y[batch])
        return self

    def predict_family(self, deltas):
        """Family name for one raw counter-delta window."""
        raw = self.schema.raw_vector(deltas)
        X = self.normalizer.transform(raw[None, :])
        probs = self.net.predict(X)[0]
        return self.families[int(np.argmax(probs))]

    def family_accuracy(self, dataset):
        raw = dataset.raw_matrix(self.schema)
        X = self.normalizer.transform(raw)
        probs = self.net.predict(X)
        predicted = np.argmax(probs, axis=1)
        actual = np.array([self.families.index(
            CATEGORY_FAMILIES.get(c, "benign")) for c in dataset.groups()])
        return float((predicted == actual).mean())


class TargetedController:
    """Secure-mode controller with per-family responses.

    On a binary flag, the classifier names the family and the controller
    applies that family's cheapest covering mitigation; DRAM-family flags
    additionally boost the refresh rate (the in-DRAM Rowhammer response).
    """

    def __init__(self, detector_fn, classifier, secure_window=10_000,
                 refresh_boost=32):
        self.detector_fn = detector_fn
        self.classifier = classifier
        self.secure_window = secure_window
        self.refresh_boost = refresh_boost
        self.active_family = None
        self.secure_until = 0
        self.flags = 0
        self.family_flags = {}
        self._normal_refresh = None

    def __call__(self, machine, sample):
        if self.active_family and sample.commit_index >= self.secure_until:
            self._relax(machine)
        flagged = bool(self.detector_fn(sample))
        if flagged:
            self.flags += 1
            family = self.classifier.predict_family(sample.deltas)
            if family == "benign":
                family = "fault"     # flagged but unrecognized: cover all
            self.family_flags[family] = self.family_flags.get(family, 0) + 1
            self.secure_until = sample.commit_index + self.secure_window
            self._engage(machine, family)
        return flagged

    def _engage(self, machine, family):
        self.active_family = family
        machine.set_defense(FAMILY_RESPONSES[family])
        if family == "contention":
            machine.actors_suspended = True
        elif family == "dram":
            if self._normal_refresh is None:
                self._normal_refresh = machine.config.dram_refresh_interval
            machine.config.dram_refresh_interval = max(
                1, self._normal_refresh // self.refresh_boost)

    def _relax(self, machine):
        self.active_family = None
        machine.set_defense(DefenseMode.NONE)
        machine.actors_suspended = False
        if self._normal_refresh is not None:
            machine.config.dram_refresh_interval = self._normal_refresh


class TargetedAdaptiveArchitecture:
    """Detector + classifier: gate on the flag, aim the response."""

    def __init__(self, detector, classifier, secure_window=10_000,
                 sample_period=100):
        self.detector = detector
        self.classifier = classifier
        self.secure_window = secure_window
        self.sample_period = sample_period

    def run_source(self, source, config=None, max_cycles=None):
        program, actors = source.build()
        controller = TargetedController(self.detector.detector_fn(),
                                        self.classifier,
                                        self.secure_window)
        machine = Machine(
            program,
            copy.deepcopy(config) if config is not None else SimConfig(),
            sample_period=self.sample_period,
            actors=actors,
            detector_hook=controller,
        )
        if max_cycles is None:
            max_cycles = source.max_cycles() if hasattr(source, "max_cycles") \
                else 400_000
        result = machine.run(max_cycles=max_cycles)
        run = AdaptiveRun(result=result, flags=controller.flags,
                          secure_fraction=0.0, machine=machine)
        run.family_flags = controller.family_flags
        return run

    def run_attack(self, attack, config=None):
        from repro.attacks.base import bits_balanced_accuracy
        run = self.run_source(attack, config=config)
        recovered = attack.recover(run.machine, run.result)
        leaked = bool(attack.secret_bits) and bits_balanced_accuracy(
            attack.secret_bits, recovered) >= 0.75
        return run, leaked
