"""Hardware attack detectors: the EVAX perceptron and the PerSpectron
baseline (paper Sections VI-A/B).

Both are single-layer models over HPC feature windows — fast enough to
classify within the transient window and cheap enough for hardware (the
paper estimates < 4,000 transistors for the serial dot-product).  They
differ in their feature schema: PerSpectron monitors 106 counters;
EVAX monitors 145 (133 counters + 12 engineered security HPCs) and is
trained on the AM-GAN-augmented corpus.
"""

import numpy as np

from repro.data.features import (
    BASE_FEATURES, ENGINEERED_FEATURES, FeatureSchema, MaxNormalizer,
)
from repro.ml import MLP, accuracy, auc, confusion_counts

#: counters only present in the EVAX feature set — the security-centric
#: additions (27 counters) that PerSpectron's 106-feature schema lacks.
_EVAX_ONLY_COUNTERS = (
    "lsq.assistForwards", "lsq.specLoadsHitWriteQueue", "lsq.unalignedStores",
    "lsq.ignoredResponses",
    "wrqueue.bytesRead", "wrqueue.occupancy", "wrqueue.drains",
    "dram.bytesReadWrQ", "dram.bytesPerActivate", "dram.selfRefreshEnergy",
    "dram.activations", "dram.precharges", "dram.rowHits", "dram.rowMisses",
    "dram.refreshes", "dram.bitflips",
    "rng.reads", "rng.underflows", "rng.refills", "rng.contentionCycles",
    "dcache.flushes", "dcache.flushHits", "l2.flushes",
    "membus.transDist_FlushReq",
    "specbuf.fills", "specbuf.hits", "specbuf.exposes",
)


def perspectron_schema():
    """PerSpectron's feature set: 106 counters, no engineered security
    HPCs, and none of the 27 security-centric counters EVAX adds."""
    excluded = set(_EVAX_ONLY_COUNTERS)
    base = tuple(n for n in BASE_FEATURES if n not in excluded)[:106]
    return FeatureSchema(engineered=(), base=base)


def evax_schema(engineered=ENGINEERED_FEATURES):
    """EVAX's 145-feature schema (133 counters + 12 engineered)."""
    return FeatureSchema(engineered=engineered)


class HardwareDetector:
    """A trained detector: schema + normalizer + single-layer model +
    decision threshold, deployable as a Machine ``detector_hook``."""

    def __init__(self, schema, hidden_layers=(), seed=0, threshold=0.5,
                 name="detector", learning_rate=0.005):
        self.schema = schema
        self.normalizer = MaxNormalizer()
        dims = [schema.dim] + list(hidden_layers) + [1]
        acts = ["relu"] * len(hidden_layers) + ["sigmoid"]
        from repro.ml.optim import Adam
        self.net = MLP(dims, acts, seed=seed, optimizer=Adam(lr=learning_rate))
        self.threshold = threshold
        self.name = name

    # -- training -----------------------------------------------------------------

    def fit(self, X_raw, y, epochs=40, batch_size=32, seed=0,
            normalizer=None):
        """Train on *raw* feature vectors; fits max-normalization unless an
        already-fitted normalizer is supplied."""
        X_raw = np.asarray(X_raw, dtype=float)
        y = np.asarray(y, dtype=float)
        if normalizer is not None:
            self.normalizer = normalizer
        else:
            self.normalizer.fit(X_raw)
        X = self.normalizer.transform(X_raw)
        rng = np.random.default_rng(seed)
        for _ in range(epochs):
            order = rng.permutation(len(y))
            for i in range(0, len(y), batch_size):
                batch = order[i:i + batch_size]
                self.net.train_batch(X[batch], y[batch])
        return self

    # -- inference -----------------------------------------------------------------

    def scores_raw(self, X_raw):
        """Malicious-probability scores for raw feature vectors."""
        X = self.normalizer.transform(np.asarray(X_raw, dtype=float))
        return self.net.predict(X)[:, 0]

    def predict_raw(self, X_raw):
        return (self.scores_raw(X_raw) >= self.threshold).astype(int)

    def score_batch(self, deltas):
        """Vectorized scores for a ``(windows, counters)`` delta matrix.

        The serving fast path (`repro serve`): one gather into the
        feature schema, one in-place normalization, one matrix-matrix
        pass per layer — thousands of windows per ``dot``, no per-window
        Python.  Row *i* is **bit-identical** to scoring window *i*
        through :meth:`classify_window`'s path regardless of batch
        size or how the stream was chopped into batches (the whole
        pipeline is batch-size-invariant per row; see
        ``MLP.score_batch``).

        Returns the raw score array — non-finite scores are *returned*,
        not raised, so a batch caller can attribute a poisoned window to
        its tenant instead of failing the whole batch; per-window
        callers and the serving layer enforce the fail-secure contract
        on top (``classify_window``, ``repro.serve``).
        """
        raw = self.schema.raw_matrix(deltas)
        self.normalizer.transform_inplace(raw)
        return self.net.score_batch(raw)[:, 0]

    def score_window(self, deltas):
        """Score one counter-delta window via the batched pipeline.

        A one-row :meth:`score_batch`, so the per-window and batched
        paths are the same code — the equivalence the serving layer's
        tests pin down.
        """
        row = np.asarray(deltas, dtype=float)
        return float(self.score_batch(row[None, :])[0])

    def classify_window(self, deltas):
        """Classify one counter-delta window (the hardware fast path).

        A non-finite score is raised, never compared: ``NaN >= t`` is
        ``False``, so a silently degraded model would otherwise pass
        every attack.  The secure-mode controller's watchdog turns the
        raise into a fail-secure latch.
        """
        score = self.score_window(deltas)
        if not np.isfinite(score):
            raise ValueError(
                f"detector {self.name!r} produced non-finite score "
                f"{score!r}")
        return bool(score >= self.threshold)

    def as_hook(self):
        """A ``detector_hook`` for :class:`repro.sim.Machine`."""
        def hook(machine, sample):
            return self.classify_window(sample.deltas)
        return hook

    def detector_fn(self):
        """A ``detector_fn`` for :class:`SecureModeController`."""
        def fn(sample):
            return self.classify_window(sample.deltas)
        return fn

    def calibrate_threshold(self, X_raw_benign, quantile=0.999, margin=0.02,
                            floor=0.5, cap=0.9):
        """Tune the decision threshold on benign windows (the paper tunes
        the detector's output threshold on the ROC): set it just above the
        benign score distribution's upper quantile, bounded so attack
        sensitivity is preserved."""
        scores = self.scores_raw(X_raw_benign)
        level = float(np.quantile(scores, quantile)) + margin
        self.threshold = min(max(floor, level), cap)
        return self.threshold

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, X_raw, y):
        """Accuracy / AUC / FP / FN on raw feature vectors."""
        scores = self.scores_raw(X_raw)
        preds = (scores >= self.threshold).astype(int)
        tp, fp, tn, fn = confusion_counts(y, preds)
        return {
            "accuracy": accuracy(y, preds),
            "auc": auc(y, scores),
            "tp": tp, "fp": fp, "tn": tn, "fn": fn,
            "fp_rate": fp / (fp + tn) if fp + tn else 0.0,
            "fn_rate": fn / (fn + tp) if fn + tp else 0.0,
        }

    # -- hardware cost model (paper Section VI-B) ---------------------------------------

    def hardware_cost(self):
        """Estimate the hardware budget of the single-layer dot product."""
        weights = self.net.layers[0].weights[:, 0]
        n = weights.size
        # 9-bit quantized weights in [-2, 1] (paper: 435 distinct values)
        weight_bits = 9
        return {
            "features": n,
            "weight_storage_bits": n * weight_bits,
            "adders": 1,                       # serial accumulate
            "estimated_transistors": 4000,     # paper's bound
            "worst_case_latency_cycles": n + 10,
        }

    def quantized_weights(self, bits=9, low=-2.0, high=1.0):
        """The deployable integer weight vector."""
        w = np.clip(self.net.layers[0].weights[:, 0], low, high)
        scale = (2 ** bits - 1) / (high - low)
        return np.round((w - low) * scale).astype(int)
