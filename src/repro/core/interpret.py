"""Interpretability tooling (paper Sections V-D and VIII-C).

The paper argues single-hyperplane detectors are "the first major step to
cracking open a black box": the weight vector *is* the explanation.  This
module renders that story:

* :func:`weight_report` — the detector's most malicious- and most
  benign-leaning features, straight from the hyperplane;
* :func:`explain_window` — per-feature contributions to one window's
  score (why was this window flagged?);
* :func:`gram_heatmap` — an ASCII rendering of a Gram matrix over chosen
  features (the paper's Figure 6 visual check);
* :func:`attack_signature` — the counters that most separate one attack
  category from benign execution.
"""

import numpy as np

from repro.core.gram import gram_matrix

_SHADES = " .:-=+*#%@"


def weight_report(detector, top=10):
    """The detector's strongest weights, as (feature, weight) lists.

    Returns ``(malicious_leaning, benign_leaning)``, each sorted by
    influence.  Only meaningful for single-layer detectors, where the
    weight vector is the decision hyperplane.
    """
    weights = detector.net.layers[0].weights[:, 0]
    names = detector.schema.names
    order = np.argsort(weights)
    benign = [(names[i], float(weights[i])) for i in order[:top]]
    malicious = [(names[i], float(weights[i])) for i in order[::-1][:top]]
    return malicious, benign


def explain_window(detector, deltas, top=8):
    """Why did the detector score this window the way it did?

    Returns ``(score, contributions)`` where contributions are the ``top``
    (feature, weight * value) products pushing the window toward the
    malicious side.
    """
    raw = detector.schema.raw_vector(deltas)
    x = detector.normalizer.transform(raw[None, :])[0]
    weights = detector.net.layers[0].weights[:, 0]
    products = weights * x
    score = float(detector.scores_raw(raw[None, :])[0])
    order = np.argsort(-products)[:top]
    names = detector.schema.names
    contributions = [(names[i], float(products[i])) for i in order
                     if products[i] > 0]
    return score, contributions


def gram_heatmap(windows, feature_names, selected=None, width=2):
    """ASCII heatmap of the Gram matrix over ``selected`` feature names.

    Returns a printable string; darker characters mean stronger feature
    co-activation — the paper's leakage-style fingerprint.
    """
    windows = np.asarray(windows, dtype=float)
    if selected is None:
        selected = list(feature_names)[: min(8, windows.shape[1])]
    cols = [list(feature_names).index(s) for s in selected]
    G = gram_matrix(windows[:, cols])
    peak = G.max() or 1.0
    lines = []
    label_width = max(len(s) for s in selected)
    for i, name in enumerate(selected):
        cells = []
        for j in range(len(selected)):
            shade = _SHADES[int((len(_SHADES) - 1) * G[i, j] / peak)]
            cells.append(shade * width)
        lines.append(f"{name:>{label_width}} |" + "".join(cells) + "|")
    return "\n".join(lines)


def attack_signature(dataset, category, schema, top=8):
    """Counters whose normalized rates most separate ``category`` windows
    from benign windows — the per-attack fingerprint."""
    from repro.data.features import MaxNormalizer
    raw = dataset.raw_matrix(schema)
    norm = MaxNormalizer().fit(raw)
    X = norm.transform(raw)
    groups = dataset.groups()
    attack = X[groups == category]
    benign = X[groups == "benign"]
    if not len(attack) or not len(benign):
        raise ValueError(f"need windows for {category!r} and benign")
    gap = attack.mean(axis=0) - benign.mean(axis=0)
    order = np.argsort(-gap)[:top]
    return [(schema.names[i], float(gap[i])) for i in order if gap[i] > 0]
