"""Detector serialization and vendor-style security patches.

The paper's deployment story (Section VI-B, "Weight & Feature Updates"):
the detector's weights are static in silicon but updatable "via a vendor
distributed patch ... a process similar to microcode updates", including
additions to the monitored feature set as new attacks emerge.

* :func:`detector_to_dict` / :func:`detector_from_dict` — full round-trip
  serialization of a trained detector (schema, normalizer, weights);
* :class:`DetectorPatch` — the diff between a deployed detector and a
  retrained one: new engineered features, weight updates, a version tag —
  applied in place to a deployed detector.
"""

import json

import numpy as np

from repro.core.perceptron import HardwareDetector
from repro.data.features import FeatureSchema, MaxNormalizer


def detector_to_dict(detector):
    """Serialize a detector to plain JSON-compatible data."""
    return {
        "name": detector.name,
        "threshold": detector.threshold,
        "schema": {
            "base": list(detector.schema.base_features),
            "engineered": [[name, list(counters)]
                           for name, counters in detector.schema.engineered],
        },
        "normalizer_max": detector.normalizer.max_values.tolist()
        if detector.normalizer.max_values is not None else None,
        "layers": [
            {
                "weights": layer.weights.tolist(),
                "bias": layer.bias.tolist(),
                "activation": layer.activation,
            }
            for layer in detector.net.layers
        ],
    }


def detector_from_dict(data):
    """Reconstruct a detector serialized by :func:`detector_to_dict`."""
    schema = FeatureSchema(
        engineered=tuple((name, tuple(counters))
                         for name, counters in data["schema"]["engineered"]),
        base=tuple(data["schema"]["base"]),
    )
    hidden = [len(layer["bias"]) for layer in data["layers"][:-1]]
    detector = HardwareDetector(schema, hidden_layers=tuple(hidden),
                                threshold=data["threshold"],
                                name=data["name"])
    for layer, saved in zip(detector.net.layers, data["layers"]):
        layer.weights[:] = np.array(saved["weights"])
        layer.bias[:] = np.array(saved["bias"])
        if layer.activation != saved["activation"]:
            raise ValueError("activation mismatch in serialized detector")
    if data["normalizer_max"] is not None:
        detector.normalizer = MaxNormalizer()
        detector.normalizer.max_values = np.array(data["normalizer_max"])
    return detector


def save_detector(detector, path):
    """Write a detector's full deployable state to a JSON file."""
    with open(path, "w") as f:
        json.dump(detector_to_dict(detector), f)


def load_detector(path):
    """Load a detector written by :func:`save_detector`."""
    with open(path) as f:
        return detector_from_dict(json.load(f))


def classifier_to_dict(classifier):
    """Serialize an :class:`repro.core.classifier.AttackClassifier`."""
    return {
        "families": list(classifier.families),
        "schema": {
            "base": list(classifier.schema.base_features),
            "engineered": [[name, list(counters)]
                           for name, counters
                           in classifier.schema.engineered],
        },
        "normalizer_max": classifier.normalizer.max_values.tolist()
        if classifier.normalizer.max_values is not None else None,
        "layers": [
            {
                "weights": layer.weights.tolist(),
                "bias": layer.bias.tolist(),
                "activation": layer.activation,
            }
            for layer in classifier.net.layers
        ],
    }


def classifier_from_dict(data):
    """Reconstruct a serialized attack-family classifier."""
    from repro.core.classifier import AttackClassifier

    schema = FeatureSchema(
        engineered=tuple((name, tuple(counters))
                         for name, counters in data["schema"]["engineered"]),
        base=tuple(data["schema"]["base"]),
    )
    hidden = tuple(len(layer["bias"]) for layer in data["layers"][:-1])
    classifier = AttackClassifier(schema, hidden=hidden)
    if tuple(data["families"]) != tuple(classifier.families):
        raise ValueError("family vocabulary mismatch")
    for layer, saved in zip(classifier.net.layers, data["layers"]):
        layer.weights[:] = np.array(saved["weights"])
        layer.bias[:] = np.array(saved["bias"])
    if data["normalizer_max"] is not None:
        classifier.normalizer = MaxNormalizer()
        classifier.normalizer.max_values = np.array(data["normalizer_max"])
    return classifier


class DetectorPatch:
    """A vendor patch: the delta from a deployed detector to an updated
    one, distributable as JSON and applied in place."""

    def __init__(self, version, payload):
        self.version = version
        self.payload = payload

    @classmethod
    def from_retrained(cls, updated_detector, version):
        """Build a patch carrying the updated detector's deployable state
        (weights, normalizer, widened feature set)."""
        return cls(version, detector_to_dict(updated_detector))

    def apply(self):
        """Instantiate the patched detector (the microcode-update step)."""
        detector = detector_from_dict(self.payload)
        detector.name = f"{detector.name}@{self.version}"
        return detector

    def new_features_vs(self, deployed_detector):
        """Engineered features this patch adds over a deployed detector."""
        old = {name for name, _ in deployed_detector.schema.engineered}
        return [name for name, _ in
                (tuple(e) for e in self.payload["schema"]["engineered"])
                if name not in old]

    def to_json(self):
        return json.dumps({"version": self.version, "payload": self.payload})

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        return cls(data["version"], data["payload"])
