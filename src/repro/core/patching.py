"""Detector serialization and vendor-style security patches.

The paper's deployment story (Section VI-B, "Weight & Feature Updates"):
the detector's weights are static in silicon but updatable "via a vendor
distributed patch ... a process similar to microcode updates", including
additions to the monitored feature set as new attacks emerge.

* :func:`detector_to_dict` / :func:`detector_from_dict` — full round-trip
  serialization of a trained detector (schema, normalizer, weights);
* :func:`save_detector` / :func:`load_detector` — the durable artifact:
  written atomically (temp + ``os.replace``), SHA-256-checksummed and
  schema-versioned, so a kill mid-write or a bit-rotted file can never
  produce a loadable-but-wrong model — loading either verifies
  everything (checksum, feature-schema fingerprint, layer dimensions,
  weight finiteness) or raises a typed :class:`ModelError`;
* :class:`DetectorPatch` — the diff between a deployed detector and a
  retrained one: new engineered features, weight updates, a version tag —
  applied in place to a deployed detector.
"""

import hashlib
import json

import numpy as np

from repro.core.perceptron import HardwareDetector
from repro.data.features import FeatureSchema, MaxNormalizer

#: artifact format tag; bump on incompatible layout changes.  Version 1
#: (the bare ``detector_to_dict`` payload with no envelope) still loads.
MODEL_FORMAT = "repro.detector/2"


class ModelError(ValueError):
    """Base class for model-artifact failures (a ``ValueError`` so
    legacy callers that caught that still work)."""


class ModelMissingError(ModelError):
    """The model file does not exist."""


class ModelCorruptError(ModelError):
    """The model file exists but cannot be parsed."""


class ModelChecksumError(ModelError):
    """The payload does not match its embedded SHA-256 (torn write,
    bit rot, tampering)."""


class ModelSchemaError(ModelError):
    """The artifact parses but is internally inconsistent (dimension
    mismatch, non-finite weights, fingerprint drift, bad format tag)."""


def detector_to_dict(detector):
    """Serialize a detector to plain JSON-compatible data."""
    return {
        "name": detector.name,
        "threshold": detector.threshold,
        "schema": {
            "base": list(detector.schema.base_features),
            "engineered": [[name, list(counters)]
                           for name, counters in detector.schema.engineered],
        },
        "normalizer_max": detector.normalizer.max_values.tolist()
        if detector.normalizer.max_values is not None else None,
        "layers": [
            {
                "weights": layer.weights.tolist(),
                "bias": layer.bias.tolist(),
                "activation": layer.activation,
            }
            for layer in detector.net.layers
        ],
    }


def detector_from_dict(data):
    """Reconstruct a detector serialized by :func:`detector_to_dict`.

    A schema that names a counter this build's counter layout does not
    know (a stale envelope from an older/newer simulator) raises a typed
    :class:`ModelSchemaError` instead of a bare ``KeyError`` mid-gather.
    """
    try:
        schema = FeatureSchema(
            engineered=tuple(
                (name, tuple(counters))
                for name, counters in data["schema"]["engineered"]),
            base=tuple(data["schema"]["base"]),
        )
    except KeyError as exc:
        raise ModelSchemaError(
            f"detector schema references a counter this build does not "
            f"have: {exc} — stale envelope vs the live counter layout"
        ) from exc
    hidden = [len(layer["bias"]) for layer in data["layers"][:-1]]
    detector = HardwareDetector(schema, hidden_layers=tuple(hidden),
                                threshold=data["threshold"],
                                name=data["name"])
    for layer, saved in zip(detector.net.layers, data["layers"]):
        layer.weights[:] = np.array(saved["weights"])
        layer.bias[:] = np.array(saved["bias"])
        if layer.activation != saved["activation"]:
            raise ValueError("activation mismatch in serialized detector")
    if data["normalizer_max"] is not None:
        detector.normalizer = MaxNormalizer()
        detector.normalizer.max_values = np.array(data["normalizer_max"])
    return detector


def _canonical_json(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def schema_fingerprint(schema):
    """Deterministic SHA-256 over a feature schema (base + engineered
    names).  Stored in the artifact and in corpus-side tooling so a
    detector/corpus feature-space mismatch is one string comparison."""
    blob = _canonical_json({
        "base": list(schema.base_features),
        "engineered": [[name, list(counters)]
                       for name, counters in schema.engineered],
    })
    return hashlib.sha256(blob.encode()).hexdigest()


def _validate_payload(payload, origin):
    """Structural validation of a ``detector_to_dict`` payload: layer
    dimensions must chain from the schema width down to one output, and
    every number must be finite — a model that passes cannot silently
    misclassify because of a torn or hand-edited file."""
    try:
        schema_dims = (len(payload["schema"]["base"])
                       + len(payload["schema"]["engineered"]))
        layers = payload["layers"]
        threshold = payload["threshold"]
        normalizer = payload["normalizer_max"]
    except (KeyError, TypeError) as exc:
        raise ModelSchemaError(
            f"model artifact {origin} missing field: {exc}") from exc
    if not layers:
        raise ModelSchemaError(f"model artifact {origin} has no layers")
    expected_in = schema_dims
    for i, layer in enumerate(layers):
        weights = np.asarray(layer.get("weights", []), dtype=float)
        bias = np.asarray(layer.get("bias", []), dtype=float)
        if weights.ndim != 2 or weights.shape[0] != expected_in or \
                weights.shape[1] != bias.shape[0]:
            raise ModelSchemaError(
                f"model artifact {origin}: layer {i} dimensions "
                f"{weights.shape} do not chain from input width "
                f"{expected_in}")
        if not np.isfinite(weights).all() or not np.isfinite(bias).all():
            raise ModelSchemaError(
                f"model artifact {origin}: non-finite weights in layer {i}")
        expected_in = weights.shape[1]
    if expected_in != 1:
        raise ModelSchemaError(
            f"model artifact {origin}: final layer width {expected_in}, "
            f"expected 1")
    if not isinstance(threshold, (int, float)) \
            or not np.isfinite(threshold) or not 0.0 <= threshold <= 1.0:
        raise ModelSchemaError(
            f"model artifact {origin}: threshold {threshold!r} outside "
            f"[0, 1]")
    if normalizer is not None:
        norm = np.asarray(normalizer, dtype=float)
        if norm.shape != (schema_dims,) or not np.isfinite(norm).all():
            raise ModelSchemaError(
                f"model artifact {origin}: normalizer length "
                f"{norm.shape} does not match feature width {schema_dims}")


def save_detector(detector, path):
    """Atomically write a detector's full deployable state.

    The artifact is a versioned envelope around ``detector_to_dict``:
    the payload's canonical-JSON SHA-256 plus the feature-schema
    fingerprint, written via temp-file + ``os.replace`` — a kill at any
    instant leaves the previous artifact or none, never a torn one.
    """
    from repro.runtime.atomic import atomic_write_bytes
    payload = detector_to_dict(detector)
    envelope = {
        "format": MODEL_FORMAT,
        "sha256": hashlib.sha256(
            _canonical_json(payload).encode()).hexdigest(),
        "schema_fingerprint": schema_fingerprint(detector.schema),
        "feature_count": detector.schema.dim,
        "detector": payload,
    }
    atomic_write_bytes(path, json.dumps(envelope, indent=1).encode())


def load_detector(path):
    """Load and fully verify a detector written by :func:`save_detector`.

    Raises a typed :class:`ModelError` subclass on a missing file,
    unparseable JSON, checksum mismatch, fingerprint drift or structural
    inconsistency.  Legacy (version-1, envelope-less) artifacts still
    load, with structural validation only.
    """
    try:
        with open(path, "rb") as f:
            raw = f.read()
    except FileNotFoundError:
        raise ModelMissingError(f"model file not found: {path}") from None
    try:
        data = json.loads(raw.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ModelCorruptError(
            f"unparseable model file {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ModelCorruptError(f"model file {path} is not a JSON object")
    if "format" not in data:
        # legacy pre-envelope artifact: the bare payload
        _validate_payload(data, path)
        return detector_from_dict(data)
    if data["format"] != MODEL_FORMAT:
        raise ModelSchemaError(
            f"unsupported model format {data['format']!r} in {path}")
    payload = data.get("detector")
    if not isinstance(payload, dict):
        raise ModelSchemaError(f"model file {path} has no detector payload")
    digest = hashlib.sha256(_canonical_json(payload).encode()).hexdigest()
    if digest != data.get("sha256"):
        raise ModelChecksumError(
            f"checksum mismatch for {path}: payload does not match its "
            f"embedded digest (torn write, bit rot or tampering)")
    _validate_payload(payload, path)
    detector = detector_from_dict(payload)
    if schema_fingerprint(detector.schema) != data.get("schema_fingerprint"):
        raise ModelSchemaError(
            f"feature-schema fingerprint mismatch in {path}: the stored "
            f"schema does not match the one the artifact declares")
    return detector


def verify_corpus_compatible(detector, dataset, detector_origin="detector",
                             corpus_origin="corpus"):
    """Assert a loaded detector can legally score ``dataset``'s windows.

    A detector envelope and an evaluation corpus can each be internally
    consistent yet mutually wrong: the corpus may carry delta vectors of
    a different counter-layout width, or the detector's schema may name
    counters the corpus's layout never measured.  Scoring through such a
    pair silently gathers the wrong columns — every verdict is garbage
    with no error.  This check turns the mismatch into a typed
    :class:`ModelSchemaError` (the arena/adaptive CLI paths surface it
    as a one-line exit-2 error).
    """
    from repro.data.io import counter_layout_sha256
    from repro.sim.hpc import COUNTER_NAMES
    known = set(COUNTER_NAMES)
    stale = [n for n in detector.schema.base_features if n not in known]
    stale += [c for _, counters in detector.schema.engineered
              for c in counters if c not in known]
    if stale:
        raise ModelSchemaError(
            f"{detector_origin} schema references counters absent from "
            f"the live layout: {sorted(set(stale))[:4]}")
    recorded = getattr(dataset, "counters_sha256", None)
    if recorded is not None and recorded != counter_layout_sha256():
        raise ModelSchemaError(
            f"{corpus_origin} was collected under a different counter "
            f"layout (sidecar fingerprint {recorded[:12]}... vs live "
            f"{counter_layout_sha256()[:12]}...); scoring it with "
            f"{detector_origin} would gather the wrong columns")
    width = len(COUNTER_NAMES)
    for record in dataset.records[:1]:
        if len(record.deltas) != width:
            raise ModelSchemaError(
                f"{corpus_origin} windows carry {len(record.deltas)} "
                f"counter deltas but the live layout (and "
                f"{detector_origin}'s schema) expects {width} — the "
                f"corpus was collected under a different counter layout")
    return detector


def classifier_to_dict(classifier):
    """Serialize an :class:`repro.core.classifier.AttackClassifier`."""
    return {
        "families": list(classifier.families),
        "schema": {
            "base": list(classifier.schema.base_features),
            "engineered": [[name, list(counters)]
                           for name, counters
                           in classifier.schema.engineered],
        },
        "normalizer_max": classifier.normalizer.max_values.tolist()
        if classifier.normalizer.max_values is not None else None,
        "layers": [
            {
                "weights": layer.weights.tolist(),
                "bias": layer.bias.tolist(),
                "activation": layer.activation,
            }
            for layer in classifier.net.layers
        ],
    }


def classifier_from_dict(data):
    """Reconstruct a serialized attack-family classifier."""
    from repro.core.classifier import AttackClassifier

    schema = FeatureSchema(
        engineered=tuple((name, tuple(counters))
                         for name, counters in data["schema"]["engineered"]),
        base=tuple(data["schema"]["base"]),
    )
    hidden = tuple(len(layer["bias"]) for layer in data["layers"][:-1])
    classifier = AttackClassifier(schema, hidden=hidden)
    if tuple(data["families"]) != tuple(classifier.families):
        raise ValueError("family vocabulary mismatch")
    for layer, saved in zip(classifier.net.layers, data["layers"]):
        layer.weights[:] = np.array(saved["weights"])
        layer.bias[:] = np.array(saved["bias"])
    if data["normalizer_max"] is not None:
        classifier.normalizer = MaxNormalizer()
        classifier.normalizer.max_values = np.array(data["normalizer_max"])
    return classifier


class DetectorPatch:
    """A vendor patch: the delta from a deployed detector to an updated
    one, distributable as JSON and applied in place."""

    def __init__(self, version, payload):
        self.version = version
        self.payload = payload

    @classmethod
    def from_retrained(cls, updated_detector, version):
        """Build a patch carrying the updated detector's deployable state
        (weights, normalizer, widened feature set)."""
        return cls(version, detector_to_dict(updated_detector))

    def apply(self):
        """Instantiate the patched detector (the microcode-update step)."""
        detector = detector_from_dict(self.payload)
        detector.name = f"{detector.name}@{self.version}"
        return detector

    def new_features_vs(self, deployed_detector):
        """Engineered features this patch adds over a deployed detector."""
        old = {name for name, _ in deployed_detector.schema.engineered}
        return [name for name, _ in
                (tuple(e) for e in self.payload["schema"]["engineered"])
                if name not in old]

    def to_json(self):
        return json.dumps({"version": self.version, "payload": self.payload})

    @classmethod
    def from_json(cls, text):
        data = json.loads(text)
        return cls(data["version"], data["payload"])
