"""Deep detectors (paper Section VIII-D, Figure 20).

The paper shows that AM-GAN training data improves not just the perceptron
but deep networks too — a 16-layer net trained on EVAX data outperforms a
32-layer net trained traditionally.  :class:`DeepDetector` is the same
detector interface as the perceptron with hidden layers.
"""

from repro.core.perceptron import HardwareDetector


class DeepDetector(HardwareDetector):
    """An n-hidden-layer MLP detector over the same feature schema.

    Inherits the full detector interface including the vectorized
    :meth:`~repro.core.perceptron.HardwareDetector.score_batch` serving
    path, so the deep variants plug into ``repro serve`` unchanged —
    the batched matrix-matrix pass amortizes the extra layers across
    thousands of windows per call.
    """

    def __init__(self, schema, depth=16, width=32, seed=0, threshold=0.5,
                 name=None):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        hidden = tuple(width for _ in range(depth))
        super().__init__(schema, hidden_layers=hidden, seed=seed,
                         threshold=threshold,
                         name=name or f"dnn-{depth}x{width}")
        self.depth = depth
        self.width = width
