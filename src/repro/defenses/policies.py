"""Defense configurations and overhead measurement (paper Figure 16)."""

import copy
from dataclasses import dataclass

from repro.sim import Machine, SimConfig
from repro.sim.config import DefenseMode


@dataclass(frozen=True)
class DefensePolicy:
    """One defense configuration from the paper's evaluation.

    ``threat_model`` is "spectre" (mitigate control-flow speculation) or
    "futuristic" (mitigate any speculative load, covering LVI/MDS).
    """

    name: str
    mode: DefenseMode
    threat_model: str
    adaptive: bool = False


#: the configurations compared in Figure 16
DEFENSE_CONFIGS = (
    DefensePolicy("baseline", DefenseMode.NONE, "none"),
    DefensePolicy("fence-spectre", DefenseMode.FENCE_SPECTRE, "spectre"),
    DefensePolicy("fence-futuristic", DefenseMode.FENCE_FUTURISTIC, "futuristic"),
    DefensePolicy("invisispec-spectre", DefenseMode.INVISISPEC_SPECTRE, "spectre"),
    DefensePolicy("invisispec-futuristic", DefenseMode.INVISISPEC_FUTURISTIC,
                  "futuristic"),
    DefensePolicy("evax-spectre-safe", DefenseMode.FENCE_SPECTRE, "spectre",
                  adaptive=True),
    DefensePolicy("evax-safe-fence", DefenseMode.INVISISPEC_SPECTRE, "spectre",
                  adaptive=True),
    DefensePolicy("evax-futuristic-safe", DefenseMode.FENCE_FUTURISTIC,
                  "futuristic", adaptive=True),
    DefensePolicy("evax-futuristic-safe-spec", DefenseMode.INVISISPEC_FUTURISTIC,
                  "futuristic", adaptive=True),
)


def run_workload(workload, config=None, sample_period=1000, max_cycles=400_000,
                 detector_hook=None):
    """Run one benign workload; returns its RunResult."""
    program, actors = workload.build()
    machine = Machine(program, copy.deepcopy(config) if config else SimConfig(),
                      sample_period=sample_period, actors=actors,
                      detector_hook=detector_hook)
    return machine.run(max_cycles=max_cycles)


def measure_overhead(workloads, mode, baseline_cycles=None,
                     sample_period=1000, detector_hook=None):
    """Per-workload slowdown of ``mode`` vs the undefended baseline.

    Returns ``(overheads, baseline_cycles)`` where overheads maps workload
    name to fractional overhead (0.27 == 27%).
    """
    if baseline_cycles is None:
        baseline_cycles = {}
        for w in workloads:
            result = run_workload(w, SimConfig(defense=DefenseMode.NONE),
                                  sample_period=sample_period)
            baseline_cycles[w.name] = result.cycles
    overheads = {}
    for w in workloads:
        result = run_workload(w, SimConfig(defense=mode),
                              sample_period=sample_period,
                              detector_hook=detector_hook)
        base = baseline_cycles[w.name]
        overheads[w.name] = (result.cycles - base) / base if base else 0.0
    return overheads, baseline_cycles
