"""The secure-mode controller: detector-gated adaptive mitigation.

This is the paper's end-to-end mechanism ("we turn on mitigation at every
true flag by our detector and we execute [N] instructions in secure mode"):
the detector classifies every HPC sampling window; on a positive flag the
core switches to the configured mitigation for ``secure_window`` committed
instructions, re-armed by further flags, then drops back to full
performance.
"""

from repro.obs import metrics, obs_event
from repro.sim.config import DefenseMode


class SecureModeController:
    """Wire into :class:`repro.sim.Machine` as its ``detector_hook``.

    Parameters
    ----------
    detector_fn:
        Callable ``(sample) -> bool`` deciding whether a sampling window
        looks malicious (the trained EVAX detector's predict).
    secure_mode:
        The :class:`DefenseMode` to enable on a flag.
    secure_window:
        Committed instructions to stay in secure mode after the last flag
        (paper evaluates 10k / 100k / 1M).
    """

    def __init__(self, detector_fn, secure_mode, secure_window=10_000):
        self.detector_fn = detector_fn
        self.secure_mode = secure_mode
        self.secure_window = secure_window
        self.active = False
        self.secure_until = 0
        self.flags = 0
        self.windows_secure = 0
        self.windows_total = 0

    def __call__(self, machine, sample):
        reg = metrics()
        self.windows_total += 1
        reg.inc("adaptive.windows.total")
        if self.active:
            self.windows_secure += 1
            reg.inc("adaptive.windows.secure")
            if sample.commit_index >= self.secure_until:
                self.active = False
                machine.set_defense(DefenseMode.NONE)
                reg.inc("adaptive.secure.exits")
                obs_event("adaptive.secure_exit", level="debug",
                          commit_index=sample.commit_index)
        flagged = bool(self.detector_fn(sample))
        if flagged:
            self.flags += 1
            reg.inc("adaptive.flags")
            self.secure_until = sample.commit_index + self.secure_window
            if not self.active:
                self.active = True
                machine.set_defense(self.secure_mode)
                reg.inc("adaptive.secure.entries")
                obs_event("adaptive.secure_enter",
                          commit_index=sample.commit_index,
                          mode=getattr(self.secure_mode, "value",
                                       str(self.secure_mode)))
        return flagged

    @property
    def secure_fraction(self):
        """Fraction of sampling windows spent in secure mode."""
        if not self.windows_total:
            return 0.0
        return self.windows_secure / self.windows_total
