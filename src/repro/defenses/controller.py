"""The secure-mode controller: detector-gated adaptive mitigation.

This is the paper's end-to-end mechanism ("we turn on mitigation at every
true flag by our detector and we execute [N] instructions in secure mode"):
the detector classifies every HPC sampling window; on a positive flag the
core switches to the configured mitigation for ``secure_window`` committed
instructions, re-armed by further flags, then drops back to full
performance.

The controller is also the system's last line of defense against a
*degraded detector* — an HMD whose inference path fails silently is worse
than no detector at all (an attacker who can crash or NaN the model would
otherwise disable the defense).  A built-in health watchdog therefore
validates every window end to end: feature vectors must be finite and
dimension-stable, the detector must not raise, and its scores must be
finite.  Any violation **latches the core into always-secure mode**
(policy-configurable via ``fail_secure``), records the event, and keeps
the mitigation on for the remainder of the run — the defense fails
*secure*, never silent.
"""

import math

from repro.obs import metrics, obs_event
from repro.sim.config import DefenseMode


class SecureModeController:
    """Wire into :class:`repro.sim.Machine` as its ``detector_hook``.

    Parameters
    ----------
    detector_fn:
        Callable ``(sample) -> bool`` deciding whether a sampling window
        looks malicious (the trained EVAX detector's predict).
    secure_mode:
        The :class:`DefenseMode` to enable on a flag.
    secure_window:
        Committed instructions to stay in secure mode after the last flag
        (paper evaluates 10k / 100k / 1M).
    fail_secure:
        When ``True`` (default), a detector fault — an exception, a
        non-finite score, or a malformed feature vector — latches the
        controller into always-secure mode for the rest of the run.
        When ``False`` the fault propagates to the caller instead;
        there is no mode in which faults are silently ignored.
    """

    def __init__(self, detector_fn, secure_mode, secure_window=10_000,
                 fail_secure=True):
        self.detector_fn = detector_fn
        self.secure_mode = secure_mode
        self.secure_window = secure_window
        self.fail_secure = fail_secure
        self.active = False
        self.secure_until = 0
        self.flags = 0
        self.windows_secure = 0
        self.windows_total = 0
        self.latched = False
        self.latch_reason = None
        self.detector_errors = 0
        self._expected_dim = None

    # -- health watchdog ----------------------------------------------------

    def _validate_sample(self, sample):
        """Feature-vector sanity: finite deltas, stable width."""
        deltas = getattr(sample, "deltas", None)
        if not deltas:
            return
        for value in deltas:
            if isinstance(value, float) and not math.isfinite(value):
                raise ValueError(
                    f"non-finite counter delta {value!r} in sampling window")
        if self._expected_dim is None:
            self._expected_dim = len(deltas)
        elif len(deltas) != self._expected_dim:
            raise ValueError(
                f"feature vector width changed mid-run "
                f"({len(deltas)} vs {self._expected_dim})")

    def _latch(self, machine, reason, detail):
        """Detector health violation: fail secure, permanently."""
        reg = metrics()
        self.detector_errors += 1
        reg.inc("adaptive.detector.errors")
        if not self.fail_secure:
            raise RuntimeError(
                f"detector health violation ({reason}): {detail}")
        if not self.latched:
            self.latched = True
            self.latch_reason = f"{reason}: {detail}"
            reg.inc("adaptive.fail_secure.latches")
            obs_event("adaptive.fail_secure", level="error",
                      reason=reason, detail=str(detail))
        self.active = True
        self.secure_until = float("inf")
        machine.set_defense(self.secure_mode)

    def __call__(self, machine, sample):
        reg = metrics()
        self.windows_total += 1
        reg.inc("adaptive.windows.total")
        if self.latched:
            # fail-secure latch: every remaining window runs mitigated;
            # the wedged detector is not consulted again
            self.windows_secure += 1
            reg.inc("adaptive.windows.secure")
            return False
        counted_secure = self.active
        if self.active:
            self.windows_secure += 1
            reg.inc("adaptive.windows.secure")
            if sample.commit_index >= self.secure_until:
                self.active = False
                machine.set_defense(DefenseMode.NONE)
                reg.inc("adaptive.secure.exits")
                obs_event("adaptive.secure_exit", level="debug",
                          commit_index=sample.commit_index)
        try:
            self._validate_sample(sample)
            verdict = self.detector_fn(sample)
            if isinstance(verdict, float) and not math.isfinite(verdict):
                raise ValueError(f"non-finite detector score {verdict!r}")
            flagged = bool(verdict)
        # the documented fail-secure latch path: ANY detector fault —
        # not a foreseen subset — must flip the machine into permanent
        # secure mode (docs/training_resilience.md, "fail-secure")
        except Exception as exc:  # repro-lint: disable=broad-except
            self._latch(machine, type(exc).__name__, exc)
            if not counted_secure:   # the faulted window itself runs secure
                self.windows_secure += 1
                reg.inc("adaptive.windows.secure")
            return False
        if flagged:
            self.flags += 1
            reg.inc("adaptive.flags")
            self.secure_until = sample.commit_index + self.secure_window
            if not self.active:
                self.active = True
                machine.set_defense(self.secure_mode)
                reg.inc("adaptive.secure.entries")
                obs_event("adaptive.secure_enter",
                          commit_index=sample.commit_index,
                          mode=getattr(self.secure_mode, "value",
                                       str(self.secure_mode)))
        return flagged

    @property
    def secure_fraction(self):
        """Fraction of sampling windows spent in secure mode."""
        if not self.windows_total:
            return 0.0
        return self.windows_secure / self.windows_total
