"""Mitigation policies: always-on and detector-gated (adaptive) defenses.

The *mechanisms* (fencing issue rules, the InvisiSpec speculative-buffer
path) live inside the simulated core (:mod:`repro.sim.cpu`), switched by
:class:`repro.sim.config.DefenseMode`.  This package provides the policy
layer the paper evaluates: the catalogue of defense configurations from
Figure 16 and the secure-mode controller that turns a mitigation on for a
window of instructions whenever the detector raises a flag.
"""

from repro.defenses.policies import (
    DEFENSE_CONFIGS, DefensePolicy, measure_overhead, run_workload,
)
from repro.defenses.controller import SecureModeController
from repro.defenses.fanout import ControllerFanout, TenantSlot, VirtualCore

__all__ = [
    "ControllerFanout",
    "DEFENSE_CONFIGS",
    "DefensePolicy",
    "SecureModeController",
    "TenantSlot",
    "VirtualCore",
    "measure_overhead",
    "run_workload",
]
