"""Per-tenant fan-out of the fail-secure secure-mode controller.

The serving layer (:mod:`repro.serve`) scores windows from many tenants
in one matrix-matrix batch, but the *decision* — flag, secure-window
re-arm, fail-secure latch — is per tenant and must keep exactly the
semantics of :class:`repro.defenses.controller.SecureModeController`
that the adaptive architecture runs on a real core.  This module
provides that bridge: one genuine ``SecureModeController`` per tenant,
driven by precomputed batch verdicts instead of an inline detector
call.

Isolation is the point.  Each tenant owns its controller and its
virtual core; a poisoned window, a non-finite score, or a detector
exception attributed to tenant *t* latches **only** tenant *t* into
always-secure mode.  Sibling tenants keep their verdict streams
bit-identical to a run where the faulty tenant never existed (scoring
is batch-size-invariant per row, and controller state is per tenant) —
pinned by ``tests/serve/test_tenant_isolation.py``.
"""

from repro.defenses.controller import SecureModeController
from repro.sim.config import DefenseMode


class VirtualCore:
    """The machine stub a tenant's controller steers.

    A serving tenant has no simulated core behind it — just the defense
    mode its real core *would* be told to run.  The controller calls
    ``set_defense``; the slot records it.
    """

    def __init__(self):
        self.defense = DefenseMode.NONE

    def set_defense(self, mode):
        self.defense = mode


class _WindowDecision:
    """One window's precomputed outcome, shaped like a sampler window.

    ``deltas`` stays empty on purpose: the batch path has already
    validated the raw window vectorized (finiteness, width), so the
    controller's per-element Python re-validation would only re-pay the
    cost batching removed.  An input fault is delivered as ``fault``
    instead and reaches the controller through the detector-fn raise
    path — the same watchdog, the same latch.
    """

    __slots__ = ("commit_index", "deltas", "verdict", "fault")

    def __init__(self, commit_index, verdict, fault=None):
        self.commit_index = commit_index
        self.deltas = []
        self.verdict = verdict
        self.fault = fault

    def __call__(self, sample):
        """Stand in as the controller's ``detector_fn``."""
        if self.fault is not None:
            raise self.fault
        return self.verdict


class TenantSlot:
    """One tenant's controller + virtual core + serving bookkeeping."""

    def __init__(self, tenant, secure_mode, secure_window):
        self.tenant = tenant
        self.core = VirtualCore()
        self.controller = SecureModeController(
            detector_fn=None, secure_mode=secure_mode,
            secure_window=secure_window, fail_secure=True)
        self.windows = 0
        self.shed = 0

    def apply(self, commit_index, verdict, fault=None):
        """Feed one precomputed window outcome through the controller.

        Returns ``True`` when the controller flagged the window.  A
        ``fault`` (an exception instance) takes the controller's
        fail-secure raise path and latches this tenant permanently.
        """
        decision = _WindowDecision(commit_index, verdict, fault)
        self.controller.detector_fn = decision
        self.windows += 1
        return self.controller(self.core, decision)

    def shed_window(self, commit_index):
        """Conservative fallback for an unscored (shed) window.

        Backpressure must fail *secure*, never open: a window dropped
        under overload is treated as a positive flag, so the tenant
        runs mitigated through the overload instead of unmonitored.
        """
        self.shed += 1
        return self.apply(commit_index, True)

    @property
    def latched(self):
        return self.controller.latched

    def summary(self):
        c = self.controller
        return {
            "windows": self.windows,
            "flags": c.flags,
            "shed": self.shed,
            "secure_fraction": round(c.secure_fraction, 6),
            "latched": c.latched,
            "latch_reason": c.latch_reason,
            "defense": getattr(self.core.defense, "value",
                               str(self.core.defense)),
        }


class ControllerFanout:
    """Lazily-created :class:`TenantSlot` per tenant id."""

    def __init__(self, secure_mode=DefenseMode.FENCE_FUTURISTIC,
                 secure_window=10_000):
        self.secure_mode = secure_mode
        self.secure_window = secure_window
        self.slots = {}

    def slot(self, tenant):
        slot = self.slots.get(tenant)
        if slot is None:
            slot = self.slots[tenant] = TenantSlot(
                tenant, self.secure_mode, self.secure_window)
        return slot

    def latched_tenants(self):
        return sorted(t for t, s in self.slots.items() if s.latched)

    def summary(self):
        """Deterministically-ordered per-tenant summary dict."""
        return {t: self.slots[t].summary() for t in sorted(self.slots)}
