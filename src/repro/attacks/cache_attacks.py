"""Classic cache side channels: Flush+Reload, Flush+Flush, Prime+Probe.

A co-resident victim (background actor) touches a secret-dependent shared
line; the attacker program observes real cache state through timing.
"""

from repro.attacks.base import (
    Attack, PHASE_LEAK, PHASE_RECOVER, PHASE_SETUP, SHARED_LINE_ONE,
    SHARED_LINE_ZERO, STACK_BASE, emit_above_threshold,
    emit_below_threshold, emit_spin_until, emit_store_result,
    emit_timed_flush, emit_timed_load,
)
from repro.sim import ProgramBuilder, SimConfig
from repro.sim.background import SecretDependentToucher

_BIT_PERIOD = 2000


def _victim(secret_bits):
    return SecretDependentToucher(secret_bits,
                                  addr_one=SHARED_LINE_ONE,
                                  addr_zero=SHARED_LINE_ZERO,
                                  bit_period=_BIT_PERIOD)


class FlushReload(Attack):
    """Flush the shared line, let the victim run, time the reload."""

    name = "flush-reload"
    category = "flush-reload"
    slow = True

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        b.movi(1, SHARED_LINE_ONE)
        b.load(0, 1, 0xF80)             # warm the DTLB for the shared page
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        # flush early in window i
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, 150)
        emit_spin_until(b, 5, 6, "flush")
        b.clflush(1, 0)
        b.fence()
        # reload late in the window: hit iff the victim touched the line
        b.addi(5, 5, _BIT_PERIOD - 500)
        emit_spin_until(b, 5, 6, "reload")
        emit_timed_load(b, 1, 0, 8, 9, 10)
        b.mark(PHASE_RECOVER)
        emit_below_threshold(b, 8, 8, 30)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        return b.build(), [_victim(self.secret_bits)]


class FlushFlush(Attack):
    """Time the CLFLUSH itself: flushing a cached line is measurably
    slower, and the attacker never performs a demand access (stealthy)."""

    name = "flush-flush"
    category = "flush-flush"
    slow = True

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        b.movi(1, SHARED_LINE_ONE)
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        # clear the line at the window start
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, 150)
        emit_spin_until(b, 5, 6, "pre")
        b.clflush(1, 0)
        b.fence()
        # timed flush late in the window: slow iff the victim re-cached it
        b.addi(5, 5, _BIT_PERIOD - 500)
        emit_spin_until(b, 5, 6, "probe")
        emit_timed_flush(b, 1, 0, 8, 9)
        b.mark(PHASE_RECOVER)
        emit_above_threshold(b, 8, 8, 12, 10)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        return b.build(), [_victim(self.secret_bits)]


class PrimeProbe(Attack):
    """Fill one L1 set with attacker lines, let the victim run, then time
    a sweep of the set: a victim access evicted one way and the sweep sees
    a miss."""

    name = "prime-probe"
    category = "prime-probe"
    slow = True

    def build(self):
        n = len(self.secret_bits)
        cfg = SimConfig()
        l1_sets = cfg.l1d_size // (cfg.l1d_assoc * cfg.line_bytes)
        victim_set = (SHARED_LINE_ONE // cfg.line_bytes) % l1_sets
        # attacker eviction set: assoc addresses mapping to victim_set
        evset = [((victim_set + k * l1_sets) * cfg.line_bytes) + 0x400000
                 for k in range(cfg.l1d_assoc)]
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        for addr in evset:              # warm DTLB pages for the ev-set
            b.movi(2, addr)
            b.load(0, 2, 0)
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        # prime early in the window
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, 150)
        emit_spin_until(b, 5, 6, "prime")
        for addr in evset:
            b.movi(2, addr)
            b.load(0, 2, 0)
        b.fence()
        # probe at the window end: time the whole sweep
        b.addi(5, 5, _BIT_PERIOD - 500)
        emit_spin_until(b, 5, 6, "probe")
        b.rdtsc(9)
        for addr in evset:
            b.movi(2, addr)
            b.load(0, 2, 0)
        b.fence()
        b.rdtsc(8)
        b.sub(8, 8, 9)
        b.mark(PHASE_RECOVER)
        # all-hit sweep is fast (~7); a victim-evicted way adds an L2 trip
        emit_above_threshold(b, 8, 8, 15, 10)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        victim = SecretDependentToucher(self.secret_bits,
                                        addr_one=SHARED_LINE_ONE,
                                        addr_zero=SHARED_LINE_ZERO,
                                        bit_period=_BIT_PERIOD,
                                        period=200)
        return b.build(), [victim]
