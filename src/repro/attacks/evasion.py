"""Manual evasion transformations (malware-community style).

The paper evaluates detectors against attacks transformed with techniques
from the malware literature: signature dilution (injecting benign work
between attack instructions), cache-traffic camouflage, and bandwidth
evasion (spreading the attack's events over more instructions so per-window
HPC deltas shrink).  These are *program-level* transformations: the attack
still leaks, but its microarchitectural footprint per sampling window is
diluted.

Instruction injection happens during the attack's ``build()`` by wrapping
``ProgramBuilder.emit`` — label resolution still happens afterwards, so
control flow stays intact.  Injected ops are side-effect-free for the
attack (NOPs and prefetches of a dedicated decoy region through a
read-only register).
"""

import random

from repro.attacks.base import Attack
from repro.sim.background import CacheToucherActor
from repro.sim.isa import Op
from repro.sim.program import ProgramBuilder

#: decoy prefetch region (never used by any attack)
_DECOY_BASE = 0x7F0000


class EvasiveAttack(Attack):
    """Wraps a base attack with evasion transformations.

    Parameters
    ----------
    base:
        An :class:`Attack` instance to transform.
    nop_rate:
        Probability of injecting a NOP after each emitted instruction
        (signature dilution / bandwidth evasion).
    prefetch_rate:
        Probability of injecting a benign decoy prefetch (cache-traffic
        camouflage).
    camouflage_actors:
        Number of benign cache-noise background actors to add.
    rng:
        An explicitly seeded :class:`random.Random` driving the dilution
        draws.  When omitted, a private generator derived from ``seed``
        is created per :meth:`build`, so repeated builds of the same
        instance are identical.  Module-level ``random`` state is never
        touched either way.
    """

    def __init__(self, base, nop_rate=0.3, prefetch_rate=0.1,
                 camouflage_actors=0, seed=0, rng=None):
        self.base = base
        self.nop_rate = nop_rate
        self.prefetch_rate = prefetch_rate
        self.camouflage_actors = camouflage_actors
        self.rng = rng
        self.name = f"{base.name}-evasive"
        self.category = base.category
        self.slow = base.slow
        super().__init__(secret_bits=base.secret_bits, seed=seed)

    def max_cycles(self):
        return int(self.base.max_cycles() * 2)

    def build(self):
        rng = self.rng if self.rng is not None \
            else random.Random(self.seed * 7919 + 13)
        original_emit = ProgramBuilder.emit
        nop_rate = self.nop_rate
        prefetch_rate = self.prefetch_rate

        def diluting_emit(builder, op, rd=None, rs1=None, rs2=None, imm=0,
                          target=None):
            result = original_emit(builder, op, rd=rd, rs1=rs1, rs2=rs2,
                                   imm=imm, target=target)
            if op in (Op.HALT, Op.MARK):
                return result
            if rng.random() < nop_rate:
                original_emit(builder, Op.NOP)
            if rng.random() < prefetch_rate:
                original_emit(builder, Op.PREFETCH, rs1=15,
                              imm=_DECOY_BASE + 64 * rng.randrange(32))
            return result

        ProgramBuilder.emit = diluting_emit
        try:
            program, actors = self.base.build()
        finally:
            ProgramBuilder.emit = original_emit
        program.name = self.name
        for k in range(self.camouflage_actors):
            noise = [_DECOY_BASE + 0x10000 + 64 * (7 * k + j)
                     for j in range(16)]
            actors = list(actors) + [CacheToucherActor(noise, period=30 + 10 * k)]
        return program, actors

    def recover(self, machine, result):
        return self.base.recover(machine, result)
