"""Meltdown: deferred privilege checks leak kernel memory transiently."""

from repro.attacks.base import (
    Attack, PHASE_LEAK, PHASE_RECOVER, PHASE_SETUP, STACK_BASE,
    emit_calibration, emit_flush_probe, emit_probe_and_store,
    emit_probe_init,
)
from repro.sim import ProgramBuilder
from repro.sim.isa import KERNEL_BASE

_KSECRET = KERNEL_BASE + 0x100


class Meltdown(Attack):
    """The classic rogue-data-cache-load sequence (paper Section II):
    warm the kernel line, delay retirement of the faulting load with a
    dependent slow-op chain, transiently index the probe array with the
    loaded kernel bit, and recover it after the trap."""

    name = "meltdown"
    category = "meltdown"

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        for i, bit in enumerate(self.secret_bits):
            b.data(_KSECRET + 8 * i, bit)
        b.reg(15, STACK_BASE)
        emit_probe_init(b, 1, 0)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        emit_flush_probe(b, 1)
        b.shl(2, 13, 3)
        b.addi(2, 2, _KSECRET)      # r2 -> kernel secret bit i
        b.prefetch(2, 0)            # step 2: get the kernel line into L1
        b.fence()
        b.try_("recover")
        # step 4: fill the ROB with a slow dependent chain so the faulting
        # load retires late
        b.movi(4, 1_000_000)
        b.movi(5, 3)
        b.div(4, 4, 5)
        b.div(4, 4, 5)
        b.div(4, 4, 5)
        b.add(6, 4, 0)
        # steps 3+5: transient kernel load indexes the probe array
        b.load(3, 2, 0)
        b.shl(3, 3, 6)
        b.add(3, 3, 1)
        b.load(3, 3, 0)
        b.label("dead")
        b.jmp("dead")               # fall-through never reaches recovery
        b.label("recover")
        b.mark(PHASE_RECOVER)
        emit_probe_and_store(b, 1, 13)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        return b.build(), []
