"""Extension attacks beyond the paper's 19 evaluated categories.

The paper's background section discusses Evict+Time (Osvik et al.) and
ZombieLoad (Schwarz et al.); they are natural extensions of the evaluated
corpus and exercise the same substrate:

* **Evict+Time** — conflict-based: evict one set, time the *victim
  function's whole execution*; it runs slower iff its secret-dependent
  access hit the evicted set.
* **ZombieLoad** — an MDS flavour: a faulting load samples in-flight fill
  data under heavy concurrent-miss (fill-buffer) pressure.

They are exported separately (``EXTENDED_ATTACKS``) so the paper's
evaluated corpus (``ALL_ATTACKS``) stays exactly as published.
"""

from repro.attacks.base import (
    Attack, PHASE_LEAK, PHASE_RECOVER, PHASE_SETUP, STACK_BASE,
    emit_above_threshold, emit_calibration, emit_store_result,
)
from repro.attacks.mds import _AssistLeak
from repro.sim import ProgramBuilder, SimConfig

_SECRETS = 0x10040
_TABLE = 0x44000           # the victim's secret-indexed table
_EVSET_BASE = 0x480000


class EvictTime(Attack):
    """Evict one line of the victim's lookup table, then time the victim
    function: a slow call means the secret indexed the evicted line."""

    name = "evict-time"
    category = "evict-time"

    def build(self):
        n = len(self.secret_bits)
        cfg = SimConfig()
        l1_sets = cfg.l1d_size // (cfg.l1d_assoc * cfg.line_bytes)
        target_line = (_TABLE + 64) // cfg.line_bytes    # table[1]'s line
        target_set = target_line % l1_sets
        evset = [((target_set + k * l1_sets) * cfg.line_bytes) + _EVSET_BASE
                 for k in range(cfg.l1d_assoc)]
        b = ProgramBuilder(self.name)
        for i, bit in enumerate(self.secret_bits):
            b.data(_SECRETS + 8 * i, bit)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        b.movi(2, _TABLE)
        for addr in evset:              # warm DTLB for the eviction set
            b.movi(4, addr)
            b.load(0, 4, 0)
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        # keep table[0] hot, evict table[1]'s set
        b.load(0, 2, 0)
        for addr in evset:
            b.movi(4, addr)
            b.load(0, 4, 0)
        b.fence()
        b.shl(3, 13, 3)
        b.addi(3, 3, _SECRETS)
        b.rdtsc(9)
        b.call("victim")
        b.fence()
        b.rdtsc(8)
        b.sub(8, 8, 9)
        b.mark(PHASE_RECOVER)
        # the victim's table[1] access missed (evicted) => slow => bit 1
        emit_above_threshold(b, 8, 8, 30, 10)
        emit_store_result(b, 13, 8, 10)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        # victim: one table lookup indexed by its secret bit
        b.label("victim")
        b.load(5, 3, 0)             # secret bit
        b.shl(5, 5, 6)
        b.add(5, 5, 2)
        b.load(5, 5, 0)             # table[secret]
        b.ret()
        return b.build(), []


class ZombieLoad(_AssistLeak):
    """MDS fill-buffer flavour: the assisted load samples in-flight data
    while the load ports are saturated with concurrent misses."""

    name = "zombieload"
    category = "zombieload"

    _FILL_BASE = 0x4C0000

    def emit_variant_prelude(self, b):
        # fill-buffer pressure: a burst of independent missing loads
        for k in range(4):
            b.movi(11, self._FILL_BASE + 0x1000 * k)
            b.shl(12, 13, 6)
            b.add(11, 11, 12)       # fresh line each bit
            b.load(12, 11, 0)


class Foreshadow(Attack):
    """L1-terminal-fault flavour of Meltdown: the secret must be resident
    in L1 when the faulting load samples it, so the attacker relies on the
    *kernel's own activity* caching the line rather than prefetching it.
    (This substrate's deferred-privilege model always returns the data;
    the L1TF residency requirement is represented by the attack's distinct
    footprint — kernel-side cache traffic, no attacker prefetch.)"""

    name = "foreshadow"
    category = "foreshadow"
    slow = True

    _KSECRET_PAGE = None  # set in build

    def build(self):
        from repro.attacks.base import (
            emit_flush_probe, emit_probe_and_store, emit_probe_init,
        )
        from repro.sim.background import KernelToucherActor
        from repro.sim.isa import KERNEL_BASE

        ksecret = KERNEL_BASE + 0x8000
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        for i, bit in enumerate(self.secret_bits):
            b.data(ksecret + 8 * i, bit)
        b.reg(15, STACK_BASE)
        emit_probe_init(b, 1, 0)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        emit_flush_probe(b, 1)
        b.shl(2, 13, 3)
        b.addi(2, 2, ksecret)
        b.fence()                 # NO prefetch: the kernel actor caches it
        b.try_("recover")
        b.movi(4, 1_000_000)
        b.movi(5, 3)
        b.div(4, 4, 5)
        b.div(4, 4, 5)
        b.div(4, 4, 5)
        b.add(6, 4, 0)
        b.load(3, 2, 0)           # faulting kernel load (L1-resident)
        b.shl(3, 3, 6)
        b.add(3, 3, 1)
        b.load(3, 3, 0)
        b.label("dead")
        b.jmp("dead")
        b.label("recover")
        b.mark(PHASE_RECOVER)
        emit_probe_and_store(b, 1, 13)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        # the kernel touches its own secret lines continuously
        actor = KernelToucherActor([1], ksecret, bit_period=10_000, period=40)
        return b.build(), [actor]


class Spoiler(Attack):
    """Speculative load hazards reveal address aliasing: a load issued
    after a store whose address resolves slowly suffers a memory-order
    violation (and a measurable re-execution delay) exactly when the two
    addresses alias — leaking physical-layout information the attacker
    uses to steer Rowhammer."""

    name = "spoiler"
    category = "spoiler"

    _PROBE = 0x68000

    def build(self):
        from repro.attacks.base import emit_below_threshold

        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        for i, bit in enumerate(self.secret_bits):
            b.data(_SECRETS + 8 * i, bit)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        # the "layout secret": the store's target aliases the probed
        # address exactly when the secret bit is 1; probes stride whole
        # DRAM rows so every probe miss pays a full activation
        b.shl(2, 13, 13)
        b.addi(2, 2, self._PROBE)     # probe address P_i
        b.shl(3, 13, 3)
        b.addi(3, 3, _SECRETS)
        b.load(4, 3, 0)               # secret bit
        b.movi(5, 1)
        b.sub(5, 5, 4)                # 1 - bit
        b.shl(5, 5, 3)                # 8 when bit=0, 0 when bit=1
        b.add(5, 5, 2)                # store target: P_i or P_i + 8... same
        b.addi(5, 5, 64)              # shift to the next line when bit=0?
        b.fence()
        # recompute the store address slowly so the probe load runs ahead
        b.movi(8, 3)
        b.mul(6, 5, 8)
        b.mul(6, 6, 8)
        b.movi(8, 9)
        b.div(6, 6, 8)                # = store target, slowly
        b.movi(9, 7)
        b.rdtsc(10)
        b.store(6, 9, -64)            # aliases P_i iff bit=1
        b.load(7, 2, 0)               # speculative load of P_i
        b.fence()
        b.rdtsc(11)
        b.sub(11, 11, 10)
        b.mark(PHASE_RECOVER)
        # aliasing (bit=1): the violation squash re-executes the load,
        # which then *forwards* from the store — fast; no aliasing: the
        # load waits out its cold DRAM miss — slow
        emit_below_threshold(b, 11, 11, 60)
        emit_store_result(b, 13, 11, 12)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        return b.build(), []


class CrossContextFlushReload(Attack):
    """Flush+Reload against a *time-shared victim program* (rather than a
    background actor): attacker and victim are two full programs sharing
    one core's microarchitectural state across OS context switches
    (:class:`repro.sim.multiprog.TimeSharedMachine`)."""

    name = "cross-context-flush-reload"
    category = "cross-context-flush-reload"
    slow = True

    _SHARED = 0x50000
    _VSECRETS = 0x58000
    _BIT_PERIOD = 8000

    def __init__(self, secret_bits=None, seed=0):
        from repro.attacks.base import default_secret_bits
        if secret_bits is None:
            secret_bits = default_secret_bits(seed, n=8)
        super().__init__(secret_bits=secret_bits, seed=seed)

    def build(self):
        """Returns the *attacker* program (the victim program is built by
        :meth:`build_victim` and scheduled by :meth:`run`)."""
        from repro.attacks.base import (
            emit_below_threshold, emit_spin_until, emit_store_result,
            emit_timed_load,
        )
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.movi(1, self._SHARED)
        b.load(0, 1, 0xF80)
        b.movi(13, 0)
        b.label("bitloop")
        b.movi(4, self._BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, 400)
        emit_spin_until(b, 5, 6, "pre")
        b.clflush(1, 0)
        b.fence()
        b.addi(5, 5, self._BIT_PERIOD - 1000)
        emit_spin_until(b, 5, 6, "probe")
        emit_timed_load(b, 1, 0, 8, 9, 10)
        emit_below_threshold(b, 8, 8, 30)
        emit_store_result(b, 13, 8, 10)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        return b.build(), []

    def build_victim(self):
        """The victim program: touches the shared line throughout window i
        iff its secret bit i is 1."""
        b = ProgramBuilder("victim")
        for i, bit in enumerate(self.secret_bits):
            b.data(self._VSECRETS + 8 * i, bit)
        b.movi(1, self._SHARED)
        b.movi(2, self._VSECRETS)
        b.movi(13, 0)
        b.movi(14, len(self.secret_bits))
        b.label("window")
        b.shl(3, 13, 3)
        b.add(3, 3, 2)
        b.load(4, 3, 0)
        b.movi(5, self._SHARED - 0x1000)
        b.movi(6, 0x1000)
        b.mul(7, 4, 6)
        b.add(5, 5, 7)          # shared line iff bit == 1
        b.movi(8, self._BIT_PERIOD)
        b.mul(9, 13, 8)
        b.addi(9, 9, self._BIT_PERIOD - 200)
        # deadline is checked BEFORE each touch: a victim rescheduled past
        # its window must not emit one stale touch of the old address
        b.label("touch")
        b.rdtsc(12)
        b.blt(12, 9, "do_touch")
        b.jmp("window_done")
        b.label("do_touch")
        b.lfence()              # no wrong-path touch of a stale address
        b.load(0, 5, 0)
        b.movi(10, 0)
        b.movi(11, 30)
        b.label("pause")
        b.addi(10, 10, 1)
        b.blt(10, 11, "pause")
        b.jmp("touch")
        b.label("window_done")
        b.addi(13, 13, 1)
        b.blt(13, 14, "window")
        b.halt()
        return b.build()

    def run(self, config=None, sample_period=1000):
        from repro.attacks.base import AttackOutcome
        from repro.sim.multiprog import TimeSharedMachine

        attacker, _ = self.build()
        victim = self.build_victim()
        tsm = TimeSharedMachine(attacker, victim, config=config,
                                slice_cycles=1200, switch_overhead=40,
                                sample_period=sample_period)
        tsm.run(max_cycles=self.max_cycles())
        tsm.machine.sampler.flush(tsm.machine.cpu.committed,
                                  tsm.machine.cycle)
        result = type("R", (), {})()   # lightweight run record
        result.samples = list(tsm.machine.sampler.samples)
        result.counters = tsm.counters.as_dict()
        result.cycles = tsm.machine.cycle
        result.committed = sum(c.committed for c in tsm.contexts)
        result.halt_reason = "halt" if all(c.halted for c in tsm.contexts) \
            else "max-cycles"
        recovered = self.recover(tsm, result)
        return AttackOutcome(
            name=self.name,
            category=self.category,
            expected_bits=list(self.secret_bits),
            recovered_bits=recovered,
            run=result,
            machine=tsm,
        )


#: attacks beyond the paper's evaluated 19 categories
EXTENDED_ATTACKS = (EvictTime, ZombieLoad, Foreshadow, Spoiler,
                    CrossContextFlushReload)
