"""MDS-style fault/assist attacks: LVI, the three Medusa variants, Fallout.

All of these abuse the same hardware fast path the paper targets with its
engineered ``SquashedBytesReadFromWRQu`` HPC: a load that needs a microcode
assist transiently receives stale data from the store queue / write queue
before being squashed.  The variants differ in how the in-flight store got
there — which is exactly what distinguishes their HPC footprints:

* **LVI** — the attacker *injects* the store; the victim's assisted load
  computes on the poisoned value and transmits it.
* **Fallout** — a plain user store is picked up by the attacker's own
  assisted load (write-transient forwarding).
* **Medusa v1 (cache indexing)** — the injection store is surrounded by
  cache-set-aliasing loads.
* **Medusa v2 (unaligned store-to-load forwarding)** — the injection store
  is unaligned, exercising the slow forwarding path.
* **Medusa v3 (shadow REP MOV)** — the store is one of a block-copy loop's
  stores, sampled mid-copy.
"""

from repro.attacks.base import (
    Attack, PHASE_LEAK, PHASE_RECOVER, PHASE_SETUP, STACK_BASE,
    emit_calibration, emit_flush_probe, emit_probe_and_store,
    emit_probe_init,
)
from repro.sim import ProgramBuilder
from repro.sim.isa import ASSIST_BIT

_SECRETS = 0x10040
_BUF = 0x64000
_ASSIST_ADDR = ASSIST_BIT | 0x2000
_ALIAS_BASE = 0x100000      # cache-set-aliasing load addresses (Medusa v1)


class _AssistLeak(Attack):
    """Shared per-bit skeleton: plant an in-flight store carrying the
    secret, issue an assisted load that transiently forwards it, transmit
    through the probe array, and recover after the trap."""

    #: hook: emit extra setup ops per bit (variant colour)
    def emit_variant_prelude(self, b):
        pass

    #: hook: emit the in-flight store carrying the value in r4
    def emit_injection(self, b):
        b.movi(6, _BUF)
        b.store(6, 4, 0)

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        for i, bit in enumerate(self.secret_bits):
            b.data(_SECRETS + 8 * i, bit)
        b.reg(15, STACK_BASE)
        emit_probe_init(b, 1, 0)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        emit_flush_probe(b, 1)
        b.shl(2, 13, 3)
        b.addi(2, 2, _SECRETS)
        b.load(4, 2, 0)             # r4 = the value to traverse the channel
        b.fence()
        b.try_("recover")
        self.emit_variant_prelude(b)
        # slow chain keeps everything younger (the store) in flight long
        # enough for the forwarded value to traverse the transmit gadget
        # even when the assist page takes a DTLB walk
        b.movi(8, 1_000_000)
        b.movi(9, 3)
        b.div(8, 8, 9)
        b.div(8, 8, 9)
        b.div(8, 8, 9)
        b.add(10, 8, 0)
        self.emit_injection(b)      # in-flight store carrying r4
        b.movi(5, _ASSIST_ADDR)
        b.load(5, 5, 0)             # assisted load: forwards r4, faults
        b.shl(5, 5, 6)
        b.add(5, 5, 1)
        b.load(5, 5, 0)             # transmit
        b.label("dead")
        b.jmp("dead")
        b.label("recover")
        b.mark(PHASE_RECOVER)
        emit_probe_and_store(b, 1, 13)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        return b.build(), []


class LVI(_AssistLeak):
    """Load Value Injection: the attacker's store poisons the victim's
    assisted load; the victim computes on the poisoned value (extra ALU
    work between forwarding and transmission)."""

    name = "lvi"
    category = "lvi"

    def build(self):
        # identical skeleton; LVI's signature is the victim computation,
        # emitted by overriding the transmit distance below
        return super().build()

    def emit_variant_prelude(self, b):
        # victim-side computation the poisoned value flows through
        b.movi(11, 7)
        b.mul(12, 11, 11)
        b.add(12, 12, 11)


class Fallout(_AssistLeak):
    """Write-transient forwarding: a plain user store is leaked by the
    attacker's own assisted load."""

    name = "fallout"
    category = "fallout"


class MedusaCacheIndexing(_AssistLeak):
    """Medusa variant 1: the injection happens amid cache-set-aliasing
    loads (conflict pressure on one L1 set)."""

    name = "medusa-cache"
    category = "medusa-cache"

    def emit_variant_prelude(self, b):
        # four addresses 0x2000 (num_sets * line) apart alias one L1 set
        for k in range(4):
            b.movi(11, _ALIAS_BASE + k * 0x2000)
            b.load(12, 11, 0)


class MedusaUnaligned(_AssistLeak):
    """Medusa variant 2: unaligned store-to-load forwarding."""

    name = "medusa-unaligned"
    category = "medusa-unaligned"

    def emit_injection(self, b):
        b.movi(6, _BUF + 3)         # unaligned address
        b.storeu(6, 4, 0)


class MedusaShadowRepMov(_AssistLeak):
    """Medusa variant 3: shadow REP MOV — the assisted load samples an
    in-flight store of a block copy."""

    name = "medusa-shadow"
    category = "medusa-shadow"

    def emit_injection(self, b):
        # unrolled copy: 6 stores of the secret-carrying word
        for k in range(6):
            b.movi(6, _BUF + 8 * k)
            b.store(6, 4, 0)
