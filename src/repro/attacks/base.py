"""Shared scaffolding for attack programs.

Every attack is a program in the simulator's micro-op ISA that genuinely
exploits the simulated microarchitecture, plus (for cross-process channels)
background actors sharing that microarchitecture.  Attacks follow the
paper's phase structure — setup, leakage, recovery/transmission — marked
with MARK micro-ops so the dataset can label and exclude phases exactly as
the paper's cross-validation setting does.

Conventions (all attacks):

* secret bits live wherever the attack's threat model puts them (kernel
  memory, victim actor state, DRAM rows...);
* recovered bits are stored branchlessly to ``RESULT_BASE + 8*i``;
* ``r15`` is the stack pointer; ``r14`` is reserved as the scratch zero.
"""

import abc
from dataclasses import dataclass
from typing import List

from repro.sim import Machine, SimConfig

# -- memory-map conventions ----------------------------------------------------

PROBE_BASE = 0x20000      # transmission probe array (flush+reload lines)
RESULT_BASE = 0x70000     # recovered bits, one word each
STACK_BASE = 0x8000
CHASE_A = 0x30000         # pointer-chase cells (delay chains), distinct
CHASE_B = 0x32000         # DRAM rows so the chase misses all the way out
CHASE_C = 0x34000
SHARED_LINE_ONE = 0x50000   # shared lines victim actors touch
SHARED_LINE_ZERO = 0x51000

# -- attack phases (MARK ids), mirroring the paper's checkpointing ---------------

PHASE_IDLE = 0
PHASE_SETUP = 1
PHASE_LEAK = 2
PHASE_RECOVER = 3

PHASE_NAMES = {
    PHASE_IDLE: "idle",
    PHASE_SETUP: "setup",
    PHASE_LEAK: "leak",
    PHASE_RECOVER: "recover",
}


@dataclass
class AttackOutcome:
    """Result of executing one attack instance."""

    name: str
    category: str
    expected_bits: List[int]
    recovered_bits: List[int]
    run: object                      # sim RunResult
    machine: object = None

    @property
    def success_rate(self):
        if not self.expected_bits:
            return 0.0
        hits = sum(int(a == b) for a, b
                   in zip(self.expected_bits, self.recovered_bits))
        return hits / len(self.expected_bits)

    @property
    def balanced_accuracy(self):
        return bits_balanced_accuracy(self.expected_bits, self.recovered_bits)

    @property
    def leaked(self):
        """True when the channel recovered the secret reliably — judged by
        balanced accuracy, so a trivial constant readout never counts."""
        return self.balanced_accuracy >= 0.75 and len(self.expected_bits) > 0


def bits_balanced_accuracy(expected, recovered):
    """Mean of per-class recovery rates over the 0-bits and the 1-bits.

    0.5 for any constant readout; 1.0 only when both classes of bits are
    recovered.  When the secret is single-class (e.g. Rowhammer's success
    flag), falls back to the plain hit rate.
    """
    pairs = list(zip(expected, recovered))
    if not pairs:
        return 0.0
    rates = []
    for cls in (0, 1):
        cls_pairs = [(a, b) for a, b in pairs if a == cls]
        if cls_pairs:
            rates.append(sum(int(a == b) for a, b in cls_pairs)
                         / len(cls_pairs))
    return sum(rates) / len(rates)


class Attack(abc.ABC):
    """Base class for attack generators.

    Subclasses implement :meth:`build` (program + actors) and
    :meth:`recover` (read back the recovered secret after the run).
    """

    #: unique attack name, e.g. ``"spectre-pht"``
    name = "attack"
    #: category label used for GAN conditioning / cross-validation folds
    category = "attack"
    #: True when the attack needs more simulated time
    slow = False

    def __init__(self, secret_bits=None, seed=0):
        if secret_bits is None:
            secret_bits = default_secret_bits(seed)
        self.secret_bits = list(secret_bits)
        self.seed = seed

    @abc.abstractmethod
    def build(self):
        """Return ``(program, actors)`` for this attack instance."""

    def recover(self, machine, result):
        """Read recovered bits from the finished machine (default: the
        branchless result array convention)."""
        return [machine.memory.load(RESULT_BASE + 8 * i) & 1
                for i in range(len(self.secret_bits))]

    def max_cycles(self):
        return 400_000 if self.slow else 150_000

    def run(self, config=None, sample_period=1000):
        """Build, simulate and score this attack; returns AttackOutcome."""
        program, actors = self.build()
        machine = Machine(program, config if config is not None else SimConfig(),
                          sample_period=sample_period, actors=actors)
        result = machine.run(max_cycles=self.max_cycles())
        recovered = self.recover(machine, result)
        return AttackOutcome(
            name=self.name,
            category=self.category,
            expected_bits=list(self.secret_bits),
            recovered_bits=recovered,
            run=result,
            machine=machine,
        )


def default_secret_bits(seed, n=4):
    """A deterministic, seed-dependent, roughly balanced bit pattern."""
    state = seed * 0x9E3779B97F4A7C15 + 0x12345
    bits = []
    for _ in range(n):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        bits.append((state >> 33) & 1)
    if all(b == bits[0] for b in bits):
        bits[seed % n] ^= 1
    return bits


# -- builder idioms --------------------------------------------------------------


def emit_timed_load(b, addr_reg, offset, dst_reg, tmp_reg, scratch_reg):
    """rdtsc / load / fence / rdtsc: ``dst = cycles taken by the load``."""
    b.rdtsc(tmp_reg)
    b.load(scratch_reg, addr_reg, offset)
    b.fence()
    b.rdtsc(dst_reg)
    b.sub(dst_reg, dst_reg, tmp_reg)


def emit_timed_flush(b, addr_reg, offset, dst_reg, tmp_reg):
    """Time a CLFLUSH (the Flush+Flush observable)."""
    b.rdtsc(tmp_reg)
    b.clflush(addr_reg, offset)
    b.fence()
    b.rdtsc(dst_reg)
    b.sub(dst_reg, dst_reg, tmp_reg)


def emit_sign_bit(b, dst_reg, value_reg):
    """dst = 1 if value < 0 else 0 (branchless compare)."""
    b.shr(dst_reg, value_reg, 63)
    b.andi(dst_reg, dst_reg, 1)


def emit_store_result(b, bit_index_reg, value_reg, addr_reg):
    """mem[RESULT_BASE + 8*i] = value (clobbers addr_reg)."""
    b.shl(addr_reg, bit_index_reg, 3)
    b.addi(addr_reg, addr_reg, RESULT_BASE)
    b.store(addr_reg, value_reg)


def emit_probe_and_store(b, probe_reg, bit_index_reg, *, t0_reg=7, t1_reg=9,
                         tmp_reg=10, scratch_reg=11, addr_reg=12):
    """Time probe lines 0 and 1, recover ``t1 < t0`` branchlessly and store
    it at ``RESULT_BASE + 8*i`` — the standard recovery tail."""
    emit_timed_load(b, probe_reg, 0, t0_reg, tmp_reg, scratch_reg)
    emit_timed_load(b, probe_reg, 64, t1_reg, tmp_reg, scratch_reg)
    b.sub(tmp_reg, t1_reg, t0_reg)
    emit_sign_bit(b, tmp_reg, tmp_reg)
    emit_store_result(b, bit_index_reg, tmp_reg, addr_reg)


def emit_below_threshold(b, dst_reg, time_reg, threshold):
    """dst = 1 if time < threshold else 0 (a 'cache hit' test)."""
    b.addi(dst_reg, time_reg, -threshold)
    emit_sign_bit(b, dst_reg, dst_reg)


def emit_above_threshold(b, dst_reg, time_reg, threshold, tmp_reg):
    """dst = 1 if time > threshold else 0 (a 'contention seen' test)."""
    b.movi(tmp_reg, threshold)
    b.sub(dst_reg, tmp_reg, time_reg)
    emit_sign_bit(b, dst_reg, dst_reg)


def emit_nonzero(b, dst_reg, value_reg, tmp_reg):
    """dst = 1 if value != 0 else 0 (value assumed non-negative)."""
    b.movi(tmp_reg, 0)
    b.sub(dst_reg, tmp_reg, value_reg)
    emit_sign_bit(b, dst_reg, dst_reg)


def emit_spin_until(b, target_cycle_reg, tmp_reg, label_prefix):
    """Busy-wait until rdtsc >= target cycle.

    Ends with a fence so code after the wait cannot issue on the wrong
    path of the spin branch (which would perturb the state it measures).
    """
    b.label(f"{label_prefix}_spin")
    b.rdtsc(tmp_reg)
    b.blt(tmp_reg, target_cycle_reg, f"{label_prefix}_spin")
    b.fence()


def chase_data(b):
    """Install the 3-deep pointer-chase cells used as slow, flushable
    dependency chains (distinct DRAM rows)."""
    b.data(CHASE_A, CHASE_B)
    b.data(CHASE_B, CHASE_C)
    b.data(CHASE_C, 8)


def emit_flush_chase(b, tmp_reg):
    """Flush all three chase cells (issue-ordered by surrounding fences)."""
    for addr in (CHASE_A, CHASE_B, CHASE_C):
        b.movi(tmp_reg, addr)
        b.clflush(tmp_reg, 0)


def emit_calibration(b, iterations=25):
    """Timing-calibration preamble (real PoCs measure their hit/miss
    thresholds before attacking): repeated flush + timed load on a
    calibration line.  Emitted in the setup phase — its flush/rdtsc/DRAM
    footprint is part of what the detector learns to flag before any
    leakage happens."""
    cal_base = 0x7E0000
    b.mark(PHASE_SETUP)
    b.movi(11, cal_base)
    b.load(0, 11, 0xF80)
    b.movi(12, 0)
    b.movi(14, iterations)
    b.label("calibrate")
    b.clflush(11, 0)
    b.fence()
    b.rdtsc(9)
    b.load(0, 11, 0)
    b.fence()
    b.rdtsc(10)
    b.sub(10, 10, 9)
    b.addi(12, 12, 1)
    b.blt(12, 14, "calibrate")


def emit_probe_init(b, probe_reg, scratch_reg):
    """Point ``probe_reg`` at the probe array and warm its page in the
    DTLB without touching the probed lines."""
    b.movi(probe_reg, PROBE_BASE)
    b.load(scratch_reg, probe_reg, 0xF80)


def emit_flush_probe(b, probe_reg):
    """Flush both probe lines and the DTLB-warming line."""
    b.clflush(probe_reg, 0)
    b.clflush(probe_reg, 64)
    b.clflush(probe_reg, 0xF80)
