"""Automatic attack-generation tools (the paper's evasive-tech corpus).

The paper evaluates against 1.2M attack samples produced by Transynther
(Meltdown/MDS variant synthesis), TRRespass (many-sided Rowhammer
patterns), and Osiris (timing side-channel discovery).  These fuzzers
reproduce that methodology: each mutates a family of attack programs —
varying gadget composition, delays, aggressor patterns, decoy density and
secrets — yielding attack instances that still leak but whose HPC
footprints differ from the canonical training attacks.
"""

import random

from repro.attacks.base import default_secret_bits
from repro.attacks.evasion import EvasiveAttack
from repro.attacks.cache_attacks import FlushFlush, FlushReload, PrimeProbe
from repro.attacks.mds import (
    Fallout, LVI, MedusaCacheIndexing, MedusaShadowRepMov, MedusaUnaligned,
)
from repro.attacks.meltdown import Meltdown
from repro.attacks.other import RDRNDCovert
from repro.attacks.rowhammer import DRAMA, Rowhammer, TRRespass, _VICTIM_ROW


class _Fuzzer:
    """Base mutational fuzzer: draws (attack family, mutation parameters)
    and wraps the instance in evasion transformations.

    All randomness flows through ``self.rng`` — either the explicitly
    seeded :class:`random.Random` passed as ``rng`` or a private
    generator derived from ``seed``.  Module-level ``random`` state is
    never consulted, so two fuzzers with the same seed emit bit-identical
    attack programs regardless of what else the process has drawn."""

    name = "fuzzer"
    families = ()

    def __init__(self, seed=0, rng=None):
        self.rng = rng if rng is not None \
            else random.Random(seed * 104729 + 7)

    def mutate(self, cls, seed):
        """Instantiate one mutated attack (hookable per tool)."""
        return cls(seed=seed)

    def generate(self, count):
        """Yield ``count`` mutated, evasion-wrapped attack instances."""
        out = []
        for _ in range(count):
            cls = self.rng.choice(self.families)
            seed = self.rng.randrange(1, 1 << 16)
            base = self.mutate(cls, seed)
            attack = EvasiveAttack(
                base,
                nop_rate=self.rng.uniform(0.0, 0.5),
                prefetch_rate=self.rng.uniform(0.0, 0.25),
                camouflage_actors=self.rng.randrange(0, 3),
                seed=seed,
            )
            attack.name = f"{self.name}:{base.name}:{seed}"
            out.append(attack)
        return out


class Transynther(_Fuzzer):
    """Meltdown/MDS-variant synthesis: random fault-type gadgets."""

    name = "transynther"
    families = (Meltdown, Fallout, LVI, MedusaCacheIndexing,
                MedusaUnaligned, MedusaShadowRepMov)

    def mutate(self, cls, seed):
        bits = default_secret_bits(seed, n=self.rng.choice((3, 4, 5)))
        return cls(secret_bits=bits, seed=seed)


class TRRespassFuzzer:
    """Many-sided Rowhammer pattern search: random aggressor-row sets and
    hammer counts."""

    name = "trrespass-fuzzer"

    def __init__(self, seed=0, rng=None):
        self.rng = rng if rng is not None \
            else random.Random(seed * 15485863 + 3)

    def generate(self, count):
        out = []
        for _ in range(count):
            sides = self.rng.choice((2, 3, 4, 6))
            offsets = self.rng.sample((-3, -2, -1, 1, 2, 3), k=sides)
            iterations = self.rng.randrange(340, 520)
            seed = self.rng.randrange(1, 1 << 16)

            cls = TRRespass if sides > 2 else Rowhammer
            attack = cls(seed=seed)
            attack.aggressor_rows = tuple(sorted(_VICTIM_ROW + o
                                                 for o in offsets))
            attack.iterations = iterations
            wrapped = EvasiveAttack(attack,
                                    nop_rate=self.rng.uniform(0.0, 0.4),
                                    prefetch_rate=self.rng.uniform(0.0, 0.2),
                                    seed=seed)
            wrapped.name = f"{self.name}:{sides}-sided:{seed}"
            out.append(wrapped)
        return out


class Osiris(_Fuzzer):
    """Timing side-channel discovery: random (reset, trigger, measure)
    sequences over the cache/DRAM/RNG timing primitives."""

    name = "osiris"
    families = (FlushReload, FlushFlush, PrimeProbe, DRAMA, RDRNDCovert)

    def mutate(self, cls, seed):
        bits = default_secret_bits(seed, n=self.rng.choice((3, 4)))
        return cls(secret_bits=bits, seed=seed)


ALL_FUZZERS = (Transynther, TRRespassFuzzer, Osiris)
