"""DRAM attacks: Rowhammer (double-sided), TRRespass (many-sided), DRAMA.

The simulator's DRAM model keeps per-row activation counts since the last
refresh and corrupts neighbour rows past the bit-flip threshold, exactly
like the dedicated memory-corruption module the paper added to gem5 +
Ramulator.  Hammer loops here drive real activations: each access targets
a fresh column (cache miss) of alternating rows in one bank, forcing a
row-buffer conflict and therefore an activation per access.
"""

from repro.attacks.base import (
    Attack, PHASE_LEAK, PHASE_RECOVER, PHASE_SETUP, RESULT_BASE, STACK_BASE,
    emit_below_threshold, emit_nonzero, emit_spin_until, emit_store_result,
    emit_timed_load,
)
from repro.sim import ProgramBuilder, SimConfig
from repro.sim.background import RowToucherActor
from repro.sim.dram import DRAM


def _row_base(bank, row, config=None):
    cfg = config if config is not None else SimConfig()
    return (row * cfg.dram_banks + bank) * cfg.dram_row_bytes


_PATTERN = 0xDEAD
_HAMMER_BANK = 4
_VICTIM_ROW = 10


class Rowhammer(Attack):
    """Double-sided hammering of the two rows adjacent to the victim row.

    This is an *integrity* attack: success means a bit flip appeared in
    the victim row, so ``expected_bits == [1]``.
    """

    name = "rowhammer"
    category = "rowhammer"
    slow = True
    aggressor_rows = (_VICTIM_ROW - 1, _VICTIM_ROW + 1)
    iterations = 420

    def __init__(self, secret_bits=None, seed=0):
        super().__init__(secret_bits=[1], seed=seed)

    def build(self):
        b = ProgramBuilder(self.name)
        victim = _row_base(_HAMMER_BANK, _VICTIM_ROW)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        # plant the victim pattern
        b.movi(1, victim)
        b.movi(2, _PATTERN)
        b.store(1, 2, 0)
        b.fence()
        b.mark(PHASE_LEAK)
        # hammer loop: one fresh-column access per aggressor row per pass
        b.movi(13, 0)
        b.movi(14, self.iterations)
        b.label("hammer")
        b.andi(4, 13, 127)
        b.shl(4, 4, 6)              # column offset: (i % 128) * 64
        for j, row in enumerate(self.aggressor_rows):
            base = _row_base(_HAMMER_BANK, row)
            b.movi(5, base)
            b.add(5, 5, 4)
            b.load(6, 5, 0)
            b.clflush(5, 0)         # keep future passes reaching DRAM
        b.addi(13, 13, 1)
        b.blt(13, 14, "hammer")
        b.fence()
        b.mark(PHASE_RECOVER)
        # verify: did the victim word change?
        b.movi(1, victim)
        b.load(3, 1, 0)
        b.movi(2, _PATTERN)
        b.xor(3, 3, 2)
        emit_nonzero(b, 4, 3, 5)
        b.movi(13, 0)
        emit_store_result(b, 13, 4, 6)
        b.halt()
        return b.build(), []

    def recover(self, machine, result):
        return [machine.memory.load(RESULT_BASE) & 1]


class TRRespass(Rowhammer):
    """Many-sided (TRRespass-style) hammering: four aggressor rows around
    the victim, the pattern that defeats in-DRAM target-row-refresh."""

    name = "trrespass"
    category = "trrespass"
    aggressor_rows = (_VICTIM_ROW - 2, _VICTIM_ROW - 1,
                      _VICTIM_ROW + 1, _VICTIM_ROW + 2)
    iterations = 360


class DRAMA(Attack):
    """DRAM row-buffer covert channel: a co-resident transmitter opens a
    secret-dependent row; the receiver times an access to the monitored
    row (row hit vs row conflict)."""

    name = "drama"
    category = "drama"
    slow = True

    _BANK = 2
    _ROW_ONE = 20
    _ROW_ZERO = 30
    _BIT_PERIOD = 2000

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        probe_row = _row_base(self._BANK, self._ROW_ONE)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        # warm the DTLB for the probed page without using measurement lines
        b.movi(1, probe_row)
        b.load(0, 1, 63 * 64)
        b.fence()
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        # wait until the middle of transmission window i
        b.movi(4, self._BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, self._BIT_PERIOD // 2 + 400)
        emit_spin_until(b, 5, 6, "w")
        # fresh column => miss all the way to DRAM; latency reveals the row
        b.shl(4, 13, 6)
        b.add(4, 4, 1)
        emit_timed_load(b, 4, 0, 8, 9, 10)
        b.mark(PHASE_RECOVER)
        # row hit (~52+fence) vs row conflict (~92+fence): hit -> bit 1
        emit_below_threshold(b, 8, 8, 75)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        actor = RowToucherActor(
            self.secret_bits,
            addr_one=_row_base(self._BANK, self._ROW_ONE),
            addr_zero=_row_base(self._BANK, self._ROW_ZERO),
            bit_period=self._BIT_PERIOD,
        )
        return b.build(), [actor]
