"""The Spectre family: PHT (v1), BTB (v2), RSB, and STL (v4).

Each variant mistrains a different prediction structure of the simulated
core and transmits the transiently-read secret through a Flush+Reload
cache channel on the probe array.
"""

from repro.attacks.base import (
    Attack, CHASE_A, PROBE_BASE, PHASE_LEAK, PHASE_RECOVER, PHASE_SETUP,
    STACK_BASE, chase_data, emit_below_threshold, emit_calibration,
    emit_flush_chase,
    emit_flush_probe, emit_probe_and_store, emit_probe_init,
    emit_store_result, emit_timed_load,
)
from repro.sim import ProgramBuilder

_ARRAY1 = 0x10000           # victim array, 8 in-bounds words
_SECRETS = _ARRAY1 + 64     # out-of-bounds region holding the secret bits
_JT1 = 0x36000              # indirect-target pointer chain (Spectre-BTB)
_JT2 = 0x38000
_STL_BASE = 0x60000


class SpectrePHT(Attack):
    """Bounds-check bypass: mistrain the conditional predictor so the
    gadget's in-bounds branch speculates taken for an out-of-bounds index.
    """

    name = "spectre-pht"
    category = "spectre-pht"

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        chase_data(b)
        for i, bit in enumerate(self.secret_bits):
            b.data(_SECRETS + 8 * i, bit)
        b.reg(15, STACK_BASE)
        emit_probe_init(b, 1, 0)
        b.movi(2, _ARRAY1)
        b.movi(6, CHASE_A)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        # initial predictor training: 16 in-bounds gadget calls
        b.movi(8, 0)
        b.movi(14, 16)
        b.label("train")
        b.andi(3, 8, 7)
        b.fence()
        emit_flush_chase(b, 9)
        b.fence()
        b.call("gadget")
        b.addi(8, 8, 1)
        b.blt(8, 14, "train")
        # per-bit leak loop
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        # light retraining keeps the branch biased taken
        b.movi(8, 0)
        b.movi(14, 4)
        b.label("retrain")
        b.andi(3, 8, 7)
        b.fence()
        emit_flush_chase(b, 9)
        b.fence()
        b.call("gadget")
        b.addi(8, 8, 1)
        b.blt(8, 14, "retrain")
        b.fence()
        emit_flush_probe(b, 1)
        emit_flush_chase(b, 9)
        b.addi(3, 13, 8)            # out-of-bounds index 8+i -> secret bit i
        b.fence()
        b.call("gadget")
        b.fence()
        b.mark(PHASE_RECOVER)
        emit_probe_and_store(b, 1, 13)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        # victim gadget: if (idx < *len) touch probe[array1[idx] * 64]
        b.label("gadget")
        b.load(4, 6, 0)
        b.load(4, 4, 0)
        b.load(4, 4, 0)             # 3-deep flushed chase delays the check
        b.blt(3, 4, "inb")
        b.ret()
        b.label("inb")
        b.shl(5, 3, 3)
        b.add(5, 5, 2)
        b.load(5, 5, 0)             # array1[idx] -- the secret when OOB
        b.shl(5, 5, 6)
        b.add(5, 5, 1)
        b.load(5, 5, 0)             # transmit through the probe array
        b.ret()
        return b.build(), []


class SpectreBTB(Attack):
    """Branch-target injection: train the BTB with an indirect jump to the
    leak gadget, then redirect the architectural target to a benign block;
    the core transiently executes the gadget from the stale BTB entry."""

    name = "spectre-btb"
    category = "spectre-btb"

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        for i, bit in enumerate(self.secret_bits):
            b.data(_SECRETS + 8 * i, bit)
        b.data(_JT1, _JT2)            # two-level target chain: JT1 -> JT2
        b.data_label(_JT2, "gadget")  # JT2 -> current architectural target
        b.reg(15, STACK_BASE)
        emit_probe_init(b, 1, 0)
        b.movi(2, _ARRAY1)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        # per-bit loop: train the shared indirect-jump site with the gadget
        # target, then swing the architectural target to the benign block
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        # --- training passes through the shared jmpi site ---
        b.movi(3, _ARRAY1)                   # dummy leak address (reads 0)
        b.movi_label(4, "gadget")
        b.movi(6, _JT2)
        b.store(6, 4, 0)
        b.fence()
        b.movi(8, 0)
        b.movi(14, 6)
        b.label("train")
        b.movi_label(0, "train_cont")
        b.movi(6, _JT1)
        b.clflush(6, 0)
        b.movi(6, _JT2)
        b.clflush(6, 0)
        b.fence()
        b.jmp("do_jump")
        b.label("train_cont")
        b.addi(8, 8, 1)
        b.blt(8, 14, "train")
        # --- attack pass: architectural target becomes benign ---
        b.fence()
        emit_flush_probe(b, 1)
        b.shl(3, 13, 3)
        b.addi(3, 3, _SECRETS)               # r3 -> secret bit i
        b.movi_label(4, "benign_ret")
        b.movi(6, _JT2)
        b.store(6, 4, 0)
        b.fence()
        b.clflush(6, 0)                      # slow target resolution
        b.movi(6, _JT1)
        b.clflush(6, 0)
        b.movi_label(0, "after_attack")
        b.fence()
        b.jmp("do_jump")
        b.label("after_attack")
        b.fence()
        b.mark(PHASE_RECOVER)
        emit_probe_and_store(b, 1, 13)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        # the shared indirect-jump site (one BTB entry for train + attack)
        b.label("do_jump")
        b.movi(6, _JT1)
        b.load(4, 6, 0)
        b.load(4, 4, 0)                      # two flushed loads delay the jump
        b.jmpi(4)
        # the leak gadget: touch probe[*r3 * 64], then continue through r0
        b.label("gadget")
        b.load(5, 3, 0)
        b.shl(5, 5, 6)
        b.add(5, 5, 1)
        b.load(5, 5, 0)
        b.jmpi(0)
        b.label("benign_ret")
        b.jmpi(0)
        return b.build(), []


class SpectreRSB(Attack):
    """Return-stack desynchronization: overwrite the in-memory return
    address inside the callee; the RAS still predicts the original call
    site, which transiently executes the leak gadget."""

    name = "spectre-rsb"
    category = "spectre-rsb"

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        for i, bit in enumerate(self.secret_bits):
            b.data(_SECRETS + 8 * i, bit)
        b.reg(15, STACK_BASE)
        emit_probe_init(b, 1, 0)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        emit_flush_probe(b, 1)
        b.shl(3, 13, 3)
        b.addi(3, 3, _SECRETS)      # r3 -> secret bit i
        b.fence()
        b.call("victim_fn")
        # --- RAS-predicted return site: the transient leak gadget ---
        b.load(5, 3, 0)
        b.shl(5, 5, 6)
        b.add(5, 5, 1)
        b.load(5, 5, 0)
        b.label("spin_dead")
        b.jmp("spin_dead")
        # --- architectural return site ---
        b.label("benign_exit")
        b.fence()
        b.mark(PHASE_RECOVER)
        emit_probe_and_store(b, 1, 13)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        # callee: commit a new return address over the stack slot, then
        # flush the slot so the RET's load resolves slowly; the RAS
        # meanwhile predicts the original call site -- the leak gadget
        b.label("victim_fn")
        b.movi_label(4, "benign_exit")
        b.store(15, 4, 0)           # overwrite the return slot
        b.fence()                   # commit the overwrite
        b.clflush(15, 0)            # make the return-slot load miss
        b.fence()
        b.ret()                     # RAS: gadget; memory (slowly): benign
        return b.build(), []


class SpectreSTL(Attack):
    """Speculative store bypass (v4): a younger load issues before an older
    store's address resolves and transiently reads the stale secret."""

    name = "spectre-stl"
    category = "spectre-stl"

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        emit_probe_init(b, 1, 0)
        b.mark(PHASE_SETUP)
        emit_calibration(b)
        b.movi(13, 0)
        b.label("bitloop")
        b.mark(PHASE_LEAK)
        emit_flush_probe(b, 1)
        # plant the stale secret at a fresh per-bit address
        b.shl(2, 13, 6)
        b.addi(2, 2, _STL_BASE)     # r2 = A_i
        b.shl(3, 13, 3)
        b.addi(3, 3, _SECRETS)
        b.load(4, 3, 0)             # r4 = secret bit (victim-owned value)
        b.store(2, 4, 0)
        b.fence()                   # commit the plant
        # sanitizing store whose address resolves slowly
        b.movi(8, 3)
        b.mul(5, 2, 8)
        b.mul(5, 5, 8)
        b.movi(8, 9)
        b.div(5, 5, 8)              # r5 = A_i, computed the slow way
        b.movi(9, 0)
        b.store(5, 9, 0)            # sanitize: [A_i] <- 0 (address late)
        b.load(6, 2, 0)             # bypasses the store: stale secret
        b.shl(6, 6, 6)
        b.add(6, 6, 1)
        b.load(6, 6, 0)             # transmit
        b.fence()
        b.mark(PHASE_RECOVER)
        # after the violation squash this path re-runs with value 0, so
        # probe line 0 is always hot -- the signal is "line 1 hot"
        b.rdtsc(7)
        b.load(11, 1, 64)
        b.fence()
        b.rdtsc(9)
        b.sub(10, 9, 7)
        emit_below_threshold(b, 10, 10, 20)
        emit_store_result(b, 13, 10, 12)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        for i, bit in enumerate(self.secret_bits):
            b.data(_SECRETS + 8 * i, bit)
        return b.build(), []
