"""Microarchitectural attack corpus (19 categories, as evaluated in the
paper) plus evasion transformations and automatic attack-generation tools.

Every attack is a real exploit of the simulated microarchitecture: it
mistrains real predictors, performs real transient loads that perturb real
cache state, hammers real DRAM rows, and recovers secrets through real
timing measurements.  ``Attack.run()`` verifies the channel end-to-end.
"""

from repro.attacks.base import (
    Attack, AttackOutcome, PHASE_IDLE, PHASE_LEAK, PHASE_NAMES,
    PHASE_RECOVER, PHASE_SETUP, default_secret_bits,
)
from repro.attacks.spectre import SpectreBTB, SpectrePHT, SpectreRSB, SpectreSTL
from repro.attacks.meltdown import Meltdown
from repro.attacks.mds import (
    Fallout, LVI, MedusaCacheIndexing, MedusaShadowRepMov, MedusaUnaligned,
)
from repro.attacks.rowhammer import DRAMA, Rowhammer, TRRespass
from repro.attacks.cache_attacks import FlushFlush, FlushReload, PrimeProbe
from repro.attacks.other import (
    BranchScope, FlushConflict, LeakyBuddies, Microscope, RDRNDCovert,
    SMotherSpectre,
)
from repro.attacks.evasion import EvasiveAttack
from repro.attacks.extensions import (
    EXTENDED_ATTACKS, EvictTime, Foreshadow, Spoiler, ZombieLoad,
)
from repro.attacks.fuzzing import ALL_FUZZERS, Osiris, Transynther, TRRespassFuzzer

#: the 19 attack categories of the paper's evaluation (Section VII)
ALL_ATTACKS = (
    SpectrePHT, SpectreBTB, SpectreRSB, SpectreSTL,
    Meltdown,
    MedusaCacheIndexing, MedusaUnaligned, MedusaShadowRepMov,
    LVI, Fallout,
    Rowhammer, TRRespass, DRAMA,
    FlushReload, FlushFlush, PrimeProbe,
    SMotherSpectre, BranchScope, Microscope, LeakyBuddies,
    RDRNDCovert, FlushConflict,
)

ATTACKS_BY_NAME = {cls.name: cls
                   for cls in ALL_ATTACKS + EXTENDED_ATTACKS}
CATEGORIES = tuple(cls.category for cls in ALL_ATTACKS)

__all__ = [
    "Attack", "AttackOutcome", "EvasiveAttack",
    "PHASE_IDLE", "PHASE_SETUP", "PHASE_LEAK", "PHASE_RECOVER", "PHASE_NAMES",
    "default_secret_bits",
    "ALL_ATTACKS", "ATTACKS_BY_NAME", "CATEGORIES",
    "SpectrePHT", "SpectreBTB", "SpectreRSB", "SpectreSTL", "Meltdown",
    "MedusaCacheIndexing", "MedusaUnaligned", "MedusaShadowRepMov",
    "LVI", "Fallout", "Rowhammer", "TRRespass", "DRAMA",
    "FlushReload", "FlushFlush", "PrimeProbe",
    "SMotherSpectre", "BranchScope", "Microscope", "LeakyBuddies",
    "RDRNDCovert", "FlushConflict",
    "Transynther", "TRRespassFuzzer", "Osiris", "ALL_FUZZERS",
    "EXTENDED_ATTACKS", "EvictTime", "ZombieLoad", "Foreshadow", "Spoiler",
]
