"""Remaining attack categories: SMotherSpectre (port contention),
BranchScope (directional-predictor probing), Microscope (replay
amplification), Leaky Buddies (cross-component bus/DRAM contention),
the RDRND covert channel, and FlushConflict (KASLR probing).
"""

from repro.attacks.base import (
    Attack, PHASE_LEAK, PHASE_RECOVER, PHASE_SETUP, STACK_BASE,
    emit_above_threshold, emit_below_threshold, emit_spin_until,
    emit_store_result, emit_timed_flush,
)
from repro.sim import ProgramBuilder
from repro.sim.background import (
    BranchTrainerActor, BusHammerActor, KernelToucherActor, PortHogActor,
    RngDrainActor,
)
from repro.sim.isa import ASSIST_BIT, KERNEL_BASE
from repro.sim.units import PORT_MULDIV

_BIT_PERIOD = 2000


class SMotherSpectre(Attack):
    """Port-contention channel: a co-resident victim occupies the mul/div
    ports in a secret-dependent pattern; the attacker times a burst of
    multiplies through the shared scheduler."""

    name = "smotherspectre"
    category = "smotherspectre"
    slow = True

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        b.movi(2, 3)
        b.movi(3, 5)
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, _BIT_PERIOD // 2)
        emit_spin_until(b, 5, 6, "w")
        b.rdtsc(9)
        for _ in range(12):          # independent muls racing for 2 ports
            b.mul(7, 2, 3)
        b.fence()
        b.rdtsc(8)
        b.sub(8, 8, 9)
        b.mark(PHASE_RECOVER)
        emit_above_threshold(b, 8, 8, 13, 10)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        victim = PortHogActor(self.secret_bits, PORT_MULDIV,
                              bit_period=_BIT_PERIOD, period=2, count=2)
        return b.build(), [victim]


class BranchScope(Attack):
    """Directional-predictor probe: the victim trains the shared PHT entry
    of the attacker's probe branch; the attacker times that branch (a
    mispredict costs a squash and refetch)."""

    name = "branchscope"
    category = "branchscope"
    slow = True

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        b.movi(2, 0)
        b.movi(3, 1)
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, _BIT_PERIOD // 2)
        emit_spin_until(b, 5, 6, "w")
        b.rdtsc(9)
        b.label("probe_branch")
        b.blt(2, 3, "bs_taken")      # always taken; PHT state decides cost
        b.nop()
        b.label("bs_taken")
        b.fence()
        b.rdtsc(8)
        b.sub(8, 8, 9)
        b.mark(PHASE_RECOVER)
        # fast (predicted taken) => victim trained taken => bit 1
        emit_below_threshold(b, 8, 8, 8)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        program = b.build()
        victim = BranchTrainerActor(self.secret_bits,
                                    pc=b.label_pc("probe_branch"),
                                    bit_period=_BIT_PERIOD, period=25)
        return program, [victim]


class Microscope(Attack):
    """Replay amplification: repeated microcode-assist faults replay the
    same measurement many times, accumulating a weak port-contention
    signal until it is reliable (and leaving a huge trap footprint)."""

    name = "microscope"
    category = "microscope"
    slow = True
    replays = 6

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        b.movi(2, 3)
        b.movi(3, 5)
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, 300)
        emit_spin_until(b, 5, 6, "w")
        b.movi(12, 0)                # accumulated time
        b.movi(8, 0)                 # replay counter
        b.label("replay")
        b.try_("measure")
        b.movi(5, ASSIST_BIT | 0x3000)
        b.load(5, 5, 0)              # assist fault: forces a replay/trap
        b.label("dead")
        b.jmp("dead")
        b.label("measure")
        b.rdtsc(9)
        for _ in range(6):
            b.mul(7, 2, 3)
        b.fence()
        b.rdtsc(10)
        b.sub(10, 10, 9)
        b.add(12, 12, 10)
        b.addi(8, 8, 1)
        b.movi(14, self.replays)
        b.blt(8, 14, "replay")
        b.mark(PHASE_RECOVER)
        emit_above_threshold(b, 12, 12, 8 * self.replays, 10)
        emit_store_result(b, 13, 12, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        victim = PortHogActor(self.secret_bits, PORT_MULDIV,
                              bit_period=_BIT_PERIOD, period=2, count=2)
        return b.build(), [victim]

    def max_cycles(self):
        return 600_000


class LeakyBuddies(Attack):
    """Cross-component contention (CPU side): another agent hammers the
    memory system; the attacker watches its own open DRAM row get closed."""

    name = "leaky-buddies"
    category = "leaky-buddies"
    slow = True

    _MONITOR_ROW_BASE = 0x500000     # bank 0, row 40
    _HAMMER_BASE = 0x800000

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        b.movi(1, self._MONITOR_ROW_BASE)
        b.load(0, 1, 63 * 64)        # warm DTLB for the monitored page
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, 300)
        emit_spin_until(b, 5, 6, "open")
        b.shl(4, 13, 7)
        b.add(4, 4, 1)
        b.load(0, 4, 0)              # open the monitored row (fresh column)
        b.fence()
        b.addi(5, 5, 900)
        emit_spin_until(b, 5, 6, "check")
        b.rdtsc(9)
        b.load(0, 4, 64)             # next column: hit iff row still open
        b.fence()
        b.rdtsc(8)
        b.sub(8, 8, 9)
        b.mark(PHASE_RECOVER)
        # row conflict (victim active) => slow => bit 1
        emit_above_threshold(b, 8, 8, 75, 10)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        victim = BusHammerActor(self.secret_bits, self._HAMMER_BASE,
                                bit_period=_BIT_PERIOD, period=10, burst=2)
        return b.build(), [victim]


class RDRNDCovert(Attack):
    """RDRND covert channel: a sender drains the shared hardware-RNG
    entropy buffer; the receiver's RDRAND underflows and slows down."""

    name = "rdrnd"
    category = "rdrnd"
    slow = True

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, _BIT_PERIOD // 2 + 300)
        emit_spin_until(b, 5, 6, "w")
        b.rdtsc(9)
        b.rdrand(7)
        b.rdrand(7)
        b.fence()
        b.rdtsc(8)
        b.sub(8, 8, 9)
        b.mark(PHASE_RECOVER)
        emit_above_threshold(b, 8, 8, 100, 10)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        sender = RngDrainActor(self.secret_bits, bit_period=_BIT_PERIOD,
                               period=20, amount=4)
        return b.build(), [sender]


class FlushConflict(Attack):
    """Flush-timing KASLR probe: CLFLUSH of a cached (mapped-and-used)
    kernel line is measurably slower than of an uncached one — no demand
    access to kernel memory, no fault, defeats Spectre/Meltdown fixes."""

    name = "flushconflict"
    category = "flushconflict"
    slow = True

    _KPAGE = KERNEL_BASE + 0x4000

    def build(self):
        n = len(self.secret_bits)
        b = ProgramBuilder(self.name)
        b.reg(15, STACK_BASE)
        b.mark(PHASE_SETUP)
        b.movi(1, self._KPAGE)
        b.mark(PHASE_LEAK)
        b.movi(13, 0)
        b.label("bitloop")
        b.movi(4, _BIT_PERIOD)
        b.mul(5, 13, 4)
        b.addi(5, 5, 150)
        emit_spin_until(b, 5, 6, "pre")
        b.clflush(1, 0)              # clear state left by earlier windows
        b.fence()
        b.addi(5, 5, _BIT_PERIOD - 600)
        emit_spin_until(b, 5, 6, "w")
        emit_timed_flush(b, 1, 0, 8, 9)
        b.mark(PHASE_RECOVER)
        emit_above_threshold(b, 8, 8, 12, 10)
        emit_store_result(b, 13, 8, 10)
        b.mark(PHASE_LEAK)
        b.addi(13, 13, 1)
        b.movi(14, n)
        b.blt(13, 14, "bitloop")
        b.halt()
        victim = KernelToucherActor(self.secret_bits, self._KPAGE,
                                    bit_period=_BIT_PERIOD, period=50)
        return b.build(), [victim]
