"""The ``repro campaign --smoke`` resumability check.

A self-contained, few-second proof of the whole degradation contract,
run by ``scripts/ci.sh`` on every push:

1. an **uninterrupted** run of a small {workload x attack x defense x
   period} matrix completes clean (exit 0) — its aggregate is the
   reference;
2. a **chaos-seeded** run of the same matrix (a worker SIGKILLed
   mid-cell, a cache entry corrupted after write) completes with the
   failed cells quarantined into the taxonomy (``crash`` +
   ``cache_corrupt`` holes), exits 1, and never aborts sibling cells;
3. a ``--resume`` of the chaos run replays every completed cell from
   the verified cache (hit rate >= 90%), re-executes only the holes,
   exits 0, and produces a **byte-identical aggregate** to the
   uninterrupted run.

Any deviation prints a one-line reason and fails (exit 1), so a
regression in atomicity, cache verification, classification, or
resume determinism is caught before it can eat a real matrix.
"""

import os
import tempfile

from repro.campaign.orchestrator import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.runtime import (
    CACHE_CORRUPT, CACHE_CORRUPT_FAULT, CRASH, WORKER_KILL_FAULT,
    CampaignChaos, CampaignFault,
)

#: the smoke matrix: 4 workloads x 2 defenses x 2 periods = 16 cells
#: plus 2 attacks x 2 defenses x 2 periods = 8 cells -> 24 cells, so
#: the 2 chaos holes leave a 22/24 ~ 92% cache-hit resume (>= the 90%
#: acceptance floor)
SMOKE_SPEC = {
    "workloads": ("stream", "pointer-chase", "sort", "crypto"),
    "attacks": ("meltdown", "spectre-pht"),
    "defenses": ("none", "fence-spectre"),
    "periods": (100, 200),
    "seeds": (0,),
    "scale": 1,
    "max_cycles": 6000,
}

#: matrix cells the chaos faults target (a workload cell and an attack
#: cell, picked mid-matrix so ordering effects are exercised)
KILLED_CELL = 5
CORRUPTED_CELL = 18


def _read(path):
    with open(path, "rb") as f:
        return f.read()


def run_smoke(jobs=None, echo=print):
    """Run the three-phase resumability check; returns 0 ok / 1 failed."""
    spec = CampaignSpec(**SMOKE_SPEC)
    n = len(spec.expand())

    with tempfile.TemporaryDirectory() as clean_dir, \
            tempfile.TemporaryDirectory() as chaos_dir:
        clean = run_campaign(spec, clean_dir, processes=jobs, retries=1)
        if clean.exit_code != 0:
            echo(f"campaign smoke FAILED: uninterrupted run had "
                 f"{len(clean.holes)} holes")
            return 1
        reference = _read(clean.aggregate_path)

        chaos = CampaignChaos([
            CampaignFault(WORKER_KILL_FAULT, cell=KILLED_CELL),
            CampaignFault(CACHE_CORRUPT_FAULT, cell=CORRUPTED_CELL),
        ])
        wounded = run_campaign(spec, chaos_dir, processes=jobs,
                               retries=0, chaos=chaos)
        if wounded.exit_code != 1:
            echo(f"campaign smoke FAILED: chaos run exited "
                 f"{wounded.exit_code}, expected 1 (partial-with-holes)")
            return 1
        kinds = wounded.holes_by_kind()
        if kinds != {CRASH: 1, CACHE_CORRUPT: 1}:
            echo(f"campaign smoke FAILED: chaos holes classified "
                 f"{kinds}, expected {{crash: 1, cache_corrupt: 1}}")
            return 1
        if wounded.completed != n - 2:
            echo(f"campaign smoke FAILED: chaos run completed "
                 f"{wounded.completed}/{n}, expected {n - 2} "
                 f"(siblings must not be aborted)")
            return 1

        resumed = run_campaign(spec, chaos_dir, processes=jobs,
                               retries=1, resume=True)
        if resumed.exit_code != 0:
            echo(f"campaign smoke FAILED: resume left "
                 f"{len(resumed.holes)} holes")
            return 1
        if resumed.hit_rate < 0.9:
            echo(f"campaign smoke FAILED: resume cache-hit rate "
                 f"{resumed.hit_rate:.0%} below the 90% floor")
            return 1
        if _read(resumed.aggregate_path) != reference:
            echo("campaign smoke FAILED: resumed aggregate is not "
                 "bit-identical to the uninterrupted run")
            return 1
        quarantined = os.path.join(chaos_dir, "cache", "quarantine")
        if not os.path.isdir(quarantined) or not os.listdir(quarantined):
            echo("campaign smoke FAILED: corrupt cache entry was not "
                 "quarantined for forensics")
            return 1

    echo(f"campaign smoke ok: {n} cells; kill+corruption -> "
         f"2 classified holes, exit 1; resume -> "
         f"{resumed.hit_rate:.0%} cache-hit, bit-identical aggregate")
    return 0
