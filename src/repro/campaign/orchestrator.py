"""Fault-isolated campaign execution.

:func:`run_campaign` fans the expanded matrix out over
:class:`repro.runtime.TaskRunner` — one isolated worker process per
cell, with timeouts and deterministic-backoff retries — and degrades
gracefully by construction:

* a crashed / hung / divergent cell is quarantined into the failure
  taxonomy (plus the campaign-specific ``cache_corrupt`` kind) and
  reported as an explicit **hole**; sibling cells are never aborted;
* every completed cell is persisted to the content-addressed
  :class:`~repro.campaign.cache.CellCache` and **verified by
  read-back** before it counts — a write the disk mangled becomes a
  quarantined ``cache_corrupt`` hole, not a silently wrong aggregate;
* the aggregate table and the campaign manifest are rewritten
  atomically after *every* cell resolution, so a SIGKILL at any instant
  leaves a consistent, resumable prefix on disk;
* ``resume=True`` replays verified cache entries (corrupt ones are
  quarantined and re-executed — self-healing) and re-runs only the
  rest; a fully-resolved resumed run produces a **byte-identical
  aggregate** to an uninterrupted one, because the aggregate is a pure
  function of per-cell results.

Exit-code contract: 0 = every cell resolved (clean), 1 = completed
with holes, 2 = fatal (bad spec / unusable campaign directory — raised
as :class:`~repro.runtime.errors.CampaignError` and mapped by the CLI).
"""

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.campaign.cache import CellCache
from repro.campaign.spec import ATTACK, CampaignSpec
from repro.obs import metrics, obs_event
from repro.obs.context import current_run_id, record_lineage
from repro.runtime import (
    CACHE_CORRUPT, CampaignError, CellCorruptError, Task, TaskRunner,
    atomic_write_bytes,
)

#: bumped when the campaign manifest layout changes incompatibly
CAMPAIGN_SCHEMA = "repro.campaign/1"

MANIFEST_NAME = "campaign.json"
AGGREGATE_NAME = "aggregate.md"
CACHE_DIR = "cache"

#: cell resolution states
OK = "ok"
HOLE = "hole"
PENDING = "pending"


# -- the worker ---------------------------------------------------------------

def run_cell(payload, attempt=1):
    """Execute one matrix cell in an isolated worker process.

    ``payload`` is ``(config, kill_attempts)`` where ``config`` is the
    cell's canonical config dict; returns the cell's small, canonical
    result payload (counters digest included, so bit-identity between
    runs is checkable from the cache alone).
    """
    config, kill_attempts = payload
    if attempt <= kill_attempts:
        from repro.runtime.chaos import chaos_kill_self
        chaos_kill_self()
    from repro.attacks import ATTACKS_BY_NAME
    from repro.data.dataset import collect_source
    from repro.sim import SimConfig
    from repro.sim.config import DefenseMode
    from repro.workloads import WORKLOAD_BUILDERS, Workload

    if config["kind"] == ATTACK:
        source = ATTACKS_BY_NAME[config["name"]](seed=config["seed"])
        label = 1
    else:
        source = Workload(config["name"],
                          WORKLOAD_BUILDERS[config["name"]],
                          scale=config["scale"], seed=config["seed"])
        label = 0
    sim_config = SimConfig(defense=DefenseMode(config["defense"]))
    records, result, _ = collect_source(
        source, label=label, config=sim_config,
        sample_period=config["period"], max_cycles=config["max_cycles"],
        tenancy=config.get("tenancy", "single"))
    digest = hashlib.sha256()
    for record in records:
        digest.update(json.dumps(record.deltas,
                                 separators=(",", ":")).encode())
    return {
        "cycles": result.cycles,
        "committed": result.committed,
        "ipc": round(result.ipc, 4),
        "windows": len(records),
        "counters_sha256": digest.hexdigest(),
    }


def validate_cell_result(value):
    """Structural check run in the parent on every completed cell; a
    rejection classifies the attempt ``divergent``."""
    from repro.runtime.errors import DivergentTraceError
    if not isinstance(value, dict):
        raise DivergentTraceError(
            f"cell returned {type(value).__name__}, expected dict")
    for name in ("cycles", "committed", "windows"):
        v = value.get(name)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise DivergentTraceError(
                f"cell result field {name}={v!r} is not a "
                f"non-negative int")
    if not isinstance(value.get("ipc"), float) or value["ipc"] < 0:
        raise DivergentTraceError(
            f"cell result ipc={value.get('ipc')!r} is invalid")
    digest = value.get("counters_sha256")
    if not (isinstance(digest, str) and len(digest) == 64
            and all(c in "0123456789abcdef" for c in digest)):
        raise DivergentTraceError(
            f"cell result counters_sha256={digest!r} is not a "
            f"SHA-256 hex digest")
    if value["windows"] == 0:
        raise DivergentTraceError("cell produced no sampling windows")


# -- per-cell accounting ------------------------------------------------------

@dataclass
class CellStatus:
    """Resolution of one matrix cell."""

    cell: object                       # CampaignCell
    state: str = PENDING               # OK | HOLE | PENDING
    kind: Optional[str] = None         # failure kind for holes
    message: str = ""
    cache_hit: bool = False
    attempts: int = 0
    result: Optional[dict] = None

    @property
    def ok(self):
        return self.state == OK


@dataclass
class CampaignResult:
    """Outcome of one campaign run."""

    spec: CampaignSpec
    statuses: List[CellStatus] = field(default_factory=list)
    elapsed: float = 0.0
    aggregate_path: Optional[str] = None
    manifest_path: Optional[str] = None

    @property
    def total(self):
        return len(self.statuses)

    @property
    def completed(self):
        return sum(1 for s in self.statuses if s.ok)

    @property
    def cache_hits(self):
        return sum(1 for s in self.statuses if s.cache_hit)

    @property
    def holes(self):
        return [s for s in self.statuses if s.state == HOLE]

    @property
    def hit_rate(self):
        """Fraction of the matrix served from verified cache entries."""
        return self.cache_hits / self.total if self.total else 0.0

    def holes_by_kind(self):
        counts = {}
        for status in self.holes:
            counts[status.kind] = counts.get(status.kind, 0) + 1
        return counts

    @property
    def exit_code(self):
        """0 clean / 1 partial-with-holes (2 = fatal, raised instead)."""
        return 0 if not self.holes else 1

    def summary(self):
        """One-paragraph human-readable outcome."""
        lines = [f"campaign: {self.completed}/{self.total} cells "
                 f"({self.cache_hits} from cache, "
                 f"{self.elapsed:.1f}s)"]
        if self.holes:
            kinds = ", ".join(f"{k}={v}" for k, v
                              in sorted(self.holes_by_kind().items()))
            lines.append(f"holes: {len(self.holes)} cells ({kinds})")
            for status in self.holes:
                lines.append(f"  [{status.kind:13s}] {status.cell.key} "
                             f"after {status.attempts} attempt(s): "
                             f"{status.message}")
        return "\n".join(lines)


# -- aggregate + manifest rendering ------------------------------------------

def render_aggregate(spec, statuses):
    """The campaign aggregate as deterministic markdown.

    A pure function of the spec and per-cell results — no timestamps,
    no cache provenance — so an uninterrupted run and a
    crash-then-resume run of the same matrix render byte-identical
    files (the resume acceptance check diffs them directly).
    """
    done = sum(1 for s in statuses if s.ok)
    holes = [s for s in statuses if s.state == HOLE]
    lines = [
        "# Campaign aggregate",
        "",
        f"spec `{spec.fingerprint[:12]}` | cells {len(statuses)} "
        f"| completed {done} | holes {len(holes)}",
        "",
        "| cell | status | ipc | cycles | committed | windows "
        "| counters |",
        "|------|--------|----:|-------:|----------:|--------:"
        "|----------|",
    ]
    for status in statuses:
        cell = status.cell
        if status.ok:
            r = status.result
            lines.append(
                f"| {cell.key} | ok | {r['ipc']:.4f} | {r['cycles']} "
                f"| {r['committed']} | {r['windows']} "
                f"| {r['counters_sha256'][:12]} |")
        elif status.state == HOLE:
            lines.append(f"| {cell.key} | HOLE:{status.kind} | - | - "
                         f"| - | - | - |")
        else:
            lines.append(f"| {cell.key} | pending | - | - | - | - "
                         f"| - |")
    if holes:
        lines += ["", "## Holes", ""]
        for status in holes:
            lines.append(f"- `{status.cell.key}` [{status.kind}] "
                         f"{status.message}")
    lines.append("")
    return "\n".join(lines)


def build_campaign_manifest(spec, statuses, run_id=None,
                            parent_run=None, elapsed=0.0):
    """The campaign's durable ledger (written atomically after every
    cell resolution): spec + per-cell provenance + counts + exit code."""
    holes = [s for s in statuses if s.state == HOLE]
    hits = sum(1 for s in statuses if s.cache_hit)
    by_kind = {}
    for status in holes:
        by_kind[status.kind] = by_kind.get(status.kind, 0) + 1
    return {
        "schema": CAMPAIGN_SCHEMA,
        "run_id": run_id,
        "parent_run": parent_run,
        "spec": spec.to_dict(),
        "spec_fingerprint": spec.fingerprint,
        "counts": {
            "total": len(statuses),
            "completed": sum(1 for s in statuses if s.ok),
            "pending": sum(1 for s in statuses if s.state == PENDING),
            "holes": len(holes),
            "holes_by_kind": by_kind,
            "cache_hits": hits,
        },
        "elapsed_s": round(elapsed, 3),
        "exit_code": 1 if holes else 0,
        "cells": [
            {
                "key": s.cell.key,
                "fingerprint": s.cell.fingerprint,
                "state": s.state,
                "kind": s.kind,
                "cache_hit": s.cache_hit,
                "attempts": s.attempts,
                "message": s.message or None,
            }
            for s in statuses
        ],
    }


def read_campaign_manifest(path):
    """Load a campaign manifest; :class:`CampaignError` when unusable."""
    try:
        with open(path, "rb") as f:
            manifest = json.loads(f.read().decode())
    except (OSError, ValueError) as exc:
        raise CampaignError(
            f"unreadable campaign manifest {path}: {exc}") from exc
    if manifest.get("schema") != CAMPAIGN_SCHEMA:
        raise CampaignError(
            f"unsupported campaign manifest schema "
            f"{manifest.get('schema')!r} at {path}")
    return manifest


# -- the orchestrator ---------------------------------------------------------

class _Ledger:
    """Incremental durable state: aggregate + manifest, rewritten
    atomically on every change so any SIGKILL leaves a resumable,
    consistent prefix."""

    def __init__(self, directory, spec, statuses, parent_run):
        self.directory = directory
        self.spec = spec
        self.statuses = statuses
        self.parent_run = parent_run
        self.started = time.monotonic()
        self.aggregate_path = os.path.join(directory, AGGREGATE_NAME)
        self.manifest_path = os.path.join(directory, MANIFEST_NAME)

    def flush(self):
        elapsed = time.monotonic() - self.started
        atomic_write_bytes(
            self.aggregate_path,
            render_aggregate(self.spec, self.statuses).encode("utf-8"))
        manifest = build_campaign_manifest(
            self.spec, self.statuses, run_id=current_run_id(),
            parent_run=self.parent_run, elapsed=elapsed)
        atomic_write_bytes(
            self.manifest_path,
            json.dumps(manifest, indent=1).encode("utf-8"))
        return elapsed


def _check_resume_spec(directory, spec, resume):
    """Resume guard: a campaign directory belongs to one matrix.

    Returns the previous run's id (resume lineage) or ``None``.
    Resuming a *different* spec into the same directory would mix
    fingerprints from two matrices in one ledger — fatal, like
    :class:`~repro.runtime.errors.CheckpointError` for checkpoints.
    """
    if not resume:
        return None                      # fresh run: ledger is rewritten
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.exists(path):
        return None                      # cold resume: nothing to replay
    manifest = read_campaign_manifest(path)
    if manifest.get("spec_fingerprint") != spec.fingerprint:
        raise CampaignError(
            f"campaign at {directory} was built from a different spec "
            f"({manifest.get('spec_fingerprint', '?')[:12]} != "
            f"{spec.fingerprint[:12]}); re-run without --resume to "
            f"rebuild it")
    return manifest.get("run_id")


def run_campaign(spec, directory, *, processes=None, retries=1,
                 task_timeout=None, resume=False, chaos=None,
                 progress=None):
    """Execute (or resume) a campaign matrix; returns
    :class:`CampaignResult`.

    Never raises for per-cell failures — they become holes.  Raises
    :class:`~repro.runtime.errors.CampaignError` only for fatal,
    whole-campaign problems (spec/directory mismatch on resume).
    """
    cells = spec.expand()
    os.makedirs(directory, exist_ok=True)
    cache = CellCache(os.path.join(directory, CACHE_DIR))
    parent_run = _check_resume_spec(directory, spec, resume)
    if resume and parent_run is not None:
        record_lineage(parent_run=parent_run)

    reg = metrics()
    reg.set_gauge("campaign.cells.total", len(cells))
    obs_event("campaign.started", cells=len(cells), resume=bool(resume),
              spec_fingerprint=spec.fingerprint[:12])

    statuses = [CellStatus(cell=cell) for cell in cells]
    ledger = _Ledger(directory, spec, statuses, parent_run)

    # -- replay verified cache entries (resume) ------------------------------
    to_run = []
    for status in statuses:
        cell = status.cell
        if not resume:
            to_run.append(status)
            continue
        try:
            cached = cache.get(cell.fingerprint)
        except CellCorruptError as exc:
            # self-healing: quarantine the bad entry and re-execute
            cache.quarantine(cell.fingerprint, reason=exc.reason)
            reg.inc("campaign.cache.corrupt")
            obs_event("campaign.cache.quarantined", level="warn",
                      key=cell.key, fingerprint=cell.fingerprint[:12],
                      reason=exc.reason)
            cached = None
        if cached is None:
            to_run.append(status)
            continue
        status.state = OK
        status.cache_hit = True
        status.result = cached
        reg.inc("campaign.cells.cache_hits")
        obs_event("campaign.cell", level="debug", key=cell.key,
                  state=OK, cache_hit=True)
    ledger.flush()

    # -- fan the rest out over isolated workers ------------------------------
    by_key = {s.cell.key: s for s in to_run}
    tasks = [Task(key=s.cell.key,
                  payload=(s.cell.config(),
                           chaos.kill_attempts(s.cell.index)
                           if chaos is not None else 0))
             for s in to_run]
    if processes is None:
        processes = max(1, min(len(tasks) or 1, (os.cpu_count() or 2)))
    runner = TaskRunner(run_cell, processes=processes, retries=retries,
                        timeout=task_timeout,
                        validator=validate_cell_result)
    for outcome in runner.run(tasks):
        status = by_key[outcome.key]
        status.attempts = outcome.attempts
        if outcome.ok:
            _persist_cell(cache, status, outcome.value, chaos, reg)
        else:
            status.state = HOLE
            status.kind = outcome.kind
            status.message = outcome.message
            reg.inc("campaign.cells.holes")
            obs_event("campaign.hole", level="error",
                      key=status.cell.key, kind=outcome.kind,
                      message=outcome.message)
        reg.observe("campaign.cell.seconds", outcome.elapsed)
        ledger.flush()
        if progress is not None:
            progress(status)

    elapsed = ledger.flush()
    result = CampaignResult(spec=spec, statuses=statuses, elapsed=elapsed,
                            aggregate_path=ledger.aggregate_path,
                            manifest_path=ledger.manifest_path)
    obs_event("campaign.finished",
              level="error" if result.holes else "info",
              completed=result.completed, holes=len(result.holes),
              cache_hits=result.cache_hits, exit_code=result.exit_code)
    return result


def _persist_cell(cache, status, value, chaos, reg):
    """Durably cache a completed cell and verify by read-back; a
    mangled write quarantines the cell as a ``cache_corrupt`` hole."""
    cell = status.cell
    path = cache.put(cell, value)
    if chaos is not None:
        chaos.mangle_entry(cell.index, path)
    try:
        verified = cache.get(cell.fingerprint)
        if verified is None:
            raise CellCorruptError(
                f"cache entry vanished after write: {path}",
                reason="missing")
    except CellCorruptError as exc:
        cache.quarantine(cell.fingerprint, reason=exc.reason)
        status.state = HOLE
        status.kind = CACHE_CORRUPT
        status.message = str(exc)
        reg.inc("campaign.cache.corrupt")
        reg.inc("campaign.cells.holes")
        obs_event("campaign.cache.quarantined", level="warn",
                  key=cell.key, fingerprint=cell.fingerprint[:12],
                  reason=exc.reason)
        obs_event("campaign.hole", level="error", key=cell.key,
                  kind=CACHE_CORRUPT, message=str(exc))
        return
    status.state = OK
    status.result = verified
    reg.inc("campaign.cells.completed")
    obs_event("campaign.cell", level="debug", key=cell.key, state=OK,
              cache_hit=False)
