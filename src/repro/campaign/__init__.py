"""``repro.campaign`` — fault-isolated evaluation-matrix orchestration.

The campaign layer turns the paper's headline evaluation — the
{workload x attack x defense-mode x sampling-period} sweeps behind
Figs 14-20 — from a single fragile process into a declarative,
parallel, crash-resumable pipeline:

* :mod:`~repro.campaign.spec` — :class:`CampaignSpec` declares the
  matrix; expansion is deterministic and every cell is
  content-addressed by a SHA-256 config fingerprint;
* :mod:`~repro.campaign.cache` — :class:`CellCache` persists completed
  cells atomically + durably, verifies every read end to end, and
  quarantines corrupt entries instead of trusting them;
* :mod:`~repro.campaign.orchestrator` — :func:`run_campaign` fans
  cells out over isolated :class:`repro.runtime.TaskRunner` workers,
  degrades failures into explicit holes (crash / timeout / divergent /
  ``cache_corrupt``), rewrites the aggregate + campaign manifest
  atomically after every cell, and resumes bit-identically;
* :mod:`~repro.campaign.smoke` — the CI-run chaos proof of all of the
  above (``repro campaign --smoke``).

See ``docs/campaigns.md`` for the spec format, cache keying, the
resume + exit-code contract, and failure-hole reporting.
"""

from repro.campaign.cache import CELL_SCHEMA, CellCache
from repro.campaign.orchestrator import (
    AGGREGATE_NAME, CAMPAIGN_SCHEMA, MANIFEST_NAME, CampaignResult,
    CellStatus, build_campaign_manifest, read_campaign_manifest,
    render_aggregate, run_campaign, run_cell, validate_cell_result,
)
from repro.campaign.smoke import run_smoke
from repro.campaign.spec import (
    ATTACK, WORKLOAD, CampaignCell, CampaignSpec, CampaignSpecError,
    default_spec,
)
from repro.runtime.errors import CampaignError, CellCorruptError

__all__ = [
    "CELL_SCHEMA", "CellCache",
    "AGGREGATE_NAME", "CAMPAIGN_SCHEMA", "MANIFEST_NAME",
    "CampaignResult", "CellStatus", "build_campaign_manifest",
    "read_campaign_manifest", "render_aggregate", "run_campaign",
    "run_cell", "validate_cell_result",
    "run_smoke",
    "ATTACK", "WORKLOAD", "CampaignCell", "CampaignSpec",
    "CampaignSpecError", "default_spec",
    "CampaignError", "CellCorruptError",
]
