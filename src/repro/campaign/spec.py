"""Declarative campaign matrix specs.

A :class:`CampaignSpec` names the axes of an evaluation matrix —
{workload x attack x defense-mode x sampling-period x tenancy x seed} — and
:meth:`~CampaignSpec.expand` turns it into the flat, deterministic list
of :class:`CampaignCell` objects the orchestrator fans out.  Every cell
carries a **content-addressed fingerprint**: the SHA-256 of its
canonical configuration (via :func:`repro.obs.config_fingerprint`), so
an identical cell always lands on the same cache entry regardless of
which campaign, host, or day produced it.

Specs validate eagerly — unknown workload/attack/defense names, bad
periods, or an empty matrix raise :class:`CampaignSpecError` before any
worker is launched (the CLI maps this to exit 2, the fatal tier).
"""

import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.obs import config_fingerprint


class CampaignSpecError(ValueError):
    """The spec cannot describe a runnable matrix (unknown names, bad
    periods, empty matrix, unreadable spec file)."""


#: cell kinds
WORKLOAD = "wl"
ATTACK = "atk"


@dataclass(frozen=True)
class CampaignCell:
    """One point of the evaluation matrix.

    ``index`` is the cell's stable position in the expanded matrix (the
    aggregation order); ``fingerprint`` content-addresses the cell in
    the :class:`~repro.campaign.cache.CellCache`.
    """

    # two campaigns whose matrices order the same cell differently MUST
    # share its cache entry, so `index` stays outside the content address
    # flow: fingerprint-exempt(matrix position only, not simulated state)
    index: int
    kind: str                    # WORKLOAD | ATTACK
    name: str
    defense: str
    period: int
    seed: int
    scale: int
    max_cycles: Optional[int]
    tenancy: str = "single"      # "single" | "smt" (co-tenant noise)

    @property
    def key(self):
        """Human-readable stable identifier (unique by construction).
        Single-tenancy keys keep their historical shape; SMT cells carry
        an explicit suffix."""
        base = (f"{self.kind}-{self.name}-{self.defense}"
                f"-p{self.period}-s{self.seed}")
        return base if self.tenancy == "single" else f"{base}-{self.tenancy}"

    def config(self):
        """The canonical configuration that determines this cell's
        result — exactly what the fingerprint hashes."""
        return {"kind": self.kind, "name": self.name,
                "defense": self.defense, "period": self.period,
                "seed": self.seed, "scale": self.scale,
                "max_cycles": self.max_cycles,
                "tenancy": self.tenancy}

    @property
    def fingerprint(self):
        return config_fingerprint(self.config())


def _known_names():
    """(workload names, attack names, defense values) — imported lazily
    so spec parsing does not drag the simulator in."""
    from repro.attacks import ATTACKS_BY_NAME
    from repro.sim.config import DefenseMode
    from repro.workloads import WORKLOAD_BUILDERS
    return (set(WORKLOAD_BUILDERS), set(ATTACKS_BY_NAME),
            {m.value for m in DefenseMode})


@dataclass
class CampaignSpec:
    """The declarative matrix: axes plus shared run parameters.

    ``workloads``/``attacks`` are source names (either may be empty,
    not both); ``defenses`` are :class:`~repro.sim.config.DefenseMode`
    values; ``periods`` are sampling periods in committed instructions;
    ``seeds`` instantiate each source per seed.  ``max_cycles`` caps
    every cell's simulation (``None`` = each source's own default).
    """

    workloads: Tuple[str, ...] = ()
    attacks: Tuple[str, ...] = ()
    defenses: Tuple[str, ...] = ("none",)
    periods: Tuple[int, ...] = (100,)
    seeds: Tuple[int, ...] = (0,)
    tenancies: Tuple[str, ...] = ("single",)
    scale: int = 2
    max_cycles: Optional[int] = None

    def __post_init__(self):
        self.workloads = tuple(self.workloads)
        self.attacks = tuple(self.attacks)
        self.defenses = tuple(self.defenses)
        self.periods = tuple(int(p) for p in self.periods)
        self.seeds = tuple(int(s) for s in self.seeds)
        self.tenancies = tuple(self.tenancies)
        self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self):
        known_wl, known_atk, known_def = _known_names()
        for name in self.workloads:
            if name not in known_wl:
                raise CampaignSpecError(
                    f"unknown workload {name!r}; choose from "
                    f"{sorted(known_wl)}")
        for name in self.attacks:
            if name not in known_atk:
                raise CampaignSpecError(
                    f"unknown attack {name!r}; choose from "
                    f"{sorted(known_atk)}")
        for mode in self.defenses:
            if mode not in known_def:
                raise CampaignSpecError(
                    f"unknown defense {mode!r}; choose from "
                    f"{sorted(known_def)}")
        for period in self.periods:
            if period <= 0:
                raise CampaignSpecError(
                    f"sampling period must be positive, got {period}")
        for tenancy in self.tenancies:
            if tenancy not in ("single", "smt"):
                raise CampaignSpecError(
                    f"unknown tenancy {tenancy!r}; choose from "
                    f"['single', 'smt']")
        if self.scale <= 0:
            raise CampaignSpecError(f"scale must be positive, "
                                    f"got {self.scale}")
        if self.max_cycles is not None and self.max_cycles <= 0:
            raise CampaignSpecError(f"max_cycles must be positive, "
                                    f"got {self.max_cycles}")
        if not (self.workloads or self.attacks) or not self.defenses \
                or not self.periods or not self.seeds or not self.tenancies:
            raise CampaignSpecError(
                "empty matrix: need at least one source, defense, "
                "period, tenancy and seed")
        return self

    # -- expansion ------------------------------------------------------------

    def expand(self):
        """The flat cell list, in deterministic aggregation order
        (workloads before attacks; then name, defense, period, tenancy,
        seed — the nesting order of the axes)."""
        cells = []
        sources = [(WORKLOAD, n) for n in self.workloads] + \
                  [(ATTACK, n) for n in self.attacks]
        for kind, name in sources:
            for defense in self.defenses:
                for period in self.periods:
                    for tenancy in self.tenancies:
                        for seed in self.seeds:
                            cells.append(CampaignCell(
                                index=len(cells), kind=kind, name=name,
                                defense=defense, period=period, seed=seed,
                                scale=self.scale,
                                max_cycles=self.max_cycles,
                                tenancy=tenancy))
        return cells

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self):
        return {"workloads": list(self.workloads),
                "attacks": list(self.attacks),
                "defenses": list(self.defenses),
                "periods": list(self.periods),
                "seeds": list(self.seeds),
                "tenancies": list(self.tenancies),
                "scale": self.scale,
                "max_cycles": self.max_cycles}

    @property
    def fingerprint(self):
        """Content-addresses the whole matrix (resume guard)."""
        return config_fingerprint(self.to_dict())

    @classmethod
    def from_dict(cls, mapping):
        if not isinstance(mapping, dict):
            raise CampaignSpecError(
                f"spec must be a JSON object, got {type(mapping).__name__}")
        unknown = set(mapping) - {"workloads", "attacks", "defenses",
                                  "periods", "seeds", "tenancies", "scale",
                                  "max_cycles"}
        if unknown:
            raise CampaignSpecError(
                f"unknown spec fields: {sorted(unknown)}")
        try:
            return cls(**mapping)
        except (TypeError, ValueError) as exc:
            if isinstance(exc, CampaignSpecError):
                raise
            raise CampaignSpecError(f"bad spec: {exc}") from exc

    @classmethod
    def from_json_file(cls, path):
        try:
            with open(path, "r", encoding="utf-8") as f:
                mapping = json.load(f)
        except (OSError, ValueError) as exc:
            raise CampaignSpecError(
                f"unreadable spec file {path}: {exc}") from exc
        return cls.from_dict(mapping)


def default_spec(**overrides):
    """The full-figure-suite matrix: every workload and every attack of
    the paper's evaluation, at the paper's 100-instruction period, on
    the undefended core.  Axes are overridable piecemeal."""
    from repro.attacks import ALL_ATTACKS
    from repro.workloads import WORKLOAD_BUILDERS
    base = {"workloads": tuple(WORKLOAD_BUILDERS),
            "attacks": tuple(cls.name for cls in ALL_ATTACKS),
            "defenses": ("none",), "periods": (100,), "seeds": (0,)}
    base.update(overrides)
    return CampaignSpec(**base)
