"""Content-addressed, SHA-256-verified cell cache.

One JSON entry per completed matrix cell, named by the cell's config
fingerprint — so the cache is *inherently* resumable and shareable:
re-running any campaign whose spec covers a cached cell hits the same
entry, regardless of which run produced it.  Entries are written
atomically + durably (:mod:`repro.runtime.atomic`) and every read is
verified end to end:

* the file must parse and carry the expected schema;
* the embedded config must re-hash to the entry's file name (a
  renamed/misfiled entry cannot masquerade as another cell);
* the result payload must match its embedded SHA-256 digest.

Any violation raises :class:`~repro.runtime.errors.CellCorruptError`
and :meth:`CellCache.quarantine` moves the offender into a
``quarantine/`` subdirectory — preserved for forensics, invisible to
future lookups — so a flipped bit degrades one cell, never the run.
"""

import json
import os

from repro.obs import config_fingerprint
from repro.runtime.atomic import atomic_write_bytes, sha256_bytes
from repro.runtime.errors import CellCorruptError

#: bumped when the entry layout changes incompatibly
CELL_SCHEMA = "repro.campaign-cell/1"

QUARANTINE_DIR = "quarantine"


def _canonical(payload):
    """Canonical JSON bytes: the digest base for result payloads."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()


class CellCache:
    """A directory of fingerprint-named, checksummed cell entries."""

    def __init__(self, directory):
        self.directory = directory

    def entry_path(self, fingerprint):
        return os.path.join(self.directory, f"{fingerprint}.cell.json")

    # -- writes ---------------------------------------------------------------

    def put(self, cell, result):
        """Persist one completed cell atomically; returns the path."""
        fingerprint = cell.fingerprint
        entry = {
            "schema": CELL_SCHEMA,
            "fingerprint": fingerprint,
            "key": cell.key,
            "config": cell.config(),
            "result": result,
            "result_sha256": sha256_bytes(_canonical(result)),
        }
        path = self.entry_path(fingerprint)
        atomic_write_bytes(path, _canonical(entry))
        return path

    # -- verified reads -------------------------------------------------------

    def get(self, fingerprint):
        """Load and verify one entry.

        Returns the result payload, ``None`` when no entry exists, and
        raises :class:`CellCorruptError` when an entry exists but fails
        any verification step.
        """
        path = self.entry_path(fingerprint)
        try:
            with open(path, "rb") as f:
                raw = f.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CellCorruptError(
                f"unreadable cache entry {path}: {exc}",
                reason="unreadable") from exc
        try:
            entry = json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise CellCorruptError(
                f"unparseable cache entry {path}: {exc}",
                reason="unparseable") from exc
        if not isinstance(entry, dict) \
                or entry.get("schema") != CELL_SCHEMA:
            raise CellCorruptError(
                f"cache entry {path} has unsupported schema "
                f"{entry.get('schema') if isinstance(entry, dict) else None!r}",
                reason="schema")
        config = entry.get("config")
        if entry.get("fingerprint") != fingerprint \
                or config_fingerprint(config) != fingerprint:
            raise CellCorruptError(
                f"cache entry {path} fingerprint mismatch "
                f"(misfiled or tampered config)", reason="fingerprint")
        result = entry.get("result")
        if sha256_bytes(_canonical(result)) != entry.get("result_sha256"):
            raise CellCorruptError(
                f"cache entry {path} failed its result checksum",
                reason="checksum")
        return result

    def has_valid(self, fingerprint):
        """Whether a verified entry exists (corrupt counts as absent)."""
        try:
            return self.get(fingerprint) is not None
        except CellCorruptError:
            return False

    # -- quarantine -----------------------------------------------------------

    def quarantine(self, fingerprint, reason="corrupt"):
        """Move a bad entry out of the lookup namespace, preserving it
        under ``quarantine/`` for forensics.  Returns the new path, or
        ``None`` when the entry had already vanished."""
        src = self.entry_path(fingerprint)
        if not os.path.exists(src):
            return None
        qdir = os.path.join(self.directory, QUARANTINE_DIR)
        os.makedirs(qdir, exist_ok=True)
        dst = os.path.join(qdir, f"{fingerprint}.{reason}.cell.json")
        n = 0
        while os.path.exists(dst):
            n += 1
            dst = os.path.join(qdir,
                               f"{fingerprint}.{reason}.{n}.cell.json")
        os.replace(src, dst)
        return dst

    def quarantined(self):
        """File names currently held in quarantine (sorted)."""
        qdir = os.path.join(self.directory, QUARANTINE_DIR)
        if not os.path.isdir(qdir):
            return []
        return sorted(os.listdir(qdir))
