"""Micro-op ISA of the simulated out-of-order core.

The core executes a small RISC-like micro-op set sufficient to express
every attack and workload in the paper: ALU ops (with slow multiply/divide
useful for delaying branch resolution), loads/stores (including unaligned
stores, which exercise the store-to-load forwarding fast path that MDS-type
attacks abuse), conditional branches, indirect jumps (BTB), call/return
(RAS), cache-line flush, fences, cycle-counter and hardware-RNG reads, and
bookkeeping ops (phase markers, trap-handler registration).

Memory is word-granular (8-byte words, 64-byte cache lines).  Addresses at
or above :data:`KERNEL_BASE` are privileged: a user-mode load to them
executes transiently (returning the real data when the machine is
configured Meltdown-vulnerable) but faults when it reaches the reorder
buffer head.  Addresses with :data:`ASSIST_BIT` set model pages whose
accesses require a microcode assist; an assisted load transiently receives
stale data from the store queue / write queue (the LVI / MDS fault path)
before being squashed.
"""

import enum
from dataclasses import dataclass

#: Number of architectural integer registers.  r15 is the stack pointer by
#: software convention (CALL/RET use in-memory return addresses through it).
NUM_REGS = 16

#: Loads/stores at or above this address are privileged.
KERNEL_BASE = 0x8000_0000

#: Address bit marking "assist" pages (accesses need a microcode assist and
#: transiently forward stale buffered data before faulting).
ASSIST_BIT = 0x4000_0000

#: Bytes per machine word and per cache line.
WORD_BYTES = 8
LINE_BYTES = 64


class Op(enum.Enum):
    """Micro-operation kinds."""

    # ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"          # 4-cycle latency
    DIV = "div"          # 16-cycle latency; used to delay branch resolution
    MOVI = "movi"        # rd <- imm
    MOV = "mov"          # rd <- rs1
    # Memory
    LOAD = "load"        # rd <- mem[rs1 + imm]
    STORE = "store"      # mem[rs1 + imm] <- rs2
    STOREU = "storeu"    # unaligned store (stresses forwarding fast path)
    PREFETCH = "prefetch"
    CLFLUSH = "clflush"  # evict the line of rs1 + imm from all caches
    # Control
    BEQ = "beq"          # if rs1 == rs2 goto target
    BNE = "bne"
    BLT = "blt"
    JMP = "jmp"          # unconditional direct
    JMPI = "jmpi"        # indirect: target = value(rs1); uses the BTB
    CALL = "call"        # push return address (memory + RAS), jump
    RET = "ret"          # pop return address from memory, predict via RAS
    # Special
    FENCE = "fence"      # full serialization: younger ops wait for commit
    LFENCE = "lfence"    # loads younger than it wait for it to commit
    RDTSC = "rdtsc"      # rd <- current cycle
    RDRAND = "rdrand"    # rd <- hardware RNG (shared-unit contention timing)
    MARK = "mark"        # record an attack-phase boundary (commits as a nop)
    TRY = "try"          # register target as the trap handler
    NOP = "nop"
    HALT = "halt"


#: Ops that read memory.
LOAD_OPS = frozenset({Op.LOAD})
#: Ops that write memory.
STORE_OPS = frozenset({Op.STORE, Op.STOREU})
#: Ops resolved by the branch unit.
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.JMP, Op.JMPI, Op.CALL, Op.RET})
#: Conditional direct branches (predicted by the tournament predictor).
COND_BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT})
#: Serializing ops.
SERIALIZING_OPS = frozenset({Op.FENCE, Op.LFENCE, Op.TRY})
#: Branch kinds that can actually mispredict (direct JMP/CALL cannot) and
#: therefore shadow younger speculative work until they resolve.
MISPREDICTABLE_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.JMPI, Op.RET})

#: Execution latency (cycles) per op kind, excluding memory time.
#: (Lives here rather than in ``units`` so :class:`Instruction` can cache
#: its latency at build time; ``repro.sim.units`` re-exports it.)
OP_LATENCY = {
    Op.ADD: 1, Op.SUB: 1, Op.AND: 1, Op.OR: 1, Op.XOR: 1,
    Op.SHL: 1, Op.SHR: 1, Op.MOV: 1, Op.MOVI: 1,
    Op.MUL: 4, Op.DIV: 16,
    Op.BEQ: 1, Op.BNE: 1, Op.BLT: 1, Op.JMP: 1, Op.JMPI: 1,
    Op.CALL: 1, Op.RET: 1,
    Op.FENCE: 1, Op.LFENCE: 1, Op.TRY: 1, Op.MARK: 1, Op.NOP: 1,
    Op.HALT: 1, Op.RDTSC: 1, Op.PREFETCH: 1,
    # LOAD/STORE/CLFLUSH/RDRAND latencies are computed dynamically.
}

#: Issue-port class indices (see :class:`repro.sim.units.ExecPorts`, whose
#: per-cycle capacity/usage tables are lists indexed by these).
PORT_INT = 0
PORT_MULDIV = 1
PORT_MEM = 2

PORT_OF_OP = {
    Op.MUL: PORT_MULDIV, Op.DIV: PORT_MULDIV, Op.RDRAND: PORT_MULDIV,
    Op.LOAD: PORT_MEM, Op.STORE: PORT_MEM, Op.STOREU: PORT_MEM,
    Op.CLFLUSH: PORT_MEM, Op.PREFETCH: PORT_MEM,
}

# Small-int dispatch codes precomputed per instruction so the simulator's
# hot loop branches on integer compares instead of chains of enum
# identity checks (each of which costs a global + attribute lookup).

#: Execute-stage handler selector (mirrors the dispatch order the original
#: if/elif chain in O3Core._execute used): 0 ALU/simple, 1 load-like
#: (LOAD/RET), 2 store-like (STORE/STOREU/CALL), 3 branch, 4 CLFLUSH,
#: 5 PREFETCH, 6 RDRAND, 7 RDTSC.
EXEC_KIND_OF = {
    Op.LOAD: 1, Op.RET: 1,
    Op.STORE: 2, Op.STOREU: 2, Op.CALL: 2,
    Op.BEQ: 3, Op.BNE: 3, Op.BLT: 3, Op.JMP: 3, Op.JMPI: 3,
    Op.CLFLUSH: 4, Op.PREFETCH: 5, Op.RDRAND: 6, Op.RDTSC: 7,
}

#: ALU operation selector for O3Core._execute_alu (0 = ADD first: most
#: common in the workloads).
ALU_CODE_OF = {
    Op.ADD: 0, Op.SUB: 1, Op.AND: 2, Op.OR: 3, Op.XOR: 4,
    Op.SHL: 5, Op.SHR: 6, Op.MUL: 7, Op.DIV: 8, Op.MOVI: 9, Op.MOV: 10,
}

#: Fetch-time prediction selector: 0 not a branch, 1 conditional,
#: 2 direct JMP, 3 CALL, 4 indirect JMPI, 5 RET.
PRED_KIND_OF = {
    Op.BEQ: 1, Op.BNE: 1, Op.BLT: 1,
    Op.JMP: 2, Op.CALL: 3, Op.JMPI: 4, Op.RET: 5,
}

#: Commit-time special handling: 0 none, 1 MARK, 2 TRY, 3 FENCE/LFENCE,
#: 4 HALT.
RETIRE_KIND_OF = {
    Op.MARK: 1, Op.TRY: 2, Op.FENCE: 3, Op.LFENCE: 3, Op.HALT: 4,
}


@dataclass
class Instruction:
    """One micro-op.

    ``target`` holds a label name until :meth:`Program.finalize` resolves it
    to an instruction index.

    Pipeline-static properties (ROB classification flags, execution latency
    and issue-port class) are precomputed once here so the simulator's hot
    loop reads plain attributes instead of hashing :class:`Op` members into
    frozensets/dicts on every dispatch.  The flags use the ROB's semantics:
    CALL *is* a store (it pushes the return address) and RET *is* a load
    (it pops it).
    """

    op: Op
    rd: int = None
    rs1: int = None
    rs2: int = None
    imm: int = 0
    target: object = None  # label str before finalize, int PC after

    def __post_init__(self):
        op = self.op
        self.is_load = op in LOAD_OPS or op is Op.RET
        self.is_store = op in STORE_OPS or op is Op.CALL
        self.is_branch = op in BRANCH_OPS
        self.is_cond_branch = op in COND_BRANCH_OPS
        self.is_shadowing = op in MISPREDICTABLE_OPS
        self.is_memop = op is Op.LOAD or op is Op.STORE or op is Op.STOREU
        self.is_halt = op is Op.HALT
        self.exec_latency = OP_LATENCY.get(op, 1)
        self.port = PORT_OF_OP.get(op, PORT_INT)
        self.exec_kind = EXEC_KIND_OF.get(op, 0)
        self.alu_code = ALU_CODE_OF.get(op, -1)  # -1: no result (NOP etc.)
        self.pred_kind = PRED_KIND_OF.get(op, 0)
        self.retire_kind = RETIRE_KIND_OF.get(op, 0)
        self.srcs = tuple(r for r in (self.rs1, self.rs2) if r is not None)
        # dispatch-stage bookkeeping mask: 0 for plain ALU ops, so the hot
        # dispatch loop skips five flag checks with one integer test
        # (1 store, 2 load, 4 shadowing, 8 memop, 16 fence/lfence)
        self.disp_flags = (
            (1 if self.is_store else 0)
            | (2 if self.is_load else 0)
            | (4 if self.is_shadowing else 0)
            | (8 if self.is_memop else 0)
            | (16 if self.retire_kind == 3 else 0)
        )

    def source_regs(self):
        """Architectural registers this op reads."""
        regs = []
        if self.rs1 is not None:
            regs.append(self.rs1)
        if self.rs2 is not None:
            regs.append(self.rs2)
        return regs

    def __repr__(self):
        parts = [self.op.value]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.rs1 is not None:
            parts.append(f"r{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"r{self.rs2}")
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        return f"<{' '.join(str(p) for p in parts)}>"


def is_kernel_address(addr):
    """True when ``addr`` is in the privileged range."""
    return addr >= KERNEL_BASE


def is_assist_address(addr):
    """True when ``addr`` lies on an assist page (LVI/MDS fault path)."""
    return bool(addr & ASSIST_BIT) and not is_kernel_address(addr)


def line_of(addr):
    """Cache line index of a byte address."""
    return addr // LINE_BYTES
