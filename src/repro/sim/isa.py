"""Micro-op ISA of the simulated out-of-order core.

The core executes a small RISC-like micro-op set sufficient to express
every attack and workload in the paper: ALU ops (with slow multiply/divide
useful for delaying branch resolution), loads/stores (including unaligned
stores, which exercise the store-to-load forwarding fast path that MDS-type
attacks abuse), conditional branches, indirect jumps (BTB), call/return
(RAS), cache-line flush, fences, cycle-counter and hardware-RNG reads, and
bookkeeping ops (phase markers, trap-handler registration).

Memory is word-granular (8-byte words, 64-byte cache lines).  Addresses at
or above :data:`KERNEL_BASE` are privileged: a user-mode load to them
executes transiently (returning the real data when the machine is
configured Meltdown-vulnerable) but faults when it reaches the reorder
buffer head.  Addresses with :data:`ASSIST_BIT` set model pages whose
accesses require a microcode assist; an assisted load transiently receives
stale data from the store queue / write queue (the LVI / MDS fault path)
before being squashed.
"""

import enum
from dataclasses import dataclass

#: Number of architectural integer registers.  r15 is the stack pointer by
#: software convention (CALL/RET use in-memory return addresses through it).
NUM_REGS = 16

#: Loads/stores at or above this address are privileged.
KERNEL_BASE = 0x8000_0000

#: Address bit marking "assist" pages (accesses need a microcode assist and
#: transiently forward stale buffered data before faulting).
ASSIST_BIT = 0x4000_0000

#: Bytes per machine word and per cache line.
WORD_BYTES = 8
LINE_BYTES = 64


class Op(enum.Enum):
    """Micro-operation kinds."""

    # ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"          # 4-cycle latency
    DIV = "div"          # 16-cycle latency; used to delay branch resolution
    MOVI = "movi"        # rd <- imm
    MOV = "mov"          # rd <- rs1
    # Memory
    LOAD = "load"        # rd <- mem[rs1 + imm]
    STORE = "store"      # mem[rs1 + imm] <- rs2
    STOREU = "storeu"    # unaligned store (stresses forwarding fast path)
    PREFETCH = "prefetch"
    CLFLUSH = "clflush"  # evict the line of rs1 + imm from all caches
    # Control
    BEQ = "beq"          # if rs1 == rs2 goto target
    BNE = "bne"
    BLT = "blt"
    JMP = "jmp"          # unconditional direct
    JMPI = "jmpi"        # indirect: target = value(rs1); uses the BTB
    CALL = "call"        # push return address (memory + RAS), jump
    RET = "ret"          # pop return address from memory, predict via RAS
    # Special
    FENCE = "fence"      # full serialization: younger ops wait for commit
    LFENCE = "lfence"    # loads younger than it wait for it to commit
    RDTSC = "rdtsc"      # rd <- current cycle
    RDRAND = "rdrand"    # rd <- hardware RNG (shared-unit contention timing)
    MARK = "mark"        # record an attack-phase boundary (commits as a nop)
    TRY = "try"          # register target as the trap handler
    NOP = "nop"
    HALT = "halt"


#: Ops that read memory.
LOAD_OPS = frozenset({Op.LOAD})
#: Ops that write memory.
STORE_OPS = frozenset({Op.STORE, Op.STOREU})
#: Ops resolved by the branch unit.
BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.JMP, Op.JMPI, Op.CALL, Op.RET})
#: Conditional direct branches (predicted by the tournament predictor).
COND_BRANCH_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT})
#: Serializing ops.
SERIALIZING_OPS = frozenset({Op.FENCE, Op.LFENCE, Op.TRY})


@dataclass
class Instruction:
    """One micro-op.

    ``target`` holds a label name until :meth:`Program.finalize` resolves it
    to an instruction index.
    """

    op: Op
    rd: int = None
    rs1: int = None
    rs2: int = None
    imm: int = 0
    target: object = None  # label str before finalize, int PC after

    def source_regs(self):
        """Architectural registers this op reads."""
        regs = []
        if self.rs1 is not None:
            regs.append(self.rs1)
        if self.rs2 is not None:
            regs.append(self.rs2)
        return regs

    def __repr__(self):
        parts = [self.op.value]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.rs1 is not None:
            parts.append(f"r{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"r{self.rs2}")
        if self.imm:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        return f"<{' '.join(str(p) for p in parts)}>"


def is_kernel_address(addr):
    """True when ``addr`` is in the privileged range."""
    return addr >= KERNEL_BASE


def is_assist_address(addr):
    """True when ``addr`` lies on an assist page (LVI/MDS fault path)."""
    return bool(addr & ASSIST_BIT) and not is_kernel_address(addr)


def line_of(addr):
    """Cache line index of a byte address."""
    return addr // LINE_BYTES
