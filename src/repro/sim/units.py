"""Execution ports, operation latencies, and the shared hardware RNG unit."""

from repro.sim.isa import Op


#: Execution latency (cycles) per op kind, excluding memory time.
OP_LATENCY = {
    Op.ADD: 1, Op.SUB: 1, Op.AND: 1, Op.OR: 1, Op.XOR: 1,
    Op.SHL: 1, Op.SHR: 1, Op.MOV: 1, Op.MOVI: 1,
    Op.MUL: 4, Op.DIV: 16,
    Op.BEQ: 1, Op.BNE: 1, Op.BLT: 1, Op.JMP: 1, Op.JMPI: 1,
    Op.CALL: 1, Op.RET: 1,
    Op.FENCE: 1, Op.LFENCE: 1, Op.TRY: 1, Op.MARK: 1, Op.NOP: 1,
    Op.HALT: 1, Op.RDTSC: 1, Op.PREFETCH: 1,
    # LOAD/STORE/CLFLUSH/RDRAND latencies are computed dynamically.
}

#: Port class per op kind.
PORT_INT = "int"
PORT_MULDIV = "muldiv"
PORT_MEM = "mem"

_PORT_OF = {
    Op.MUL: PORT_MULDIV, Op.DIV: PORT_MULDIV, Op.RDRAND: PORT_MULDIV,
    Op.LOAD: PORT_MEM, Op.STORE: PORT_MEM, Op.STOREU: PORT_MEM,
    Op.CLFLUSH: PORT_MEM, Op.PREFETCH: PORT_MEM,
}


def port_of(op):
    """Execution port class an op issues to."""
    return _PORT_OF.get(op, PORT_INT)


class ExecPorts:
    """Per-cycle issue-port bookkeeping.

    Background actors (e.g. the SMotherSpectre victim) can *steal* ports
    for the next cycle, creating the port-contention timing channel.
    """

    def __init__(self, config, counters):
        self.capacity = {
            PORT_INT: config.int_alu_units,
            PORT_MULDIV: config.mul_div_units,
            PORT_MEM: config.mem_ports,
        }
        self.counters = counters
        self._used = {PORT_INT: 0, PORT_MULDIV: 0, PORT_MEM: 0}
        self._stolen = {PORT_INT: 0, PORT_MULDIV: 0, PORT_MEM: 0}

    def new_cycle(self):
        """Reset per-cycle usage; stolen ports apply to the new cycle."""
        for k in self._used:
            self._used[k] = self._stolen[k]
            self._stolen[k] = 0

    def steal(self, port, count=1):
        """Reserve ``count`` ports of a class for the next cycle."""
        self._stolen[port] = min(self._stolen[port] + count, self.capacity[port])

    def try_issue(self, op):
        """Claim a port for ``op`` this cycle; False when saturated."""
        port = port_of(op)
        if self._used[port] >= self.capacity[port]:
            self.counters.bump("iew.portContentionCycles")
            return False
        self._used[port] += 1
        if port == PORT_INT:
            self.counters.bump("iew.intAluAccesses")
        elif port == PORT_MULDIV:
            self.counters.bump("iew.mulDivAccesses")
        return True

    def pressure(self, port):
        """Current-cycle occupancy of a port class."""
        return self._used[port]


class RngUnit:
    """Shared hardware RNG (RDRAND) with a finite entropy buffer.

    Reads are fast while buffered entropy remains and slow when the buffer
    has underflowed and must refill — the timing difference is the RDRND
    covert channel.  A background sender modulates the buffer level.
    """

    def __init__(self, config, counters):
        self.config = config
        self.counters = counters
        self.level = config.rng_buffer_entries
        self._last_refill = 0

    def _refill(self, cycle):
        elapsed = cycle - self._last_refill
        if elapsed >= self.config.rng_refill_cycles:
            gained = elapsed // self.config.rng_refill_cycles
            refilled = min(self.level + gained,
                           self.config.rng_buffer_entries) - self.level
            if refilled > 0:
                self.counters.bump("rng.refills", refilled)
            self.level += refilled
            self._last_refill = cycle

    def read(self, cycle):
        """Consume one entropy word; returns (value, latency)."""
        self._refill(cycle)
        self.counters.bump("rng.reads")
        # deterministic "random" value: mixed cycle bits
        value = (cycle * 2654435761) & 0xFFFF
        if self.level > 0:
            self.level -= 1
            return value, self.config.rng_fast_latency
        self.counters.bump("rng.underflows")
        self.counters.bump("rng.contentionCycles", self.config.rng_slow_latency)
        return value, self.config.rng_slow_latency

    def drain(self, cycle, amount):
        """Background sender consumes ``amount`` entropy words."""
        self._refill(cycle)
        consumed = min(self.level, amount)
        self.level -= consumed
        if consumed:
            self.counters.bump("rng.reads", consumed)
        return consumed
