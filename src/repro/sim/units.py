"""Execution ports, operation latencies, and the shared hardware RNG unit."""

from repro.sim.hpc import CounterBank
from repro.sim.isa import (
    OP_LATENCY, PORT_INT, PORT_MULDIV, PORT_MEM, PORT_OF_OP,
)

_IX = CounterBank.index_of

_C_PORTCONTENTION = _IX("iew.portContentionCycles")
_C_INTALU = _IX("iew.intAluAccesses")
_C_MULDIV = _IX("iew.mulDivAccesses")
_C_RNG_REFILLS = _IX("rng.refills")
_C_RNG_READS = _IX("rng.reads")
_C_RNG_UNDERFLOWS = _IX("rng.underflows")
_C_RNG_CONTENTION = _IX("rng.contentionCycles")

_PORT_OF = PORT_OF_OP


def port_of(op):
    """Execution port class an op issues to."""
    return _PORT_OF.get(op, PORT_INT)


class ExecPorts:
    """Per-cycle issue-port bookkeeping.

    Background actors (e.g. the SMotherSpectre victim) can *steal* ports
    for the next cycle, creating the port-contention timing channel.
    """

    def __init__(self, config, counters):
        # lists indexed by PORT_INT / PORT_MULDIV / PORT_MEM (0/1/2)
        self.capacity = [config.int_alu_units, config.mul_div_units,
                         config.mem_ports]
        self.counters = counters
        self._used = [0, 0, 0]
        self._stolen = [0, 0, 0]

    def new_cycle(self):
        """Reset per-cycle usage; stolen ports apply to the new cycle."""
        used, stolen = self._used, self._stolen
        used[PORT_INT] = stolen[PORT_INT]
        used[PORT_MULDIV] = stolen[PORT_MULDIV]
        used[PORT_MEM] = stolen[PORT_MEM]
        stolen[PORT_INT] = stolen[PORT_MULDIV] = stolen[PORT_MEM] = 0

    def steal(self, port, count=1):
        """Reserve ``count`` ports of a class for the next cycle."""
        self._stolen[port] = min(self._stolen[port] + count, self.capacity[port])

    def try_issue(self, op):
        """Claim a port for ``op`` this cycle; False when saturated."""
        return self.try_issue_port(_PORT_OF.get(op, PORT_INT))

    def try_issue_port(self, port):
        """Port-direct variant of :meth:`try_issue` for callers that cached
        the port class (``Instruction.port``); identical accounting."""
        used = self._used
        v = self.counters.values
        if used[port] >= self.capacity[port]:
            v[_C_PORTCONTENTION] += 1
            return False
        used[port] += 1
        if port == PORT_INT:
            v[_C_INTALU] += 1
        elif port == PORT_MULDIV:
            v[_C_MULDIV] += 1
        return True

    def pressure(self, port):
        """Current-cycle occupancy of a port class."""
        return self._used[port]


class RngUnit:
    """Shared hardware RNG (RDRAND) with a finite entropy buffer.

    Reads are fast while buffered entropy remains and slow when the buffer
    has underflowed and must refill — the timing difference is the RDRND
    covert channel.  A background sender modulates the buffer level.
    """

    def __init__(self, config, counters):
        self.config = config
        self.counters = counters
        self.level = config.rng_buffer_entries
        self._last_refill = 0

    def _refill(self, cycle):
        elapsed = cycle - self._last_refill
        if elapsed >= self.config.rng_refill_cycles:
            gained = elapsed // self.config.rng_refill_cycles
            refilled = min(self.level + gained,
                           self.config.rng_buffer_entries) - self.level
            if refilled > 0:
                self.counters.values[_C_RNG_REFILLS] += refilled
            self.level += refilled
            self._last_refill = cycle

    def read(self, cycle):
        """Consume one entropy word; returns (value, latency)."""
        self._refill(cycle)
        self.counters.values[_C_RNG_READS] += 1
        # deterministic "random" value: mixed cycle bits
        value = (cycle * 2654435761) & 0xFFFF
        if self.level > 0:
            self.level -= 1
            return value, self.config.rng_fast_latency
        self.counters.values[_C_RNG_UNDERFLOWS] += 1
        self.counters.values[_C_RNG_CONTENTION] += self.config.rng_slow_latency
        return value, self.config.rng_slow_latency

    def drain(self, cycle, amount):
        """Background sender consumes ``amount`` entropy words."""
        self._refill(cycle)
        consumed = min(self.level, amount)
        self.level -= consumed
        if consumed:
            self.counters.values[_C_RNG_READS] += consumed
        return consumed
