"""Time-shared execution of two programs on one core.

The background-actor model injects a co-resident party's *events*; this
module goes further and runs a second *program*, time-multiplexed on the
same core with full context switches — the OS-scheduler view of a
cross-process attack.  Both contexts share every microarchitectural
structure (caches, TLBs, branch predictor, BTB, RAS, DRAM, RNG, ports),
and that shared state persisting across context switches is precisely the
attack surface: a victim's secret-dependent cache/predictor footprint
survives into the attacker's next time slice.

A context switch drains the pipeline (no new fetch; in-flight work
commits), saves the architectural context (registers, PC, trap handler),
and resumes the other program.  Switch cost is the drain plus a fixed
kernel overhead.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.config import SimConfig
from repro.sim.machine import Machine


@dataclass
class Context:
    """Saved architectural state of one time-shared program."""

    program: object
    regs: List[int] = field(default_factory=lambda: [0] * 16)
    fetch_pc: int = 0
    trap_handler: Optional[int] = None
    halted: bool = False
    halt_reason: Optional[str] = None
    committed: int = 0


class TimeSharedMachine:
    """Two programs round-robin on one shared core.

    Parameters
    ----------
    program_a, program_b:
        The two programs (by convention, attacker and victim).
    slice_cycles:
        Nominal cycles per time slice (the drain may add a few).
    switch_overhead:
        Fixed extra cycles charged per context switch (kernel work).
    """

    def __init__(self, program_a, program_b, config=None, slice_cycles=3000,
                 switch_overhead=50, sample_period=1000, actors=None,
                 detector_hook=None):
        self.machine = Machine(program_a,
                               config if config is not None else SimConfig(),
                               sample_period=sample_period, actors=actors,
                               detector_hook=detector_hook)
        self.slice_cycles = slice_cycles
        self.switch_overhead = switch_overhead
        self.contexts = [Context(program=program_a),
                         Context(program=program_b)]
        for reg, value in program_a.initial_regs.items():
            self.contexts[0].regs[reg] = value
        for reg, value in program_b.initial_regs.items():
            self.contexts[1].regs[reg] = value
        for addr, value in program_b.initial_memory.items():
            self.machine.memory.store(addr, value)
        # warm program B's instruction path too (A's was warmed by Machine)
        for pc in range(0, len(program_b), 8):
            self.machine.hierarchy.access_inst(pc, 0)
        # in-place reset: fast-path code holds preresolved references into
        # the bank, so ``values`` must keep its identity (see CounterBank)
        self.machine.counters.reset()
        self.current = 0
        self._load_context(0)
        self.switches = 0

    # -- context plumbing ---------------------------------------------------------

    def _save_context(self, index):
        cpu = self.machine.cpu
        ctx = self.contexts[index]
        ctx.regs = list(cpu.arch_regs)
        ctx.fetch_pc = cpu.fetch_pc
        ctx.trap_handler = cpu.trap_handler
        ctx.halted = cpu.halted
        ctx.halt_reason = cpu.halt_reason
        ctx.committed = cpu.committed

    def _load_context(self, index):
        cpu = self.machine.cpu
        ctx = self.contexts[index]
        self.machine.program = ctx.program
        cpu.arch_regs = list(ctx.regs)
        cpu.fetch_pc = ctx.fetch_pc
        cpu.trap_handler = ctx.trap_handler
        cpu.halted = ctx.halted
        cpu.halt_reason = ctx.halt_reason
        cpu.committed = ctx.committed
        cpu.fetch_buffer.clear()
        cpu._halt_fetched = False
        cpu.fetch_stall_until = self.machine.cycle + 1
        self.current = index

    def _drain(self, max_cycles):
        """Stop fetching and let in-flight work retire."""
        cpu = self.machine.cpu
        cpu._halt_fetched = True    # inhibit further fetch
        while (cpu.rob or cpu.fetch_buffer) and not cpu.halted \
                and self.machine.cycle < max_cycles:
            cpu.fetch_buffer.clear()
            cpu.step(self.machine.cycle)
            self.machine.cycle += 1

    def _switch(self, max_cycles):
        self._drain(max_cycles)
        self._save_context(self.current)
        nxt = 1 - self.current
        if self.contexts[nxt].halted:
            # other side done: keep running this context
            self.machine.cpu._halt_fetched = False
            return False
        self._load_context(nxt)
        self.machine.cycle += self.switch_overhead
        self.switches += 1
        return True

    # -- execution -------------------------------------------------------------------

    def run(self, max_cycles=1_000_000):
        """Run both programs to completion (or ``max_cycles``)."""
        machine = self.machine
        cpu = machine.cpu
        slice_end = machine.cycle + self.slice_cycles
        while machine.cycle < max_cycles:
            if cpu.halted:
                self._save_context(self.current)
                other = 1 - self.current
                if self.contexts[other].halted:
                    break
                self._load_context(other)
                slice_end = machine.cycle + self.slice_cycles
                continue
            if machine.cycle >= slice_end:
                self._switch(max_cycles)
                slice_end = machine.cycle + self.slice_cycles
                continue
            cpu.step(machine.cycle)
            if not machine.actors_suspended:
                for actor in machine.actors:
                    if machine.cycle % actor.period == 0:
                        actor.tick(machine, machine.cycle)
            machine.cycle += 1
        self._save_context(self.current)
        machine.sampler.flush(cpu.committed, machine.cycle)
        return self.contexts

    @property
    def memory(self):
        return self.machine.memory

    @property
    def hierarchy(self):
        return self.machine.hierarchy

    @property
    def counters(self):
        return self.machine.counters
