"""Co-tenant execution of two programs on one machine.

Two scheduling models live here, both sharing every microarchitectural
structure (caches, TLBs, branch predictor, BTB, RAS, DRAM, RNG, ports)
— and that shared state is precisely the attack surface: a victim's
secret-dependent cache/predictor footprint survives into the attacker's
next slice (time-sharing) or very next cycle (SMT).

:class:`TimeSharedMachine` — the OS-scheduler view of a cross-process
attack.  A context switch drains the pipeline (no new fetch; in-flight
work commits), saves the architectural context (registers, PC, trap
handler, sampler phase), and resumes the other program.  Switch cost is
the drain plus a fixed kernel overhead.

:class:`SMTMachine` — true simultaneous multithreading co-tenancy.  Two
hardware contexts (each a full :class:`~repro.sim.cpu.O3Core` frontend +
ROB) interleave cycle-by-cycle on the shared machine with *no* drain and
no kernel overhead; interference shows up as cache/TLB/predictor
contention in every window rather than only at slice boundaries.  This
is the contended-noise regime real HPC detectors face.

Accounting contract (pinned by tests/sim/test_multiprog_accounting.py):

- ``cpu.committed`` is the **global** monotonic commit count across both
  contexts, so sampler windows close exactly on the global commit
  lattice; :attr:`Context.committed` holds the per-context share.
- Pipeline-drain cycles at a context switch are stepped (and therefore
  counted in ``cpu.numCycles``) exactly once, and instructions fetched
  but discarded by the drain are charged to
  ``squash.squashedFetchedInsts`` instead of vanishing.
- ``switch_overhead`` kernel cycles advance ``cpu.numCycles`` along with
  ``machine.cycle`` (the invariant ``numCycles == machine.cycle`` holds
  throughout), and a switch forced by the running context halting is
  charged and counted like any other switch.
- A MARK retiring in one context never bleeds its phase into windows
  attributed to the other: the active phase is saved/restored with the
  context via :attr:`~repro.sim.sampler.Sampler.current_phase`.
"""

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs import metrics, obs_event
from repro.sim.config import SimConfig
from repro.sim.hpc import CounterBank
from repro.sim.machine import Machine, RunResult

_C_NUMCYCLES = CounterBank.index_of("cpu.numCycles")
_C_SQUASH_FETCHED = CounterBank.index_of("squash.squashedFetchedInsts")


@dataclass
class Context:
    """Saved architectural state of one time-shared program."""

    program: object
    regs: List[int] = field(default_factory=lambda: [0] * 16)
    fetch_pc: int = 0
    trap_handler: Optional[int] = None
    halted: bool = False
    halt_reason: Optional[str] = None
    #: instructions committed *by this context* (the global count lives
    #: on ``cpu.committed`` so the sampler lattice spans both contexts)
    committed: int = 0
    #: sampler phase active when this context was last descheduled
    phase: int = 0


class TimeSharedMachine:
    """Two programs round-robin on one shared core.

    Parameters
    ----------
    program_a, program_b:
        The two programs (by convention, attacker and victim).
    slice_cycles:
        Nominal cycles per time slice (the drain may add a few).
    switch_overhead:
        Fixed extra cycles charged per context switch (kernel work).
    """

    def __init__(self, program_a, program_b, config=None, slice_cycles=3000,
                 switch_overhead=50, sample_period=1000, actors=None,
                 detector_hook=None):
        self.machine = Machine(program_a,
                               config if config is not None else SimConfig(),
                               sample_period=sample_period, actors=actors,
                               detector_hook=detector_hook)
        self.slice_cycles = slice_cycles
        self.switch_overhead = switch_overhead
        self.contexts = [Context(program=program_a),
                         Context(program=program_b)]
        for reg, value in program_a.initial_regs.items():
            self.contexts[0].regs[reg] = value
        for reg, value in program_b.initial_regs.items():
            self.contexts[1].regs[reg] = value
        for addr, value in program_b.initial_memory.items():
            self.machine.memory.store(addr, value)
        # warm program B's instruction path too (A's was warmed by Machine)
        for pc in range(0, len(program_b), 8):
            self.machine.hierarchy.access_inst(pc, 0)
        # in-place reset: fast-path code holds preresolved references into
        # the bank, so ``values`` must keep its identity (see CounterBank)
        self.machine.counters.reset()
        self.current = 0
        #: ``cpu.committed`` at the moment the current context was loaded
        #: — the delta since is the running context's share
        self._commit_base = 0
        self._load_context(0)
        self.switches = 0

    # -- context plumbing ---------------------------------------------------------

    def _save_context(self, index):
        cpu = self.machine.cpu
        ctx = self.contexts[index]
        ctx.regs = list(cpu.arch_regs)
        ctx.fetch_pc = cpu.fetch_pc
        ctx.trap_handler = cpu.trap_handler
        ctx.halted = cpu.halted
        ctx.halt_reason = cpu.halt_reason
        # cpu.committed is global; bank this slice's commits to the context
        ctx.committed += cpu.committed - self._commit_base
        self._commit_base = cpu.committed
        ctx.phase = self.machine.sampler.current_phase

    def _load_context(self, index):
        cpu = self.machine.cpu
        ctx = self.contexts[index]
        self.machine.program = ctx.program
        cpu.arch_regs = list(ctx.regs)
        cpu.fetch_pc = ctx.fetch_pc
        cpu.trap_handler = ctx.trap_handler
        cpu.halted = ctx.halted
        cpu.halt_reason = ctx.halt_reason
        # NOTE: cpu.committed is deliberately NOT restored — it is the
        # global commit count, and rewinding it would pull the sampler's
        # next_boundary gate off the global lattice (windows would then
        # close late or never while the lower-committed context runs).
        self._commit_base = cpu.committed
        self.machine.sampler.current_phase = ctx.phase
        cpu.fetch_buffer.clear()
        cpu._halt_fetched = False
        cpu.fetch_stall_until = self.machine.cycle + 1
        self.current = index

    def _discard_fetched(self):
        """Charge and drop fetched-but-never-decoded instructions.

        Without the counter charge, instructions fetched into the buffer
        and then thrown away by a context-switch drain would be counted
        as fetched but neither committed nor squashed — the fetch/commit
        ledger would leak.
        """
        cpu = self.machine.cpu
        if cpu.fetch_buffer:
            self.machine.counters.values[_C_SQUASH_FETCHED] += \
                len(cpu.fetch_buffer)
            cpu.fetch_buffer.clear()

    def _drain(self, max_cycles):
        """Stop fetching and let in-flight work retire."""
        cpu = self.machine.cpu
        cpu._halt_fetched = True    # inhibit further fetch
        self._discard_fetched()
        while cpu.rob and not cpu.halted and self.machine.cycle < max_cycles:
            cpu.step(self.machine.cycle)
            self.machine.cycle += 1
            if cpu.fetch_buffer:
                # a retiring mispredict/trap redirect re-enabled fetch
                # mid-drain; discard the refill and re-inhibit
                self._discard_fetched()
                cpu._halt_fetched = True

    def _charge_switch(self):
        """Advance time past the kernel's context-switch work.

        The overhead advances ``cpu.numCycles`` in lockstep with
        ``machine.cycle`` so per-window cycle deltas account for every
        cycle of wall time exactly once.
        """
        self.machine.cycle += self.switch_overhead
        self.machine.counters.values[_C_NUMCYCLES] += self.switch_overhead
        self.switches += 1

    def _switch(self, max_cycles):
        self._drain(max_cycles)
        self._save_context(self.current)
        nxt = 1 - self.current
        if self.contexts[nxt].halted:
            # other side done: keep running this context
            self.machine.cpu._halt_fetched = False
            return False
        self._load_context(nxt)
        self._charge_switch()
        return True

    # -- execution -------------------------------------------------------------------

    def run(self, max_cycles=1_000_000):
        """Run both programs to completion (or ``max_cycles``)."""
        machine = self.machine
        cpu = machine.cpu
        slice_end = machine.cycle + self.slice_cycles
        while machine.cycle < max_cycles:
            if cpu.halted:
                self._save_context(self.current)
                other = 1 - self.current
                if self.contexts[other].halted:
                    break
                self._load_context(other)
                # the kernel reaping a finished process and dispatching
                # the other is a real switch: same overhead, same count
                self._charge_switch()
                slice_end = machine.cycle + self.slice_cycles
                continue
            if machine.cycle >= slice_end:
                self._switch(max_cycles)
                slice_end = machine.cycle + self.slice_cycles
                continue
            cpu.step(machine.cycle)
            if not machine.actors_suspended:
                for actor in machine.actors:
                    if machine.cycle % actor.period == 0:
                        actor.tick(machine, machine.cycle)
            machine.cycle += 1
        self._save_context(self.current)
        machine.sampler.flush(cpu.committed, machine.cycle)
        return self.contexts

    @property
    def memory(self):
        return self.machine.memory

    @property
    def hierarchy(self):
        return self.machine.hierarchy

    @property
    def counters(self):
        return self.machine.counters


# -- SMT co-tenancy ---------------------------------------------------------------


class _SmtSamplerGate:
    """Per-thread view of the shared sampler's commit-boundary gate.

    The core's inline fast path compares its *own* committed count
    against ``sampler.next_boundary``; under SMT the lattice is global,
    so this gate rebases the boundary by the sibling thread's commits:
    ``own >= (global_boundary - sibling)`` is exactly
    ``own + sibling >= global_boundary``.  Commits are one per stepped
    cycle at most, so the global count crosses each boundary exactly
    once and windows close on the lattice precisely.
    """

    __slots__ = ("_sampler", "sibling")

    def __init__(self, sampler):
        self._sampler = sampler
        self.sibling = None      # the other thread's core (set by SMTMachine)

    @property
    def next_boundary(self):
        return self._sampler.next_boundary - self.sibling.committed


class _SmtThreadView:
    """What one SMT hardware context sees as "the machine".

    Shared structures are plain attribute aliases onto the real
    :class:`~repro.sim.machine.Machine` (same objects, so contention is
    physical); per-thread state is just the program and the rebased
    sampler gate.  Commit-count hooks translate the core's thread-local
    ``committed`` into the global count before they reach the shared
    sampler, so windows and phase marks land on the global lattice.
    """

    def __init__(self, machine, program):
        self._machine = machine
        self.program = program
        self.config = machine.config
        self.counters = machine.counters
        self.memory = machine.memory
        self.dram = machine.dram
        self.hierarchy = machine.hierarchy
        self.dtlb = machine.dtlb
        self.itlb = machine.itlb
        self.rng = machine.rng
        self.branch_predictor = machine.branch_predictor
        self.btb = machine.btb
        self.ras = machine.ras
        self.prefetcher = machine.prefetcher
        self.sampler = _SmtSamplerGate(machine.sampler)

    @property
    def cycle(self):
        return self._machine.cycle

    @property
    def user_mode(self):
        return self._machine.user_mode

    @property
    def actors_suspended(self):
        return self._machine.actors_suspended

    # -- commit hooks: rebase thread-local counts to the global lattice --

    def record_phase(self, phase, commit_index):
        self._machine.sampler.record_phase(
            phase, commit_index + self.sampler.sibling.committed)

    def on_commit(self, committed):
        self._machine.on_commit(committed + self.sampler.sibling.committed)


@dataclass
class ThreadResult:
    """Per-hardware-context outcome of an SMT run."""

    program_name: str
    committed: int
    halted: bool
    halt_reason: Optional[str]
    regs: List[int]


@dataclass
class SMTRunResult(RunResult):
    """A :class:`RunResult` whose base fields describe the whole machine
    (global commit count, shared counters/samples) plus per-thread
    outcomes.  ``program_name``/``regs`` describe thread 0 so existing
    consumers (attack ``recover``, campaign validation) keep working."""

    threads: List[ThreadResult] = field(default_factory=list)


class SMTMachine:
    """Two programs running simultaneously on one core, cycle-interleaved.

    Each thread owns a full frontend + ROB (a private :class:`O3Core`
    instance) but every cache, TLB, predictor table, DRAM bank and
    execution-port pool is the *same object*, so co-tenant interference
    is physical, not modeled: thread A's miss evicts thread B's line on
    the very cycle it happens.  Scheduling is fine-grained round-robin —
    thread ``cycle & 1`` steps each cycle, the sibling steps if it has
    halted — so exactly one core steps per machine cycle and the
    invariant ``cpu.numCycles == machine.cycle`` carries over from the
    single-threaded machine.

    SMT runs are never memoized (the conservative fallback in
    :mod:`repro.sim.memo` only fingerprints single-context machines).
    """

    def __init__(self, program_a, program_b, config=None, sample_period=1000,
                 actors=None, detector_hook=None, core_cls=None):
        self.machine = Machine(program_a,
                               config if config is not None else SimConfig(),
                               sample_period=sample_period, actors=actors,
                               detector_hook=detector_hook,
                               core_cls=core_cls)
        machine = self.machine
        core_cls = core_cls or type(machine.cpu)
        for addr, value in program_b.initial_memory.items():
            machine.memory.store(addr, value)
        # warm program B's instruction path too (A's was warmed by Machine)
        for pc in range(0, len(program_b), 8):
            machine.hierarchy.access_inst(pc, 0)
            machine.itlb.access(pc * 4)
        self.programs = [program_a, program_b]
        self.views = [_SmtThreadView(machine, program_a),
                      _SmtThreadView(machine, program_b)]
        self.cores = [core_cls(self.views[0]), core_cls(self.views[1])]
        # one physical issue-port pool, shared like the caches
        self.cores[1].ports = self.cores[0].ports
        self.views[0].sampler.sibling = self.cores[1]
        self.views[1].sampler.sibling = self.cores[0]
        for thread, program in enumerate(self.programs):
            for reg, value in program.initial_regs.items():
                self.cores[thread].arch_regs[reg] = value
        # expose thread 0 as "the" cpu for detector hooks / attack
        # recovery code that reads machine.cpu (the throwaway core the
        # Machine constructor built is dropped here, never stepped)
        machine.cpu = self.cores[0]
        # in-place reset: the warm-up above dirtied shared counters
        machine.counters.reset()

    def run(self, max_cycles=1_000_000):
        """Run both threads to completion (or ``max_cycles``); returns an
        :class:`SMTRunResult`."""
        machine = self.machine
        cores = self.cores
        actors = machine.actors
        wall_start = time.perf_counter()
        while machine.cycle < max_cycles:
            core = cores[machine.cycle & 1]
            if core.halted:
                core = cores[1 - (machine.cycle & 1)]
                if core.halted:
                    break
            core.step(machine.cycle)
            if actors and not machine.actors_suspended:
                for actor in actors:
                    if machine.cycle % actor.period == 0:
                        actor.tick(machine, machine.cycle)
            machine.cycle += 1
        committed = cores[0].committed + cores[1].committed
        machine.sampler.flush(committed, machine.cycle)
        both_halted = cores[0].halted and cores[1].halted
        self._record_run_observations(time.perf_counter() - wall_start,
                                      committed, both_halted)
        return SMTRunResult(
            program_name=self.programs[0].name,
            cycles=machine.cycle,
            committed=committed,
            halt_reason=cores[0].halt_reason if both_halted else "max-cycles",
            samples=list(machine.sampler.samples),
            phase_marks=list(machine.sampler.phase_marks),
            counters=machine.counters.as_dict(),
            regs=list(cores[0].arch_regs),
            detections=list(machine.detections),
            threads=[ThreadResult(
                program_name=self.programs[t].name,
                committed=cores[t].committed,
                halted=cores[t].halted,
                halt_reason=cores[t].halt_reason,
                regs=list(cores[t].arch_regs),
            ) for t in (0, 1)],
        )

    def _record_run_observations(self, elapsed, committed, both_halted):
        machine = self.machine
        reg = metrics()
        reg.inc("sim.runs")
        reg.inc("sim.smt.runs")
        reg.inc("sim.cycles", machine.cycle)
        reg.inc("sim.committed", committed)
        reg.inc("sim.detections", len(machine.detections))
        reg.observe("sim.run.seconds", elapsed)
        obs_event("sim.run", level="debug",
                  program=f"{self.programs[0].name}+{self.programs[1].name}",
                  cycles=machine.cycle,
                  committed=committed,
                  ipc=round(committed / machine.cycle, 4)
                  if machine.cycle else 0.0,
                  halt=self.cores[0].halt_reason if both_halted
                  else "max-cycles",
                  windows=len(machine.sampler.samples),
                  elapsed_s=round(elapsed, 6))

    @property
    def memory(self):
        return self.machine.memory

    @property
    def hierarchy(self):
        return self.machine.hierarchy

    @property
    def counters(self):
        return self.machine.counters
