"""The reference (pre-optimization) scheduler, kept as an executable spec.

:class:`ReferenceO3Core` preserves the original scan-based scheduling of
the seed simulator verbatim: per-cycle operand scans in ``_sources_ready``,
``any()`` sweeps over the fence/branch lists, a sort over all in-flight
executions in ``_complete``, and full-ROB walks for memory-order checks.
The optimized :class:`~repro.sim.cpu.O3Core` replaces those with wakeup
lists, a completion heap and ordered-head checks — and must stay
**counter-stream bit-identical** to this class.  The contract is enforced
by ``tests/sim/test_counter_equivalence.py`` and the bit-exactness harness
in ``scripts/bench_sim.py``; select this core with::

    Machine(program, config, core_cls=ReferenceO3Core)

When changing scheduling behaviour intentionally, change BOTH cores (and
expect the equivalence suite to tell you when they drift apart).

This class also keeps the string-keyed ``counters.bump("...")`` calls of
the seed in the methods it overrides, so the equivalence run doubles as a
check that the preresolved index constants in ``cpu.py`` hit the same
slots as the names they replaced.
"""

from repro.sim.config import DefenseMode
from repro.sim.cpu import O3Core
from repro.sim.isa import Op, WORD_BYTES
from repro.sim.rob import EntryState, RobEntry


class ReferenceO3Core(O3Core):
    """Seed scheduler: correct, simple, O(in-flight) scans per cycle."""

    # -- rename: operand links in a dict, resolved lazily at execute --------

    def _dispatch(self, cycle):
        """Seed rename/dispatch: each source register maps to ``("rob",
        seq)`` or ``("val", value)`` in ``entry.sources``; the value is
        looked up when the op executes.  The optimized core instead
        captures operand *values* eagerly (RobEntry.v1/v2) and forwards
        the rest through wakeup lists — this scan-free spec is what that
        capture must stay equivalent to."""
        fetch_buffer = self.fetch_buffer
        if not fetch_buffer:
            return
        config = self.config
        c = self.counters
        by_seq = self.entries_by_seq
        rename_map = self.rename_map
        dispatched = 0
        while fetch_buffer and dispatched < config.fetch_width:
            if len(self.rob) >= config.rob_entries:
                c.bump("rob.fullEvents")
                c.bump("rename.blockCycles")
                break
            if len(self.waiting) >= config.iq_entries:
                c.bump("iq.fullEvents")
                c.bump("rename.blockCycles")
                break
            pc, inst, ptaken, ptarget = fetch_buffer.popleft()
            seq = self.next_seq
            entry = RobEntry(seq, pc, inst, ptaken, ptarget)
            self.next_seq = seq + 1
            entry.sources = sources = {}
            for reg in inst.srcs:
                # the rename map holds producer *entries* (see the optimized
                # dispatch); the seed's sources dict still links by seq
                producer = rename_map[reg]
                if producer is not None and producer.seq in by_seq:
                    sources[reg] = ("rob", producer.seq)
                else:
                    sources[reg] = ("val", self.arch_regs[reg])
            rd = inst.rd
            if rd is not None:
                rename_map[rd] = entry
                c.bump("rename.committedMaps")
            self.rob.append(entry)
            by_seq[seq] = entry
            self.waiting.append(entry)
            if entry.is_store:
                self.store_entries.append(entry)
            if entry.is_load:
                self.load_entries.append(entry)
            if inst.is_shadowing:
                self.unresolved_branches.append(entry)
            op = inst.op
            if op is Op.FENCE:
                self.fences.append(entry)
                c.bump("rename.serializingInsts")
            elif op is Op.LFENCE:
                self.lfences.append(entry)
                c.bump("rename.serializingInsts")
            if inst.is_memop and any(b.seq < seq
                                     for b in self.unresolved_branches):
                c.bump("iq.specInstsAdded")
            dispatched += 1
        if dispatched:
            c.bump("decode.insts", dispatched)
            c.bump("rename.renamedInsts", dispatched)
            c.bump("iq.instsAdded", dispatched)
            c.bump("rob.reads", dispatched)

    def _sources_ready(self, entry):
        """Per-entry operand scan (the fast issue path uses the wakeup
        lists' ``entry.pending_sources == 0`` instead)."""
        for source in entry.sources.values():
            if source[0] == "rob":
                producer = self.entries_by_seq.get(source[1])
                # a committed producer's value is in the architectural file
                if producer is not None and producer.state is not EntryState.DONE:
                    return False
        return True

    def _operand(self, entry, reg):
        kind, payload = entry.sources[reg]
        if kind == "val":
            return payload
        producer = self.entries_by_seq.get(payload)
        if producer is None:
            return self.arch_regs[reg]
        return producer.result

    def _execute(self, entry, cycle):
        """Seed execute stage: operands resolved through ``_operand`` at
        this point (the optimized core reads the captured v1/v2 slots and
        pushes straight onto its completion heap)."""
        entry.state = EntryState.EXECUTING
        entry.issue_cycle = cycle
        entry.under_shadow = any(b.seq < entry.seq
                                 for b in self.unresolved_branches)
        self.waiting.remove(entry)
        inst = entry.inst
        kind = inst.exec_kind
        if kind == 0:
            latency = self._execute_alu(entry)
        elif kind == 1:
            latency = self._execute_load(entry, cycle)
        elif kind == 3:
            latency = self._execute_branch(entry, cycle)
        elif kind == 2:
            latency = self._execute_store(entry, cycle)
        elif kind == 4:
            entry.addr = self._operand(entry, inst.rs1) + inst.imm
            latency = self.m.hierarchy.flush_line(entry.addr, cycle)
        elif kind == 5:
            self.m.hierarchy.prefetch(
                self._operand(entry, inst.rs1) + inst.imm, cycle)
            latency = 1
        elif kind == 6:
            value, latency = self.m.rng.read(cycle)
            entry.result = value
        else:  # RDTSC
            entry.result = cycle
            self.counters.bump("cpu.rdtscReads")
            latency = 1
        entry.done_cycle = cycle + (latency if latency > 1 else 1)
        self._note_executing(entry)

    def _execute_alu(self, entry):
        inst = entry.inst
        op = inst.op
        if inst.rs1 is not None:
            v1 = self._operand(entry, inst.rs1)
        else:
            v1 = 0
        if inst.rs2 is not None:
            v2 = self._operand(entry, inst.rs2)
        else:
            v2 = inst.imm
        if op is Op.ADD:
            entry.result = v1 + v2
        elif op is Op.SUB:
            entry.result = v1 - v2
        elif op is Op.AND:
            entry.result = v1 & v2
        elif op is Op.OR:
            entry.result = v1 | v2
        elif op is Op.XOR:
            entry.result = v1 ^ v2
        elif op is Op.SHL:
            entry.result = v1 << (inst.imm & 63)
        elif op is Op.SHR:
            entry.result = v1 >> (inst.imm & 63)
        elif op is Op.MUL:
            entry.result = v1 * v2
        elif op is Op.DIV:
            entry.result = v1 // v2 if v2 else 0
        elif op is Op.MOVI:
            entry.result = inst.imm
        elif op is Op.MOV:
            entry.result = v1
        return inst.exec_latency

    # -- execution bookkeeping: flat list instead of a heap -----------------

    def _note_executing(self, entry):
        self.executing.append(entry)

    def _note_ready(self, entry):
        # no ready list: the reference _issue rescans `waiting` each cycle
        # (and its _complete bypasses _mark_done, so the list would leak)
        pass

    def _complete(self, cycle):
        finished = sorted((e for e in self.executing if e.done_cycle <= cycle),
                          key=lambda e: e.seq)
        for entry in finished:
            if entry.seq not in self.entries_by_seq:
                continue  # squashed earlier this cycle
            entry.state = EntryState.DONE
            try:
                self.executing.remove(entry)
            except ValueError:
                pass
            if entry.is_branch:
                self._resolve_branch(entry, cycle)

    # -- readiness: per-entry operand scans ---------------------------------

    def _has_older_unresolved_branch(self, seq):
        return any(b.seq < seq for b in self.unresolved_branches)

    def _has_older_incomplete(self, entry):
        for other in self.rob:
            if other.seq >= entry.seq:
                return False
            if other.state is not EntryState.DONE:
                return True
        return False

    def _issue(self, cycle):
        issued = 0
        defense = self.config.defense
        for entry in list(self.waiting):
            if issued >= self.config.issue_width:
                break
            if entry.seq not in self.entries_by_seq:
                continue  # squashed by a violation earlier in this scan
            if not self._sources_ready(entry):
                continue
            if not self._issue_allowed(entry, defense):
                continue
            if not self.ports.try_issue(entry.inst.op):
                self.counters.bump("iq.conflicts")
                if entry.is_load:
                    self.counters.bump("lsq.cacheBlocked")
                continue
            self._execute(entry, cycle)
            issued += 1
        if issued:
            self.counters.bump("iq.instsIssued", issued)
            self.counters.bump("iq.intInstQueueReads", issued)

    def _issue_allowed(self, entry, defense):
        seq = entry.seq
        # FENCE serializes everything younger until it commits.
        if any(f.seq < seq for f in self.fences):
            return False
        # LFENCE holds younger loads.
        if entry.is_load and any(f.seq < seq for f in self.lfences):
            return False
        if defense is DefenseMode.FENCE_SPECTRE:
            if self._has_older_unresolved_branch(seq):
                return False
        elif defense is DefenseMode.FENCE_FUTURISTIC:
            if entry.is_load and self._has_older_incomplete(entry):
                return False
        if entry.is_load:
            return self._load_may_issue(entry)
        return True

    def _load_may_issue(self, entry):
        """Memory-dependence check for loads against older stores."""
        for store in self.store_entries:
            if store.seq >= entry.seq:
                break
            if store.state is EntryState.DISPATCHED:
                # older store with unknown address
                if self.config.stl_speculation:
                    continue  # speculate no-alias (Spectre-STL window)
                self.counters.bump("lsq.blockedLoads")
                return False
        return True

    # -- memory-order discovery: full-ROB walk ------------------------------

    def _check_order_violation(self, store, cycle):
        """A store whose address just resolved may expose a younger load
        that speculatively read stale memory (Spectre-STL discovery)."""
        word = store.addr - (store.addr % WORD_BYTES)
        for entry in self.rob:
            if entry.seq <= store.seq or not entry.is_load:
                continue
            if entry.state is EntryState.DISPATCHED or entry.addr is None:
                continue
            if entry.forwarded_from is not None and entry.forwarded_from >= store.seq:
                continue  # load already saw this store (or a younger one)
            got_stale = entry.read_memory or entry.forwarded_from is not None
            if entry.addr - (entry.addr % WORD_BYTES) == word and got_stale:
                c = self.counters
                c.bump("iew.memOrderViolationEvents")
                c.bump("lsq.memOrderViolation")
                c.bump("squash.memOrderSquashes")
                c.bump("lsq.rescheduledLoads")
                self._squash_younger(entry.seq - 1, cycle)
                self._redirect(entry.pc, cycle)
                return
