"""DRAM model: banks, row buffers, write queue, refresh and Rowhammer.

Modeled after Ramulator's role in the paper's setup plus the dedicated
memory-corruption module the authors added: per-row activation counts since
the last refresh, a bit-flip threshold, and a neighbour map so that
hammering a row corrupts its physical neighbours in main memory.  Row-buffer
hits and conflicts have different latencies, which is the DRAMA side
channel; reads serviced by the write queue increment ``dram.bytesReadWrQ``
(one of the features the paper highlights for TRRespass detection).
"""

from repro.sim.hpc import CounterBank

_IX = CounterBank.index_of

_C_WRITEREQS = _IX("dram.writeReqs")
_C_MEMBUS_WRITEREQ = _IX("membus.transDist_WriteReq")
_C_WRQ_OCCUPANCY = _IX("wrqueue.occupancy")
_C_WRQ_DRAINS = _IX("wrqueue.drains")
_C_READREQS = _IX("dram.readReqs")
_C_BYTESREADWRQ = _IX("dram.bytesReadWrQ")
_C_WRQ_BYTESREAD = _IX("wrqueue.bytesRead")
_C_ROWHITS = _IX("dram.rowHits")
_C_BYTESPERACT = _IX("dram.bytesPerActivate")
_C_PRECHARGES = _IX("dram.precharges")
_C_ROWMISSES = _IX("dram.rowMisses")
_C_ACTIVATIONS = _IX("dram.activations")
_C_ACTRATE = _IX("dram.actRate")
_C_REFRESHES = _IX("dram.refreshes")
_C_SELFREFRESH = _IX("dram.selfRefreshEnergy")
_C_BITFLIPS = _IX("dram.bitflips")


class DRAM:
    """Single-channel, multi-bank DRAM with open-row policy."""

    def __init__(self, config, counters, memory):
        self.config = config
        self.counters = counters
        self.memory = memory
        self.num_banks = config.dram_banks
        self.row_bytes = config.dram_row_bytes
        self.open_rows = [None] * self.num_banks
        #: (bank, row) -> activations since last refresh
        self.activations_since_refresh = {}
        self._last_refresh_cycle = 0
        self._write_queue = []  # list of line addrs with pending writes
        self._write_queue_cap = 16
        #: addresses whose bits were flipped (for attack verification)
        self.flipped_addresses = []

    # -- geometry ---------------------------------------------------------------

    def bank_row(self, addr):
        """Map a byte address to its (bank, row)."""
        row_global = addr // self.row_bytes
        bank = row_global % self.num_banks
        row = row_global // self.num_banks
        return bank, row

    def row_base_address(self, bank, row):
        """Lowest byte address of (bank, row) — inverse of :meth:`bank_row`."""
        return (row * self.num_banks + bank) * self.row_bytes

    # -- timing -------------------------------------------------------------------

    def peek_latency(self, addr):
        """Latency this access *would* see, without changing any state
        (used by InvisiSpec invisible accesses)."""
        bank, row = self.bank_row(addr)
        if self.open_rows[bank] == row:
            return self.config.dram_row_hit_latency
        return self.config.dram_row_miss_latency

    def access(self, addr, is_write, cycle):
        """Service a demand access; returns latency and updates row/refresh
        and Rowhammer state."""
        self._maybe_refresh(cycle)
        v = self.counters.values
        line = addr // 64
        if is_write:
            v[_C_WRITEREQS] += 1
            v[_C_MEMBUS_WRITEREQ] += 1
            if line not in self._write_queue:
                self._write_queue.append(line)
                v[_C_WRQ_OCCUPANCY] += 1
                if len(self._write_queue) > self._write_queue_cap:
                    self._write_queue.pop(0)
                    v[_C_WRQ_DRAINS] += 1
            # writes are posted: cheap from the CPU's perspective
            return 6
        v[_C_READREQS] += 1
        if line in self._write_queue:
            # read serviced by the write queue — no bank access at all
            v[_C_BYTESREADWRQ] += 64
            v[_C_WRQ_BYTESREAD] += 64
            return 8
        bank, row = self.bank_row(addr)
        if self.open_rows[bank] == row:
            v[_C_ROWHITS] += 1
            v[_C_BYTESPERACT] += 64
            return self.config.dram_row_hit_latency
        # row conflict: precharge + activate
        if self.open_rows[bank] is not None:
            v[_C_PRECHARGES] += 1
        self.open_rows[bank] = row
        v[_C_ROWMISSES] += 1
        v[_C_ACTIVATIONS] += 1
        v[_C_ACTRATE] += 1
        self._record_activation(bank, row)
        return self.config.dram_row_miss_latency

    # -- refresh & rowhammer ----------------------------------------------------------

    def _maybe_refresh(self, cycle):
        if cycle - self._last_refresh_cycle >= self.config.dram_refresh_interval:
            self._last_refresh_cycle = cycle
            self.activations_since_refresh.clear()
            v = self.counters.values
            v[_C_REFRESHES] += 1
            v[_C_SELFREFRESH] += 100

    def _record_activation(self, bank, row):
        if not self.config.rowhammer_enabled:
            return
        key = (bank, row)
        count = self.activations_since_refresh.get(key, 0) + 1
        self.activations_since_refresh[key] = count
        if count == self.config.rowhammer_threshold:
            self._flip_neighbours(bank, row)

    def _flip_neighbours(self, bank, row):
        """Corrupt one bit in each physically adjacent row.

        The flipped bit position depends on the aggressor row (flips are
        cell-specific in real DRAM), so double-sided hammering corrupts
        two distinct victim bits rather than cancelling itself out.
        """
        for victim_row in (row - 1, row + 1):
            if victim_row < 0:
                continue
            victim_addr = self.row_base_address(bank, victim_row)
            self.memory.flip_bit(victim_addr, bit=row % 8)
            self.flipped_addresses.append(victim_addr)
            self.counters.values[_C_BITFLIPS] += 1

    # -- observability -------------------------------------------------------------

    def activation_count(self, addr):
        return self.activations_since_refresh.get(self.bank_row(addr), 0)
