"""Hardware performance counters.

Every microarchitectural structure in the simulator increments counters in
a shared :class:`CounterBank`.  Counter names follow gem5's stat naming
(``lsq.forwLoads``, ``iq.squashedNonSpecLD``, ``dcache.cleanEvicts``...)
so that the features named in the paper (Table I, Figures 9-11) map
directly onto this bank.  The sampler snapshots the bank every N committed
instructions and emits per-window deltas.
"""


#: The canonical counter namespace.  Structures may only increment names
#: listed here — this catches typos at simulation time and gives the data
#: layer a stable schema.  (The paper collects 1160 gem5 stats; this model
#: exposes the ~170 that its mechanisms produce, a superset of every counter
#: the paper names explicitly.)
COUNTER_NAMES = (
    # fetch
    "fetch.cycles", "fetch.insts", "fetch.squashCycles", "fetch.blockedCycles",
    "fetch.pendingQuiesceStallCycles", "fetch.icacheStallCycles",
    "fetch.branches", "fetch.predictedTaken",
    # decode / rename
    "decode.insts", "decode.squashedInsts",
    "rename.renamedInsts", "rename.squashedInsts", "rename.serializingInsts",
    "rename.committedMaps", "rename.undoneMaps", "rename.blockCycles",
    # instruction queue / scheduler
    "iq.instsAdded", "iq.instsIssued", "iq.squashedInstsIssued",
    "iq.squashedInstsExamined", "iq.squashedNonSpecLD",
    "iq.conflicts", "iq.fullEvents", "iq.intInstQueueReads",
    "iq.specInstsAdded",
    # execute / IEW
    "iew.execLoadInsts", "iew.execStoreInsts", "iew.execBranches",
    "iew.execSquashedInsts", "iew.branchMispredicts",
    "iew.memOrderViolationEvents", "iew.predictedTakenIncorrect",
    "iew.portContentionCycles", "iew.intAluAccesses", "iew.mulDivAccesses",
    # load/store queue
    "lsq.forwLoads", "lsq.squashedLoads", "lsq.squashedStores",
    "lsq.ignoredResponses", "lsq.rescheduledLoads", "lsq.blockedLoads",
    "lsq.memOrderViolation", "lsq.cacheBlocked",
    "lsq.specLoadsHitWriteQueue", "lsq.unalignedStores",
    "lsq.assistForwards",
    # reorder buffer / commit
    "rob.reads", "rob.writes", "rob.fullEvents",
    "commit.committedInsts", "commit.squashedInsts", "commit.branches",
    "commit.memRefs", "commit.loads", "commit.stores", "commit.traps",
    "commit.fences", "commit.membars", "commit.branchMispredicts",
    "commit.commitSquashedInsts",
    # branch prediction
    "branchPred.lookups", "branchPred.condPredicted", "branchPred.condIncorrect",
    "branchPred.BTBLookups", "branchPred.BTBHits", "branchPred.BTBMisses",
    "branchPred.RASUsed", "branchPred.RASIncorrect",
    "branchPred.indirectLookups", "branchPred.indirectHits",
    "branchPred.indirectMispredicted",
    # L1 instruction cache
    "icache.accesses", "icache.hits", "icache.misses", "icache.replacements",
    # L1 data cache
    "dcache.accesses", "dcache.hits", "dcache.misses", "dcache.mshrMisses",
    "dcache.mshrFullEvents", "dcache.replacements", "dcache.cleanEvicts",
    "dcache.writebacks", "dcache.flushes", "dcache.flushHits",
    "dcache.ReadReq_hits", "dcache.ReadReq_misses",
    "dcache.ReadReq_mshr_miss_latency",
    "dcache.WriteReq_hits", "dcache.WriteReq_misses",
    "dcache.prefetches", "dcache.demandAvgMissLatency",
    # L2
    "l2.accesses", "l2.hits", "l2.misses", "l2.mshrMisses",
    "l2.replacements", "l2.cleanEvicts", "l2.writebacks", "l2.flushes",
    "l2.ReadSharedReq_hits", "l2.ReadSharedReq_misses",
    # TLBs
    "dtlb.rdAccesses", "dtlb.rdMisses", "dtlb.wrAccesses", "dtlb.wrMisses",
    "dtlb.walkCycles", "itlb.accesses", "itlb.misses",
    # memory bus
    "membus.transDist_ReadSharedReq", "membus.transDist_WriteReq",
    "membus.transDist_FlushReq", "membus.pktCount", "membus.dataThroughBus",
    # DRAM
    "dram.readReqs", "dram.writeReqs", "dram.activations", "dram.precharges",
    "dram.rowHits", "dram.rowMisses", "dram.refreshes",
    "dram.bytesPerActivate", "dram.bytesReadWrQ", "dram.selfRefreshEnergy",
    "dram.bitflips", "dram.actRate",
    # write/request queues
    "wrqueue.bytesRead", "wrqueue.occupancy", "wrqueue.drains",
    # hardware RNG unit
    "rng.reads", "rng.underflows", "rng.refills", "rng.contentionCycles",
    # speculative buffer (InvisiSpec)
    "specbuf.fills", "specbuf.hits", "specbuf.exposes", "specbuf.squashes",
    "specbuf.validationStalls",
    # squash plumbing
    "squash.branchSquashes", "squash.faultSquashes", "squash.memOrderSquashes",
    "squash.squashedFetchedInsts",
    # misc core
    "cpu.numCycles", "cpu.idleCycles", "cpu.committedOps", "cpu.rdtscReads",
)

_COUNTER_SET = frozenset(COUNTER_NAMES)
_COUNTER_INDEX = {name: i for i, name in enumerate(COUNTER_NAMES)}


def _unknown_counter(name):
    import difflib
    close = difflib.get_close_matches(str(name), COUNTER_NAMES, n=3)
    hint = f" (did you mean {', '.join(close)}?)" if close else ""
    return KeyError(f"unknown counter {name!r}{hint}")


class CounterBank:
    """A flat bank of named monotonically-increasing event counters.

    Hot paths do not go through :meth:`bump`'s name lookup: they resolve a
    name to its slot once (``CounterBank.index_of``, at import or
    construction time, where a typo fails immediately) and then increment
    ``bank.values[idx]`` directly or via :meth:`bump_idx`.  Because of
    those cached references, ``values`` must never be rebound to a new
    list — use :meth:`reset` to zero it in place.
    """

    __slots__ = ("values",)

    def __init__(self):
        self.values = [0] * len(COUNTER_NAMES)

    def bump(self, name, amount=1):
        """Increment ``name`` by ``amount`` (must be a known counter)."""
        try:
            self.values[_COUNTER_INDEX[name]] += amount
        except KeyError:
            raise _unknown_counter(name) from None

    def bump_idx(self, index, amount=1):
        """Fast path: increment the counter at a preresolved index."""
        self.values[index] += amount

    def get(self, name):
        try:
            return self.values[_COUNTER_INDEX[name]]
        except KeyError:
            raise _unknown_counter(name) from None

    def reset(self):
        """Zero every counter in place (keeps ``values`` identity, so
        preresolved fast-path references stay valid)."""
        self.values[:] = [0] * len(COUNTER_NAMES)

    def snapshot(self):
        """A copy of all counter values, ordered as COUNTER_NAMES."""
        return list(self.values)

    def as_dict(self):
        return dict(zip(COUNTER_NAMES, self.values))

    @staticmethod
    def names():
        return COUNTER_NAMES

    @staticmethod
    def index_of(name):
        """Slot index of ``name`` — resolve once, then use the index."""
        try:
            return _COUNTER_INDEX[name]
        except KeyError:
            raise _unknown_counter(name) from None

    @staticmethod
    def has(name):
        return name in _COUNTER_SET

    def __len__(self):
        return len(self.values)
