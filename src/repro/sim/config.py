"""Simulated-architecture configuration (paper Table II) and defense modes."""

import enum
from dataclasses import dataclass


class DefenseMode(enum.Enum):
    """Mitigation state of the core.

    ``NONE``            — full performance, vulnerable.
    ``FENCE_SPECTRE``   — fence after every conditional branch: younger ops
                          wait until the branch resolves (Spectre model).
    ``FENCE_FUTURISTIC``— fence before every load: loads issue only when
                          non-speculative (Futuristic model, covers LVI).
    ``INVISISPEC_SPECTRE`` — speculative loads (shadowed by an unresolved
                          control-flow instruction) are serviced into a
                          speculative buffer without perturbing cache state
                          and exposed when safe.
    ``INVISISPEC_FUTURISTIC`` — every load is invisible until it is about to
                          commit.
    """

    NONE = "none"
    FENCE_SPECTRE = "fence-spectre"
    FENCE_FUTURISTIC = "fence-futuristic"
    INVISISPEC_SPECTRE = "invisispec-spectre"
    INVISISPEC_FUTURISTIC = "invisispec-futuristic"


#: Defense modes that fence (serialize) rather than buffer.
FENCE_MODES = frozenset({DefenseMode.FENCE_SPECTRE, DefenseMode.FENCE_FUTURISTIC})
#: Defense modes that use the InvisiSpec speculative buffer.
INVISISPEC_MODES = frozenset({DefenseMode.INVISISPEC_SPECTRE,
                              DefenseMode.INVISISPEC_FUTURISTIC})


@dataclass
class SimConfig:
    """Parameters of the simulated core (defaults follow paper Table II)."""

    # Pipeline (Table II: 8-wide, ROB 192, LQ/SQ 32)
    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_entries: int = 192
    lq_entries: int = 32
    sq_entries: int = 32
    iq_entries: int = 64

    # Branch prediction (tournament, 4096 BTB, 16 RAS)
    btb_entries: int = 4096
    ras_entries: int = 16
    local_predictor_size: int = 2048
    global_predictor_size: int = 8192
    choice_predictor_size: int = 8192

    # Functional units / execution latencies
    int_alu_units: int = 6
    mul_div_units: int = 2
    mem_ports: int = 2
    mul_latency: int = 4
    div_latency: int = 16

    # L1 instruction cache: 32KB, 64B line, 4-way
    l1i_size: int = 32 * 1024
    l1i_assoc: int = 4
    l1i_latency: int = 1
    # L1 data cache: 64KB, 64B line, 8-way
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 8
    l1d_latency: int = 2
    l1d_mshrs: int = 20
    l1d_write_buffers: int = 8
    # L2: 2MB, 8-way, 20-cycle tag+data
    l2_size: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    l2_latency: int = 20
    l2_mshrs: int = 20
    l2_write_buffers: int = 8
    line_bytes: int = 64

    # TLBs
    dtlb_entries: int = 64
    itlb_entries: int = 48
    page_bytes: int = 4096
    tlb_miss_latency: int = 30

    # DRAM (Ramulator-like single channel)
    dram_banks: int = 16
    dram_row_bytes: int = 8192
    dram_row_hit_latency: int = 30
    dram_row_miss_latency: int = 70
    dram_refresh_interval: int = 50_000       # cycles between refresh sweeps
    rowhammer_threshold: int = 300            # activations per refresh window
    rowhammer_enabled: bool = True

    # Hardware RNG unit (RDRAND): shared entropy buffer
    rng_buffer_entries: int = 8
    rng_refill_cycles: int = 40
    rng_fast_latency: int = 16
    rng_slow_latency: int = 180

    # Vulnerability toggles
    meltdown_vulnerable: bool = True          # deferred-priv-check loads
    stl_speculation: bool = True              # memory-dependence speculation

    # Optional hardware stride prefetcher (off in the paper's Table II)
    prefetcher_enabled: bool = False
    prefetcher_degree: int = 1

    # Defense
    defense: DefenseMode = DefenseMode.NONE
    invisispec_expose_latency: int = 8        # extra cycles per exposed load

    # Trap handling cost (pipeline flush + microcode)
    trap_latency: int = 40

    # Hot-trace memoization: when True, Machine.run() consults the
    # process-wide TraceMemoTable and replays a recorded run whenever the
    # full entry fingerprint (program content, initial state, config,
    # sampling period, cycle budget, core class) provably matches — see
    # repro/sim/memo.py.  Counter streams are bit-identical by
    # construction; anything the fingerprint cannot prove (actors,
    # detector hooks, multi-context machines) falls back to simulation.
    memoize: bool = False

    # SMT hardware contexts (1 = the paper's single-thread core;
    # 2 = cycle-interleaved co-tenancy via repro.sim.multiprog.SMTMachine)
    smt_contexts: int = 1

    def pretty(self):
        """Human-readable parameter dump (Table II reproduction)."""
        rows = [
            ("Architecture",
             "OoO core, single thread" if self.smt_contexts == 1
             else f"OoO core, {self.smt_contexts}-way SMT"),
            ("Pipeline width (fetch/issue/commit)",
             f"{self.fetch_width}/{self.issue_width}/{self.commit_width}"),
            ("ROB entries", self.rob_entries),
            ("LQ/SQ entries", f"{self.lq_entries}/{self.sq_entries}"),
            ("Branch predictor", "Tournament"),
            ("BTB entries", self.btb_entries),
            ("RAS entries", self.ras_entries),
            ("L1 I-cache", f"{self.l1i_size // 1024}KB, {self.line_bytes}B line, "
                           f"{self.l1i_assoc}-way"),
            ("L1 D-cache", f"{self.l1d_size // 1024}KB, {self.line_bytes}B line, "
                           f"{self.l1d_assoc}-way, mshrs={self.l1d_mshrs}, "
                           f"writeBuffers={self.l1d_write_buffers}"),
            ("L2 cache", f"{self.l2_size // (1024 * 1024)}MB, {self.l2_assoc}-way, "
                         f"latency={self.l2_latency}, mshrs={self.l2_mshrs}"),
            ("DRAM", f"{self.dram_banks} banks, {self.dram_row_bytes}B rows, "
                     f"rowhammer threshold={self.rowhammer_threshold}"),
            ("Defense mode", self.defense.value),
        ]
        width = max(len(str(k)) for k, _ in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)
