"""Hot-trace memoization: replay recorded runs instead of re-simulating.

The simulator is deterministic: given a program's architectural content,
the initial register/memory state, the full :class:`SimConfig`, the
sampling period, the cycle budget and the core implementation, a run's
entire outcome — every sampler window delta, the final counter bank, the
halt state and all architectural side effects — is a pure function of
that tuple.  Campaigns, the arena and the benchmarks evaluate that
function repeatedly (same cell re-runs, re-seeded generations, repeated
benchmark rounds), so :class:`TraceMemoTable` caches it: the first run
records, later runs with a **provably identical** entry fingerprint
replay the record and skip simulation entirely.

Conservatism contract (pinned by ``tests/sim/test_memo.py`` and the
``scripts/bench_sim.py`` equivalence suite):

- The fingerprint covers *everything* the outcome depends on: program
  content hash (instructions + preloaded memory + initial registers),
  the live register file and memory image at entry, every ``SimConfig``
  field (so differing defense modes can never share a record), the
  sampler period, ``max_cycles``, and the concrete core class (the
  reference core memoizes separately from the optimized one).
- Anything the fingerprint cannot prove refuses to memoize: background
  actors, detector hooks, a machine that has already stepped or
  committed, dirtied counters, recorded samples or detections.  Refusals
  count into ``sim.memo.ineligible`` and fall back to full simulation.
- Replay restores the architectural machine state (registers, memory,
  counters, sampler, halt state) bit-exactly; *microarchitectural*
  structures (cache/TLB/predictor contents) are not reconstructed, so a
  replayed machine must not be stepped further — it is finished, exactly
  like a machine whose run just returned.  SMT machines never reach this
  path (they drive cores directly, not :meth:`Machine.run`).
"""

import hashlib
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.obs import metrics
from repro.sim.sampler import PhaseMark, Sample

#: cap on recorded runs (FIFO eviction, deterministic order)
DEFAULT_CAPACITY = 256


@dataclass(frozen=True)
class MemoRecord:
    """Everything needed to replay one completed run bit-exactly."""

    cycles: int                    # machine.cycle at return
    cpu_cycle: int                 # cpu.cycle (last stepped cycle)
    committed: int
    halted: bool
    halt_reason: Optional[str]
    fetch_pc: int
    trap_handler: Optional[int]
    regs: Tuple[int, ...]
    memory_words: Tuple[Tuple[int, int], ...]   # sorted (addr, value)
    counter_values: Tuple[int, ...]
    samples: Tuple[Tuple[int, int, int, Tuple[int, ...], int], ...]
    phase_marks: Tuple[Tuple[int, int], ...]
    sampler_next_boundary: int
    sampler_window_index: int
    sampler_phase: int
    sampler_last_commit: int
    sampler_last_snapshot: Tuple[int, ...]


def _config_signature(config):
    """Every SimConfig field, stably ordered (enums by value)."""
    parts = []
    for f in fields(config):
        value = getattr(config, f.name)
        value = getattr(value, "value", value)
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


class TraceMemoTable:
    """Fingerprint-keyed store of completed runs.

    Bounded FIFO (dict insertion order makes eviction deterministic).
    ``hits``/``misses``/``ineligible`` mirror the ``sim.memo.*`` metrics
    for in-process inspection.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._records = {}
        self.hits = 0
        self.misses = 0
        self.ineligible = 0

    def __len__(self):
        return len(self._records)

    def clear(self):
        self._records.clear()
        self.hits = 0
        self.misses = 0
        self.ineligible = 0

    # -- fingerprinting -----------------------------------------------------------

    def fingerprint(self, machine, max_cycles):
        """Entry fingerprint for ``machine``, or None when memoization
        cannot be proven safe (the conservative fallback)."""
        cpu = machine.cpu
        if (machine.actors
                or machine.detector_hook is not None
                or machine.cycle != 0
                or cpu.committed != 0
                or cpu.halted
                or machine.sampler.samples
                or machine.sampler.phase_marks
                or machine.detections
                or machine.actors_suspended
                or any(machine.counters.values)):
            self.ineligible += 1
            metrics().inc("sim.memo.ineligible")
            return None
        h = hashlib.sha256()
        h.update(machine.program.content_hash.encode())
        h.update(f"|core:{type(cpu).__name__}".encode())
        h.update(f"|cfg:{_config_signature(machine.config)}".encode())
        h.update(f"|period:{machine.sampler.period}".encode())
        h.update(f"|budget:{max_cycles}".encode())
        h.update(f"|regs:{','.join(map(str, cpu.arch_regs))}".encode())
        for addr, value in machine.memory.snapshot():
            h.update(f"|m{addr}={value}".encode())
        return h.hexdigest()

    # -- record/replay ------------------------------------------------------------

    def lookup(self, key):
        record = self._records.get(key)
        if record is not None:
            self.hits += 1
            metrics().inc("sim.memo.hits")
        return record

    def record(self, key, machine):
        """Capture ``machine``'s completed run under ``key``."""
        cpu = machine.cpu
        sampler = machine.sampler
        rec = MemoRecord(
            cycles=machine.cycle,
            cpu_cycle=cpu.cycle,
            committed=cpu.committed,
            halted=cpu.halted,
            halt_reason=cpu.halt_reason,
            fetch_pc=cpu.fetch_pc,
            trap_handler=cpu.trap_handler,
            regs=tuple(cpu.arch_regs),
            memory_words=machine.memory.snapshot(),
            counter_values=tuple(machine.counters.values),
            samples=tuple(
                (s.window_index, s.commit_index, s.cycle,
                 tuple(s.deltas), s.phase)
                for s in sampler.samples),
            phase_marks=tuple((p.commit_index, p.phase)
                              for p in sampler.phase_marks),
            sampler_next_boundary=sampler.next_boundary,
            sampler_window_index=sampler._window_index,
            sampler_phase=sampler._current_phase,
            sampler_last_commit=sampler._last_commit_index,
            sampler_last_snapshot=tuple(sampler._last_snapshot),
        )
        if len(self._records) >= self.capacity:
            self._records.pop(next(iter(self._records)))
        self._records[key] = rec
        self.misses += 1
        reg = metrics()
        reg.inc("sim.memo.misses")
        reg.gauge("sim.memo.entries").set(len(self._records))

    def replay(self, machine, record):
        """Apply ``record`` to a fresh ``machine`` as if it had run."""
        cpu = machine.cpu
        machine.cycle = record.cycles
        cpu.cycle = record.cpu_cycle
        cpu.committed = record.committed
        cpu.halted = record.halted
        cpu.halt_reason = record.halt_reason
        cpu.fetch_pc = record.fetch_pc
        cpu.trap_handler = record.trap_handler
        cpu.arch_regs = list(record.regs)
        # in place: fast-path code holds preresolved references into the
        # bank (see CounterBank)
        machine.counters.values[:] = record.counter_values
        machine.memory.load_snapshot(record.memory_words)
        sampler = machine.sampler
        sampler.samples = [
            Sample(window_index=w, commit_index=ci, cycle=cy,
                   deltas=list(d), phase=p)
            for w, ci, cy, d, p in record.samples]
        sampler.phase_marks = [PhaseMark(ci, p)
                               for ci, p in record.phase_marks]
        sampler.next_boundary = record.sampler_next_boundary
        sampler._window_index = record.sampler_window_index
        sampler._current_phase = record.sampler_phase
        sampler._last_commit_index = record.sampler_last_commit
        sampler._last_snapshot = list(record.sampler_last_snapshot)
        metrics().inc("sim.memo.replayed_windows", len(record.samples))


#: the process-wide table ``SimConfig.memoize`` opts a Machine into
GLOBAL_MEMO_TABLE = TraceMemoTable()
