"""Translation lookaside buffers (LRU, page-granular)."""

from repro.sim.hpc import CounterBank

_IX = CounterBank.index_of


class TLB:
    """Fully-associative LRU TLB over page numbers.

    ``prefix`` selects the counter namespace (``dtlb`` or ``itlb``); the
    data TLB distinguishes read and write accesses (``dtlb.rdMisses`` is one
    of the features in the paper's engineered security HPCs, Table I).

    Recency is a dict in insertion order (first key = LRU victim): a hit
    deletes and re-inserts its page, both O(1), exactly reproducing the
    old list's move-to-back / pop-front behaviour without its O(entries)
    scans on every translation.
    """

    def __init__(self, entries, page_bytes, miss_latency, counters, prefix):
        self.entries = entries
        self.page_bytes = page_bytes
        self.miss_latency = miss_latency
        self.counters = counters
        self.prefix = prefix
        self._is_dtlb = prefix == "dtlb"
        if self._is_dtlb:
            self._ix_accesses = (_IX("dtlb.rdAccesses"), _IX("dtlb.wrAccesses"))
            self._ix_misses = (_IX("dtlb.rdMisses"), _IX("dtlb.wrMisses"))
            self._ix_walk = _IX("dtlb.walkCycles")
        else:
            self._ix_accesses = (_IX("itlb.accesses"), _IX("itlb.accesses"))
            self._ix_misses = (_IX("itlb.misses"), _IX("itlb.misses"))
            self._ix_walk = None
        self._pages = {}  # page -> None, insertion order = LRU order
        #: the most recently translated page: present and at MRU, so a
        #: repeat translation can skip the dict entirely.  Only valid when
        #: the TLB holds >1 entry (with 1 entry, MRU == LRU victim); -1
        #: disables the fast path (pages are never negative, and unlike
        #: False it cannot compare equal to page 0)
        self._last_page = None if entries > 1 else -1

    def page_of(self, addr):
        return addr // self.page_bytes

    def access(self, addr, is_write=False):
        """Translate; returns extra latency (0 on a TLB hit)."""
        page = addr // self.page_bytes
        v = self.counters.values
        v[self._ix_accesses[is_write]] += 1
        if page == self._last_page:
            return 0               # present and MRU: guaranteed hit
        pages = self._pages
        if page in pages:
            if next(reversed(pages)) != page:
                del pages[page]    # refresh recency: re-insert at the back
                pages[page] = None
            if self._last_page != -1:
                self._last_page = page
            return 0
        v[self._ix_misses[is_write]] += 1
        if self._ix_walk is not None:
            v[self._ix_walk] += self.miss_latency
        pages[page] = None
        if len(pages) > self.entries:
            del pages[next(iter(pages))]   # evict the least recent
        if self._last_page != -1:
            self._last_page = page
        return self.miss_latency

    def contains(self, addr):
        return self.page_of(addr) in self._pages

    def flush(self):
        self._pages.clear()
        if self._last_page != -1:
            self._last_page = None
