"""Translation lookaside buffers (LRU, page-granular)."""


class TLB:
    """Fully-associative LRU TLB over page numbers.

    ``prefix`` selects the counter namespace (``dtlb`` or ``itlb``); the
    data TLB distinguishes read and write accesses (``dtlb.rdMisses`` is one
    of the features in the paper's engineered security HPCs, Table I).
    """

    def __init__(self, entries, page_bytes, miss_latency, counters, prefix):
        self.entries = entries
        self.page_bytes = page_bytes
        self.miss_latency = miss_latency
        self.counters = counters
        self.prefix = prefix
        self._pages = []  # LRU order, last = most recent

    def page_of(self, addr):
        return addr // self.page_bytes

    def access(self, addr, is_write=False):
        """Translate; returns extra latency (0 on a TLB hit)."""
        page = self.page_of(addr)
        c = self.counters
        if self.prefix == "dtlb":
            c.bump("dtlb.wrAccesses" if is_write else "dtlb.rdAccesses")
        else:
            c.bump("itlb.accesses")
        if page in self._pages:
            self._pages.remove(page)
            self._pages.append(page)
            return 0
        if self.prefix == "dtlb":
            c.bump("dtlb.wrMisses" if is_write else "dtlb.rdMisses")
            c.bump("dtlb.walkCycles", self.miss_latency)
        else:
            c.bump("itlb.misses")
        self._pages.append(page)
        if len(self._pages) > self.entries:
            self._pages.pop(0)
        return self.miss_latency

    def contains(self, addr):
        return self.page_of(addr) in self._pages

    def flush(self):
        self._pages.clear()
