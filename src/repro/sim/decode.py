"""Basic-block decode cache and program content hashing.

Instruction "cracking" — precomputing the pipeline-static properties in
:meth:`repro.sim.isa.Instruction.__post_init__` (ROB flags, latency,
port class, dispatch masks) — is pure per-instruction work, yet the
repo's heavy consumers rebuild the *same* programs constantly: a
campaign re-instantiates each workload per {defense x period x seed}
cell, the arena re-builds attack genomes every generation, and the
repeated-trace benchmarks construct one program per round.  The decode
cache interns cracked basic blocks keyed by ``(pc, block content)`` so
the cracking cost is paid once per distinct block, process-wide.

Safety argument for sharing :class:`Instruction` instances between
programs: the core treats instructions as read-only (all mutable
per-execution state lives on :class:`~repro.sim.rob.RobEntry`), and
:meth:`~repro.sim.program.ProgramBuilder.build` resolves labels on the
*spec tuples* before interning, so a cached instruction is never
mutated after construction.  The key is the full ``(pc, specs)``
content — not a lossy digest — so two blocks that differ in any field
can never alias (the "content-hash key proof" pinned by
``tests/sim/test_decode_cache.py``); self-modified or otherwise
mismatched program content misses by construction.

:func:`program_content_hash` is the program-level identity used by
hot-trace memoization (:mod:`repro.sim.memo`): a SHA-256 over the
instruction stream, preloaded memory and initial registers — everything
that determines a program's architectural behaviour (``name`` and
free-form ``metadata`` are deliberately excluded; they never reach the
core).
"""

import hashlib

from repro.sim.isa import BRANCH_OPS, Instruction, Op

#: cap on cached blocks (FIFO eviction; insertion order is deterministic
#: so eviction is too)
DEFAULT_CAPACITY = 4096

#: blocks longer than this are split (bounds key size for straight-line
#: megablocks)
MAX_BLOCK_LEN = 64


def instruction_spec(inst):
    """The pre-crack identity of one instruction: exactly the
    constructor arguments, nothing derived."""
    return (inst.op, inst.rd, inst.rs1, inst.rs2, inst.imm, inst.target)


class DecodeCache:
    """Process-wide intern table of cracked basic blocks.

    Keys are ``(start_pc, spec-tuple-per-instruction)``; values are
    tuples of shared, immutable-by-convention :class:`Instruction`
    objects.  Lookups count into :attr:`hits`/:attr:`misses` (surfaced
    as ``sim.decode.block_hits`` / ``sim.decode.block_misses`` by the
    obs layer at :class:`~repro.sim.machine.Machine` construction).
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._blocks = {}
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._blocks)

    def clear(self):
        self._blocks.clear()
        self.hits = 0
        self.misses = 0

    def intern_block(self, start_pc, specs):
        """Return the cracked instruction tuple for one basic block,
        constructing (and caching) it on first sight."""
        key = (start_pc, specs)
        block = self._blocks.get(key)
        if block is not None:
            self.hits += 1
            return block
        self.misses += 1
        block = tuple(
            Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm, target=target)
            for op, rd, rs1, rs2, imm, target in specs)
        if len(self._blocks) >= self.capacity:
            # FIFO: dicts preserve insertion order, so the eviction
            # victim is deterministic across runs
            self._blocks.pop(next(iter(self._blocks)))
        self._blocks[key] = block
        return block


#: the process-wide default cache (ProgramBuilder.build goes through it)
GLOBAL_DECODE_CACHE = DecodeCache()


def _block_ends(spec, length):
    op = spec[0]
    return op in BRANCH_OPS or op is Op.HALT or length >= MAX_BLOCK_LEN


def crack_specs(specs, cache=None):
    """Crack a resolved instruction-spec list into :class:`Instruction`
    objects through the decode cache.

    Blocks end at control-flow instructions (branches, HALT) or at
    :data:`MAX_BLOCK_LEN`; the block key carries its start PC, so the
    same instruction bytes at a different location are a distinct block
    (branch targets are absolute PCs — reusing them across locations
    would be wrong anyway).
    """
    cache = cache if cache is not None else GLOBAL_DECODE_CACHE
    out = []
    start = 0
    for i, spec in enumerate(specs):
        if _block_ends(spec, i - start + 1):
            out.extend(cache.intern_block(start, tuple(specs[start:i + 1])))
            start = i + 1
    if start < len(specs):
        out.extend(cache.intern_block(start, tuple(specs[start:])))
    return out


def program_content_hash(instructions, initial_memory=None,
                         initial_regs=None):
    """SHA-256 identity of a program's architectural content.

    Covers the instruction stream (pre-crack specs, in order) plus the
    preloaded memory words and initial register values in sorted-key
    order — the complete input the simulator's behaviour is a function
    of, given a config.  Two programs with equal hashes are
    behaviourally identical to the core.
    """
    h = hashlib.sha256()
    for inst in instructions:
        op, rd, rs1, rs2, imm, target = instruction_spec(inst)
        h.update(f"i:{op.value},{rd},{rs1},{rs2},{imm},{target};"
                 .encode())
    for addr in sorted(initial_memory or ()):
        h.update(f"m:{addr}={initial_memory[addr]};".encode())
    for reg in sorted(initial_regs or ()):
        h.update(f"r:{reg}={initial_regs[reg]};".encode())
    return h.hexdigest()
