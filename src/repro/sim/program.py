"""Programs for the simulated core, with a small assembler-style builder.

Instruction *cracking* (the derived-property computation in
``Instruction.__post_init__``) is deferred to :meth:`ProgramBuilder.build`
and routed through the basic-block decode cache
(:mod:`repro.sim.decode`), so repeated builds of the same code — campaign
cells, arena generations, benchmark rounds — share one cracked copy per
distinct block.  Labels are resolved on raw spec tuples *before*
interning, so cached :class:`~repro.sim.isa.Instruction` objects are
never mutated after construction.
"""

from repro.obs import metrics
from repro.sim.decode import crack_specs, program_content_hash
from repro.sim.isa import Op, Instruction, BRANCH_OPS


class Program:
    """A finalized instruction sequence with resolved branch targets."""

    def __init__(self, instructions, name="program", initial_memory=None,
                 initial_regs=None, metadata=None):
        self.instructions = list(instructions)
        self.name = name
        #: address -> word value preloaded into main memory
        self.initial_memory = dict(initial_memory or {})
        #: register index -> initial value
        self.initial_regs = dict(initial_regs or {})
        #: free-form attack/workload metadata (secret values, probe bases...)
        self.metadata = dict(metadata or {})
        self._content_hash = None

    def __len__(self):
        return len(self.instructions)

    @property
    def content_hash(self):
        """SHA-256 of the architectural content (instructions + preloaded
        memory + initial registers; ``name``/``metadata`` excluded).
        Computed lazily and cached — programs are immutable once built."""
        if self._content_hash is None:
            self._content_hash = program_content_hash(
                self.instructions, self.initial_memory, self.initial_regs)
        return self._content_hash

    def fetch(self, pc):
        """Instruction at ``pc`` or None when past the end."""
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return None


class ProgramBuilder:
    """Builds a :class:`Program` with symbolic labels.

    Example::

        b = ProgramBuilder("loop-demo")
        b.movi(1, 0)
        b.label("top")
        b.addi(1, 1, 1)
        b.movi(2, 10)
        b.blt(1, 2, "top")
        b.halt()
        program = b.build()
    """

    def __init__(self, name="program"):
        self.name = name
        self._insts = []
        self._labels = {}
        self._data_labels = []
        self.initial_memory = {}
        self.initial_regs = {}
        self.metadata = {}

    # -- assembly directives -------------------------------------------------

    def label(self, name):
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insts)
        return self

    def emit(self, op, rd=None, rs1=None, rs2=None, imm=0, target=None):
        # raw spec tuple; cracking into an Instruction happens once, in
        # build(), through the shared decode cache
        self._insts.append((op, rd, rs1, rs2, imm, target))
        return self

    def here(self):
        """Index the next emitted instruction will occupy."""
        return len(self._insts)

    def label_pc(self, name):
        """PC a defined label resolves to."""
        return self._labels[name]

    def data(self, addr, value):
        """Preload main memory word at ``addr``."""
        self.initial_memory[addr] = value
        return self

    def reg(self, index, value):
        """Preset an architectural register."""
        self.initial_regs[index] = value
        return self

    # -- instruction helpers -------------------------------------------------

    def movi(self, rd, imm):
        return self.emit(Op.MOVI, rd=rd, imm=imm)

    def movi_label(self, rd, label):
        """rd <- PC of ``label`` (resolved at build time)."""
        return self.emit(Op.MOVI, rd=rd, target=label)

    def data_label(self, addr, label):
        """Preload memory word at ``addr`` with the PC of ``label``."""
        self._data_labels.append((addr, label))
        return self

    def mov(self, rd, rs1):
        return self.emit(Op.MOV, rd=rd, rs1=rs1)

    def add(self, rd, rs1, rs2):
        return self.emit(Op.ADD, rd=rd, rs1=rs1, rs2=rs2)

    def addi(self, rd, rs1, imm):
        return self.emit(Op.ADD, rd=rd, rs1=rs1, imm=imm)

    def sub(self, rd, rs1, rs2):
        return self.emit(Op.SUB, rd=rd, rs1=rs1, rs2=rs2)

    def and_(self, rd, rs1, rs2):
        return self.emit(Op.AND, rd=rd, rs1=rs1, rs2=rs2)

    def andi(self, rd, rs1, imm):
        return self.emit(Op.AND, rd=rd, rs1=rs1, imm=imm)

    def or_(self, rd, rs1, rs2):
        return self.emit(Op.OR, rd=rd, rs1=rs1, rs2=rs2)

    def xor(self, rd, rs1, rs2):
        return self.emit(Op.XOR, rd=rd, rs1=rs1, rs2=rs2)

    def shl(self, rd, rs1, imm):
        return self.emit(Op.SHL, rd=rd, rs1=rs1, imm=imm)

    def shr(self, rd, rs1, imm):
        return self.emit(Op.SHR, rd=rd, rs1=rs1, imm=imm)

    def mul(self, rd, rs1, rs2):
        return self.emit(Op.MUL, rd=rd, rs1=rs1, rs2=rs2)

    def div(self, rd, rs1, rs2):
        return self.emit(Op.DIV, rd=rd, rs1=rs1, rs2=rs2)

    def load(self, rd, rs1, imm=0):
        return self.emit(Op.LOAD, rd=rd, rs1=rs1, imm=imm)

    def store(self, rs1, rs2, imm=0):
        """mem[rs1 + imm] <- rs2."""
        return self.emit(Op.STORE, rs1=rs1, rs2=rs2, imm=imm)

    def storeu(self, rs1, rs2, imm=0):
        """Unaligned store variant."""
        return self.emit(Op.STOREU, rs1=rs1, rs2=rs2, imm=imm)

    def prefetch(self, rs1, imm=0):
        return self.emit(Op.PREFETCH, rs1=rs1, imm=imm)

    def clflush(self, rs1, imm=0):
        return self.emit(Op.CLFLUSH, rs1=rs1, imm=imm)

    def beq(self, rs1, rs2, target):
        return self.emit(Op.BEQ, rs1=rs1, rs2=rs2, target=target)

    def bne(self, rs1, rs2, target):
        return self.emit(Op.BNE, rs1=rs1, rs2=rs2, target=target)

    def blt(self, rs1, rs2, target):
        return self.emit(Op.BLT, rs1=rs1, rs2=rs2, target=target)

    def jmp(self, target):
        return self.emit(Op.JMP, target=target)

    def jmpi(self, rs1):
        return self.emit(Op.JMPI, rs1=rs1)

    def call(self, target):
        """Push the return address to the in-memory stack (r15) and jump."""
        return self.emit(Op.CALL, rd=15, rs1=15, target=target)

    def ret(self):
        """Pop the return address from the in-memory stack and jump to it."""
        return self.emit(Op.RET, rd=15, rs1=15)

    def fence(self):
        return self.emit(Op.FENCE)

    def lfence(self):
        return self.emit(Op.LFENCE)

    def rdtsc(self, rd):
        return self.emit(Op.RDTSC, rd=rd)

    def rdrand(self, rd):
        return self.emit(Op.RDRAND, rd=rd)

    def mark(self, phase_id):
        return self.emit(Op.MARK, imm=phase_id)

    def try_(self, handler_label):
        return self.emit(Op.TRY, target=handler_label)

    def nop(self):
        return self.emit(Op.NOP)

    def halt(self):
        return self.emit(Op.HALT)

    # -- finalization ----------------------------------------------------------

    def build(self):
        """Resolve labels and return the finished :class:`Program`.

        Label resolution happens on the raw spec tuples, then the
        resolved stream is interned through the process-wide decode cache
        — identical basic blocks across builds share one cracked
        :class:`Instruction` tuple.
        """
        from repro.sim.decode import GLOBAL_DECODE_CACHE
        specs = []
        for op, rd, rs1, rs2, imm, target in self._insts:
            if isinstance(target, str):
                if target not in self._labels:
                    raise ValueError(f"undefined label {target!r}")
                if op is Op.MOVI:
                    imm = self._labels[target]
                    target = None
                else:
                    target = self._labels[target]
            elif target is None and (op in BRANCH_OPS
                                     and op not in (Op.JMPI, Op.RET)):
                raise ValueError(f"{op} needs a target")
            specs.append((op, rd, rs1, rs2, imm, target))
        hits_before = GLOBAL_DECODE_CACHE.hits
        misses_before = GLOBAL_DECODE_CACHE.misses
        insts = crack_specs(specs, GLOBAL_DECODE_CACHE)
        reg = metrics()
        reg.inc("sim.decode.block_hits",
                GLOBAL_DECODE_CACHE.hits - hits_before)
        reg.inc("sim.decode.block_misses",
                GLOBAL_DECODE_CACHE.misses - misses_before)
        memory = dict(self.initial_memory)
        for addr, label in self._data_labels:
            if label not in self._labels:
                raise ValueError(f"undefined label {label!r}")
            memory[addr] = self._labels[label]
        return Program(insts, name=self.name,
                       initial_memory=memory,
                       initial_regs=self.initial_regs,
                       metadata=self.metadata)
