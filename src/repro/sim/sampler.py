"""Periodic HPC sampling.

The paper samples all event counters every 100 / 1,000 / 10,000 / 100,000
committed instructions and records per-window statistics, normalized over
the maximum seen value of each counter.  The sampler snapshots the counter
bank at each window boundary and emits *deltas*; normalization happens in
the data layer.  MARK micro-ops record attack-phase boundaries (the paper's
"check-pointed" phases used to exclude recovery/transmission windows).
"""

from dataclasses import dataclass
from typing import List

from repro.obs import metrics


@dataclass
class Sample:
    """One sampling window of counter deltas."""

    window_index: int
    commit_index: int        # committed-instruction count at window end
    cycle: int
    deltas: List[int]        # per-counter deltas, ordered as COUNTER_NAMES
    phase: int = 0           # attack phase active during this window


@dataclass
class PhaseMark:
    """A MARK micro-op's committed (commit_index, phase) checkpoint."""

    commit_index: int
    phase: int


class Sampler:
    """Collects counter-delta windows every ``period`` committed insts.

    Window boundaries lie on the period lattice: window *k* closes at the
    commit of instruction ``(k+1) * period`` exactly.  The core calls
    :meth:`on_commit` once per retired instruction, so regular windows are
    always exact; :attr:`next_boundary` is public so the commit path can
    skip the call entirely between boundaries.  Should a caller ever jump
    ``committed`` past a boundary (e.g. direct use in tests), the boundary
    advance below re-aligns to the lattice instead of drifting to
    ``committed + period`` — the overshoot is recorded in that window's
    ``commit_index`` but the next window still closes on the grid.  The
    only sample whose ``commit_index`` may sit off the lattice is the
    final partial window emitted by :meth:`flush`.

    Windows are keyed by *commits*: :meth:`flush` emits a final partial
    window only when instructions actually committed after the last
    emitted boundary.  A run that halts exactly on a period boundary
    therefore produces no trailing empty window — the counter activity
    of the drain cycles after the final commit (fetch stalls, idle
    cycles) represents zero retired instructions and is deliberately
    dropped rather than emitted as a duplicate ``commit_index``.
    """

    def __init__(self, counters, period=1000):
        if period <= 0:
            raise ValueError("period must be positive")
        self.counters = counters
        self.period = period
        self.samples: List[Sample] = []
        self.phase_marks: List[PhaseMark] = []
        self._current_phase = 0
        self._last_snapshot = counters.snapshot()
        #: next committed-instruction count at which a window closes
        self.next_boundary = period
        #: ``commit_index`` of the last emitted window (dedups flush)
        self._last_commit_index = 0
        self._window_index = 0
        # cached instrument handles: one attribute increment per emitted
        # window (windows are >= ``period`` commits apart, so this is
        # far off the per-cycle hot path)
        reg = metrics()
        self._obs_windows = reg.counter("sim.sampler.windows")
        self._obs_partial = reg.counter("sim.sampler.partial_windows")

    @property
    def current_phase(self):
        """Attack phase attributed to the window being accumulated.

        Public so context-switching executors (``repro.sim.multiprog``)
        can save and restore per-context phase state — without that, one
        program's MARK would bleed into windows attributed to the other
        context after a switch.
        """
        return self._current_phase

    @current_phase.setter
    def current_phase(self, phase):
        self._current_phase = phase

    def record_phase(self, phase, commit_index):
        self._current_phase = phase
        self.phase_marks.append(PhaseMark(commit_index, phase))

    def on_commit(self, committed, cycle):
        if committed < self.next_boundary:
            return
        snap = self.counters.snapshot()
        deltas = [now - before for now, before
                  in zip(snap, self._last_snapshot)]
        self.samples.append(Sample(
            window_index=self._window_index,
            commit_index=committed,
            cycle=cycle,
            deltas=deltas,
            phase=self._current_phase,
        ))
        self._last_snapshot = snap
        self._last_commit_index = committed
        self._window_index += 1
        # advance along the period lattice (never ``committed + period``,
        # which would let one overshoot shift every later boundary)
        boundary = self.next_boundary
        while boundary <= committed:
            boundary += self.period
        self.next_boundary = boundary
        self._obs_windows.inc()

    def flush(self, committed, cycle):
        """Emit a final partial window at end of run.

        Emits only when instructions committed *after* the last emitted
        window: a run halting exactly on a period boundary already closed
        its final window in :meth:`on_commit`, and re-emitting the
        trailing drain-cycle counter noise would create an empty window
        with a duplicate ``commit_index``.
        """
        if committed <= self._last_commit_index:
            return
        snap = self.counters.snapshot()
        deltas = [now - before for now, before
                  in zip(snap, self._last_snapshot)]
        if any(deltas):
            self.samples.append(Sample(
                window_index=self._window_index,
                commit_index=committed,
                cycle=cycle,
                deltas=deltas,
                phase=self._current_phase,
            ))
            self._last_snapshot = snap
            self._last_commit_index = committed
            self._window_index += 1
            self._obs_windows.inc()
            self._obs_partial.inc()
