"""Hardware stride prefetcher (optional extension).

Disabled by default — the paper's Table II configuration has no prefetcher
and the attack corpus was validated without one.  When enabled it watches
the demand-load address stream per PC, detects constant strides, and
issues next-line fills through the normal hierarchy path.  Its counters
(``dcache.prefetches`` plus hits on prefetched lines) add benign-side
feature texture, and running attacks against a prefetching core is an
interesting robustness exercise: prefetches can blur Flush+Reload probes.
"""


class StridePrefetcher:
    """PC-indexed stride detector with a small reference table."""

    def __init__(self, hierarchy, table_entries=32, degree=1):
        self.hierarchy = hierarchy
        self.table_entries = table_entries
        self.degree = degree
        #: pc -> (last_addr, stride, confidence)
        self._table = {}
        self.issued = 0

    def observe(self, pc, addr, cycle):
        """Feed one demand load; may issue prefetches."""
        last = self._table.get(pc)
        if last is None:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = (addr, 0, 0)
            return
        last_addr, stride, confidence = last
        new_stride = addr - last_addr
        if new_stride == stride and stride != 0:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
        self._table[pc] = (addr, new_stride, confidence)
        if confidence >= 2:
            for k in range(1, self.degree + 1):
                target = addr + new_stride * k
                if target >= 0:
                    self.hierarchy.prefetch(target, cycle)
                    self.issued += 1
