"""Background actors: co-resident processes modeled at event granularity.

Cross-process attacks (Prime+Probe victims, SMotherSpectre port contention,
RDRND covert senders, Leaky-Buddies bus hammering, DRAMA co-tenants) need a
second execution context sharing microarchitectural state.  Rather than a
full SMT pipeline, a background actor injects *events* into the shared
structures (caches, DRAM, execution ports, RNG, branch predictor) every
``period`` cycles.  The contention and state changes it causes are real —
the attacker program on the main pipeline observes them through timing, and
every event increments the same HPCs the main pipeline uses.
"""


class BackgroundActor:
    """Base class; subclasses override :meth:`tick`."""

    #: Cycles between tick() invocations.
    period = 50

    def tick(self, machine, cycle):
        """Inject this actor's events for the current window."""
        raise NotImplementedError


class CacheToucherActor(BackgroundActor):
    """Accesses a fixed working set through the data hierarchy — a generic
    victim whose footprint a cache attacker observes (or benign noise)."""

    def __init__(self, addresses, period=50):
        self.addresses = list(addresses)
        self.period = period
        self._next = 0

    def tick(self, machine, cycle):
        if not self.addresses:
            return
        addr = self.addresses[self._next % len(self.addresses)]
        self._next += 1
        machine.hierarchy.access_data(addr, is_write=False, cycle=cycle)


class SecretDependentToucher(BackgroundActor):
    """A victim that touches ``addr_one`` when the current secret bit is 1
    and ``addr_zero`` otherwise — the transmitter side of Flush+Reload,
    Flush+Flush and Prime+Probe experiments.
    """

    def __init__(self, secret_bits, addr_one, addr_zero, bit_period=400,
                 period=40):
        self.secret_bits = list(secret_bits)
        self.addr_one = addr_one
        self.addr_zero = addr_zero
        self.bit_period = bit_period
        self.period = period

    def current_bit(self, cycle):
        index = (cycle // self.bit_period) % len(self.secret_bits)
        return self.secret_bits[index]

    def tick(self, machine, cycle):
        addr = self.addr_one if self.current_bit(cycle) else self.addr_zero
        machine.hierarchy.access_data(addr, is_write=False, cycle=cycle)


class PortHogActor(BackgroundActor):
    """Occupies execution ports in a secret-dependent pattern — the victim
    side of SMotherSpectre-style port-contention channels."""

    def __init__(self, secret_bits, port, bit_period=400, period=1, count=2):
        self.secret_bits = list(secret_bits)
        self.port = port
        self.bit_period = bit_period
        self.period = period
        self.count = count

    def current_bit(self, cycle):
        index = (cycle // self.bit_period) % len(self.secret_bits)
        return self.secret_bits[index]

    def tick(self, machine, cycle):
        if self.current_bit(cycle):
            machine.cpu.ports.steal(self.port, self.count)


class RngDrainActor(BackgroundActor):
    """Drains the shared RDRAND entropy buffer when the secret bit is 1 —
    the sender side of the RDRND covert channel."""

    def __init__(self, secret_bits, bit_period=600, period=20, amount=4):
        self.secret_bits = list(secret_bits)
        self.bit_period = bit_period
        self.period = period
        self.amount = amount

    def current_bit(self, cycle):
        index = (cycle // self.bit_period) % len(self.secret_bits)
        return self.secret_bits[index]

    def tick(self, machine, cycle):
        if self.current_bit(cycle):
            machine.rng.drain(cycle, self.amount)


class BusHammerActor(BackgroundActor):
    """Saturates the memory bus / DRAM from another component (the CPU-side
    view of the Leaky Buddies integrated-GPU channel)."""

    def __init__(self, secret_bits, base_addr, stride=4096, bit_period=800,
                 period=10, burst=2):
        self.secret_bits = list(secret_bits)
        self.base_addr = base_addr
        self.stride = stride
        self.bit_period = bit_period
        self.period = period
        self.burst = burst
        self._next = 0

    def current_bit(self, cycle):
        index = (cycle // self.bit_period) % len(self.secret_bits)
        return self.secret_bits[index]

    def tick(self, machine, cycle):
        if not self.current_bit(cycle):
            return
        for _ in range(self.burst):
            addr = self.base_addr + (self._next % 64) * self.stride
            self._next += 1
            machine.dram.access(addr, is_write=False, cycle=cycle)
            machine.counters.bump("membus.pktCount")
            machine.counters.bump("membus.dataThroughBus", 64)


class RowToucherActor(BackgroundActor):
    """Opens a secret-dependent DRAM row (the DRAMA transmitter): when the
    current bit is 1 it activates ``row_one``'s row, else ``row_zero``'s."""

    def __init__(self, secret_bits, addr_one, addr_zero, bit_period=2000,
                 period=60):
        self.secret_bits = list(secret_bits)
        self.addr_one = addr_one
        self.addr_zero = addr_zero
        self.bit_period = bit_period
        self.period = period

    def current_bit(self, cycle):
        index = (cycle // self.bit_period) % len(self.secret_bits)
        return self.secret_bits[index]

    def tick(self, machine, cycle):
        addr = self.addr_one if self.current_bit(cycle) else self.addr_zero
        machine.dram.access(addr, is_write=False, cycle=cycle)


class KernelToucherActor(BackgroundActor):
    """Caches a kernel line when the secret bit is 1 — models the mapped/
    unmapped kernel-page distinction FlushConflict probes for KASLR."""

    def __init__(self, secret_bits, kernel_addr, bit_period=2000, period=50):
        self.secret_bits = list(secret_bits)
        self.kernel_addr = kernel_addr
        self.bit_period = bit_period
        self.period = period

    def current_bit(self, cycle):
        index = (cycle // self.bit_period) % len(self.secret_bits)
        return self.secret_bits[index]

    def tick(self, machine, cycle):
        if self.current_bit(cycle):
            machine.hierarchy.access_data(self.kernel_addr, is_write=False,
                                          cycle=cycle)


class BranchTrainerActor(BackgroundActor):
    """Updates shared branch-predictor state in a secret-dependent way —
    the victim side of BranchScope-style directional-predictor attacks."""

    #: global-history values the victim's branch executes under; includes
    #: the histories a spin-loop-based prober arrives with
    histories = (0x000, 0xFFF, 0xFFE, 0xAAA, 0x555)

    def __init__(self, secret_bits, pc, bit_period=400, period=25):
        self.secret_bits = list(secret_bits)
        self.pc = pc
        self.bit_period = bit_period
        self.period = period

    def current_bit(self, cycle):
        index = (cycle // self.bit_period) % len(self.secret_bits)
        return self.secret_bits[index]

    def tick(self, machine, cycle):
        taken = bool(self.current_bit(cycle))
        predictor = machine.cpu.branch_predictor
        # the victim's branch executes under varying global histories, so
        # it trains several gshare entries (not just one) plus the local
        # table -- whichever component the attacker's lookup lands on
        # reflects the current secret bit
        saved = predictor.history
        for history in self.histories:
            predictor.history = history
            predictor.update(self.pc, taken)
        predictor.history = saved
