"""Branch prediction: tournament predictor, BTB and return address stack.

The tournament predictor combines a local 2-bit-counter table indexed by PC
with a gshare global-history table, arbitrated by a choice table — the
structure Spectre-PHT mistrains.  The BTB caches indirect/taken targets
(Spectre-BTB mistrains it) and the RAS predicts returns (Spectre-RSB
desynchronizes it from the in-memory return address).
"""

from repro.sim.hpc import CounterBank

_IX = CounterBank.index_of

_C_LOOKUPS = _IX("branchPred.lookups")
_C_CONDPREDICTED = _IX("branchPred.condPredicted")
_C_BTBLOOKUPS = _IX("branchPred.BTBLookups")
_C_BTBHITS = _IX("branchPred.BTBHits")
_C_BTBMISSES = _IX("branchPred.BTBMisses")
_C_RASUSED = _IX("branchPred.RASUsed")


def _saturate(counter, taken, bits=2):
    """Update a saturating counter."""
    top = (1 << bits) - 1
    if taken:
        return min(counter + 1, top)
    return max(counter - 1, 0)


class TournamentPredictor:
    """Local + gshare tournament direction predictor."""

    def __init__(self, local_size=2048, global_size=8192, choice_size=8192,
                 counters=None):
        self.local_size = local_size
        self.global_size = global_size
        self.choice_size = choice_size
        self.local_table = [1] * local_size          # weakly not-taken
        self.global_table = [1] * global_size
        # weakly prefer the local (PC-indexed) component: histories seen at
        # prediction time may not match training-time histories, and the
        # chooser only migrates to gshare where gshare earns it
        self.choice_table = [1] * choice_size
        self.history = 0
        self.counters = counters

    def _indices(self, pc):
        li = pc % self.local_size
        gi = (pc ^ self.history) % self.global_size
        ci = pc % self.choice_size
        return li, gi, ci

    def predict(self, pc):
        """Predicted direction for the conditional branch at ``pc``."""
        li, gi, ci = self._indices(pc)
        if self.counters is not None:
            v = self.counters.values
            v[_C_LOOKUPS] += 1
            v[_C_CONDPREDICTED] += 1
        if self.choice_table[ci] >= 2:
            return self.global_table[gi] >= 2
        return self.local_table[li] >= 2

    def update(self, pc, taken):
        """Train both component tables and the chooser on the outcome."""
        li, gi, ci = self._indices(pc)
        local_correct = (self.local_table[li] >= 2) == taken
        global_correct = (self.global_table[gi] >= 2) == taken
        if local_correct != global_correct:
            self.choice_table[ci] = _saturate(self.choice_table[ci], global_correct)
        self.local_table[li] = _saturate(self.local_table[li], taken)
        self.global_table[gi] = _saturate(self.global_table[gi], taken)
        self.history = ((self.history << 1) | int(taken)) & 0xFFF


class BTB:
    """Direct-mapped branch target buffer with tags."""

    def __init__(self, entries=4096, counters=None):
        self.entries = entries
        self.targets = [None] * entries
        self.tags = [None] * entries
        self.counters = counters

    def lookup(self, pc):
        """Predicted target for ``pc`` or None on a BTB miss."""
        idx = pc % self.entries
        counters = self.counters
        if counters is not None:
            counters.values[_C_BTBLOOKUPS] += 1
        if self.tags[idx] == pc:
            if counters is not None:
                counters.values[_C_BTBHITS] += 1
            return self.targets[idx]
        if counters is not None:
            counters.values[_C_BTBMISSES] += 1
        return None

    def update(self, pc, target):
        idx = pc % self.entries
        self.tags[idx] = pc
        self.targets[idx] = target


class RAS:
    """Circular return address stack."""

    def __init__(self, entries=16, counters=None):
        self.entries = entries
        self.stack = [0] * entries
        self.top = 0
        self.count = 0
        self.counters = counters

    def push(self, return_pc):
        self.stack[self.top] = return_pc
        self.top = (self.top + 1) % self.entries
        self.count = min(self.count + 1, self.entries)

    def pop(self):
        """Predicted return target (None when empty)."""
        if self.counters is not None:
            self.counters.values[_C_RASUSED] += 1
        if self.count == 0:
            return None
        self.top = (self.top - 1) % self.entries
        self.count -= 1
        return self.stack[self.top]

    def state(self):
        """Checkpointable state (for squash recovery, not modeled by
        default — real RSB attacks rely on the stale state we keep)."""
        return (self.top, self.count, tuple(self.stack))
