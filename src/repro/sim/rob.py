"""Reorder-buffer entry and in-flight instruction state."""

import enum


class EntryState(enum.Enum):
    """Lifecycle of an in-flight ROB entry."""

    DISPATCHED = "dispatched"   # in the ROB/IQ, waiting for operands/port
    EXECUTING = "executing"     # issued; result arrives at done_cycle
    DONE = "done"               # result available, awaiting commit
    SQUASHED = "squashed"       # removed from the ROB (terminal); lets the
    #                             core's lazy lists detect dead entries with
    #                             one identity check instead of a dict probe


class FaultKind(enum.Enum):
    """Deferred-fault kinds resolved when the entry reaches the head."""

    NONE = "none"
    PRIV = "priv"       # user-mode access to a kernel address (Meltdown)
    ASSIST = "assist"   # microcode-assist page (LVI / MDS forwarding path)


class RobEntry:
    """One in-flight micro-op.

    Operand values live in the ``v1``/``v2`` slots (for rs1/rs2).  The
    optimized core captures them eagerly: at dispatch when the value is
    already architectural or the producer is DONE (results are write-once,
    and any younger writer of the same register commits after this entry
    executes, so early capture reads the same value the execute stage
    would), otherwise at the producer's completion via the producer's
    ``waiters`` list of ``(consumer, slot)`` pairs.
    The reference scheduler instead keeps the seed's ``sources`` dict —
    register -> ``("val", value)`` | ``("rob", seq)`` — resolved lazily at
    execute; the slot is left unset here and created by its dispatch.
    """

    __slots__ = (
        "seq", "pc", "inst", "state", "sources", "v1", "v2", "waiters",
        "result", "done_cycle", "fault", "addr", "store_value", "is_load",
        "is_store", "is_branch", "is_cond_branch", "predicted_taken",
        "predicted_target", "actual_taken", "actual_target",
        "forwarded_from", "read_memory", "invisible", "needs_expose",
        "issue_cycle", "under_shadow", "pending_sources",
    )

    def __init__(self, seq, pc, inst, predicted_taken=None,
                 predicted_target=None):
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.state = EntryState.DISPATCHED
        self.waiters = None   # lazily created [(consumer, slot), ...]
        self.result = None
        self.fault = FaultKind.NONE
        self.needs_expose = False
        self.predicted_taken = predicted_taken
        self.predicted_target = predicted_target
        # classification flags precomputed by Instruction.__post_init__
        is_load = inst.is_load
        is_store = inst.is_store
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = inst.is_branch
        self.is_cond_branch = inst.is_cond_branch
        # Kind-specific fields are only initialized where some reader can
        # reach them before the execute stage assigns them:
        #   loads  — addr/forwarded_from/read_memory/invisible are read by
        #            the memory-order check and squash accounting,
        #   stores — addr/store_value are scanned by the forwarding and
        #            dependence logic while the store is still DISPATCHED.
        # done_cycle / issue_cycle / under_shadow / actual_taken /
        # actual_target are assigned at issue/execute before any read;
        # v1/v2/pending_sources are assigned at dispatch.
        if is_load:
            self.addr = None
            self.forwarded_from = None
            self.read_memory = False
            self.invisible = False
        elif is_store:
            self.addr = None
            self.store_value = None

    @property
    def resolved(self):
        return self.state is EntryState.DONE

    def __repr__(self):
        return (f"<RobEntry #{self.seq} pc={self.pc} {self.inst.op.value} "
                f"{self.state.value}>")
