"""Reorder-buffer entry and in-flight instruction state."""

import enum

from repro.sim.isa import (
    Op, BRANCH_OPS, COND_BRANCH_OPS, LOAD_OPS, STORE_OPS,
)


class EntryState(enum.Enum):
    """Lifecycle of an in-flight ROB entry."""

    DISPATCHED = "dispatched"   # in the ROB/IQ, waiting for operands/port
    EXECUTING = "executing"     # issued; result arrives at done_cycle
    DONE = "done"               # result available, awaiting commit


class FaultKind(enum.Enum):
    """Deferred-fault kinds resolved when the entry reaches the head."""

    NONE = "none"
    PRIV = "priv"       # user-mode access to a kernel address (Meltdown)
    ASSIST = "assist"   # microcode-assist page (LVI / MDS forwarding path)


class RobEntry:
    """One in-flight micro-op.

    ``sources`` maps each source register to either ``("val", value)`` when
    the operand was read from the architectural file at dispatch, or
    ``("rob", seq)`` when it is produced by an older in-flight entry.
    """

    __slots__ = (
        "seq", "pc", "inst", "state", "sources", "result", "done_cycle",
        "fault", "addr", "store_value", "is_load", "is_store", "is_branch",
        "is_cond_branch", "predicted_taken", "predicted_target",
        "actual_taken", "actual_target", "forwarded_from", "read_memory",
        "invisible", "needs_expose", "issue_cycle", "under_shadow",
    )

    def __init__(self, seq, pc, inst):
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.state = EntryState.DISPATCHED
        self.sources = {}
        self.result = None
        self.done_cycle = None
        self.issue_cycle = None
        self.fault = FaultKind.NONE
        self.addr = None            # effective address once computed
        self.store_value = None     # value an in-flight store will write
        self.is_load = inst.op in LOAD_OPS or inst.op is Op.RET
        self.is_store = inst.op in STORE_OPS or inst.op is Op.CALL
        self.is_branch = inst.op in BRANCH_OPS
        self.is_cond_branch = inst.op in COND_BRANCH_OPS
        self.predicted_taken = None
        self.predicted_target = None
        self.actual_taken = None
        self.actual_target = None
        self.forwarded_from = None  # seq of the store that forwarded to this load
        self.read_memory = False    # load value came from memory, not forwarding
        self.invisible = False      # issued as an InvisiSpec speculative access
        self.needs_expose = False
        self.under_shadow = False   # issued under an unresolved branch

    @property
    def resolved(self):
        return self.state is EntryState.DONE

    def __repr__(self):
        return (f"<RobEntry #{self.seq} pc={self.pc} {self.inst.op.value} "
                f"{self.state.value}>")
