"""The out-of-order pipeline: fetch, dispatch, issue, complete, commit.

The model is Tomasulo-with-ROB: entries carry their operand links
(architectural value or producing ROB entry), results are computed at issue
and become architecturally visible at ``done_cycle``, and commit retires
in program order from the ROB head.  The security-relevant behaviours are
faithful:

* **Deferred faults** — a user-mode load of a kernel address executes
  (returning the real data when the core is Meltdown-vulnerable) and only
  traps when it reaches the ROB head; younger dependent ops execute
  transiently in the meantime, bounded by the ROB size.
* **Wrong-path execution** — conditional/indirect/return mispredictions are
  discovered when the branch resolves; until then wrong-path loads issue
  and perturb real cache state.
* **Store-to-load forwarding & memory-dependence speculation** — loads may
  bypass older unresolved stores (Spectre-STL), and assist-page loads
  transiently receive stale store-queue data (LVI / MDS) before faulting.
* **Defenses** — fencing modes delay issue; InvisiSpec modes service
  shadowed loads invisibly and expose them at commit.

Hot-loop structure (see docs/simulator.md "Fast counter path & wakeup
scheduling"): counters are bumped through preresolved integer slots, not
name lookups; issue readiness is a maintained ``pending_sources`` count
driven by per-producer wakeup lists instead of a per-cycle operand scan;
completion is a (done_cycle, seq) heap instead of a scan over in-flight
entries; and the oldest unresolved branch / fence / lfence is O(1) because
those lists are kept in program order.  ``repro.sim.reference`` keeps the
original scan-based scheduler as an executable specification; the two must
stay counter-stream bit-identical (tests/sim/test_counter_equivalence.py).
"""

import heapq
from bisect import insort
from collections import deque
from operator import attrgetter

from repro.sim.config import DefenseMode
from repro.sim.hpc import CounterBank
from repro.sim.isa import (
    Op, PORT_INT, PORT_MULDIV, PORT_MEM, WORD_BYTES,
    is_assist_address, is_kernel_address,
)
from repro.sim.rob import EntryState, FaultKind, RobEntry
from repro.sim.units import ExecPorts

_SQUASH_REDIRECT_PENALTY = 3

_SEQ_OF = attrgetter("seq")

_DONE = EntryState.DONE
_DISPATCHED = EntryState.DISPATCHED
_EXECUTING = EntryState.EXECUTING
_SQUASHED = EntryState.SQUASHED
_FAULT_NONE = FaultKind.NONE

# -- preresolved counter slots (typo fails at import, not first event) --------
_IX = CounterBank.index_of

_C_CPU_NUMCYCLES = _IX("cpu.numCycles")
_C_CPU_IDLECYCLES = _IX("cpu.idleCycles")
_C_CPU_COMMITTEDOPS = _IX("cpu.committedOps")
_C_CPU_RDTSCREADS = _IX("cpu.rdtscReads")

_C_COMMIT_STORES = _IX("commit.stores")
_C_COMMIT_LOADS = _IX("commit.loads")
_C_COMMIT_MEMREFS = _IX("commit.memRefs")
_C_COMMIT_BRANCHES = _IX("commit.branches")
_C_COMMIT_FENCES = _IX("commit.fences")
_C_COMMIT_MEMBARS = _IX("commit.membars")
_C_COMMIT_COMMITTEDINSTS = _IX("commit.committedInsts")
_C_COMMIT_TRAPS = _IX("commit.traps")
_C_COMMIT_SQUASHEDINSTS = _IX("commit.squashedInsts")
_C_COMMIT_COMMITSQUASHED = _IX("commit.commitSquashedInsts")
_C_COMMIT_BRANCHMISPRED = _IX("commit.branchMispredicts")

_C_ROB_READS = _IX("rob.reads")
_C_ROB_WRITES = _IX("rob.writes")
_C_ROB_FULLEVENTS = _IX("rob.fullEvents")

_C_SPECBUF_EXPOSES = _IX("specbuf.exposes")
_C_SPECBUF_VALIDATIONSTALLS = _IX("specbuf.validationStalls")
_C_SPECBUF_SQUASHES = _IX("specbuf.squashes")

_C_SQUASH_FAULT = _IX("squash.faultSquashes")
_C_SQUASH_BRANCH = _IX("squash.branchSquashes")
_C_SQUASH_MEMORDER = _IX("squash.memOrderSquashes")
_C_SQUASH_FETCHED = _IX("squash.squashedFetchedInsts")

_C_IEW_PORTCONTENTION = _IX("iew.portContentionCycles")
_C_IEW_INTALU = _IX("iew.intAluAccesses")
_C_IEW_MULDIV = _IX("iew.mulDivAccesses")
_C_IEW_EXECBRANCHES = _IX("iew.execBranches")
_C_IEW_BRANCHMISPRED = _IX("iew.branchMispredicts")
_C_IEW_PREDTAKENINCORRECT = _IX("iew.predictedTakenIncorrect")
_C_IEW_EXECSQUASHED = _IX("iew.execSquashedInsts")
_C_IEW_EXECLOADS = _IX("iew.execLoadInsts")
_C_IEW_EXECSTORES = _IX("iew.execStoreInsts")
_C_IEW_MEMORDERVIOL = _IX("iew.memOrderViolationEvents")

_C_BP_CONDINCORRECT = _IX("branchPred.condIncorrect")
_C_BP_INDIRECTMISPRED = _IX("branchPred.indirectMispredicted")
_C_BP_INDIRECTLOOKUPS = _IX("branchPred.indirectLookups")
_C_BP_INDIRECTHITS = _IX("branchPred.indirectHits")
_C_BP_RASINCORRECT = _IX("branchPred.RASIncorrect")

_C_IQ_SQUASHEDEXAMINED = _IX("iq.squashedInstsExamined")
_C_IQ_SQUASHEDISSUED = _IX("iq.squashedInstsIssued")
_C_IQ_SQUASHEDNONSPECLD = _IX("iq.squashedNonSpecLD")
_C_IQ_CONFLICTS = _IX("iq.conflicts")
_C_IQ_INSTSISSUED = _IX("iq.instsIssued")
_C_IQ_INTQUEUEREADS = _IX("iq.intInstQueueReads")
_C_IQ_FULLEVENTS = _IX("iq.fullEvents")
_C_IQ_INSTSADDED = _IX("iq.instsAdded")
_C_IQ_SPECINSTSADDED = _IX("iq.specInstsAdded")

_C_LSQ_SQUASHEDLOADS = _IX("lsq.squashedLoads")
_C_LSQ_SQUASHEDSTORES = _IX("lsq.squashedStores")
_C_LSQ_CACHEBLOCKED = _IX("lsq.cacheBlocked")
_C_LSQ_BLOCKEDLOADS = _IX("lsq.blockedLoads")
_C_LSQ_MEMORDERVIOL = _IX("lsq.memOrderViolation")
_C_LSQ_RESCHEDULED = _IX("lsq.rescheduledLoads")
_C_LSQ_UNALIGNEDSTORES = _IX("lsq.unalignedStores")
_C_LSQ_IGNOREDRESP = _IX("lsq.ignoredResponses")
_C_LSQ_ASSISTFORWARDS = _IX("lsq.assistForwards")
_C_LSQ_SPECLOADSHITWQ = _IX("lsq.specLoadsHitWriteQueue")
_C_LSQ_FORWLOADS = _IX("lsq.forwLoads")

_C_WRQUEUE_BYTESREAD = _IX("wrqueue.bytesRead")

_C_RENAME_UNDONEMAPS = _IX("rename.undoneMaps")
_C_RENAME_SQUASHED = _IX("rename.squashedInsts")
_C_RENAME_COMMITTEDMAPS = _IX("rename.committedMaps")
_C_RENAME_SERIALIZING = _IX("rename.serializingInsts")
_C_RENAME_RENAMED = _IX("rename.renamedInsts")
_C_RENAME_BLOCKCYCLES = _IX("rename.blockCycles")

_C_DECODE_INSTS = _IX("decode.insts")
_C_DECODE_SQUASHED = _IX("decode.squashedInsts")

_C_FETCH_SQUASHCYCLES = _IX("fetch.squashCycles")
_C_FETCH_PENDINGQUIESCE = _IX("fetch.pendingQuiesceStallCycles")
_C_FETCH_BLOCKEDCYCLES = _IX("fetch.blockedCycles")
_C_FETCH_CYCLES = _IX("fetch.cycles")
_C_FETCH_ICACHESTALL = _IX("fetch.icacheStallCycles")
_C_FETCH_INSTS = _IX("fetch.insts")
_C_FETCH_BRANCHES = _IX("fetch.branches")
_C_FETCH_PREDICTEDTAKEN = _IX("fetch.predictedTaken")

# for the inlined L1I same-line fast path in _fetch (the machine shares one
# CounterBank across core, caches and TLBs)
_C_ICACHE_ACCESSES = _IX("icache.accesses")
_C_ICACHE_HITS = _IX("icache.hits")


class O3Core:
    """The out-of-order core, advanced one cycle at a time by the Machine."""

    def __init__(self, machine):
        self.m = machine
        self.config = machine.config
        self.counters = machine.counters
        self.ports = ExecPorts(self.config, self.counters)
        self.branch_predictor = machine.branch_predictor
        self.btb = machine.btb
        self.ras = machine.ras

        self.arch_regs = [0] * 16
        self.rename_map = [None] * 16  # arch reg -> producing RobEntry (or None)
        self._sampler = machine.sampler
        self.rob = deque()             # program order, left = oldest
        self.entries_by_seq = {}
        self.waiting = []              # DISPATCHED (reference scheduler only)
        self._iq_len = 0               # DISPATCHED count (fast IQ occupancy)
        self._ready = []               # DISPATCHED + operands ready, seq order
        self.executing = []            # EXECUTING (reference scheduler only)
        self.store_entries = []        # in-flight stores, program order
        self.load_entries = []         # in-flight loads, program order
        self.unresolved_branches = []  # mispredictable branches not DONE
        self.fences = []               # in-flight FENCE entries
        self.lfences = []              # in-flight LFENCE entries

        # -- wakeup/event scheduling state (fast scheduler) ---------------
        #: min-heap of (done_cycle, seq, entry) for in-flight executions
        #: (wakeup links live on the producer entries themselves:
        #: RobEntry.waiters is a lazy [(consumer, slot), ...] list)
        self._completion = []
        #: bumped on every squash; invalidates the oldest-incomplete cache
        self._squash_epoch = 0
        self._oldest_incomplete_key = None
        self._oldest_incomplete = None

        self.fetch_buffer = deque()
        self.fetch_pc = 0
        self.fetch_stall_until = 0
        self.commit_stall_until = 0
        self.trap_handler = None
        self.halted = False
        self.halt_reason = None

        self.next_seq = 0
        self.committed = 0
        self.cycle = 0
        self._halt_fetched = False

    # ------------------------------------------------------------------ helpers

    def _operand(self, entry, reg):
        """Operand value from the entry's capture slots.  ``reg`` is always
        the instruction's rs1 or rs2 (CALL/RET pass 15, which *is* their
        rs1); the reference scheduler overrides this with the seed's lazy
        ``sources``-dict resolution."""
        return entry.v1 if reg == entry.inst.rs1 else entry.v2

    def _has_older_unresolved_branch(self, seq):
        # unresolved_branches is kept in program order, so the oldest
        # unresolved branch is always the first element
        ub = self.unresolved_branches
        return bool(ub) and ub[0].seq < seq

    def _has_older_incomplete(self, entry):
        """Is any older ROB entry not DONE?  Cached per (cycle, squash
        epoch): within one issue scan the set of non-DONE entries only
        loses members to squashes (which bump the epoch), so the oldest
        incomplete seq is stable between recomputes."""
        key = (self.cycle, self._squash_epoch)
        if self._oldest_incomplete_key != key:
            self._oldest_incomplete_key = key
            self._oldest_incomplete = next(
                (e.seq for e in self.rob if e.state is not _DONE), None)
        oldest = self._oldest_incomplete
        return oldest is not None and oldest < entry.seq

    def _mark_done(self, entry):
        """Transition to DONE and wake every consumer waiting on it,
        forwarding the (write-once) result into their operand slots."""
        entry.state = _DONE
        waiters = entry.waiters
        if waiters:
            result = entry.result
            for consumer, slot in waiters:
                if slot == 1:
                    consumer.v1 = result
                else:
                    consumer.v2 = result
                consumer.pending_sources -= 1
                if consumer.pending_sources == 0 \
                        and consumer.state is _DISPATCHED:
                    self._note_ready(consumer)

    def _note_ready(self, entry):
        """Register an operand-ready DISPATCHED entry as an issue candidate.

        The candidate list stays seq-sorted (dispatch appends in seq order;
        wakeups insort); entries that issue or get squashed are pruned
        lazily by :meth:`_issue`.  The reference scheduler overrides this
        to a no-op — it rescans ``waiting`` every cycle instead.
        """
        ready = self._ready
        if not ready or ready[-1].seq < entry.seq:
            ready.append(entry)
        else:
            insort(ready, entry, key=_SEQ_OF)

    def _note_executing(self, entry):
        """Register a newly issued entry with the completion scheduler."""
        heapq.heappush(self._completion, (entry.done_cycle, entry.seq, entry))

    # ------------------------------------------------------------------ cycle

    def step(self, cycle):
        """Advance the core one cycle."""
        self.cycle = cycle
        # inline of ExecPorts.new_cycle: stolen ports apply to this cycle
        # (the tables are lists indexed PORT_INT/PORT_MULDIV/PORT_MEM = 0/1/2)
        used, stolen = self.ports._used, self.ports._stolen
        used[0] = stolen[0]
        used[1] = stolen[1]
        used[2] = stolen[2]
        stolen[0] = stolen[1] = stolen[2] = 0
        v = self.counters.values
        v[_C_CPU_NUMCYCLES] += 1
        committed_before = self.committed
        self._commit(cycle)
        if self.committed == committed_before:
            # no instruction retired this cycle (head not ready, commit
            # stalled, or an expose occupied the commit port)
            v[_C_CPU_IDLECYCLES] += 1
        if self.halted:
            return
        self._complete(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._fetch(cycle)
        if not self.rob and not self.fetch_buffer:
            insts = self.m.program.instructions
            if not 0 <= self.fetch_pc < len(insts):
                self.halted = True
                self.halt_reason = "end-of-program"

    # ------------------------------------------------------------------ commit

    def _commit(self, cycle):
        if self.commit_stall_until > cycle:
            return
        rob = self.rob
        if not rob or rob[0].state is not _DONE:
            return  # head not ready: skip the locals below on idle cycles
        retired = 0
        width = self.config.commit_width
        v = self.counters.values
        by_seq = self.entries_by_seq
        while retired < width and rob:
            head = rob[0]
            if head.state is not _DONE:
                break
            if head.fault is not _FAULT_NONE:
                self._trap(head, cycle)
                return
            if head.needs_expose:
                self._expose(head, cycle)
                return
            # ---- inline retire (was _retire; only ever called here) ----
            inst = head.inst
            seq = head.seq
            rd = inst.rd
            if rd is not None and head.result is not None:
                self.arch_regs[rd] = head.result
            if head.is_branch:
                v[_C_COMMIT_BRANCHES] += 1
            flags = inst.disp_flags   # 0 for plain ALU ops
            if flags:
                if flags & 1:        # store: drain to memory at commit
                    if head.addr is not None:
                        self.m.memory.store(head.addr, head.store_value)
                        self.m.hierarchy.access_data(
                            head.addr, is_write=True, cycle=cycle)
                        v[_C_COMMIT_STORES] += 1
                        v[_C_COMMIT_MEMREFS] += 1
                    # the retiring head is the oldest in-flight store
                    stores = self.store_entries
                    if stores and stores[0] is head:
                        del stores[0]
                    else:
                        stores.remove(head)
                elif flags & 2:      # load
                    v[_C_COMMIT_LOADS] += 1
                    v[_C_COMMIT_MEMREFS] += 1
                    loads = self.load_entries
                    if loads and loads[0] is head:
                        del loads[0]
                    else:
                        loads.remove(head)
            rk = inst.retire_kind
            if rk:
                if rk == 1:    # MARK
                    self.m.record_phase(inst.imm, self.committed)
                elif rk == 2:  # TRY
                    self.trap_handler = inst.target
                elif rk == 3:  # FENCE / LFENCE
                    v[_C_COMMIT_FENCES] += 1
                    v[_C_COMMIT_MEMBARS] += 1
                    gate = self.fences if inst.op is Op.FENCE else self.lfences
                    try:
                        gate.remove(head)
                    except ValueError:
                        pass
                else:          # HALT
                    self.halted = True
                    self.halt_reason = "halt"
            del by_seq[seq]
            if rd is not None and self.rename_map[rd] is head:
                self.rename_map[rd] = None
            rob.popleft()
            self.committed += 1
            v[_C_COMMIT_COMMITTEDINSTS] += 1
            v[_C_CPU_COMMITTEDOPS] += 1
            v[_C_ROB_WRITES] += 1
            # cheap inline gate: the sampler only acts at a window
            # boundary, so skip the call chain for most commits
            if self.committed >= self._sampler.next_boundary:
                self.m.on_commit(self.committed)
            retired += 1
            if self.halted:
                return

    def _expose(self, head, cycle):
        """InvisiSpec exposure: make the load architecturally visible.

        The expose occupies the commit port for
        ``invisispec_expose_latency`` cycles.  Accounting contract (pinned
        by tests/sim/test_invisispec_accounting.py): ``specbuf.exposes``
        counts expose *events*, ``specbuf.validationStalls`` counts the
        commit cycles stalled by validation, so ``validationStalls ==
        exposes * invisispec_expose_latency`` always holds — the expose
        event is recorded exactly once per load no matter how many cycles
        the stalled commit port re-polls the head, and the stalled cycles
        themselves are also visible as ``cpu.idleCycles`` via the
        no-retirement path in :meth:`step`.
        """
        head.needs_expose = False
        stall = self.config.invisispec_expose_latency
        v = self.counters.values
        v[_C_SPECBUF_EXPOSES] += 1
        v[_C_SPECBUF_VALIDATIONSTALLS] += stall
        self.m.hierarchy.access_data(head.addr, is_write=False, cycle=cycle)
        self.commit_stall_until = cycle + stall

    def _trap(self, entry, cycle):
        v = self.counters.values
        v[_C_COMMIT_TRAPS] += 1
        v[_C_SQUASH_FAULT] += 1
        squashed = self._squash_younger(entry.seq - 1, cycle)
        v[_C_COMMIT_COMMITSQUASHED] += squashed
        self.commit_stall_until = cycle + self.config.trap_latency
        if self.trap_handler is not None:
            self._redirect(self.trap_handler, cycle + self.config.trap_latency)
        else:
            self.halted = True
            self.halt_reason = f"fault:{entry.fault.value}"
        self.committed += 1  # the trap consumes the faulting op
        m = self.m
        if self.committed >= m.sampler.next_boundary:
            m.on_commit(self.committed)

    # ------------------------------------------------------------------ complete

    def _complete(self, cycle):
        """Wake entries whose results arrive this cycle.

        Heap order (done_cycle, seq) matches the reference scheduler's
        sort-by-seq because the core is stepped every cycle while work is
        in flight, so everything due has ``done_cycle == cycle``.
        """
        heap = self._completion
        if not heap or heap[0][0] > cycle:
            return
        ready = self._ready
        pop = heapq.heappop
        while heap and heap[0][0] <= cycle:
            _, seq, entry = pop(heap)
            if entry.state is not _EXECUTING:
                continue  # squashed after issue (state is _SQUASHED)
            # inline of _mark_done (value forwarding) and _note_ready
            entry.state = _DONE
            waiters = entry.waiters
            if waiters:
                result = entry.result
                for consumer, slot in waiters:
                    if slot == 1:
                        consumer.v1 = result
                    else:
                        consumer.v2 = result
                    consumer.pending_sources -= 1
                    if consumer.pending_sources == 0 \
                            and consumer.state is _DISPATCHED:
                        if not ready or ready[-1].seq < consumer.seq:
                            ready.append(consumer)
                        else:
                            insort(ready, consumer, key=_SEQ_OF)
            if entry.is_branch:
                self._resolve_branch(entry, cycle)

    def _resolve_branch(self, entry, cycle):
        v = self.counters.values
        op = entry.inst.op
        try:
            self.unresolved_branches.remove(entry)
        except ValueError:
            pass
        v[_C_IEW_EXECBRANCHES] += 1
        if entry.is_cond_branch:
            self.branch_predictor.update(entry.pc, entry.actual_taken)
        if op is Op.JMPI:
            self.btb.update(entry.pc, entry.actual_target)
        mispredicted = entry.predicted_target != entry.actual_target
        if not mispredicted:
            return
        v[_C_IEW_BRANCHMISPRED] += 1
        v[_C_COMMIT_BRANCHMISPRED] += 1
        if entry.is_cond_branch:
            v[_C_BP_CONDINCORRECT] += 1
            if entry.predicted_taken:
                v[_C_IEW_PREDTAKENINCORRECT] += 1
        elif op is Op.JMPI:
            v[_C_BP_INDIRECTMISPRED] += 1
        elif op is Op.RET:
            v[_C_BP_RASINCORRECT] += 1
        v[_C_SQUASH_BRANCH] += 1
        self._squash_younger(entry.seq, cycle)
        self._redirect(entry.actual_target, cycle)

    # ------------------------------------------------------------------ squash

    def _squash_younger(self, than_seq, cycle):
        """Remove every ROB entry with seq > than_seq; returns the count."""
        v = self.counters.values
        rob = self.rob
        squashed = 0
        while rob and rob[-1].seq > than_seq:
            entry = rob.pop()
            squashed += 1
            v[_C_IQ_SQUASHEDEXAMINED] += 1
            if entry.state is not _DISPATCHED:
                v[_C_IEW_EXECSQUASHED] += 1
                v[_C_IQ_SQUASHEDISSUED] += 1
                if entry.is_load:
                    v[_C_LSQ_SQUASHEDLOADS] += 1
                    if entry.fault is not FaultKind.NONE:
                        v[_C_IQ_SQUASHEDNONSPECLD] += 1
                    if entry.invisible:
                        v[_C_SPECBUF_SQUASHES] += 1
                if entry.is_store:
                    v[_C_LSQ_SQUASHEDSTORES] += 1
            if entry.inst.rd is not None:
                v[_C_RENAME_UNDONEMAPS] += 1
            self._remove_entry(entry)
        v[_C_DECODE_SQUASHED] += squashed
        v[_C_RENAME_SQUASHED] += squashed
        v[_C_COMMIT_SQUASHEDINSTS] += squashed
        v[_C_SQUASH_FETCHED] += len(self.fetch_buffer)
        self.fetch_buffer.clear()
        self._rebuild_rename_map()
        self._squash_epoch += 1
        return squashed

    def _remove_entry(self, entry):
        # Callers squash youngest-first, so in every ordered list the
        # victim is almost always the *last* element — try a tail pop
        # before falling back to a linear remove.
        self.entries_by_seq.pop(entry.seq, None)
        state = entry.state
        if state is _DISPATCHED:
            self._iq_len -= 1
            waiting = self.waiting     # reference scheduler's IQ list;
            if waiting:                # always empty under the fast core
                if waiting[-1] is entry:
                    waiting.pop()
                else:
                    try:
                        waiting.remove(entry)
                    except ValueError:
                        pass
        elif state is _EXECUTING and self.executing:
            try:
                self.executing.remove(entry)
            except ValueError:
                pass
        if entry.is_store:
            stores = self.store_entries
            if stores and stores[-1] is entry:
                stores.pop()
            else:
                try:
                    stores.remove(entry)
                except ValueError:
                    pass
        if entry.is_load:
            loads = self.load_entries
            if loads and loads[-1] is entry:
                loads.pop()
            else:
                try:
                    loads.remove(entry)
                except ValueError:
                    pass
        inst = entry.inst
        if inst.is_shadowing and state is not _DONE:
            ub = self.unresolved_branches
            if ub and ub[-1] is entry:
                ub.pop()
            else:
                try:
                    ub.remove(entry)
                except ValueError:
                    pass
        elif inst.retire_kind == 3:
            gate = self.fences if inst.op is Op.FENCE else self.lfences
            if gate and gate[-1] is entry:
                gate.pop()
            else:
                try:
                    gate.remove(entry)
                except ValueError:
                    pass
        rd = entry.inst.rd
        if rd is not None and self.rename_map[rd] is entry:
            self.rename_map[rd] = None
        # terminal state: lets the lazy ready/completion lists recognize a
        # dead entry from one identity check (seqs are never reused)
        entry.state = _SQUASHED

    def _rebuild_rename_map(self):
        rename_map = self.rename_map = [None] * 16
        for entry in self.rob:
            rd = entry.inst.rd
            if rd is not None:
                rename_map[rd] = entry

    def _redirect(self, target_pc, effective_cycle):
        self.fetch_pc = target_pc
        self.fetch_buffer.clear()
        self._halt_fetched = False
        self.fetch_stall_until = max(self.fetch_stall_until,
                                     effective_cycle + _SQUASH_REDIRECT_PENALTY)

    # ------------------------------------------------------------------ issue

    def _issue(self, cycle):
        """Issue up to issue_width operand-ready entries in program order.

        Walks the seq-sorted ready list — exactly the subset of ``waiting``
        the reference scheduler's scan would find operand-ready, in the
        same order — so every per-attempt counter (iq.conflicts,
        lsq.cacheBlocked, lsq.blockedLoads) fires identically.  Entries
        that issued or were squashed are pruned lazily here; a mid-walk
        squash (memory-order violation inside ``_execute``) cannot mutate
        the list, only invalidate entries via ``entries_by_seq``.
        """
        ready = self._ready
        if not ready:
            return
        issued = 0
        config = self.config
        width = config.issue_width
        defense = config.defense
        spectre_fence = defense is DefenseMode.FENCE_SPECTRE
        futuristic_fence = defense is DefenseMode.FENCE_FUTURISTIC
        stl_speculation = config.stl_speculation
        fences = self.fences
        lfences = self.lfences
        unresolved = self.unresolved_branches
        v = self.counters.values
        ports = self.ports
        port_used = ports._used
        port_cap = ports.capacity
        stale = None
        for i, entry in enumerate(ready):
            if entry.state is not _DISPATCHED:
                if stale is None:
                    stale = []
                stale.append(i)        # issued earlier or squashed
                continue
            seq = entry.seq
            if issued >= width:
                break
            # inline of _issue_allowed (kept as the readable/reference
            # form), in its exact check order — _load_may_issue bumps
            # lsq.blockedLoads, so it must stay behind the defense gates
            if fences and fences[0].seq < seq:
                continue
            is_load = entry.is_load
            if is_load and lfences and lfences[0].seq < seq:
                continue
            if spectre_fence:
                if unresolved and unresolved[0].seq < seq:
                    continue
            elif futuristic_fence and is_load \
                    and self._has_older_incomplete(entry):
                continue
            if is_load and not stl_speculation \
                    and not self._load_may_issue(entry):
                continue
            # inline of ExecPorts.try_issue_port
            port = entry.inst.port
            if port_used[port] >= port_cap[port]:
                v[_C_IEW_PORTCONTENTION] += 1
                v[_C_IQ_CONFLICTS] += 1
                if is_load:
                    v[_C_LSQ_CACHEBLOCKED] += 1
                continue
            port_used[port] += 1
            if port == PORT_INT:
                v[_C_IEW_INTALU] += 1
            elif port == PORT_MULDIV:
                v[_C_IEW_MULDIV] += 1
            self._execute(entry, cycle)
            if stale is None:
                stale = []
            stale.append(i)
            issued += 1
        if stale is not None:
            for i in reversed(stale):
                del ready[i]
        if issued:
            v[_C_IQ_INSTSISSUED] += issued
            v[_C_IQ_INTQUEUEREADS] += issued

    def _issue_allowed(self, entry, defense):
        seq = entry.seq
        # FENCE serializes everything younger until it commits.  The fence
        # lists are kept in program order, so only the head matters.
        fences = self.fences
        if fences and fences[0].seq < seq:
            return False
        is_load = entry.is_load
        if is_load:
            # LFENCE holds younger loads.
            lfences = self.lfences
            if lfences and lfences[0].seq < seq:
                return False
        if defense is DefenseMode.FENCE_SPECTRE:
            if self._has_older_unresolved_branch(seq):
                return False
        elif defense is DefenseMode.FENCE_FUTURISTIC:
            if is_load and self._has_older_incomplete(entry):
                return False
        if is_load:
            return self._load_may_issue(entry)
        return True

    def _load_may_issue(self, entry):
        """Memory-dependence check for loads against older stores."""
        if self.config.stl_speculation:
            return True  # speculate no-alias (Spectre-STL window)
        seq = entry.seq
        for store in self.store_entries:
            if store.seq >= seq:
                break
            if store.state is _DISPATCHED:
                # older store with unknown address
                self.counters.values[_C_LSQ_BLOCKEDLOADS] += 1
                return False
        return True

    # ------------------------------------------------------------------ execute

    def _execute(self, entry, cycle):
        entry.state = _EXECUTING
        entry.issue_cycle = cycle
        ub = self.unresolved_branches
        entry.under_shadow = bool(ub) and ub[0].seq < entry.seq
        self._iq_len -= 1
        inst = entry.inst
        kind = inst.exec_kind
        if kind == 0:
            # inline ALU: operands were captured into the slots at
            # dispatch/wakeup (v1=0 / v2=imm defaults filled at dispatch);
            # the reference core overrides _execute with the seed's lazy
            # sources-dict resolution
            code = inst.alu_code
            v1 = entry.v1
            v2 = entry.v2
            if code == 0:
                entry.result = v1 + v2
            elif code == 1:
                entry.result = v1 - v2
            elif code == 2:
                entry.result = v1 & v2
            elif code == 3:
                entry.result = v1 | v2
            elif code == 4:
                entry.result = v1 ^ v2
            elif code == 5:
                entry.result = v1 << (inst.imm & 63)
            elif code == 6:
                entry.result = v1 >> (inst.imm & 63)
            elif code == 7:
                entry.result = v1 * v2
            elif code == 8:
                entry.result = v1 // v2 if v2 else 0
            elif code == 9:
                entry.result = inst.imm
            elif code == 10:
                entry.result = v1
            latency = inst.exec_latency
        elif kind == 1:
            latency = self._execute_load(entry, cycle)
        elif kind == 3:
            latency = self._execute_branch(entry, cycle)
        elif kind == 2:
            latency = self._execute_store(entry, cycle)
        elif kind == 4:
            entry.addr = entry.v1 + inst.imm
            latency = self.m.hierarchy.flush_line(entry.addr, cycle)
        elif kind == 5:
            self.m.hierarchy.prefetch(entry.v1 + inst.imm, cycle)
            latency = 1
        elif kind == 6:
            value, latency = self.m.rng.read(cycle)
            entry.result = value
        else:  # kind == 7: RDTSC
            entry.result = cycle
            self.counters.values[_C_CPU_RDTSCREADS] += 1
            latency = 1
        done = entry.done_cycle = cycle + (latency if latency > 1 else 1)
        # inline of _note_executing
        heapq.heappush(self._completion, (done, entry.seq, entry))

    def _execute_branch(self, entry, cycle):
        inst = entry.inst
        op = inst.op
        if entry.is_cond_branch:
            v1 = self._operand(entry, inst.rs1)
            v2 = self._operand(entry, inst.rs2) if inst.rs2 is not None else inst.imm
            if op is Op.BEQ:
                taken = v1 == v2
            elif op is Op.BNE:
                taken = v1 != v2
            else:
                taken = v1 < v2
            entry.actual_taken = taken
            entry.actual_target = inst.target if taken else entry.pc + 1
        elif op is Op.JMP:
            entry.actual_taken = True
            entry.actual_target = inst.target
        elif op is Op.JMPI:
            entry.actual_taken = True
            entry.actual_target = self._operand(entry, inst.rs1)
            self.counters.values[_C_BP_INDIRECTLOOKUPS] += 1
        elif op is Op.CALL:
            # handled as a store in _execute_store; not reached
            entry.actual_target = inst.target
        return 1

    def _execute_store(self, entry, cycle):
        inst = entry.inst
        v = self.counters.values
        if inst.op is Op.CALL:
            sp = self._operand(entry, 15)
            new_sp = sp - WORD_BYTES
            entry.result = new_sp
            entry.addr = new_sp
            entry.store_value = entry.pc + 1
            entry.actual_taken = True
            entry.actual_target = inst.target
            latency = 1
        else:
            base = self._operand(entry, inst.rs1)
            entry.addr = base + inst.imm
            entry.store_value = self._operand(entry, inst.rs2)
            latency = 1
            if inst.op is Op.STOREU:
                v[_C_LSQ_UNALIGNEDSTORES] += 1
                latency = 2
        v[_C_IEW_EXECSTORES] += 1
        self.m.dtlb.access(entry.addr, is_write=True)
        self._check_order_violation(entry, cycle)
        return latency

    def _check_order_violation(self, store, cycle):
        """A store whose address just resolved may expose a younger load
        that speculatively read stale memory (Spectre-STL discovery).

        Scans the in-flight load list (program order, same order the
        reference scheduler sees walking the ROB) instead of the full ROB.
        """
        word = store.addr - (store.addr % WORD_BYTES)
        store_seq = store.seq
        for entry in self.load_entries:
            if entry.seq <= store_seq:
                continue
            if entry.state is _DISPATCHED or entry.addr is None:
                continue
            if entry.forwarded_from is not None and entry.forwarded_from >= store_seq:
                continue  # load already saw this store (or a younger one)
            got_stale = entry.read_memory or entry.forwarded_from is not None
            if entry.addr - (entry.addr % WORD_BYTES) == word and got_stale:
                v = self.counters.values
                v[_C_IEW_MEMORDERVIOL] += 1
                v[_C_LSQ_MEMORDERVIOL] += 1
                v[_C_SQUASH_MEMORDER] += 1
                v[_C_LSQ_RESCHEDULED] += 1
                self._squash_younger(entry.seq - 1, cycle)
                self._redirect(entry.pc, cycle)
                return

    def _execute_load(self, entry, cycle):
        inst = entry.inst
        self.counters.values[_C_IEW_EXECLOADS] += 1
        if inst.op is Op.RET:
            sp = self._operand(entry, 15)
            entry.addr = sp
            entry.result = sp + WORD_BYTES
        else:
            base = self._operand(entry, inst.rs1)
            entry.addr = base + inst.imm
        latency = self.m.dtlb.access(entry.addr, is_write=False)
        value, mem_latency = self._load_value(entry, cycle)
        latency += mem_latency
        if inst.op is Op.RET:
            entry.actual_taken = True
            entry.actual_target = value
        else:
            entry.result = value
        return latency

    def _load_value(self, entry, cycle):
        """Resolve a load's value and memory latency, including the
        transient fault paths."""
        v = self.counters.values
        addr = entry.addr
        # Privileged access: defer the check, return real data transiently.
        if is_kernel_address(addr) and self.m.user_mode:
            entry.fault = FaultKind.PRIV
            value = self.m.memory.load(addr) if self.config.meltdown_vulnerable else 0
            latency = self.m.hierarchy.access_data(
                addr, is_write=False, cycle=cycle,
                invisible=self._invisible(entry))
            return value, latency
        # Assist page: transiently forward stale buffered data (LVI/MDS).
        if is_assist_address(addr):
            entry.fault = FaultKind.ASSIST
            v[_C_LSQ_IGNOREDRESP] += 1
            value = 0
            if self.store_entries:
                youngest = None
                for store in self.store_entries:
                    if store.seq < entry.seq and store.store_value is not None:
                        youngest = store
                if youngest is not None:
                    value = youngest.store_value
                    v[_C_LSQ_ASSISTFORWARDS] += 1
                    v[_C_LSQ_SPECLOADSHITWQ] += 1
                    v[_C_WRQUEUE_BYTESREAD] += WORD_BYTES
            return value, self.config.l1d_latency
        # Store-to-load forwarding from the youngest older matching store.
        word = addr - (addr % WORD_BYTES)
        match = None
        entry_seq = entry.seq
        for store in self.store_entries:
            if store.seq >= entry_seq:
                break
            store_addr = store.addr
            if store_addr is not None and \
                    store_addr - (store_addr % WORD_BYTES) == word:
                match = store
        if match is not None:
            entry.forwarded_from = match.seq
            v[_C_LSQ_FORWLOADS] += 1
            return match.store_value, 1
        entry.read_memory = True
        value = self.m.memory.load(addr)
        latency = self.m.hierarchy.access_data(
            addr, is_write=False, cycle=cycle,
            invisible=self._invisible(entry))
        if self.m.prefetcher is not None and not entry.invisible:
            self.m.prefetcher.observe(entry.pc, addr, cycle)
        return value, latency

    def _invisible(self, entry):
        """Should this load use the InvisiSpec invisible path?"""
        defense = self.config.defense
        if defense is DefenseMode.INVISISPEC_FUTURISTIC:
            entry.invisible = True
        elif defense is DefenseMode.INVISISPEC_SPECTRE and entry.under_shadow:
            entry.invisible = True
        else:
            return False
        entry.needs_expose = True
        return True

    # ------------------------------------------------------------------ dispatch

    def _dispatch(self, cycle):
        fetch_buffer = self.fetch_buffer
        if not fetch_buffer:
            return
        config = self.config
        v = self.counters.values
        by_seq = self.entries_by_seq
        rename_map = self.rename_map
        arch_regs = self.arch_regs
        rob = self.rob
        ready = self._ready
        unresolved = self.unresolved_branches
        width = config.fetch_width
        rob_cap = config.rob_entries
        iq_cap = config.iq_entries
        rob_len = len(rob)          # maintained locally: len() is per-burst
        waiting_len = self._iq_len  # hoisted; written back after the loop
        new_entry = RobEntry.__new__
        dispatched = 0
        seq = self.next_seq         # hoisted; written back after the loop
        while fetch_buffer and dispatched < width:
            if rob_len >= rob_cap:
                v[_C_ROB_FULLEVENTS] += 1
                v[_C_RENAME_BLOCKCYCLES] += 1
                break
            if waiting_len >= iq_cap:
                v[_C_IQ_FULLEVENTS] += 1
                v[_C_RENAME_BLOCKCYCLES] += 1
                break
            pc, inst, ptaken, ptarget = fetch_buffer.popleft()
            # inline of RobEntry.__init__ (the constructor stays canonical
            # for the reference core; the equivalence suite pins the two)
            entry = new_entry(RobEntry)
            entry.seq = seq
            entry.pc = pc
            entry.inst = inst
            entry.state = _DISPATCHED
            entry.waiters = None
            entry.result = None
            entry.fault = _FAULT_NONE
            entry.needs_expose = False
            entry.predicted_taken = ptaken
            entry.predicted_target = ptarget
            is_load = inst.is_load
            is_store = inst.is_store
            entry.is_load = is_load
            entry.is_store = is_store
            entry.is_branch = inst.is_branch
            entry.is_cond_branch = inst.is_cond_branch
            if is_load:
                entry.addr = None
                entry.forwarded_from = None
                entry.read_memory = False
                entry.invisible = False
            elif is_store:
                entry.addr = None
                entry.store_value = None
            # Eager operand capture (see RobEntry): a value is final as
            # soon as its producer is DONE — results are write-once and
            # any younger same-register writer commits after this entry
            # executes — so only not-yet-DONE producers leave a wakeup
            # link ((consumer, slot) pairs on the producer's ``waiters``
            # list).  The rename map holds producer *entries* (retire/
            # squash clear dead ones), so no by_seq probe is needed here.
            pending = 0
            rs1 = inst.rs1
            if rs1 is None:
                entry.v1 = 0                       # ALU default operand
            else:
                producer = rename_map[rs1]
                if producer is None:
                    entry.v1 = arch_regs[rs1]      # architectural value
                elif producer.state is _DONE:
                    entry.v1 = producer.result
                else:
                    pending += 1
                    waiters = producer.waiters
                    if waiters is None:
                        producer.waiters = [(entry, 1)]
                    else:
                        waiters.append((entry, 1))
            rs2 = inst.rs2
            if rs2 is None:
                entry.v2 = inst.imm                # ALU/branch imm default
            else:
                producer = rename_map[rs2]
                if producer is None:
                    entry.v2 = arch_regs[rs2]
                elif producer.state is _DONE:
                    entry.v2 = producer.result
                else:
                    pending += 1
                    waiters = producer.waiters
                    if waiters is None:
                        producer.waiters = [(entry, 2)]
                    else:
                        waiters.append((entry, 2))
            entry.pending_sources = pending
            rd = inst.rd
            if rd is not None:
                rename_map[rd] = entry
                v[_C_RENAME_COMMITTEDMAPS] += 1
            rob.append(entry)
            rob_len += 1
            by_seq[seq] = entry
            waiting_len += 1
            if pending == 0:
                # inline of _note_ready: dispatch appends in seq order
                ready.append(entry)
            flags = inst.disp_flags   # 0 for plain ALU ops: skip it all
            if flags:
                if flags & 1:
                    self.store_entries.append(entry)
                elif flags & 2:
                    self.load_entries.append(entry)
                if flags & 4:
                    unresolved.append(entry)
                if flags & 8 and unresolved and unresolved[0].seq < seq:
                    v[_C_IQ_SPECINSTSADDED] += 1
                if flags & 16:
                    if inst.op is Op.FENCE:
                        self.fences.append(entry)
                    else:
                        self.lfences.append(entry)
                    v[_C_RENAME_SERIALIZING] += 1
            dispatched += 1
            seq += 1
        self.next_seq = seq
        self._iq_len = waiting_len
        if dispatched:
            # batched: no sampler snapshot can occur between dispatches
            # (the sampler only reads counters inside _commit), so bumping
            # once per burst is observationally identical
            v[_C_DECODE_INSTS] += dispatched
            v[_C_RENAME_RENAMED] += dispatched
            v[_C_IQ_INSTSADDED] += dispatched
            v[_C_ROB_READS] += dispatched

    # ------------------------------------------------------------------ fetch

    def _fetch(self, cycle):
        if self._halt_fetched:
            return
        v = self.counters.values
        if self.fetch_stall_until > cycle:
            v[_C_FETCH_SQUASHCYCLES] += 1
            v[_C_FETCH_PENDINGQUIESCE] += 1
            return
        fetch_buffer = self.fetch_buffer
        width = self.config.fetch_width
        if len(fetch_buffer) >= 2 * width:
            v[_C_FETCH_BLOCKEDCYCLES] += 1
            v[_C_FETCH_PENDINGQUIESCE] += 1
            return
        v[_C_FETCH_CYCLES] += 1
        m = self.m
        # the program can be swapped under us by a context switch, so the
        # decoded-instruction list is re-read per fetch burst, not cached
        # on the core
        insts = m.program.instructions
        n_insts = len(insts)
        itlb = m.itlb
        hierarchy = m.hierarchy
        ipage_bytes = itlb.page_bytes
        ix_itlb_acc = itlb._ix_accesses[0]
        last_page = itlb._last_page       # refreshed after each slow call
        last_iline = hierarchy._last_iline
        predictor = self.branch_predictor
        ras = self.ras
        btb = self.btb
        fetched = 0
        while fetched < width:
            pc = self.fetch_pc
            if not 0 <= pc < n_insts:
                break
            inst = insts[pc]
            # inline iTLB/L1I same-page/same-line fast paths (the shared
            # CounterBank makes their bumps visible through `v` too)
            addr = pc * 4
            if addr // ipage_bytes == last_page:
                v[ix_itlb_acc] += 1            # guaranteed MRU hit
                itlb_latency = 0
            else:
                itlb_latency = itlb.access(addr)
                last_page = itlb._last_page
            if pc >> 3 == last_iline:
                v[_C_ICACHE_ACCESSES] += 1     # still present and MRU
                v[_C_ICACHE_HITS] += 1
                icache_latency = 0
            else:
                icache_latency = hierarchy.access_inst(pc, cycle)
                last_iline = hierarchy._last_iline
            stall = itlb_latency + icache_latency
            if stall:
                self.fetch_stall_until = cycle + stall
                v[_C_FETCH_ICACHESTALL] += icache_latency
                break
            # inline fetch-time prediction (see Instruction.pred_kind)
            pk = inst.pred_kind
            if pk == 0:          # not a branch
                ptaken = None
                ptarget = pc + 1
            elif pk == 1:        # conditional: tournament predictor
                v[_C_FETCH_BRANCHES] += 1
                if predictor.predict(pc):
                    v[_C_FETCH_PREDICTEDTAKEN] += 1
                    ptaken = True
                    ptarget = inst.target
                else:
                    ptaken = False
                    ptarget = pc + 1
            elif pk == 2:        # direct JMP
                ptaken = True
                ptarget = inst.target
            elif pk == 3:        # CALL: push the return address
                ras.push(pc + 1)
                ptaken = True
                ptarget = inst.target
            elif pk == 4:        # indirect JMPI: BTB
                ptarget = btb.lookup(pc)
                if ptarget is not None:
                    v[_C_BP_INDIRECTHITS] += 1
                    ptaken = True
                else:
                    ptaken = False
                    ptarget = pc + 1
            else:                # RET: RAS
                ptarget = ras.pop()
                if ptarget is None:
                    ptaken = False
                    ptarget = pc + 1
                else:
                    ptaken = True
            fetch_buffer.append((pc, inst, ptaken, ptarget))
            fetched += 1
            if inst.is_halt:
                self._halt_fetched = True
                break
            self.fetch_pc = ptarget if ptarget is not None else pc + 1
            if ptarget is not None and ptarget != pc + 1:
                break  # taken branch ends the fetch group
        if fetched:
            v[_C_FETCH_INSTS] += fetched
