"""The out-of-order pipeline: fetch, dispatch, issue, complete, commit.

The model is Tomasulo-with-ROB: entries carry their operand links
(architectural value or producing ROB entry), results are computed at issue
and become architecturally visible at ``done_cycle``, and commit retires
in program order from the ROB head.  The security-relevant behaviours are
faithful:

* **Deferred faults** — a user-mode load of a kernel address executes
  (returning the real data when the core is Meltdown-vulnerable) and only
  traps when it reaches the ROB head; younger dependent ops execute
  transiently in the meantime, bounded by the ROB size.
* **Wrong-path execution** — conditional/indirect/return mispredictions are
  discovered when the branch resolves; until then wrong-path loads issue
  and perturb real cache state.
* **Store-to-load forwarding & memory-dependence speculation** — loads may
  bypass older unresolved stores (Spectre-STL), and assist-page loads
  transiently receive stale store-queue data (LVI / MDS) before faulting.
* **Defenses** — fencing modes delay issue; InvisiSpec modes service
  shadowed loads invisibly and expose them at commit.
"""

from collections import deque

from repro.sim.config import DefenseMode
from repro.sim.isa import (
    Op, WORD_BYTES, is_assist_address, is_kernel_address,
)
from repro.sim.rob import EntryState, FaultKind, RobEntry
from repro.sim.units import ExecPorts, OP_LATENCY

_SQUASH_REDIRECT_PENALTY = 3

#: Branch kinds that can actually mispredict (direct JMP/CALL cannot).
_SHADOWING_OPS = frozenset({Op.BEQ, Op.BNE, Op.BLT, Op.JMPI, Op.RET})


class O3Core:
    """The out-of-order core, advanced one cycle at a time by the Machine."""

    def __init__(self, machine):
        self.m = machine
        self.config = machine.config
        self.counters = machine.counters
        self.ports = ExecPorts(self.config, self.counters)
        self.branch_predictor = machine.branch_predictor
        self.btb = machine.btb
        self.ras = machine.ras

        self.arch_regs = [0] * 16
        self.rename_map = {}           # arch reg -> producing seq
        self.rob = deque()             # program order, left = oldest
        self.entries_by_seq = {}
        self.waiting = []              # DISPATCHED, program order
        self.executing = []            # EXECUTING
        self.store_entries = []        # in-flight stores, program order
        self.unresolved_branches = []  # mispredictable branches not DONE
        self.fences = []               # in-flight FENCE entries
        self.lfences = []              # in-flight LFENCE entries

        self.fetch_buffer = deque()
        self.fetch_pc = 0
        self.fetch_stall_until = 0
        self.commit_stall_until = 0
        self.trap_handler = None
        self.halted = False
        self.halt_reason = None

        self.next_seq = 0
        self.committed = 0
        self.cycle = 0
        self._halt_fetched = False

    # ------------------------------------------------------------------ helpers

    def _sources_ready(self, entry):
        for source in entry.sources.values():
            if source[0] == "rob":
                producer = self.entries_by_seq.get(source[1])
                # a committed producer's value is in the architectural file
                if producer is not None and producer.state is not EntryState.DONE:
                    return False
        return True

    def _operand(self, entry, reg):
        kind, payload = entry.sources[reg]
        if kind == "val":
            return payload
        producer = self.entries_by_seq.get(payload)
        if producer is None:
            return self.arch_regs[reg]
        return producer.result

    def _has_older_unresolved_branch(self, seq):
        return any(b.seq < seq for b in self.unresolved_branches)

    def _has_older_incomplete(self, entry):
        for other in self.rob:
            if other.seq >= entry.seq:
                return False
            if other.state is not EntryState.DONE:
                return True
        return False

    # ------------------------------------------------------------------ cycle

    def step(self, cycle):
        """Advance the core one cycle."""
        self.cycle = cycle
        self.ports.new_cycle()
        self.counters.bump("cpu.numCycles")
        committed_before = self.committed
        self._commit(cycle)
        if self.committed == committed_before:
            self.counters.bump("cpu.idleCycles")
        if self.halted:
            return
        self._complete(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self._fetch(cycle)
        if not self.rob and not self.fetch_buffer and \
                self.m.program.fetch(self.fetch_pc) is None:
            self.halted = True
            self.halt_reason = "end-of-program"

    # ------------------------------------------------------------------ commit

    def _commit(self, cycle):
        if self.commit_stall_until > cycle:
            return
        retired = 0
        while retired < self.config.commit_width and self.rob:
            head = self.rob[0]
            if head.state is not EntryState.DONE:
                break
            if head.fault is not FaultKind.NONE:
                self._trap(head, cycle)
                return
            if head.needs_expose:
                # InvisiSpec exposure: make the load architecturally visible
                head.needs_expose = False
                self.counters.bump("specbuf.exposes")
                self.counters.bump("specbuf.validationStalls")
                self.m.hierarchy.access_data(head.addr, is_write=False,
                                             cycle=cycle)
                self.commit_stall_until = cycle + \
                    self.config.invisispec_expose_latency
                return
            self._retire(head, cycle)
            retired += 1
            if self.halted:
                return

    def _retire(self, entry, cycle):
        op = entry.inst.op
        c = self.counters
        if entry.is_store and entry.addr is not None:
            self.m.memory.store(entry.addr, entry.store_value)
            self.m.hierarchy.access_data(entry.addr, is_write=True, cycle=cycle)
            c.bump("commit.stores")
            c.bump("commit.memRefs")
        if entry.is_load:
            c.bump("commit.loads")
            c.bump("commit.memRefs")
        if entry.inst.rd is not None and entry.result is not None:
            self.arch_regs[entry.inst.rd] = entry.result
        if entry.is_branch:
            c.bump("commit.branches")
        if op is Op.MARK:
            self.m.record_phase(entry.inst.imm, self.committed)
        elif op is Op.TRY:
            self.trap_handler = entry.inst.target
        elif op is Op.FENCE or op is Op.LFENCE:
            c.bump("commit.fences")
            c.bump("commit.membars")
        elif op is Op.HALT:
            self.halted = True
            self.halt_reason = "halt"
        self._remove_entry(entry)
        self.rob.popleft()
        self.committed += 1
        c.bump("commit.committedInsts")
        c.bump("cpu.committedOps")
        c.bump("rob.writes")
        self.m.on_commit(self.committed)

    def _trap(self, entry, cycle):
        c = self.counters
        c.bump("commit.traps")
        c.bump("squash.faultSquashes")
        squashed = self._squash_younger(entry.seq - 1, cycle)
        c.bump("commit.commitSquashedInsts", squashed)
        self.commit_stall_until = cycle + self.config.trap_latency
        if self.trap_handler is not None:
            self._redirect(self.trap_handler, cycle + self.config.trap_latency)
        else:
            self.halted = True
            self.halt_reason = f"fault:{entry.fault.value}"
        self.committed += 1  # the trap consumes the faulting op
        self.m.on_commit(self.committed)

    # ------------------------------------------------------------------ complete

    def _complete(self, cycle):
        finished = sorted((e for e in self.executing if e.done_cycle <= cycle),
                          key=lambda e: e.seq)
        for entry in finished:
            if entry.seq not in self.entries_by_seq:
                continue  # squashed earlier this cycle
            entry.state = EntryState.DONE
            try:
                self.executing.remove(entry)
            except ValueError:
                pass
            if entry.is_branch:
                self._resolve_branch(entry, cycle)

    def _resolve_branch(self, entry, cycle):
        c = self.counters
        op = entry.inst.op
        if entry in self.unresolved_branches:
            self.unresolved_branches.remove(entry)
        c.bump("iew.execBranches")
        if entry.is_cond_branch:
            self.branch_predictor.update(entry.pc, entry.actual_taken)
        if op is Op.JMPI:
            self.btb.update(entry.pc, entry.actual_target)
        mispredicted = entry.predicted_target != entry.actual_target
        if not mispredicted:
            return
        c.bump("iew.branchMispredicts")
        c.bump("commit.branchMispredicts")
        if entry.is_cond_branch:
            c.bump("branchPred.condIncorrect")
            if entry.predicted_taken:
                c.bump("iew.predictedTakenIncorrect")
        elif op is Op.JMPI:
            c.bump("branchPred.indirectMispredicted")
        elif op is Op.RET:
            c.bump("branchPred.RASIncorrect")
        c.bump("squash.branchSquashes")
        self._squash_younger(entry.seq, cycle)
        self._redirect(entry.actual_target, cycle)

    # ------------------------------------------------------------------ squash

    def _squash_younger(self, than_seq, cycle):
        """Remove every ROB entry with seq > than_seq; returns the count."""
        c = self.counters
        squashed = 0
        while self.rob and self.rob[-1].seq > than_seq:
            entry = self.rob.pop()
            squashed += 1
            c.bump("iq.squashedInstsExamined")
            if entry.state is not EntryState.DISPATCHED:
                c.bump("iew.execSquashedInsts")
                c.bump("iq.squashedInstsIssued")
                if entry.is_load:
                    c.bump("lsq.squashedLoads")
                    if entry.fault is not FaultKind.NONE:
                        c.bump("iq.squashedNonSpecLD")
                    if entry.invisible:
                        c.bump("specbuf.squashes")
                if entry.is_store:
                    c.bump("lsq.squashedStores")
            if entry.inst.rd is not None:
                c.bump("rename.undoneMaps")
            self._remove_entry(entry)
        c.bump("decode.squashedInsts", squashed)
        c.bump("rename.squashedInsts", squashed)
        c.bump("commit.squashedInsts", squashed)
        c.bump("squash.squashedFetchedInsts", len(self.fetch_buffer))
        self.fetch_buffer.clear()
        self._rebuild_rename_map()
        return squashed

    def _remove_entry(self, entry):
        self.entries_by_seq.pop(entry.seq, None)
        for bucket in (self.waiting, self.executing, self.store_entries,
                       self.unresolved_branches, self.fences, self.lfences):
            try:
                bucket.remove(entry)
            except ValueError:
                pass
        if self.rename_map.get(entry.inst.rd) == entry.seq:
            del self.rename_map[entry.inst.rd]

    def _rebuild_rename_map(self):
        self.rename_map = {}
        for entry in self.rob:
            if entry.inst.rd is not None:
                self.rename_map[entry.inst.rd] = entry.seq

    def _redirect(self, target_pc, effective_cycle):
        self.fetch_pc = target_pc
        self.fetch_buffer.clear()
        self._halt_fetched = False
        self.fetch_stall_until = max(self.fetch_stall_until,
                                     effective_cycle + _SQUASH_REDIRECT_PENALTY)

    # ------------------------------------------------------------------ issue

    def _issue(self, cycle):
        issued = 0
        defense = self.config.defense
        for entry in list(self.waiting):
            if issued >= self.config.issue_width:
                break
            if entry.seq not in self.entries_by_seq:
                continue  # squashed by a violation earlier in this scan
            if not self._sources_ready(entry):
                continue
            if not self._issue_allowed(entry, defense):
                continue
            if not self.ports.try_issue(entry.inst.op):
                self.counters.bump("iq.conflicts")
                if entry.is_load:
                    self.counters.bump("lsq.cacheBlocked")
                continue
            self._execute(entry, cycle)
            issued += 1
        if issued:
            self.counters.bump("iq.instsIssued", issued)
            self.counters.bump("iq.intInstQueueReads", issued)

    def _issue_allowed(self, entry, defense):
        seq = entry.seq
        # FENCE serializes everything younger until it commits.
        if any(f.seq < seq for f in self.fences):
            return False
        # LFENCE holds younger loads.
        if entry.is_load and any(f.seq < seq for f in self.lfences):
            return False
        if defense is DefenseMode.FENCE_SPECTRE:
            if self._has_older_unresolved_branch(seq):
                return False
        elif defense is DefenseMode.FENCE_FUTURISTIC:
            if entry.is_load and self._has_older_incomplete(entry):
                return False
        if entry.is_load:
            return self._load_may_issue(entry)
        return True

    def _load_may_issue(self, entry):
        """Memory-dependence check for loads against older stores."""
        for store in self.store_entries:
            if store.seq >= entry.seq:
                break
            if store.state is EntryState.DISPATCHED:
                # older store with unknown address
                if self.config.stl_speculation:
                    continue  # speculate no-alias (Spectre-STL window)
                self.counters.bump("lsq.blockedLoads")
                return False
        return True

    # ------------------------------------------------------------------ execute

    def _execute(self, entry, cycle):
        entry.state = EntryState.EXECUTING
        entry.issue_cycle = cycle
        entry.under_shadow = self._has_older_unresolved_branch(entry.seq)
        self.waiting.remove(entry)
        self.executing.append(entry)
        op = entry.inst.op
        if op is Op.LOAD or op is Op.RET:
            latency = self._execute_load(entry, cycle)
        elif entry.is_store:
            latency = self._execute_store(entry, cycle)
        elif op is Op.CLFLUSH:
            base = self._operand(entry, entry.inst.rs1)
            entry.addr = base + entry.inst.imm
            latency = self.m.hierarchy.flush_line(entry.addr, cycle)
        elif op is Op.PREFETCH:
            base = self._operand(entry, entry.inst.rs1)
            self.m.hierarchy.prefetch(base + entry.inst.imm, cycle)
            latency = 1
        elif op is Op.RDRAND:
            value, latency = self.m.rng.read(cycle)
            entry.result = value
        elif op is Op.RDTSC:
            entry.result = cycle
            self.counters.bump("cpu.rdtscReads")
            latency = 1
        elif entry.is_branch:
            latency = self._execute_branch(entry, cycle)
        else:
            latency = self._execute_alu(entry)
        entry.done_cycle = cycle + max(latency, 1)

    def _execute_alu(self, entry):
        inst = entry.inst
        op = inst.op
        v1 = self._operand(entry, inst.rs1) if inst.rs1 is not None else 0
        v2 = self._operand(entry, inst.rs2) if inst.rs2 is not None else inst.imm
        if op is Op.ADD:
            entry.result = v1 + v2
        elif op is Op.SUB:
            entry.result = v1 - v2
        elif op is Op.AND:
            entry.result = v1 & v2
        elif op is Op.OR:
            entry.result = v1 | v2
        elif op is Op.XOR:
            entry.result = v1 ^ v2
        elif op is Op.SHL:
            entry.result = v1 << (inst.imm & 63)
        elif op is Op.SHR:
            entry.result = v1 >> (inst.imm & 63)
        elif op is Op.MUL:
            entry.result = v1 * v2
        elif op is Op.DIV:
            entry.result = v1 // v2 if v2 else 0
        elif op is Op.MOVI:
            entry.result = inst.imm
        elif op is Op.MOV:
            entry.result = v1
        return OP_LATENCY.get(op, 1)

    def _execute_branch(self, entry, cycle):
        inst = entry.inst
        op = inst.op
        if entry.is_cond_branch:
            v1 = self._operand(entry, inst.rs1)
            v2 = self._operand(entry, inst.rs2) if inst.rs2 is not None else inst.imm
            if op is Op.BEQ:
                taken = v1 == v2
            elif op is Op.BNE:
                taken = v1 != v2
            else:
                taken = v1 < v2
            entry.actual_taken = taken
            entry.actual_target = inst.target if taken else entry.pc + 1
        elif op is Op.JMP:
            entry.actual_taken = True
            entry.actual_target = inst.target
        elif op is Op.JMPI:
            entry.actual_taken = True
            entry.actual_target = self._operand(entry, inst.rs1)
            self.counters.bump("branchPred.indirectLookups")
        elif op is Op.CALL:
            # handled as a store in _execute_store; not reached
            entry.actual_target = inst.target
        return 1

    def _execute_store(self, entry, cycle):
        inst = entry.inst
        c = self.counters
        if inst.op is Op.CALL:
            sp = self._operand(entry, 15)
            new_sp = sp - WORD_BYTES
            entry.result = new_sp
            entry.addr = new_sp
            entry.store_value = entry.pc + 1
            entry.actual_taken = True
            entry.actual_target = inst.target
            latency = 1
        else:
            base = self._operand(entry, inst.rs1)
            entry.addr = base + inst.imm
            entry.store_value = self._operand(entry, inst.rs2)
            latency = 1
            if inst.op is Op.STOREU:
                c.bump("lsq.unalignedStores")
                latency = 2
        c.bump("iew.execStoreInsts")
        self.m.dtlb.access(entry.addr, is_write=True)
        self._check_order_violation(entry, cycle)
        return latency

    def _check_order_violation(self, store, cycle):
        """A store whose address just resolved may expose a younger load
        that speculatively read stale memory (Spectre-STL discovery)."""
        word = store.addr - (store.addr % WORD_BYTES)
        for entry in self.rob:
            if entry.seq <= store.seq or not entry.is_load:
                continue
            if entry.state is EntryState.DISPATCHED or entry.addr is None:
                continue
            if entry.forwarded_from is not None and entry.forwarded_from >= store.seq:
                continue  # load already saw this store (or a younger one)
            got_stale = entry.read_memory or entry.forwarded_from is not None
            if entry.addr - (entry.addr % WORD_BYTES) == word and got_stale:
                c = self.counters
                c.bump("iew.memOrderViolationEvents")
                c.bump("lsq.memOrderViolation")
                c.bump("squash.memOrderSquashes")
                c.bump("lsq.rescheduledLoads")
                self._squash_younger(entry.seq - 1, cycle)
                self._redirect(entry.pc, cycle)
                return

    def _execute_load(self, entry, cycle):
        inst = entry.inst
        c = self.counters
        c.bump("iew.execLoadInsts")
        if inst.op is Op.RET:
            sp = self._operand(entry, 15)
            entry.addr = sp
            entry.result = sp + WORD_BYTES
        else:
            base = self._operand(entry, inst.rs1)
            entry.addr = base + inst.imm
        latency = self.m.dtlb.access(entry.addr, is_write=False)
        value, mem_latency = self._load_value(entry, cycle)
        latency += mem_latency
        if inst.op is Op.RET:
            entry.actual_taken = True
            entry.actual_target = value
        else:
            entry.result = value
        return latency

    def _load_value(self, entry, cycle):
        """Resolve a load's value and memory latency, including the
        transient fault paths."""
        c = self.counters
        addr = entry.addr
        # Privileged access: defer the check, return real data transiently.
        if is_kernel_address(addr) and self.m.user_mode:
            entry.fault = FaultKind.PRIV
            value = self.m.memory.load(addr) if self.config.meltdown_vulnerable else 0
            latency = self.m.hierarchy.access_data(
                addr, is_write=False, cycle=cycle,
                invisible=self._invisible(entry))
            return value, latency
        # Assist page: transiently forward stale buffered data (LVI/MDS).
        if is_assist_address(addr):
            entry.fault = FaultKind.ASSIST
            c.bump("lsq.ignoredResponses")
            value = 0
            if self.store_entries:
                youngest = None
                for store in self.store_entries:
                    if store.seq < entry.seq and store.store_value is not None:
                        youngest = store
                if youngest is not None:
                    value = youngest.store_value
                    c.bump("lsq.assistForwards")
                    c.bump("lsq.specLoadsHitWriteQueue")
                    c.bump("wrqueue.bytesRead", WORD_BYTES)
            return value, self.config.l1d_latency
        # Store-to-load forwarding from the youngest older matching store.
        word = addr - (addr % WORD_BYTES)
        match = None
        for store in self.store_entries:
            if store.seq >= entry.seq:
                break
            if store.addr is not None and \
                    store.addr - (store.addr % WORD_BYTES) == word:
                match = store
        if match is not None:
            entry.forwarded_from = match.seq
            c.bump("lsq.forwLoads")
            return match.store_value, 1
        entry.read_memory = True
        value = self.m.memory.load(addr)
        latency = self.m.hierarchy.access_data(
            addr, is_write=False, cycle=cycle,
            invisible=self._invisible(entry))
        if self.m.prefetcher is not None and not entry.invisible:
            self.m.prefetcher.observe(entry.pc, addr, cycle)
        return value, latency

    def _invisible(self, entry):
        """Should this load use the InvisiSpec invisible path?"""
        defense = self.config.defense
        if defense is DefenseMode.INVISISPEC_FUTURISTIC:
            entry.invisible = True
        elif defense is DefenseMode.INVISISPEC_SPECTRE and entry.under_shadow:
            entry.invisible = True
        else:
            return False
        entry.needs_expose = True
        return True

    # ------------------------------------------------------------------ dispatch

    def _dispatch(self, cycle):
        c = self.counters
        dispatched = 0
        while self.fetch_buffer and dispatched < self.config.fetch_width:
            if len(self.rob) >= self.config.rob_entries:
                c.bump("rob.fullEvents")
                c.bump("rename.blockCycles")
                break
            if len(self.waiting) >= self.config.iq_entries:
                c.bump("iq.fullEvents")
                c.bump("rename.blockCycles")
                break
            pc, inst, ptaken, ptarget = self.fetch_buffer.popleft()
            entry = RobEntry(self.next_seq, pc, inst)
            self.next_seq += 1
            entry.predicted_taken = ptaken
            entry.predicted_target = ptarget
            for reg in inst.source_regs():
                producer = self.rename_map.get(reg)
                if producer is not None and producer in self.entries_by_seq:
                    entry.sources[reg] = ("rob", producer)
                else:
                    entry.sources[reg] = ("val", self.arch_regs[reg])
            if inst.rd is not None:
                self.rename_map[inst.rd] = entry.seq
                c.bump("rename.committedMaps")
            self.rob.append(entry)
            self.entries_by_seq[entry.seq] = entry
            self.waiting.append(entry)
            if entry.is_store:
                self.store_entries.append(entry)
            if inst.op in _SHADOWING_OPS:
                self.unresolved_branches.append(entry)
            if inst.op is Op.FENCE:
                self.fences.append(entry)
                c.bump("rename.serializingInsts")
            elif inst.op is Op.LFENCE:
                self.lfences.append(entry)
                c.bump("rename.serializingInsts")
            if inst.op in (Op.LOAD, Op.STORE, Op.STOREU) and \
                    self._has_older_unresolved_branch(entry.seq):
                c.bump("iq.specInstsAdded")
            dispatched += 1
            c.bump("decode.insts")
            c.bump("rename.renamedInsts")
            c.bump("iq.instsAdded")
            c.bump("rob.reads")

    # ------------------------------------------------------------------ fetch

    def _fetch(self, cycle):
        c = self.counters
        if self._halt_fetched:
            return
        if self.fetch_stall_until > cycle:
            c.bump("fetch.squashCycles")
            c.bump("fetch.pendingQuiesceStallCycles")
            return
        if len(self.fetch_buffer) >= 2 * self.config.fetch_width:
            c.bump("fetch.blockedCycles")
            c.bump("fetch.pendingQuiesceStallCycles")
            return
        c.bump("fetch.cycles")
        fetched = 0
        while fetched < self.config.fetch_width:
            inst = self.m.program.fetch(self.fetch_pc)
            if inst is None:
                break
            itlb_latency = self.m.itlb.access(self.fetch_pc * 4)
            icache_latency = self.m.hierarchy.access_inst(self.fetch_pc, cycle)
            stall = itlb_latency + icache_latency
            if stall:
                self.fetch_stall_until = cycle + stall
                c.bump("fetch.icacheStallCycles", icache_latency)
                break
            pc = self.fetch_pc
            ptaken, ptarget = self._predict(pc, inst)
            self.fetch_buffer.append((pc, inst, ptaken, ptarget))
            c.bump("fetch.insts")
            fetched += 1
            if inst.op is Op.HALT:
                self._halt_fetched = True
                break
            self.fetch_pc = ptarget if ptarget is not None else pc + 1
            if ptarget is not None and ptarget != pc + 1:
                break  # taken branch ends the fetch group

    def _predict(self, pc, inst):
        """Fetch-time prediction; returns (predicted_taken, next_pc)."""
        c = self.counters
        op = inst.op
        if inst.op in (Op.BEQ, Op.BNE, Op.BLT):
            c.bump("fetch.branches")
            taken = self.branch_predictor.predict(pc)
            if taken:
                c.bump("fetch.predictedTaken")
                return True, inst.target
            return False, pc + 1
        if op is Op.JMP:
            return True, inst.target
        if op is Op.CALL:
            self.ras.push(pc + 1)
            return True, inst.target
        if op is Op.JMPI:
            target = self.btb.lookup(pc)
            if target is not None:
                c.bump("branchPred.indirectHits")
                return True, target
            return False, pc + 1
        if op is Op.RET:
            target = self.ras.pop()
            if target is None:
                return False, pc + 1
            return True, target
        return None, pc + 1
