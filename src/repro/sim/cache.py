"""Set-associative caches with LRU replacement, MSHR and write-buffer
accounting, plus the two-level hierarchy glue.

Cache *state* (which lines are present) is first-class here because the
attacks measure it: Flush+Reload times a reload after a flush, Prime+Probe
observes evictions from a primed set, and InvisiSpec's security property is
exactly that speculative loads do not change this state.
"""

from repro.sim.isa import LINE_BYTES


class Cache:
    """One level of set-associative cache with true LRU.

    ``prefix`` is the counter namespace, e.g. ``"dcache"``.
    """

    def __init__(self, size, assoc, line_bytes, latency, counters, prefix,
                 mshrs=20, write_buffers=8):
        self.num_sets = size // (assoc * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache too small for its associativity")
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.latency = latency
        self.counters = counters
        self.prefix = prefix
        self.mshrs = mshrs
        self.write_buffers = write_buffers
        # per-set: list of line addrs in LRU order (last = most recent)
        self._sets = [[] for _ in range(self.num_sets)]
        self._dirty = set()
        self._inflight_misses = 0

    def _set_index(self, line_addr):
        return line_addr % self.num_sets

    def bump(self, stat, amount=1):
        self.counters.bump(f"{self.prefix}.{stat}", amount)

    def contains(self, line_addr):
        """Presence check with no LRU side effect (used by flush timing and
        InvisiSpec invisible accesses)."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def lookup(self, line_addr, update_lru=True):
        """Tag lookup; moves the line to MRU position on hit."""
        ways = self._sets[self._set_index(line_addr)]
        if line_addr in ways:
            if update_lru:
                ways.remove(line_addr)
                ways.append(line_addr)
            return True
        return False

    def fill(self, line_addr, dirty=False):
        """Insert a line; returns ``(evicted_line, was_dirty)`` or None."""
        ways = self._sets[self._set_index(line_addr)]
        if line_addr in ways:
            ways.remove(line_addr)
            ways.append(line_addr)
            if dirty:
                self._dirty.add(line_addr)
            return None
        evicted = None
        if len(ways) >= self.assoc:
            victim = ways.pop(0)
            was_dirty = victim in self._dirty
            self._dirty.discard(victim)
            self.bump("replacements")
            if was_dirty:
                self.bump("writebacks")
            else:
                self.bump("cleanEvicts")
            evicted = (victim, was_dirty)
        ways.append(line_addr)
        if dirty:
            self._dirty.add(line_addr)
        return evicted

    def invalidate(self, line_addr):
        """Remove a line; returns ``(was_present, was_dirty)``."""
        ways = self._sets[self._set_index(line_addr)]
        if line_addr in ways:
            ways.remove(line_addr)
            was_dirty = line_addr in self._dirty
            self._dirty.discard(line_addr)
            return True, was_dirty
        return False, False

    def mark_dirty(self, line_addr):
        if self.contains(line_addr):
            self._dirty.add(line_addr)

    def set_occupancy(self, set_index):
        """Number of valid ways in a set (Prime+Probe observable)."""
        return len(self._sets[set_index % self.num_sets])


class CacheHierarchy:
    """L1I + L1D + shared L2 in front of DRAM.

    ``access_data`` is the single entry point for demand data accesses and
    returns the latency in cycles.  With ``invisible=True`` (InvisiSpec
    speculative access) the walk observes presence without updating LRU or
    filling any level.
    """

    def __init__(self, config, counters, dram):
        self.config = config
        self.counters = counters
        self.dram = dram
        self.l1i = Cache(config.l1i_size, config.l1i_assoc, config.line_bytes,
                         config.l1i_latency, counters, "icache")
        self.l1d = Cache(config.l1d_size, config.l1d_assoc, config.line_bytes,
                         config.l1d_latency, counters, "dcache",
                         mshrs=config.l1d_mshrs,
                         write_buffers=config.l1d_write_buffers)
        self.l2 = Cache(config.l2_size, config.l2_assoc, config.line_bytes,
                        config.l2_latency, counters, "l2",
                        mshrs=config.l2_mshrs,
                        write_buffers=config.l2_write_buffers)
        #: completion times of outstanding L1D misses (the MSHR occupancy)
        self._l1_miss_completions = []

    @staticmethod
    def line_of(addr):
        return addr // LINE_BYTES

    # -- demand path -----------------------------------------------------------

    def access_data(self, addr, is_write, cycle, invisible=False):
        """Access the data hierarchy; returns latency in cycles."""
        line = self.line_of(addr)
        c = self.counters
        c.bump("dcache.accesses")
        kind = "WriteReq" if is_write else "ReadReq"
        if invisible:
            return self._invisible_access(line, cycle)
        if self.l1d.lookup(line):
            c.bump("dcache.hits")
            c.bump(f"dcache.{kind}_hits")
            if is_write:
                self.l1d.mark_dirty(line)
            return self.config.l1d_latency
        # L1 miss
        c.bump("dcache.misses")
        c.bump(f"dcache.{kind}_misses")
        c.bump("dcache.mshrMisses")
        latency = self.config.l1d_latency
        # MSHR occupancy: a full miss-handling file delays the new miss
        self._l1_miss_completions = [t for t in self._l1_miss_completions
                                     if t > cycle]
        if len(self._l1_miss_completions) >= self.l1d.mshrs:
            c.bump("dcache.mshrFullEvents")
            latency += 4
        c.bump("l2.accesses")
        if self.l2.lookup(line):
            c.bump("l2.hits")
            c.bump("l2.ReadSharedReq_hits")
            latency += self.config.l2_latency
        else:
            c.bump("l2.misses")
            c.bump("l2.ReadSharedReq_misses")
            c.bump("l2.mshrMisses")
            c.bump("membus.transDist_ReadSharedReq")
            c.bump("membus.pktCount")
            c.bump("membus.dataThroughBus", self.config.line_bytes)
            latency += self.config.l2_latency
            latency += self.dram.access(addr, is_write=False, cycle=cycle)
            self._fill(self.l2, line)
        self._fill(self.l1d, line, dirty=is_write)
        self._l1_miss_completions.append(cycle + latency)
        if not is_write:
            c.bump("dcache.ReadReq_mshr_miss_latency", latency)
            c.bump("dcache.demandAvgMissLatency", latency)
        return latency

    def _fill(self, cache, line, dirty=False):
        evicted = cache.fill(line, dirty=dirty)
        if evicted is not None and evicted[1] and cache is self.l1d:
            # dirty L1 victim goes down to L2
            self.l2.fill(evicted[0], dirty=True)

    def _invisible_access(self, line, cycle):
        """InvisiSpec speculative access: observe latency, change nothing."""
        c = self.counters
        c.bump("specbuf.fills")
        if self.l1d.contains(line):
            return self.config.l1d_latency
        if self.l2.contains(line):
            return self.config.l1d_latency + self.config.l2_latency
        dram_latency = self.dram.peek_latency(line * self.config.line_bytes)
        return self.config.l1d_latency + self.config.l2_latency + dram_latency

    # -- instruction path --------------------------------------------------------

    def access_inst(self, pc, cycle):
        """Instruction fetch for the line containing ``pc``; returns latency
        (0 extra on an L1I hit)."""
        line = pc // 8  # 8 instructions per I-cache "line"
        c = self.counters
        c.bump("icache.accesses")
        if self.l1i.lookup(line):
            c.bump("icache.hits")
            return 0
        c.bump("icache.misses")
        latency = self.config.l2_latency
        if not self.l2.lookup(line + (1 << 40)):   # disjoint tag space from data
            latency += self.dram.peek_latency(pc)
            self.l2.fill(line + (1 << 40))
        self.l1i.fill(line)
        return latency

    # -- maintenance ops -----------------------------------------------------------

    def flush_line(self, addr, cycle):
        """CLFLUSH: evict from L1D and L2, write back if dirty.

        Returns latency — measurably higher when the line was present
        (the Flush+Flush signal) and higher still when dirty.
        """
        line = self.line_of(addr)
        c = self.counters
        c.bump("dcache.flushes")
        c.bump("membus.transDist_FlushReq")
        present1, dirty1 = self.l1d.invalidate(line)
        c.bump("l2.flushes")
        present2, dirty2 = self.l2.invalidate(line)
        latency = 4
        if present1 or present2:
            c.bump("dcache.flushHits")
            latency += 14
        if dirty1 or dirty2:
            latency += self.dram.access(addr, is_write=True, cycle=cycle)
        return latency

    def prefetch(self, addr, cycle):
        """Software prefetch into L1D (normal fill path, no result)."""
        self.counters.bump("dcache.prefetches")
        return self.access_data(addr, is_write=False, cycle=cycle)

    def data_line_present(self, addr):
        """Presence anywhere in the data hierarchy (no side effects)."""
        line = self.line_of(addr)
        return self.l1d.contains(line) or self.l2.contains(line)
