"""Set-associative caches with LRU replacement, MSHR and write-buffer
accounting, plus the two-level hierarchy glue.

Cache *state* (which lines are present) is first-class here because the
attacks measure it: Flush+Reload times a reload after a flush, Prime+Probe
observes evictions from a primed set, and InvisiSpec's security property is
exactly that speculative loads do not change this state.

Counter increments on the demand path use slot indices preresolved at
construction/import time (see :class:`repro.sim.hpc.CounterBank`) instead
of per-event name lookups; a name typo therefore fails when the hierarchy
is built, not when the event first fires.
"""

from repro.sim.hpc import CounterBank
from repro.sim.isa import LINE_BYTES

_IX = CounterBank.index_of

_C_DC_ACCESSES = _IX("dcache.accesses")
_C_DC_HITS = _IX("dcache.hits")
_C_DC_MISSES = _IX("dcache.misses")
_C_DC_MSHRMISSES = _IX("dcache.mshrMisses")
_C_DC_MSHRFULL = _IX("dcache.mshrFullEvents")
_C_DC_FLUSHES = _IX("dcache.flushes")
_C_DC_FLUSHHITS = _IX("dcache.flushHits")
_C_DC_PREFETCHES = _IX("dcache.prefetches")
_C_DC_RD_MSHR_LAT = _IX("dcache.ReadReq_mshr_miss_latency")
_C_DC_AVGMISSLAT = _IX("dcache.demandAvgMissLatency")
#: (read, write) pairs so the request kind selects a slot, not a name
_C_DC_KIND_HITS = (_IX("dcache.ReadReq_hits"), _IX("dcache.WriteReq_hits"))
_C_DC_KIND_MISSES = (_IX("dcache.ReadReq_misses"), _IX("dcache.WriteReq_misses"))

_C_L2_ACCESSES = _IX("l2.accesses")
_C_L2_HITS = _IX("l2.hits")
_C_L2_MISSES = _IX("l2.misses")
_C_L2_MSHRMISSES = _IX("l2.mshrMisses")
_C_L2_RDSHARED_HITS = _IX("l2.ReadSharedReq_hits")
_C_L2_RDSHARED_MISSES = _IX("l2.ReadSharedReq_misses")
_C_L2_FLUSHES = _IX("l2.flushes")

_C_IC_ACCESSES = _IX("icache.accesses")
_C_IC_HITS = _IX("icache.hits")
_C_IC_MISSES = _IX("icache.misses")

_C_MEMBUS_RDSHARED = _IX("membus.transDist_ReadSharedReq")
_C_MEMBUS_FLUSHREQ = _IX("membus.transDist_FlushReq")
_C_MEMBUS_PKTCOUNT = _IX("membus.pktCount")
_C_MEMBUS_DATA = _IX("membus.dataThroughBus")

_C_SPECBUF_FILLS = _IX("specbuf.fills")


class Cache:
    """One level of set-associative cache with true LRU.

    ``prefix`` is the counter namespace, e.g. ``"dcache"``.
    """

    def __init__(self, size, assoc, line_bytes, latency, counters, prefix,
                 mshrs=20, write_buffers=8):
        self.num_sets = size // (assoc * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache too small for its associativity")
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.latency = latency
        self.counters = counters
        self.prefix = prefix
        self.mshrs = mshrs
        self.write_buffers = write_buffers
        # Eviction stats, resolved once per prefix.  The instruction cache
        # has no writeback path (it is read-only), so only ``replacements``
        # exists in its namespace; the old name-per-event code would have
        # raised KeyError on the first L1I eviction in a large program.
        self._ix_replacements = _IX(f"{prefix}.replacements")
        self._ix_writebacks = (_IX(f"{prefix}.writebacks")
                               if CounterBank.has(f"{prefix}.writebacks")
                               else None)
        self._ix_clean_evicts = (_IX(f"{prefix}.cleanEvicts")
                                 if CounterBank.has(f"{prefix}.cleanEvicts")
                                 else None)
        # per-set: list of line addrs in LRU order (last = most recent)
        self._sets = [[] for _ in range(self.num_sets)]
        self._dirty = set()
        self._inflight_misses = 0

    def _set_index(self, line_addr):
        return line_addr % self.num_sets

    def bump(self, stat, amount=1):
        self.counters.bump(f"{self.prefix}.{stat}", amount)

    def contains(self, line_addr):
        """Presence check with no LRU side effect (used by flush timing and
        InvisiSpec invisible accesses)."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def lookup(self, line_addr, update_lru=True):
        """Tag lookup; moves the line to MRU position on hit."""
        ways = self._sets[self._set_index(line_addr)]
        if line_addr in ways:
            if update_lru and ways[-1] != line_addr:
                ways.remove(line_addr)
                ways.append(line_addr)
            return True
        return False

    def fill(self, line_addr, dirty=False):
        """Insert a line; returns ``(evicted_line, was_dirty)`` or None."""
        ways = self._sets[self._set_index(line_addr)]
        if line_addr in ways:
            ways.remove(line_addr)
            ways.append(line_addr)
            if dirty:
                self._dirty.add(line_addr)
            return None
        evicted = None
        if len(ways) >= self.assoc:
            victim = ways.pop(0)
            was_dirty = victim in self._dirty
            self._dirty.discard(victim)
            v = self.counters.values
            v[self._ix_replacements] += 1
            breakdown = self._ix_writebacks if was_dirty else self._ix_clean_evicts
            if breakdown is not None:
                v[breakdown] += 1
            evicted = (victim, was_dirty)
        ways.append(line_addr)
        if dirty:
            self._dirty.add(line_addr)
        return evicted

    def invalidate(self, line_addr):
        """Remove a line; returns ``(was_present, was_dirty)``."""
        ways = self._sets[self._set_index(line_addr)]
        if line_addr in ways:
            ways.remove(line_addr)
            was_dirty = line_addr in self._dirty
            self._dirty.discard(line_addr)
            return True, was_dirty
        return False, False

    def mark_dirty(self, line_addr):
        if self.contains(line_addr):
            self._dirty.add(line_addr)

    def set_occupancy(self, set_index):
        """Number of valid ways in a set (Prime+Probe observable)."""
        return len(self._sets[set_index % self.num_sets])


class CacheHierarchy:
    """L1I + L1D + shared L2 in front of DRAM.

    ``access_data`` is the single entry point for demand data accesses and
    returns the latency in cycles.  With ``invisible=True`` (InvisiSpec
    speculative access) the walk observes presence without updating LRU or
    filling any level.
    """

    def __init__(self, config, counters, dram):
        self.config = config
        self.counters = counters
        self.dram = dram
        self.l1i = Cache(config.l1i_size, config.l1i_assoc, config.line_bytes,
                         config.l1i_latency, counters, "icache")
        self.l1d = Cache(config.l1d_size, config.l1d_assoc, config.line_bytes,
                         config.l1d_latency, counters, "dcache",
                         mshrs=config.l1d_mshrs,
                         write_buffers=config.l1d_write_buffers)
        self.l2 = Cache(config.l2_size, config.l2_assoc, config.line_bytes,
                        config.l2_latency, counters, "l2",
                        mshrs=config.l2_mshrs,
                        write_buffers=config.l2_write_buffers)
        #: completion times of outstanding L1D misses (the MSHR occupancy)
        self._l1_miss_completions = []
        #: last instruction line fetched — it is in L1I and at MRU, so a
        #: refetch from the same line (the common case: 8 insts/line) can
        #: skip the tag lookup entirely.  Only access_inst touches L1I, so
        #: tracking it here is exact; flush_line never targets L1I.
        self._last_iline = None

    @staticmethod
    def line_of(addr):
        return addr // LINE_BYTES

    # -- demand path -----------------------------------------------------------

    def access_data(self, addr, is_write, cycle, invisible=False):
        """Access the data hierarchy; returns latency in cycles."""
        line = addr // LINE_BYTES
        v = self.counters.values
        v[_C_DC_ACCESSES] += 1
        if invisible:
            return self._invisible_access(line, cycle)
        if self.l1d.lookup(line):
            v[_C_DC_HITS] += 1
            v[_C_DC_KIND_HITS[is_write]] += 1
            if is_write:
                self.l1d.mark_dirty(line)
            return self.config.l1d_latency
        # L1 miss
        v[_C_DC_MISSES] += 1
        v[_C_DC_KIND_MISSES[is_write]] += 1
        v[_C_DC_MSHRMISSES] += 1
        latency = self.config.l1d_latency
        # MSHR occupancy: a full miss-handling file delays the new miss
        self._l1_miss_completions = [t for t in self._l1_miss_completions
                                     if t > cycle]
        if len(self._l1_miss_completions) >= self.l1d.mshrs:
            v[_C_DC_MSHRFULL] += 1
            latency += 4
        v[_C_L2_ACCESSES] += 1
        if self.l2.lookup(line):
            v[_C_L2_HITS] += 1
            v[_C_L2_RDSHARED_HITS] += 1
            latency += self.config.l2_latency
        else:
            v[_C_L2_MISSES] += 1
            v[_C_L2_RDSHARED_MISSES] += 1
            v[_C_L2_MSHRMISSES] += 1
            v[_C_MEMBUS_RDSHARED] += 1
            v[_C_MEMBUS_PKTCOUNT] += 1
            v[_C_MEMBUS_DATA] += self.config.line_bytes
            latency += self.config.l2_latency
            latency += self.dram.access(addr, is_write=False, cycle=cycle)
            self._fill(self.l2, line)
        self._fill(self.l1d, line, dirty=is_write)
        self._l1_miss_completions.append(cycle + latency)
        if not is_write:
            v[_C_DC_RD_MSHR_LAT] += latency
            v[_C_DC_AVGMISSLAT] += latency
        return latency

    def _fill(self, cache, line, dirty=False):
        evicted = cache.fill(line, dirty=dirty)
        if evicted is not None and evicted[1] and cache is self.l1d:
            # dirty L1 victim goes down to L2
            self.l2.fill(evicted[0], dirty=True)

    def _invisible_access(self, line, cycle):
        """InvisiSpec speculative access: observe latency, change nothing."""
        self.counters.values[_C_SPECBUF_FILLS] += 1
        if self.l1d.contains(line):
            return self.config.l1d_latency
        if self.l2.contains(line):
            return self.config.l1d_latency + self.config.l2_latency
        dram_latency = self.dram.peek_latency(line * self.config.line_bytes)
        return self.config.l1d_latency + self.config.l2_latency + dram_latency

    # -- instruction path --------------------------------------------------------

    def access_inst(self, pc, cycle):
        """Instruction fetch for the line containing ``pc``; returns latency
        (0 extra on an L1I hit)."""
        line = pc >> 3  # 8 instructions per I-cache "line"
        v = self.counters.values
        v[_C_IC_ACCESSES] += 1
        if line == self._last_iline:
            v[_C_IC_HITS] += 1     # still present and MRU: guaranteed hit
            return 0
        if self.l1i.lookup(line):
            v[_C_IC_HITS] += 1
            self._last_iline = line
            return 0
        v[_C_IC_MISSES] += 1
        latency = self.config.l2_latency
        if not self.l2.lookup(line + (1 << 40)):   # disjoint tag space from data
            latency += self.dram.peek_latency(pc)
            self.l2.fill(line + (1 << 40))
        self.l1i.fill(line)
        self._last_iline = line
        return latency

    # -- maintenance ops -----------------------------------------------------------

    def flush_line(self, addr, cycle):
        """CLFLUSH: evict from L1D and L2, write back if dirty.

        Returns latency — measurably higher when the line was present
        (the Flush+Flush signal) and higher still when dirty.
        """
        line = self.line_of(addr)
        v = self.counters.values
        v[_C_DC_FLUSHES] += 1
        v[_C_MEMBUS_FLUSHREQ] += 1
        present1, dirty1 = self.l1d.invalidate(line)
        v[_C_L2_FLUSHES] += 1
        present2, dirty2 = self.l2.invalidate(line)
        latency = 4
        if present1 or present2:
            v[_C_DC_FLUSHHITS] += 1
            latency += 14
        if dirty1 or dirty2:
            latency += self.dram.access(addr, is_write=True, cycle=cycle)
        return latency

    def prefetch(self, addr, cycle):
        """Software prefetch into L1D (normal fill path, no result)."""
        self.counters.values[_C_DC_PREFETCHES] += 1
        return self.access_data(addr, is_write=False, cycle=cycle)

    def data_line_present(self, addr):
        """Presence anywhere in the data hierarchy (no side effects)."""
        line = self.line_of(addr)
        return self.l1d.contains(line) or self.l2.contains(line)
