"""Backing store: word-granular main memory contents."""

from repro.sim.isa import WORD_BYTES


class MainMemory:
    """Sparse word-addressed memory.

    Values are Python ints; uninitialized words read as 0.  Addresses are
    byte addresses rounded down to the containing word, so unaligned
    accesses alias the same word as their aligned neighbour (sufficient for
    the unaligned-store-forwarding attack path).
    """

    def __init__(self, initial=None):
        self._words = {}
        if initial:
            for addr, value in initial.items():
                self.store(addr, value)

    @staticmethod
    def _word_addr(addr):
        return addr - (addr % WORD_BYTES)

    def load(self, addr):
        return self._words.get(self._word_addr(addr), 0)

    def store(self, addr, value):
        self._words[self._word_addr(addr)] = int(value)

    def flip_bit(self, addr, bit=0):
        """Flip one bit in the word at ``addr`` (Rowhammer corruption)."""
        wa = self._word_addr(addr)
        self._words[wa] = self._words.get(wa, 0) ^ (1 << bit)

    def snapshot(self):
        """All touched words as an address-ordered tuple of
        ``(word_addr, value)`` pairs — the canonical form fingerprints
        hash and memo records store.  Ordered so equal contents always
        serialize identically regardless of store order."""
        return tuple(sorted(self._words.items()))

    def load_snapshot(self, words):
        """Replace the entire contents with a :meth:`snapshot` (in
        place: fast paths may hold a reference to this memory)."""
        self._words.clear()
        self._words.update(words)

    def __contains__(self, addr):
        return self._word_addr(addr) in self._words
