"""Cycle-level out-of-order CPU simulator (gem5-O3-style substrate).

The paper evaluates on gem5's O3CPU with Ramulator.  This package rebuilds
the relevant microarchitecture in Python: a fetch/decode/rename/issue/
execute/commit pipeline with a reorder buffer, load/store queues with
store-to-load forwarding and memory-dependence speculation, a tournament
branch predictor with BTB and return address stack, a two-level cache
hierarchy with MSHRs and write buffers, TLBs, a bank/row DRAM model with
Rowhammer corruption, and a large bank of hardware performance counters
sampled every N committed instructions.

Attacks in :mod:`repro.attacks` are programs in this simulator's micro-op
ISA that genuinely exploit these mechanisms (transient loads that perturb
cache state, deferred faults, stale store forwarding, DRAM row hammering).
"""

from repro.sim.isa import Op, Instruction, KERNEL_BASE, ASSIST_BIT
from repro.sim.decode import DecodeCache, GLOBAL_DECODE_CACHE
from repro.sim.program import Program, ProgramBuilder
from repro.sim.config import SimConfig, DefenseMode
from repro.sim.cpu import O3Core
from repro.sim.hpc import CounterBank
from repro.sim.machine import Machine, RunResult
from repro.sim.memo import GLOBAL_MEMO_TABLE, TraceMemoTable
from repro.sim.multiprog import SMTMachine, SMTRunResult, TimeSharedMachine
from repro.sim.reference import ReferenceO3Core
from repro.sim.sampler import Sampler, Sample

__all__ = [
    "Op",
    "Instruction",
    "KERNEL_BASE",
    "ASSIST_BIT",
    "Program",
    "ProgramBuilder",
    "SimConfig",
    "DefenseMode",
    "CounterBank",
    "DecodeCache",
    "GLOBAL_DECODE_CACHE",
    "O3Core",
    "ReferenceO3Core",
    "Machine",
    "RunResult",
    "TraceMemoTable",
    "GLOBAL_MEMO_TABLE",
    "TimeSharedMachine",
    "SMTMachine",
    "SMTRunResult",
    "Sampler",
    "Sample",
]
