"""The full simulated machine: core + memory system + sampler + actors."""

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs import metrics, obs_event
from repro.sim.branch import BTB, RAS, TournamentPredictor
from repro.sim.cache import CacheHierarchy
from repro.sim.config import SimConfig
from repro.sim.cpu import O3Core
from repro.sim.dram import DRAM
from repro.sim.hpc import CounterBank
from repro.sim.memory import MainMemory
from repro.sim.sampler import Sampler
from repro.sim.tlb import TLB
from repro.sim.units import RngUnit


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    program_name: str
    cycles: int
    committed: int
    halt_reason: Optional[str]
    samples: list
    phase_marks: list
    counters: dict
    regs: List[int]
    detections: list = field(default_factory=list)

    @property
    def ipc(self):
        return self.committed / self.cycles if self.cycles else 0.0


class Machine:
    """A single-core system running one program, with optional background
    actors sharing its microarchitectural state.

    Typical use::

        machine = Machine(program, SimConfig())
        result = machine.run(max_cycles=100_000)
    """

    def __init__(self, program, config=None, sample_period=1000, actors=None,
                 detector_hook=None, core_cls=None, memo_table=None):
        self.program = program
        self.config = config if config is not None else SimConfig()
        self.counters = CounterBank()
        self.memory = MainMemory(program.initial_memory)
        self.dram = DRAM(self.config, self.counters, self.memory)
        self.hierarchy = CacheHierarchy(self.config, self.counters, self.dram)
        self.dtlb = TLB(self.config.dtlb_entries, self.config.page_bytes,
                        self.config.tlb_miss_latency, self.counters, "dtlb")
        self.itlb = TLB(self.config.itlb_entries, self.config.page_bytes,
                        self.config.tlb_miss_latency, self.counters, "itlb")
        self.rng = RngUnit(self.config, self.counters)
        self.branch_predictor = TournamentPredictor(
            self.config.local_predictor_size,
            self.config.global_predictor_size,
            self.config.choice_predictor_size,
            counters=self.counters)
        self.btb = BTB(self.config.btb_entries, counters=self.counters)
        self.ras = RAS(self.config.ras_entries, counters=self.counters)
        self.user_mode = True
        if self.config.prefetcher_enabled:
            from repro.sim.prefetcher import StridePrefetcher
            self.prefetcher = StridePrefetcher(
                self.hierarchy, degree=self.config.prefetcher_degree)
        else:
            self.prefetcher = None
        self.sampler = Sampler(self.counters, period=sample_period)
        self.actors = list(actors or [])
        #: optional callable(machine, sample) -> bool invoked per window;
        #: True means "attack detected" (the adaptive controller wires the
        #: trained detector in here).
        self.detector_hook = detector_hook
        self.detections = []
        #: when True, co-resident background actors are descheduled (the
        #: quarantine / migration response to a detected contention attack)
        self.actors_suspended = False
        self.cycle = 0
        #: hot-trace memo table: an explicit table wins, else
        #: ``config.memoize`` opts into the process-wide one, else off —
        #: see repro/sim/memo.py for the conservatism contract
        if memo_table is not None:
            self.memo_table = memo_table
        elif self.config.memoize:
            from repro.sim.memo import GLOBAL_MEMO_TABLE
            self.memo_table = GLOBAL_MEMO_TABLE
        else:
            self.memo_table = None
        #: ``core_cls`` lets callers swap the scheduler implementation —
        #: the equivalence tests run ReferenceO3Core against the default.
        self.cpu = (core_cls or O3Core)(self)
        for reg, value in program.initial_regs.items():
            self.cpu.arch_regs[reg] = value
        self._warm_instruction_path()

    def _warm_instruction_path(self):
        """Pre-fill the I-cache and I-TLB with the program's footprint.

        Attack and workload code is resident (attackers loop; benchmarks
        run long), so modeling a cold instruction path would only add a
        one-time startup artifact that destroys short transient windows.
        """
        for pc in range(0, len(self.program), 8):
            self.hierarchy.access_inst(pc, 0)
            self.itlb.access(pc * 4)
        # reset the counters the warm-up touched (in place: fast-path code
        # holds preresolved references into the bank — see CounterBank)
        self.counters.reset()

    # -- hooks called by the core ------------------------------------------------

    def record_phase(self, phase, commit_index):
        self.sampler.record_phase(phase, commit_index)

    def on_commit(self, committed):
        before = len(self.sampler.samples)
        self.sampler.on_commit(committed, self.cycle)
        if self.detector_hook is not None and len(self.sampler.samples) > before:
            sample = self.sampler.samples[-1]
            if self.detector_hook(self, sample):
                self.detections.append(sample)

    # -- execution ------------------------------------------------------------------

    def run(self, max_cycles=1_000_000):
        """Run to completion (HALT, unhandled fault, or end of program) or
        until ``max_cycles``; returns a :class:`RunResult`.

        When a memo table is attached and the entry state fingerprints as
        provably seen before, the recorded run is replayed instead of
        simulated — bit-identical result, no stepping (see
        repro/sim/memo.py).
        """
        cpu = self.cpu
        actors = self.actors
        wall_start = time.perf_counter()
        memo_key = None
        if self.memo_table is not None:
            memo_key = self.memo_table.fingerprint(self, max_cycles)
            if memo_key is not None:
                record = self.memo_table.lookup(memo_key)
                if record is not None:
                    self.memo_table.replay(self, record)
                    self._record_run_observations(
                        time.perf_counter() - wall_start)
                    return self._result()
        while not cpu.halted and self.cycle < max_cycles:
            cpu.step(self.cycle)
            if actors and not self.actors_suspended:
                for actor in actors:
                    if self.cycle % actor.period == 0:
                        actor.tick(self, self.cycle)
            self.cycle += 1
        self.sampler.flush(cpu.committed, self.cycle)
        if memo_key is not None:
            self.memo_table.record(memo_key, self)
        self._record_run_observations(time.perf_counter() - wall_start)
        return self._result()

    def _result(self):
        cpu = self.cpu
        return RunResult(
            program_name=self.program.name,
            cycles=self.cycle,
            committed=cpu.committed,
            halt_reason=cpu.halt_reason if cpu.halted else "max-cycles",
            samples=list(self.sampler.samples),
            phase_marks=list(self.sampler.phase_marks),
            counters=self.counters.as_dict(),
            regs=list(cpu.arch_regs),
            detections=list(self.detections),
        )

    def _record_run_observations(self, elapsed):
        """Aggregate this run into the global metrics/log.

        The commit loop itself stays untouched — per-cycle timers would
        distort the very IPC numbers this system measures — so the whole
        run is accounted for in one batch of updates here.
        """
        reg = metrics()
        reg.inc("sim.runs")
        reg.inc("sim.cycles", self.cycle)
        reg.inc("sim.committed", self.cpu.committed)
        reg.inc("sim.detections", len(self.detections))
        reg.observe("sim.run.seconds", elapsed)
        obs_event("sim.run", level="debug",
                  program=self.program.name,
                  cycles=self.cycle,
                  committed=self.cpu.committed,
                  ipc=round(self.cpu.committed / self.cycle, 4)
                  if self.cycle else 0.0,
                  halt=self.cpu.halt_reason if self.cpu.halted
                  else "max-cycles",
                  windows=len(self.sampler.samples),
                  elapsed_s=round(elapsed, 6))

    def set_defense(self, mode):
        """Switch the mitigation mode mid-run (the adaptive architecture)."""
        self.config.defense = mode

    def format_stats(self, nonzero_only=True):
        """gem5-style stats dump: one ``name value`` line per counter."""
        lines = []
        for name, value in sorted(self.counters.as_dict().items()):
            if nonzero_only and value == 0:
                continue
            lines.append(f"{name:<44s} {value}")
        return "\n".join(lines)
