"""Forked-worker entry points for the arena's genome evaluation fan-out.

Each genome is simulated in an isolated :class:`~repro.runtime.runner`
worker process: the worker rebuilds the attack from its genome dict,
runs the full simulation, checks whether the channel actually leaked,
and ships the raw HPC windows back to the parent.  Scoring against the
incumbent detector happens in the *parent* — the detector never crosses
the process boundary, so a candidate promotion mid-campaign can never
race a stale copy in a worker.

The function must be importable at module top level (workers are
forked and re-call it by reference), and chaos worker-kill faults are
honoured here via the same ``kill_attempts`` countdown the campaign
workers use.
"""

from repro.arena.genome import build_attack, genome_key
from repro.attacks.base import bits_balanced_accuracy
from repro.data.dataset import collect_source, validate_records
from repro.runtime.chaos import chaos_kill_self
from repro.sim.hpc import COUNTER_NAMES

#: leak threshold matching ``build_dataset(require_leak=True)``
LEAK_THRESHOLD = 0.75


def evaluate_genome(payload, attempt):
    """Simulate one genome; return its windows and leak verdict.

    ``payload`` is ``{"genome": dict, "sample_period": int,
    "kill_attempts": int}``.  When a chaos fault armed this genome,
    attempts up to ``kill_attempts`` die via SIGKILL — exercising the
    runner's crash-retry path exactly like a real worker loss.
    """
    if attempt <= payload.get("kill_attempts", 0):
        chaos_kill_self()
    genome = payload["genome"]
    attack = build_attack(genome)
    records, result, machine = collect_source(
        attack, label=1, sample_period=payload["sample_period"])
    validate_records(records)
    recovered = attack.recover(machine, result)
    score = bits_balanced_accuracy(attack.secret_bits, recovered)
    return {
        "key": genome_key(genome),
        "deltas": [[int(d) for d in r.deltas] for r in records],
        "windows": len(records),
        "cycles": int(result.cycles),
        "leaked": bool(score >= LEAK_THRESHOLD),
        "leak_score": float(round(score, 4)),
    }


def validate_evaluation(value):
    """Runner-side validator: a structurally bad result is classified as
    a ``divergent`` hole, not silently scored."""
    if not isinstance(value, dict):
        raise ValueError("evaluation result is not a dict")
    for field in ("key", "deltas", "windows", "cycles", "leaked"):
        if field not in value:
            raise ValueError(f"evaluation result missing {field!r}")
    deltas = value["deltas"]
    if not deltas or value["windows"] != len(deltas):
        raise ValueError("evaluation window count does not match matrix")
    width = len(COUNTER_NAMES)
    for row in deltas:
        if len(row) != width:
            raise ValueError(
                f"evaluation row has {len(row)} deltas, expected {width}")
        for d in row:
            if not isinstance(d, int) or isinstance(d, bool) or d < 0:
                raise ValueError(f"invalid counter delta {d!r}")
    return value
