"""The ``repro arena --smoke`` resumability + rollback check.

A self-contained proof of the arms race's whole degradation contract,
run by ``scripts/ci.sh`` on every push:

1. an **uninterrupted** 2-generation race completes clean (exit 0) —
   its deterministic report (``arena.md``) is the reference;
2. the same spec is **SIGKILLed mid-generation** (a ``gen_kill`` chaos
   fault at the top of generation 2), then ``--resume``\\ d: the resumed
   run restores generation 1's checkpoint (population, detector
   weights, RNG state), replays generation 2, exits 0 and produces a
   **byte-identical report** — the bit-exact resume acceptance check;
3. a 1-generation race is wounded twice — a genome's worker SIGKILLed
   (no retries) and the candidate detector **sabotaged ahead of the
   regression gate** — and must degrade, not abort: exit 1 with
   exactly ``{crash: 1, gate_regression: 1}`` classified holes, and
   the shipped detector **bit-identical to the generation-0
   incumbent** (the rollback actually rolled back).

Any deviation prints a one-line reason and fails (exit 1).
"""

import os
import tempfile

from repro.arena.loop import ArenaSpec, run_arena
from repro.core.patching import detector_to_dict
from repro.runtime import (
    CRASH, GATE_REGRESS_FAULT, GATE_REGRESSION, GEN_KILL_FAULT,
    GENOME_KILL_FAULT, ArenaChaos, ArenaFault, ChaosKill, CheckpointStore,
)

#: the smoke race: small enough for CI, big enough that evolution has a
#: real survivor pool (population 6, 2 breeding survivors)
SMOKE_SPEC = {
    "generations": 2,
    "population": 6,
    "survivors": 2,
    "attacks": ("meltdown", "flush-reload"),
    "workloads": ("stream", "sort"),
    "sample_period": 120,
    "samples_per_class": 8,
    "gan_iterations": 24,
    "gan_hidden": (24, 24),
    "epochs": 8,
    # the held-out folds are tiny (tens of windows), so one flipped
    # window moves a rate by ~0.06 — budgets sit above that noise
    # floor; the sabotaged candidate (threshold 0 -> fp_rate 1.0)
    # still trips by a mile
    "fp_budget": 0.15,
    "fn_budget": 0.10,
    "seed": 7,
}

#: the generation the phase-2 SIGKILL lands in
KILLED_GENERATION = 2
#: the genome index the phase-3 worker kill targets
KILLED_GENOME = 0


def _read(path):
    with open(path, "rb") as f:
        return f.read()


def run_smoke(jobs=None, echo=print):
    """Run the three-phase arena check; returns 0 ok / 1 failed."""
    spec = ArenaSpec(**SMOKE_SPEC)

    with tempfile.TemporaryDirectory() as clean_dir, \
            tempfile.TemporaryDirectory() as chaos_dir, \
            tempfile.TemporaryDirectory() as gate_dir:
        # -- phase 1: uninterrupted reference ---------------------------------
        clean = run_arena(spec, clean_dir, processes=jobs, retries=1)
        if clean.exit_code != 0:
            echo(f"arena smoke FAILED: uninterrupted run had "
                 f"{len(clean.holes)} holes")
            return 1
        if clean.promotions + clean.rollbacks != spec.generations:
            echo(f"arena smoke FAILED: uninterrupted run gated "
                 f"{clean.promotions + clean.rollbacks} candidates, "
                 f"expected {spec.generations}")
            return 1
        reference = _read(os.path.join(clean_dir, "arena.md"))

        # -- phase 2: SIGKILL mid-generation, then bit-exact resume -----------
        chaos = ArenaChaos([
            ArenaFault(GEN_KILL_FAULT, generation=KILLED_GENERATION),
        ])
        try:
            run_arena(spec, chaos_dir, processes=jobs, retries=1,
                      chaos=chaos)
            echo("arena smoke FAILED: gen_kill fault did not fire")
            return 1
        except ChaosKill:
            pass
        resumed = run_arena(spec, chaos_dir, processes=jobs, retries=1,
                            resume=True)
        if resumed.exit_code != 0:
            echo(f"arena smoke FAILED: resume left "
                 f"{len(resumed.holes)} holes")
            return 1
        if _read(os.path.join(chaos_dir, "arena.md")) != reference:
            echo("arena smoke FAILED: resumed report is not "
                 "bit-identical to the uninterrupted run")
            return 1

        # -- phase 3: worker kill + sabotaged candidate must degrade ----------
        gate_spec = ArenaSpec(**{**SMOKE_SPEC, "generations": 1})
        chaos = ArenaChaos([
            ArenaFault(GENOME_KILL_FAULT, generation=1,
                       genome=KILLED_GENOME),
            ArenaFault(GATE_REGRESS_FAULT, generation=1),
        ])
        wounded = run_arena(gate_spec, gate_dir, processes=jobs,
                            retries=0, chaos=chaos)
        if wounded.exit_code != 1:
            echo(f"arena smoke FAILED: wounded run exited "
                 f"{wounded.exit_code}, expected 1 (holes)")
            return 1
        kinds = wounded.holes_by_kind()
        if kinds != {CRASH: 1, GATE_REGRESSION: 1}:
            echo(f"arena smoke FAILED: holes classified {kinds}, "
                 f"expected {{crash: 1, gate_regression: 1}}")
            return 1
        # rollback proof: the shipped detector is bit-identical to the
        # generation-0 incumbent persisted before the sabotaged retrain
        store = CheckpointStore(os.path.join(gate_dir, "checkpoints"))
        store.open({"spec_fingerprint": gate_spec.fingerprint,
                    "guard_policy": "rollback",
                    "initial_detector": ""}, resume=True)
        incumbent0 = store.get("gen-0")["detector"]
        if detector_to_dict(wounded.detector) != incumbent0:
            echo("arena smoke FAILED: rolled-back detector differs "
                 "from the generation-0 incumbent")
            return 1

    echo(f"arena smoke ok: {spec.generations} generations; "
         f"kill at gen {KILLED_GENERATION} -> resume bit-identical; "
         f"worker kill + sabotaged candidate -> 2 classified holes, "
         f"gate rolled back, exit 1")
    return 0
