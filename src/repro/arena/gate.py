"""The regression gate: a candidate detector must not be worse than the
incumbent it would replace.

Re-vaccinating against evolved attacks can quietly wreck a detector —
adversarial augmentation that overfits the evolved windows, a sabotaged
threshold, NaN-poisoned weights.  Before any candidate is promoted it is
scored on a *held-out* evaluation corpus (benign + canonical-attack
folds the arms race never trains on) and compared to the incumbent under
explicit FP/FN budgets:

* ``candidate_fp_rate <= incumbent_fp_rate + fp_budget`` — the detector
  may not start flagging benign workloads the incumbent passed, and
* ``candidate_fn_rate <= incumbent_fn_rate + fn_budget`` — it may not
  start missing canonical attacks the incumbent caught.

A candidate with any non-finite score on the held-out corpus fails
automatically (fail-secure: a poisoned model never ships).  Each
detector is scored through its *own* feature schema, so a gate between
two schema revisions still compares like with like.
"""

from dataclasses import dataclass, field

import numpy as np


@dataclass
class GateVerdict:
    """Outcome of one regression-gate comparison."""

    promoted: bool
    reasons: list = field(default_factory=list)
    candidate: dict = field(default_factory=dict)
    incumbent: dict = field(default_factory=dict)

    def to_dict(self):
        return {
            "promoted": self.promoted,
            "reasons": list(self.reasons),
            "candidate": dict(self.candidate),
            "incumbent": dict(self.incumbent),
        }


def _holdout_stats(detector, dataset):
    """Evaluate one detector on the held-out corpus via its own schema."""
    X = dataset.raw_matrix(detector.schema)
    y = dataset.labels()
    scores = detector.scores_raw(X)
    finite = bool(np.isfinite(scores).all())
    stats = detector.evaluate(X, y)
    return {
        "fp_rate": float(round(stats["fp_rate"], 6)),
        "fn_rate": float(round(stats["fn_rate"], 6)),
        "accuracy": float(round(stats["accuracy"], 6)),
        "auc": float(round(stats["auc"], 6)),
        "threshold": float(round(detector.threshold, 6)),
        "finite": finite,
    }


def regression_gate(candidate, incumbent, dataset, fp_budget=0.02,
                    fn_budget=0.05):
    """Compare ``candidate`` to ``incumbent`` on the held-out corpus.

    Returns a :class:`GateVerdict`; ``promoted`` is True only when the
    candidate's scores are all finite and both regression budgets hold.
    """
    cand = _holdout_stats(candidate, dataset)
    inc = _holdout_stats(incumbent, dataset)
    reasons = []
    if not cand["finite"]:
        reasons.append("candidate produced non-finite scores on the "
                       "held-out corpus")
    if cand["fp_rate"] > inc["fp_rate"] + fp_budget:
        reasons.append(
            f"fp_rate regression: {cand['fp_rate']:.4f} > "
            f"{inc['fp_rate']:.4f} + budget {fp_budget:.4f}")
    if cand["fn_rate"] > inc["fn_rate"] + fn_budget:
        reasons.append(
            f"fn_rate regression: {cand['fn_rate']:.4f} > "
            f"{inc['fn_rate']:.4f} + budget {fn_budget:.4f}")
    return GateVerdict(promoted=not reasons, reasons=reasons,
                       candidate=cand, incumbent=inc)
